//! Static analysis of MachSuite benchmark configurations.
//!
//! Two static inputs exist per benchmark before any simulated cycle: the
//! declared port map ([`machsuite::ports`]) and the grant table a driver
//! intends to install. This module checks both:
//!
//! * [`audit_grants`] compares a grant table against the declaration —
//!   a grant wider than its port's declared direction is
//!   **over-privileged**, and address ranges shared across tasks are
//!   **port aliasing** (one task's writes reach another's compartment);
//! * [`analyze_benchmark`] replays the kernel deterministically through
//!   [`hetsim::DirectEngine`] and checks the observed traffic against
//!   the declaration: every access inside the declared direction and the
//!   placed buffer region proves the port **safe** to elide; anything
//!   undeclared or out of region is a provable violation.
//!
//! The safe verdicts become a [`capchecker::StaticVerdictMap`] the bench
//! runner installs before simulation, and the declared directions become
//! the least-privilege device-side permissions
//! ([`declared_perms`]) handed to `TaskRequest::device_ports`.

use crate::Finding;
use capchecker::{StaticVerdict, StaticVerdictMap};
use cheri::Perms;
use hetsim::{DirectEngine, ObjectId, TaggedMemory, TaskId, TraceOp};
use machsuite::{ports::ports, Benchmark, PortMode};

/// Where [`analyze_benchmark`] places the task's buffers. Any base works —
/// the analysis is position-independent — but a fixed one keeps reports
/// byte-stable.
pub const ANALYSIS_BASE: u64 = 0x1_0000;

/// One row of a driver's intended grant table, as known statically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticGrant {
    /// Granted task.
    pub task: u32,
    /// Port index the grant backs.
    pub object: u16,
    /// First byte of the granted range.
    pub base: u64,
    /// Length of the granted range in bytes.
    pub size: u64,
    /// Granted data permissions.
    pub perms: Perms,
}

impl StaticGrant {
    fn end(&self) -> u64 {
        self.base.saturating_add(self.size)
    }

    fn overlaps(&self, other: &StaticGrant) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

/// What the replay proved about one port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortReport {
    /// Port (buffer) name from the workload definition.
    pub name: &'static str,
    /// Declared direction.
    pub mode: PortMode,
    /// Least-privilege device permissions the declaration implies.
    pub declared: Perms,
    /// `true` if the replay read through the port.
    pub read: bool,
    /// `true` if the replay wrote through the port.
    pub write: bool,
    /// Lowest address touched (`u64::MAX` when untouched).
    pub lo: u64,
    /// One past the highest address touched (0 when untouched).
    pub hi: u64,
    /// The port's placed region.
    pub region: (u64, u64),
    /// The verdict: `Safe` when every observed access is declared and in
    /// region (vacuously for untouched ports), `Unsafe` on a provable
    /// violation.
    pub verdict: StaticVerdict,
}

/// The full static analysis of one benchmark configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchAnalysis {
    /// Analyzed benchmark.
    pub bench: Benchmark,
    /// Replay seed the envelope came from.
    pub seed: u64,
    /// Per-port reports, in buffer order.
    pub ports: Vec<PortReport>,
    /// Provable problems (empty for every stock configuration).
    pub findings: Vec<Finding>,
}

impl BenchAnalysis {
    /// `true` when every port is provably safe — the precondition for
    /// running the benchmark with checks elided.
    #[must_use]
    pub fn all_safe(&self) -> bool {
        self.ports.iter().all(|p| p.verdict == StaticVerdict::Safe)
    }

    /// The verdict map to install for `task` before simulation.
    #[must_use]
    pub fn verdict_map(&self, task: TaskId) -> StaticVerdictMap {
        let mut map = StaticVerdictMap::new();
        for (i, p) in self.ports.iter().enumerate() {
            map.set(task, ObjectId(i as u16), p.verdict);
        }
        map
    }
}

/// The least-privilege device-side permissions a port mode implies.
#[must_use]
pub fn mode_perms(mode: PortMode) -> Perms {
    match mode {
        PortMode::In => Perms::LOAD,
        PortMode::Out => Perms::STORE,
        PortMode::InOut => Perms::RW,
        PortMode::Unused => Perms::NONE,
    }
}

/// The least-privilege device permissions for every port of `bench`, in
/// buffer order — ready for `TaskRequest::device_ports`.
#[must_use]
pub fn declared_perms(bench: Benchmark) -> Vec<Perms> {
    ports(bench).iter().map(|&m| mode_perms(m)).collect()
}

/// Audits a driver's grant table against a benchmark's declared ports.
///
/// Produces `over-privilege` findings for grants wider than the declared
/// direction (judged against the *declaration*, never a particular
/// trace, so the audit is seed-independent) and `port-aliasing` findings
/// for ranges that overlap across tasks.
#[must_use]
pub fn audit_grants(bench: Benchmark, grants: &[StaticGrant]) -> Vec<Finding> {
    let declared = ports(bench);
    let defs = bench.buffers();
    let mut findings = Vec::new();
    for g in grants {
        let Some(&mode) = declared.get(usize::from(g.object)) else {
            findings.push(Finding {
                category: "no-entry",
                subject: format!("{} task {} object {}", bench.name(), g.task, g.object),
                detail: format!(
                    "grant for a port the benchmark does not have (it has {})",
                    declared.len()
                ),
                op: None,
                count: 1,
            });
            continue;
        };
        let allowed = mode_perms(mode);
        let data = g.perms.intersect(Perms::RW);
        if !allowed.contains(data) {
            let excess = data.intersect(!allowed);
            findings.push(Finding {
                category: "over-privilege",
                subject: format!(
                    "{} task {} port {}",
                    bench.name(),
                    g.task,
                    defs[usize::from(g.object)].name
                ),
                detail: format!(
                    "grant carries {excess} beyond the declared {} direction",
                    mode.label()
                ),
                op: None,
                count: 1,
            });
        }
    }
    for (i, a) in grants.iter().enumerate() {
        for b in &grants[i + 1..] {
            if a.task != b.task && a.overlaps(b) {
                findings.push(Finding {
                    category: "port-aliasing",
                    subject: format!(
                        "{} tasks {} and {}",
                        bench.name(),
                        a.task.min(b.task),
                        a.task.max(b.task)
                    ),
                    detail: format!(
                        "grants for objects {} and {} overlap at [{:#x}, {:#x})",
                        a.object,
                        b.object,
                        a.base.max(b.base),
                        a.end().min(b.end())
                    ),
                    op: None,
                    count: 1,
                });
            }
        }
    }
    findings
}

/// Replays `bench` deterministically and classifies every port.
///
/// The replay is exact — [`DirectEngine`] records every transfer the
/// kernel makes — so an access outside the declared direction or the
/// placed region is a proof, not a heuristic. Conversely a port whose
/// whole envelope sits inside its declared, in-region contract is safe
/// to elide: the runtime checker could never deny it.
///
/// # Panics
///
/// If the kernel itself faults on its stock input, which no MachSuite
/// kernel does.
#[must_use]
pub fn analyze_benchmark(bench: Benchmark, seed: u64) -> BenchAnalysis {
    let layout = bench.place(ANALYSIS_BASE);
    let mut mem = TaggedMemory::new(8 << 20);
    for (i, img) in bench.init(seed).iter().enumerate() {
        mem.write_bytes(layout.address(i, 0), img).unwrap();
    }
    let mut eng = DirectEngine::new(&mut mem, layout.clone());
    bench.kernel(&mut eng).unwrap();

    let declared = ports(bench);
    let defs = bench.buffers();
    let n = defs.len();
    let mut read = vec![false; n];
    let mut write = vec![false; n];
    let mut lo = vec![u64::MAX; n];
    let mut hi = vec![0u64; n];
    let resolve = |addr: u64| {
        layout
            .buffers
            .iter()
            .position(|r| addr >= r.base && addr < r.end())
    };
    let mut touch = |obj: usize, addr: u64, len: u64, is_write: bool| {
        if is_write {
            write[obj] = true;
        } else {
            read[obj] = true;
        }
        lo[obj] = lo[obj].min(addr);
        hi[obj] = hi[obj].max(addr.saturating_add(len));
    };
    for op in eng.trace().ops() {
        match op {
            TraceOp::Mem {
                write: w,
                object,
                addr,
                bytes,
            } => touch(*object as usize, *addr, u64::from(*bytes), *w),
            TraceOp::Copy { src, dst, bytes } => {
                if let Some(o) = resolve(*src) {
                    touch(o, *src, *bytes, false);
                }
                if let Some(o) = resolve(*dst) {
                    touch(o, *dst, *bytes, true);
                }
            }
            TraceOp::Compute(_) => {}
        }
    }

    let mut findings = Vec::new();
    let mut reports = Vec::with_capacity(n);
    for i in 0..n {
        let mode = declared[i];
        let region = &layout.buffers[i];
        let mut safe = true;
        if (read[i] && !mode.reads()) || (write[i] && !mode.writes()) {
            safe = false;
            let dir = if read[i] && !mode.reads() {
                "reads"
            } else {
                "writes"
            };
            findings.push(Finding {
                category: "undeclared-access",
                subject: format!("{} port {}", bench.name(), defs[i].name),
                detail: format!("kernel {dir} a port declared {}", mode.label()),
                op: None,
                count: 1,
            });
        }
        let touched = read[i] || write[i];
        if touched && (lo[i] < region.base || hi[i] > region.end()) {
            safe = false;
            findings.push(Finding {
                category: "out-of-bounds",
                subject: format!("{} port {}", bench.name(), defs[i].name),
                detail: format!(
                    "envelope [{:#x}, {:#x}) escapes the placed region [{:#x}, {:#x})",
                    lo[i],
                    hi[i],
                    region.base,
                    region.end()
                ),
                op: None,
                count: 1,
            });
        }
        reports.push(PortReport {
            name: defs[i].name,
            mode,
            declared: mode_perms(mode),
            read: read[i],
            write: write[i],
            lo: lo[i],
            hi: hi[i],
            region: (region.base, region.end()),
            verdict: if safe {
                StaticVerdict::Safe
            } else {
                StaticVerdict::Unsafe
            },
        });
    }

    BenchAnalysis {
        bench,
        seed,
        ports: reports,
        findings,
    }
}

/// The grant table the current driver installs for `bench`: one RW grant
/// per port, exactly covering its placed region — what
/// `HeteroSystem::allocate_task` does without `device_ports`. The audit
/// of this table against the declaration is what motivates the
/// least-privilege narrowing.
#[must_use]
pub fn default_grants(bench: Benchmark, task: u32) -> Vec<StaticGrant> {
    let layout = bench.place(ANALYSIS_BASE);
    layout
        .buffers
        .iter()
        .enumerate()
        .map(|(i, r)| StaticGrant {
            task,
            object: i as u16,
            base: r.base,
            size: r.size,
            perms: Perms::RW,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stock_benchmark_is_fully_safe() {
        for b in Benchmark::ALL {
            let a = analyze_benchmark(b, 1);
            assert!(a.findings.is_empty(), "{b}: {:#?}", a.findings);
            assert!(a.all_safe(), "{b} not all safe");
        }
    }

    #[test]
    fn verdict_map_covers_every_port() {
        let a = analyze_benchmark(Benchmark::GemmNcubed, 1);
        let map = a.verdict_map(TaskId(3));
        assert_eq!(map.safe_pairs(), a.ports.len() as u64);
        assert!(map.is_safe(TaskId(3), ObjectId(0)));
        assert!(!map.is_safe(TaskId(4), ObjectId(0)));
    }

    #[test]
    fn default_rw_grants_are_over_privileged_on_directional_ports() {
        // gemm-ncubed declares a, b as In and c as Out: RW on all three
        // is three over-privilege findings.
        let grants = default_grants(Benchmark::GemmNcubed, 0);
        let findings = audit_grants(Benchmark::GemmNcubed, &grants);
        let over: Vec<_> = findings
            .iter()
            .filter(|f| f.category == "over-privilege")
            .collect();
        assert_eq!(over.len(), 3, "{findings:#?}");
        // Least-privilege grants audit clean.
        let narrowed: Vec<StaticGrant> = grants
            .iter()
            .zip(declared_perms(Benchmark::GemmNcubed))
            .map(|(g, p)| StaticGrant { perms: p, ..*g })
            .collect();
        assert!(audit_grants(Benchmark::GemmNcubed, &narrowed).is_empty());
    }

    #[test]
    fn cross_task_overlap_is_port_aliasing() {
        let mut grants = default_grants(Benchmark::Aes, 0);
        let mut alias = grants[0];
        alias.task = 1;
        alias.base += 16; // partial overlap with task 0's block buffer
        grants.push(alias);
        let findings = audit_grants(Benchmark::Aes, &grants);
        assert!(
            findings.iter().any(|f| f.category == "port-aliasing"),
            "{findings:#?}"
        );
        // Same-task overlap (e.g. re-grant) is not aliasing.
        let same_task = audit_grants(Benchmark::Aes, &[grants[0], grants[0]]);
        assert!(same_task.iter().all(|f| f.category != "port-aliasing"));
    }

    #[test]
    fn grant_for_missing_port_is_flagged() {
        let g = StaticGrant {
            task: 0,
            object: 9,
            base: ANALYSIS_BASE,
            size: 64,
            perms: Perms::LOAD,
        };
        let findings = audit_grants(Benchmark::Aes, &[g]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].category, "no-entry");
    }

    #[test]
    fn unused_ports_are_vacuously_safe_with_no_perms() {
        let a = analyze_benchmark(Benchmark::MdGrid, 1);
        let unused: Vec<_> = a
            .ports
            .iter()
            .filter(|p| p.mode == PortMode::Unused)
            .collect();
        assert_eq!(unused.len(), 3);
        for p in unused {
            assert_eq!(p.verdict, StaticVerdict::Safe);
            assert!(!p.read && !p.write);
            assert_eq!(p.declared, Perms::NONE);
        }
    }

    #[test]
    fn declared_perms_match_modes() {
        assert_eq!(
            declared_perms(Benchmark::GemmNcubed),
            vec![Perms::LOAD, Perms::LOAD, Perms::STORE]
        );
        assert_eq!(mode_perms(PortMode::InOut), Perms::RW);
        assert_eq!(mode_perms(PortMode::Unused), Perms::NONE);
    }
}
