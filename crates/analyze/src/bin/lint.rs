//! Repository lint runner: `cargo run -p capcheri-analyze --bin lint`.
//!
//! Walks the workspace for determinism and safety-hygiene findings (see
//! [`capcheri_analyze::lint`]) and prints them sorted by file and line.
//! Exits non-zero when any finding survives, so CI can gate on it.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Default to the workspace root (two levels above this crate), or
    // take an explicit root as the only argument.
    let root = env::args().nth(1).map_or_else(
        || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        PathBuf::from,
    );
    let findings = match capcheri_analyze::lint_paths(&root) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("lint: cannot walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
