//! Incremental dataflow analysis over conformance op streams.
//!
//! [`crate::stream::analyze_stream`] interprets a whole stream in one
//! monolithic pass; re-running it after every grant churn repeats all
//! the per-access judgment work even when one pair changed. This module
//! restructures the same analysis into *work units* that can be cached
//! and reused:
//!
//! 1. **Segmentation.** The stream is partitioned at *analysis
//!    barriers* — [`Op::RevokeTask`] and [`Op::Sweep`], the in-stream
//!    counterparts of the adaptive controller's mode switches and
//!    degrade/re-promote boundaries (those arrive as epoch boundaries,
//!    not stream ops). A barrier op opens the segment it belongs to.
//! 2. **Skeleton pass.** A cheap linear walk computes, per segment and
//!    pair, the unit's complete *dependency slice* (`UnitInput`): the
//!    capability in force at segment entry, whether the pair was ever
//!    granted before the segment, and the pair's in-segment grants and
//!    accesses at segment-relative offsets. Grant admission respects
//!    the 256-entry capacity gate exactly, so the slice captures even
//!    cross-pair capacity effects.
//! 3. **Unit pass.** Each `(segment, pair)` unit re-judges only its own
//!    slice (`run_unit`); units are embarrassingly parallel and merge
//!    in deterministic key order.
//!
//! Because a unit's result is a pure function of its input, the
//! incremental engine ([`IncrementalAnalyzer`]) reuses a cached result
//! whenever the input is *equal* — exact structural comparison, not a
//! fingerprint, so a hash collision can never corrupt the property the
//! tests pin: **incremental ≡ from-scratch, byte for byte**. The
//! whole-stream merge is fed through the very same
//! `classify` pass the monolithic analyzer uses, so
//! flow analysis and `analyze_stream` agree structurally, not by luck.
//!
//! On top of the same skeleton the module builds a
//! [`crate::ProvenanceLattice`] and surfaces its two audit classes
//! (authority widening, cross-tenant flow) as [`Finding`]s.

use crate::provenance::{InstalledGrant, ProvenanceLattice};
use crate::stream::{
    classify, judge_cap, AbstractCap, DeniedRec, GrantedRec, Predicted, StreamAnalysis, CAPACITY,
};
use crate::Finding;
use capchecker::{StaticVerdict, StaticVerdictMap};
use conformance::{build_grant_cap, Op};
use hetsim::{AccessKind, DenyReason, ObjectId, TaskId};
use obs::EventKind;
use std::collections::BTreeMap;

/// Why a segment begins where it does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Barrier {
    /// Stream start (segment 0 only).
    Start,
    /// A task revocation opened the segment.
    Revoke,
    /// A revocation sweep opened the segment.
    Sweep,
}

impl Barrier {
    /// Stable label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Barrier::Start => "start",
            Barrier::Revoke => "revoke",
            Barrier::Sweep => "sweep",
        }
    }
}

/// One in-segment event relevant to a single pair, at an offset
/// *relative to the segment start* — position independence is what lets
/// a cached unit survive churn in unrelated ops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UnitEvent {
    /// An admitted grant replaced the pair's capability.
    Grant { off: u32, cap: AbstractCap },
    /// An access to judge.
    Access {
        off: u32,
        provenance: bool,
        write: bool,
        addr: u64,
        len: u8,
    },
}

/// The complete dependency slice of one `(segment, pair)` work unit —
/// everything its verdicts can depend on. Equal inputs force equal
/// results, which is the entire incremental-reuse argument.
#[derive(Clone, Debug, PartialEq, Eq)]
struct UnitInput {
    /// The pair's capability in force at segment entry (post-barrier).
    entry: Option<AbstractCap>,
    /// Whether the pair had ever been granted before the segment.
    entry_granted: bool,
    /// The pair's in-segment grants and accesses, in offset order.
    events: Vec<UnitEvent>,
}

/// What one work unit computed: every access verdict, at
/// segment-relative offsets (global indices are re-attached at merge).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct UnitResult {
    /// Granted accesses: offset, addr, len, write, granted-before.
    granted: Vec<(u32, u64, u8, bool, bool)>,
    /// Denied accesses: offset, reason, granted-before, provenance.
    denied: Vec<(u32, DenyReason, bool, bool)>,
}

/// One unit as the skeleton pass laid it out.
#[derive(Clone, Debug)]
struct SkeletonUnit {
    segment: u32,
    pair: (u8, u8),
    input: UnitInput,
    /// Global op indices the unit's verdict rests on: the entry
    /// capability's installing grant, the revocation that last touched
    /// the pair's task before the segment, and every in-segment grant.
    deps: Vec<u64>,
}

/// Per-segment layout facts.
#[derive(Clone, Copy, Debug)]
struct SegmentMeta {
    start: u64,
    ops: u64,
    barrier: Barrier,
}

/// The cheap linear pass: segments, per-unit dependency slices, and the
/// provenance lattice's raw material. Everything downstream (unit
/// judging) is derivable from this alone.
struct Skeleton {
    segments: Vec<SegmentMeta>,
    units: Vec<SkeletonUnit>,
    skipped: u64,
    installed: Vec<InstalledGrant>,
    revokes: Vec<(u64, u8)>,
}

/// Per-pair unit being accumulated for the current segment.
struct UnitBuild {
    input: UnitInput,
    deps: Vec<u64>,
}

#[allow(clippy::too_many_lines)]
fn skeleton(ops: &[Op]) -> Skeleton {
    // `table` mirrors the monolithic analyzer's abstract table, plus the
    // installing op index so entry deps can be reported.
    let mut table: BTreeMap<(u8, u8), (AbstractCap, u64)> = BTreeMap::new();
    let mut ever_granted: BTreeMap<(u8, u8), u64> = BTreeMap::new();
    let mut last_revoke: BTreeMap<u8, u64> = BTreeMap::new();
    let mut segments: Vec<SegmentMeta> = vec![SegmentMeta {
        start: 0,
        ops: 0,
        barrier: Barrier::Start,
    }];
    let mut units: Vec<SkeletonUnit> = Vec::new();
    let mut current: BTreeMap<(u8, u8), UnitBuild> = BTreeMap::new();
    let mut skipped = 0u64;
    let mut installed: Vec<InstalledGrant> = Vec::new();
    let mut revokes: Vec<(u64, u8)> = Vec::new();

    fn flush(
        units: &mut Vec<SkeletonUnit>,
        current: &mut BTreeMap<(u8, u8), UnitBuild>,
        segment: u32,
    ) {
        for (pair, build) in std::mem::take(current) {
            units.push(SkeletonUnit {
                segment,
                pair,
                input: build.input,
                deps: build.deps,
            });
        }
    }

    for (index, op) in ops.iter().enumerate() {
        let index = index as u64;
        // Barriers close the running segment; the barrier op itself
        // belongs to the segment it opens.
        let barrier = match *op {
            Op::RevokeTask { .. } => Some(Barrier::Revoke),
            Op::Sweep { .. } => Some(Barrier::Sweep),
            _ => None,
        };
        if let Some(kind) = barrier {
            let seg = segments.last_mut().expect("segment 0 always exists");
            if seg.start == index {
                // Back-to-back barriers: this op re-labels the segment
                // it already opens instead of creating an empty one.
                seg.barrier = kind;
            } else {
                flush(&mut units, &mut current, segments.len() as u32 - 1);
                segments.push(SegmentMeta {
                    start: index,
                    ops: 0,
                    barrier: kind,
                });
            }
        }
        let seg_start = segments.last().expect("nonempty").start;
        segments.last_mut().expect("nonempty").ops += 1;

        // A unit's entry state is captured lazily, the first time the
        // segment touches the pair.
        fn ensure<'a>(
            current: &'a mut BTreeMap<(u8, u8), UnitBuild>,
            table: &BTreeMap<(u8, u8), (AbstractCap, u64)>,
            ever_granted: &BTreeMap<(u8, u8), u64>,
            last_revoke: &BTreeMap<u8, u64>,
            key: (u8, u8),
        ) -> &'a mut UnitBuild {
            current.entry(key).or_insert_with(|| {
                let entry = table.get(&key).copied();
                let mut deps = Vec::new();
                if let Some((_, grant_op)) = entry {
                    deps.push(grant_op);
                }
                if let Some(&revoke_op) = last_revoke.get(&key.0) {
                    deps.push(revoke_op);
                }
                UnitBuild {
                    input: UnitInput {
                        entry: entry.map(|(cap, _)| cap),
                        entry_granted: ever_granted.contains_key(&key),
                        events: Vec::new(),
                    },
                    deps,
                }
            })
        }

        match *op {
            Op::Grant {
                task,
                object,
                base,
                len,
                perms,
                seal,
                untagged,
            } => {
                let Ok(cap) = build_grant_cap(base, len, perms, seal, untagged) else {
                    skipped += 1;
                    continue;
                };
                if !cap.is_valid() || cap.is_sealed() {
                    continue;
                }
                let key = (task, object);
                if table.contains_key(&key) || table.len() < CAPACITY {
                    let abstract_cap = AbstractCap {
                        perms: cap.perms(),
                        base: cap.base(),
                        top: cap.top(),
                    };
                    // Capture the unit's entry state *before* this
                    // grant mutates the table.
                    let build = ensure(&mut current, &table, &ever_granted, &last_revoke, key);
                    build.input.events.push(UnitEvent::Grant {
                        off: (index - seg_start) as u32,
                        cap: abstract_cap,
                    });
                    build.deps.push(index);
                    table.insert(key, (abstract_cap, index));
                    ever_granted.entry(key).or_insert(index);
                    installed.push(InstalledGrant {
                        op: index,
                        task,
                        object,
                        base: abstract_cap.base,
                        top: abstract_cap.top,
                        perms: abstract_cap.perms,
                    });
                }
            }
            Op::RevokeTask { task } => {
                table.retain(|(t, _), _| *t != task);
                last_revoke.insert(task, index);
                revokes.push((index, task));
            }
            Op::Access {
                task,
                object,
                provenance,
                write,
                addr,
                len,
                value: _,
            } => {
                let key = (task, object);
                let build = ensure(&mut current, &table, &ever_granted, &last_revoke, key);
                build.input.events.push(UnitEvent::Access {
                    off: (index - seg_start) as u32,
                    provenance,
                    write,
                    addr,
                    len,
                });
            }
            Op::Spill { .. } | Op::Sweep { .. } | Op::TagFlip { .. } | Op::CacheCorrupt { .. } => {}
        }
    }
    flush(&mut units, &mut current, segments.len() as u32 - 1);

    Skeleton {
        segments,
        units,
        skipped,
        installed,
        revokes,
    }
}

/// Re-judges one unit's dependency slice — the only expensive work in
/// the whole analysis, and the only part the incremental engine skips.
fn run_unit(input: &UnitInput) -> UnitResult {
    let mut cap = input.entry;
    let mut ever = input.entry_granted;
    let mut out = UnitResult::default();
    for ev in &input.events {
        match *ev {
            UnitEvent::Grant { cap: granted, .. } => {
                cap = Some(granted);
                ever = true;
            }
            UnitEvent::Access {
                off,
                provenance,
                write,
                addr,
                len,
            } => {
                let kind = if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                match judge_cap(cap.as_ref(), provenance, kind, addr, len) {
                    None => out.granted.push((off, addr, len, write, ever)),
                    Some(reason) => out.denied.push((off, reason, ever, provenance)),
                }
            }
        }
    }
    out
}

/// One pair's verdict inside one segment, with its dependency set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentPair {
    /// Task half of the key.
    pub task: u8,
    /// Object half of the key.
    pub object: u8,
    /// The pair's verdict *within this segment*.
    pub verdict: StaticVerdict,
    /// Provenanced accesses proved granted in the segment.
    pub granted: u64,
    /// Provenanced accesses proved denied in the segment.
    pub denied: u64,
    /// Global op indices the verdict rests on: the entry capability's
    /// installing grant, the pair's last pre-segment revocation, and
    /// every in-segment grant.
    pub deps: Vec<u64>,
}

/// One analysis segment: layout plus per-pair verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segment index (0-based).
    pub index: u32,
    /// Global op index of the segment's first op.
    pub start: u64,
    /// Ops in the segment (including the opening barrier op).
    pub ops: u64,
    /// What opened the segment.
    pub barrier: Barrier,
    /// Per-pair verdicts, in key order.
    pub pairs: Vec<SegmentPair>,
}

impl SegmentReport {
    /// The segment's verdict map — what an epoch-scoped installer loads
    /// while execution is inside this segment.
    #[must_use]
    pub fn verdict_map(&self) -> StaticVerdictMap {
        let mut map = StaticVerdictMap::new();
        for p in &self.pairs {
            map.set(
                TaskId(u32::from(p.task)),
                ObjectId(u16::from(p.object)),
                p.verdict,
            );
        }
        map
    }

    /// Pairs with the given verdict in this segment.
    #[must_use]
    pub fn count(&self, verdict: StaticVerdict) -> u64 {
        self.pairs.iter().filter(|p| p.verdict == verdict).count() as u64
    }
}

/// Everything one incremental (or from-scratch) flow analysis produced.
#[derive(Clone, Debug)]
pub struct FlowAnalysis {
    /// Barrier-delimited segments with per-segment verdict maps.
    pub segments: Vec<SegmentReport>,
    /// The whole-stream merge — byte-identical to what
    /// [`crate::stream::analyze_stream`] computes on the same ops.
    pub stream: StreamAnalysis,
    /// The provenance lattice over every installed grant.
    pub lattice: ProvenanceLattice,
    /// Provenance audit findings: `authority-widening` (empty by
    /// construction) then `cross-tenant-flow`, each deduplicated.
    pub flows: Vec<Finding>,
    /// Total `(segment, pair)` work units in the pass.
    pub units: u64,
    /// Units whose cached result was reused (0 on a from-scratch pass).
    /// Deliberately *not* serialized into any report: reports must be
    /// byte-identical between incremental and from-scratch runs.
    pub reused: u64,
}

impl FlowAnalysis {
    /// `(segment start, verdict map)` pairs for the differential
    /// soundness replay (`conformance::run_ops_elided_segments`).
    #[must_use]
    pub fn segment_maps(&self) -> Vec<(u64, StaticVerdictMap)> {
        self.segments
            .iter()
            .map(|s| (s.start, s.verdict_map()))
            .collect()
    }

    /// The summary event for tracing.
    #[must_use]
    pub fn event(&self) -> EventKind {
        EventKind::FlowAnalysisComplete {
            segments: self.segments.len() as u64,
            reused: self.reused,
            units: self.units,
        }
    }

    /// Whether two analyses computed identical results — everything
    /// except [`FlowAnalysis::reused`], which records *how* the result
    /// was obtained, not what it is.
    #[must_use]
    pub fn same_results(&self, other: &FlowAnalysis) -> bool {
        self.segments == other.segments
            && self.stream == other.stream
            && self.lattice == other.lattice
            && self.flows == other.flows
            && self.units == other.units
    }
}

/// The incremental engine: caches every unit's `(input, result)` and
/// re-judges only units whose dependency slice changed since the
/// previous [`IncrementalAnalyzer::analyze`] call.
#[derive(Debug, Default)]
pub struct IncrementalAnalyzer {
    threads: usize,
    cache: BTreeMap<(u32, (u8, u8)), (UnitInput, UnitResult)>,
}

impl IncrementalAnalyzer {
    /// A sequential engine with an empty cache.
    #[must_use]
    pub fn new() -> IncrementalAnalyzer {
        IncrementalAnalyzer::with_threads(1)
    }

    /// An engine judging units on `threads` workers. Results are
    /// byte-identical across thread counts: units are laid out in
    /// deterministic `(segment, pair)` order and merged by index.
    #[must_use]
    pub fn with_threads(threads: usize) -> IncrementalAnalyzer {
        IncrementalAnalyzer {
            threads: threads.max(1),
            cache: BTreeMap::new(),
        }
    }

    /// Analyzes `ops`, reusing cached unit results where the dependency
    /// slice is unchanged, and replaces the cache with this stream's
    /// units.
    ///
    /// # Panics
    ///
    /// Propagates worker panics from the parallel unit pass.
    pub fn analyze(&mut self, ops: &[Op]) -> FlowAnalysis {
        let skeleton = skeleton(ops);
        let mut results: Vec<Option<UnitResult>> = skeleton
            .units
            .iter()
            .map(|unit| {
                self.cache
                    .get(&(unit.segment, unit.pair))
                    .and_then(|(input, result)| (*input == unit.input).then(|| result.clone()))
            })
            .collect();
        let reused = results.iter().filter(|r| r.is_some()).count() as u64;
        let todo: Vec<usize> = (0..results.len())
            .filter(|&i| results[i].is_none())
            .collect();
        let fresh: Vec<UnitResult> = if self.threads > 1 {
            let units = &skeleton.units;
            let todo_ref = &todo;
            perf::parallel_map(self.threads, todo.len(), |i| {
                run_unit(&units[todo_ref[i]].input)
            })
            .expect("flow-analysis worker panicked")
        } else {
            todo.iter()
                .map(|&i| run_unit(&skeleton.units[i].input))
                .collect()
        };
        for (slot, result) in todo.into_iter().zip(fresh) {
            results[slot] = Some(result);
        }
        let results: Vec<UnitResult> = results
            .into_iter()
            .map(|r| r.expect("every unit is reused or freshly judged"))
            .collect();
        self.cache = skeleton
            .units
            .iter()
            .zip(&results)
            .map(|(unit, result)| {
                (
                    (unit.segment, unit.pair),
                    (unit.input.clone(), result.clone()),
                )
            })
            .collect();
        assemble(&skeleton, &results, reused)
    }
}

/// From-scratch flow analysis: an empty-cache engine run once.
#[must_use]
pub fn analyze_flow(ops: &[Op], threads: usize) -> FlowAnalysis {
    IncrementalAnalyzer::with_threads(threads).analyze(ops)
}

/// Merges unit results into the full [`FlowAnalysis`].
fn assemble(skeleton: &Skeleton, results: &[UnitResult], reused: u64) -> FlowAnalysis {
    // Per-segment reports, in (segment, pair) order — exactly how the
    // skeleton laid the units out.
    let mut segments: Vec<SegmentReport> = skeleton
        .segments
        .iter()
        .enumerate()
        .map(|(i, meta)| SegmentReport {
            index: i as u32,
            start: meta.start,
            ops: meta.ops,
            barrier: meta.barrier,
            pairs: Vec::new(),
        })
        .collect();
    for (unit, result) in skeleton.units.iter().zip(results) {
        let granted = result.granted.len() as u64;
        let denied = result
            .denied
            .iter()
            .filter(|&&(_, _, _, provenance)| provenance)
            .count() as u64;
        let verdict = if denied > 0 {
            StaticVerdict::Unsafe
        } else if granted > 0 {
            StaticVerdict::Safe
        } else {
            StaticVerdict::Dynamic
        };
        segments[unit.segment as usize].pairs.push(SegmentPair {
            task: unit.pair.0,
            object: unit.pair.1,
            verdict,
            granted,
            denied,
            deps: unit.deps.clone(),
        });
    }

    // Whole-stream merge: re-attach global op indices and feed the very
    // same classification pass the monolithic analyzer runs. Op indices
    // are unique, so sorting by index restores exact stream order.
    let mut granted_ok: Vec<GrantedRec> = Vec::new();
    let mut predictions: Vec<DeniedRec> = Vec::new();
    for (unit, result) in skeleton.units.iter().zip(results) {
        let seg_start = skeleton.segments[unit.segment as usize].start;
        for &(off, addr, len, write, granted_before) in &result.granted {
            granted_ok.push((
                seg_start + u64::from(off),
                Predicted {
                    key: unit.pair,
                    provenance: true,
                    granted_before,
                },
                addr,
                len,
                write,
            ));
        }
        for &(off, reason, granted_before, provenance) in &result.denied {
            predictions.push((
                seg_start + u64::from(off),
                Predicted {
                    key: unit.pair,
                    provenance,
                    granted_before,
                },
                reason,
            ));
        }
    }
    granted_ok.sort_by_key(|&(index, ..)| index);
    predictions.sort_by_key(|&(index, ..)| index);
    let stream = classify(&predictions, &granted_ok, skeleton.skipped);

    let lattice = ProvenanceLattice::build(&skeleton.installed, &skeleton.revokes);
    let mut flows = lattice.audit_widening();
    flows.extend(lattice.audit_flows());

    FlowAnalysis {
        segments,
        stream,
        lattice,
        flows,
        units: skeleton.units.len() as u64,
        reused,
    }
}

/// The re-analysis work the incremental engine would do moving from
/// `prev` to `cur` — a *pure function of the two streams*, so reports
/// can state the work ratio identically whether they were produced
/// incrementally or from scratch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkRatio {
    /// Total work units in `cur`.
    pub units: u64,
    /// Units whose dependency slice is new or changed versus `prev`.
    pub changed: u64,
}

impl WorkRatio {
    /// Changed units as a percentage of all units (0 when empty).
    #[must_use]
    pub fn pct(&self) -> u64 {
        if self.units == 0 {
            0
        } else {
            self.changed * 100 / self.units
        }
    }
}

/// Computes the [`WorkRatio`] between two streams by diffing their
/// skeletons' dependency slices.
#[must_use]
pub fn reanalysis_work(prev: &[Op], cur: &[Op]) -> WorkRatio {
    let before = skeleton(prev);
    let after = skeleton(cur);
    let index: BTreeMap<(u32, (u8, u8)), &UnitInput> = before
        .units
        .iter()
        .map(|u| ((u.segment, u.pair), &u.input))
        .collect();
    let changed = after
        .units
        .iter()
        .filter(|u| index.get(&(u.segment, u.pair)) != Some(&&u.input))
        .count() as u64;
    WorkRatio {
        units: after.units.len() as u64,
        changed,
    }
}

/// Deterministic grant churn for demos and property tests: every fifth
/// grant op's length is halved (floored at 8 bytes). Op positions are
/// preserved, so units of unaffected pairs keep identical dependency
/// slices and the incremental engine's reuse is visible.
#[must_use]
pub fn churn_grants(ops: &[Op]) -> Vec<Op> {
    let mut out = ops.to_vec();
    let mut nth = 0u32;
    for op in &mut out {
        if let Op::Grant { len, .. } = op {
            nth += 1;
            if nth % 5 == 0 {
                *len = (*len / 2).max(8);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::analyze_stream;
    use cheri::Perms;

    fn grant(task: u8, object: u8, base: u64, len: u16, perms: Perms) -> Op {
        Op::Grant {
            task,
            object,
            base,
            len,
            perms: perms.bits(),
            seal: false,
            untagged: false,
        }
    }

    fn access(task: u8, object: u8, write: bool, addr: u64, len: u8) -> Op {
        Op::Access {
            task,
            object,
            provenance: true,
            write,
            addr,
            len,
            value: 0,
        }
    }

    #[test]
    fn barriers_partition_the_stream() {
        let b = conformance::stream::slot_base(0, 0);
        let ops = vec![
            grant(0, 0, b, 0x100, Perms::RW),
            access(0, 0, false, b, 8),
            Op::RevokeTask { task: 0 },
            grant(0, 0, b, 0x100, Perms::RW),
            access(0, 0, true, b, 8),
            Op::Sweep {
                base: b,
                len: 0x100,
            },
            access(0, 0, false, b, 8),
        ];
        let flow = analyze_flow(&ops, 1);
        assert_eq!(flow.segments.len(), 3);
        assert_eq!(flow.segments[0].barrier, Barrier::Start);
        assert_eq!(flow.segments[1].barrier, Barrier::Revoke);
        assert_eq!(flow.segments[2].barrier, Barrier::Sweep);
        assert_eq!(flow.segments[1].start, 2);
        assert_eq!(flow.segments[2].start, 5);
        // Every segment's accesses are granted, so every segment map
        // marks the pair safe.
        for seg in &flow.segments {
            assert_eq!(seg.count(StaticVerdict::Safe), 1, "segment {}", seg.index);
        }
    }

    #[test]
    fn segment_verdicts_are_scoped_to_their_segment() {
        let b = conformance::stream::slot_base(1, 2);
        let ops = vec![
            grant(1, 2, b, 0x100, Perms::RW),
            access(1, 2, false, b, 8),
            Op::RevokeTask { task: 1 },
            // Stale access: denied in segment 1 only.
            access(1, 2, false, b, 8),
        ];
        let flow = analyze_flow(&ops, 1);
        assert_eq!(flow.segments.len(), 2);
        assert_eq!(flow.segments[0].count(StaticVerdict::Safe), 1);
        assert_eq!(flow.segments[1].count(StaticVerdict::Unsafe), 1);
        // The whole-stream verdict is poisoned, exactly as the
        // monolithic analyzer says.
        assert_eq!(
            flow.stream.verdict_map().verdict(TaskId(1), ObjectId(2)),
            StaticVerdict::Unsafe
        );
    }

    #[test]
    fn whole_stream_merge_equals_the_monolithic_analyzer() {
        for seed in 1..=8u64 {
            let ops = conformance::generate(seed, 300);
            let flow = analyze_flow(&ops, 1);
            let mono = analyze_stream(&ops);
            assert_eq!(flow.stream, mono, "seed {seed}");
        }
    }

    #[test]
    fn incremental_reuses_unchanged_units_and_matches_scratch() {
        for seed in 1..=6u64 {
            let prev = conformance::generate(seed, 300);
            let cur = churn_grants(&prev);
            let mut engine = IncrementalAnalyzer::new();
            let first = engine.analyze(&prev);
            assert_eq!(first.reused, 0, "first pass has nothing to reuse");
            let incremental = engine.analyze(&cur);
            let scratch = analyze_flow(&cur, 1);
            assert!(
                incremental.same_results(&scratch),
                "seed {seed}: incremental must equal from-scratch"
            );
            // The engine's actual reuse equals the pure work-ratio
            // prediction.
            let work = reanalysis_work(&prev, &cur);
            assert_eq!(
                incremental.reused,
                work.units - work.changed,
                "seed {seed}: reuse must match the skeleton diff"
            );
            assert!(
                incremental.reused > 0,
                "seed {seed}: churned streams must still reuse some units"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let ops = conformance::generate(11, 400);
        let seq = analyze_flow(&ops, 1);
        let par = analyze_flow(&ops, 8);
        assert!(seq.same_results(&par));
        assert_eq!(seq.reused, par.reused);
    }

    #[test]
    fn dependency_sets_name_the_grants_and_revocations() {
        let b = conformance::stream::slot_base(0, 0);
        let ops = vec![
            grant(0, 0, b, 0x100, Perms::RW), // op 0
            access(0, 0, false, b, 8),
            Op::RevokeTask { task: 0 },       // op 2
            grant(0, 0, b, 0x100, Perms::RW), // op 3
            access(0, 0, true, b, 8),
        ];
        let flow = analyze_flow(&ops, 1);
        assert_eq!(flow.segments[0].pairs[0].deps, vec![0]);
        // Segment 1's verdict rests on the revocation that opened it and
        // the re-grant inside it.
        assert_eq!(flow.segments[1].pairs[0].deps, vec![2, 3]);
    }

    #[test]
    fn work_ratio_is_complete_when_everything_changes() {
        let ops = conformance::generate(3, 200);
        let work = reanalysis_work(&[], &ops);
        assert_eq!(work.changed, work.units);
        assert_eq!(work.pct(), 100);
        let same = reanalysis_work(&ops, &ops);
        assert_eq!(same.changed, 0);
        assert_eq!(same.pct(), 0);
    }
}
