//! # capcheri-analyze — static capability-flow analysis
//!
//! The adaptive half of the paper's compartmentalization story: before a
//! single simulated cycle runs, an abstract interpreter walks the static
//! inputs — per-benchmark grant tables, object→port maps, and
//! conformance op streams — and computes, per compartment, the
//! *least-privilege capability set* it actually needs (bounds envelope
//! plus the permissions it exercises). Every potential access is
//! classified:
//!
//! * **statically safe** — provably inside a live, correctly-permissioned
//!   capability on all paths; the runtime check is redundant;
//! * **statically unsafe** — a provable violation (over-privileged or
//!   stale grant, port aliasing, revocation race), reported as a
//!   [`Finding`];
//! * **dynamic** — nothing provable either way; the runtime checker
//!   stays in the loop.
//!
//! Safe classifications feed back into the simulator as a
//! [`capchecker::StaticVerdictMap`]: the `CapChecker` elides the
//! per-beat check for proved pairs, and the conformance harness replays
//! elided runs against the golden oracle so an unsound verdict is caught
//! as an ordinary divergence, never silently trusted.
//!
//! The crate also carries a source-level lint pass ([`lint`]) that walks
//! the repository for nondeterminism hazards (unordered map iteration
//! feeding reports, wall-clock reads in timing code) and audits `unsafe`
//! blocks for `// SAFETY:` comments — run it via `cargo run -p
//! capcheri-analyze --bin lint` or `simulate analyze --lint`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod flow;
pub mod lint;
pub mod provenance;
pub mod stream;

pub use bench::{
    analyze_benchmark, audit_grants, declared_perms, default_grants, mode_perms, BenchAnalysis,
    PortReport, StaticGrant,
};
pub use flow::{
    analyze_flow, churn_grants, reanalysis_work, Barrier, FlowAnalysis, IncrementalAnalyzer,
    SegmentPair, SegmentReport, WorkRatio,
};
pub use lint::{lint_paths, lint_source, LintFinding};
pub use provenance::{GrantNode, InstalledGrant, ProvenanceLattice};
pub use stream::{analyze_stream, PairSummary, StreamAnalysis};

use std::fmt;

/// One provable problem the analyzer found in a static input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable category slug: `over-privilege`, `port-aliasing`,
    /// `stale-grant`, `no-entry`, `bad-provenance`, `permission`,
    /// `bounds`, `out-of-bounds`, `undeclared-access`, `tag`, `seal`,
    /// `authority-widening`, `cross-tenant-flow`.
    pub category: &'static str,
    /// What the finding is about (a `(task, object)` pair, a port name).
    pub subject: String,
    /// Human-readable explanation.
    pub detail: String,
    /// First op index that proves it, for stream findings.
    pub op: Option<u64>,
    /// How many accesses/grants exhibit it.
    pub count: u64,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.category, self.subject, self.detail)?;
        if let Some(op) = self.op {
            write!(f, " (first at op {op})")?;
        }
        if self.count > 1 {
            write!(f, " ×{}", self.count)?;
        }
        Ok(())
    }
}
