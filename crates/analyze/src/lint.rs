//! Source-level lint pass for determinism and safety hygiene.
//!
//! The simulator's contract is byte-identical reports at any thread
//! count, which a single `HashMap` iteration feeding a serializer can
//! silently break. This pass walks the repository's Rust sources with a
//! small hand-rolled lexer (strings, raw strings, char literals, and
//! nested block comments stripped, line structure preserved) and flags:
//!
//! * **`nd-map-in-report`** — `HashMap`/`HashSet` mentioned in files on
//!   report/render/serialization paths, where iteration order reaches
//!   output bytes;
//! * **`nd-unordered-reduction`** — a reduction (`sum`/`product`/`fold`)
//!   folded directly over hash-map iteration, whose float result is
//!   order-dependent;
//! * **`nd-wall-clock`** — `Instant::now`/`SystemTime::now` inside the
//!   timing-critical crates, where simulated time is the only clock;
//! * **`nd-hashmap-iter`** — same-line iteration over a
//!   `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain()`,
//!   or a `for` loop) outside test code: hash order varies per process,
//!   so anything folded from it must be re-ordered before use;
//! * **`panic-in-hot-path`** — `.unwrap()`, `.expect(...)`, or `panic!`
//!   in the per-access hot-path files (`crates/core/src/{checker,
//!   cached,elide}.rs`, `crates/hetsim/src/timing.rs`) outside test
//!   code, where a panic aborts the simulated machine instead of
//!   reporting a fault through the exception path;
//! * **`unsafe-audit`** — an `unsafe` token without a `// SAFETY:`
//!   comment in the three lines above it. The workspace forbids `unsafe`
//!   outright (`unsafe_code = "forbid"`), so this rule exists for
//!   vendored or future exceptions.
//!
//! A finding is suppressed by `// lint: allow(<rule>)` on the same line
//! or the line above. The `lint` binary (`cargo run -p capcheri-analyze
//! --bin lint`) prints findings sorted by file and line and exits
//! non-zero if any survive.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint hit.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LintFinding {
    /// File the finding is in (as passed to [`lint_source`]).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule slug.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The lexer's view of a source file: code with literals blanked, plus
/// comment trivia, both line-addressed.
struct Lexed {
    /// One entry per source line: the line with strings/chars/comments
    /// replaced by spaces (so column positions survive).
    code: Vec<String>,
    /// `(line, text)` for every comment, one entry per source line the
    /// comment spans.
    comments: Vec<(u32, String)>,
}

/// Strips literals and comments while preserving line structure.
///
/// Handles escaped strings, byte strings, raw strings with `#` fences,
/// char literals (distinguished from lifetimes by lookahead), line
/// comments, and nested block comments — enough to lex this repository
/// without false positives from tokens inside literals.
fn lex(source: &str) -> Lexed {
    let b = source.as_bytes();
    let mut code = vec![String::new()];
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;

    let push_char = |code: &mut Vec<String>, c: char| code.last_mut().unwrap().push(c);
    let blank = |code: &mut Vec<String>| code.last_mut().unwrap().push(' ');

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                code.push(String::new());
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment: capture to end of line as trivia.
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push((line, source[start..i].to_owned()));
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment.
                let mut depth = 1;
                let mut text_line_start = i;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            comments.push((line, source[text_line_start..i].to_owned()));
                            code.push(String::new());
                            line += 1;
                            text_line_start = i + 1;
                        }
                        i += 1;
                    }
                }
                comments.push((line, source[text_line_start..i].to_owned()));
            }
            b'"' => {
                // Plain (or byte) string; the b prefix was already copied.
                blank(&mut code);
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            code.push(String::new());
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut code);
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                // Raw string: r"..."/r#"..."# (optionally b-prefixed).
                let mut j = i;
                if b[j] == b'b' {
                    j += 1;
                }
                j += 1; // the `r`
                let mut fence = 0;
                while j < b.len() && b[j] == b'#' {
                    fence += 1;
                    j += 1;
                }
                j += 1; // opening quote
                blank(&mut code);
                while j < b.len() {
                    if b[j] == b'"' && closes_raw(b, j, fence) {
                        j += 1 + fence;
                        break;
                    }
                    if b[j] == b'\n' {
                        code.push(String::new());
                        line += 1;
                    }
                    j += 1;
                }
                i = j;
                blank(&mut code);
            }
            b'\'' => {
                // Char literal vs lifetime: 'x' / '\n' are literals,
                // 'static is a lifetime.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    blank(&mut code);
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    i += 3;
                    blank(&mut code);
                } else {
                    push_char(&mut code, '\'');
                    i += 1;
                }
            }
            _ => {
                push_char(&mut code, c as char);
                i += 1;
            }
        }
    }
    Lexed { code, comments }
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r"..", r#"..., br"..., br#"... — and NOT an identifier like `radix`.
    let ident_before = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
    if ident_before {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    // Plain b"..." byte strings fall through to the escaped-string arm.
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

fn closes_raw(b: &[u8], quote: usize, fence: usize) -> bool {
    (1..=fence).all(|k| b.get(quote + k) == Some(&b'#'))
}

/// `true` if `needle` occurs in `line` as a whole identifier.
fn has_ident(line: &str, needle: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find(needle) {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = rest[pos + needle.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + needle.len()..];
    }
    false
}

/// Whether iteration order in `file` can reach serialized output.
fn is_report_path(file: &str) -> bool {
    let lower = file.to_ascii_lowercase();
    ["report", "render", "fig", "table", "json", "golden"]
        .iter()
        .any(|m| lower.contains(m))
}

/// Whether `file` is in a crate where wall-clock reads corrupt timing.
fn is_timing_path(file: &str) -> bool {
    ["crates/hetsim", "crates/core", "crates/cheri"]
        .iter()
        .any(|m| file.contains(m))
}

/// Whether `file` is on the per-access hot path, where a panic aborts
/// the simulated machine instead of latching a fault.
fn is_hot_path(file: &str) -> bool {
    [
        "crates/core/src/checker.rs",
        "crates/core/src/cached.rs",
        "crates/core/src/elide.rs",
        "crates/hetsim/src/timing.rs",
    ]
    .iter()
    .any(|m| file.ends_with(m))
}

/// Lints one file's source text. `file` is used for path-sensitive rules
/// and in findings; it is not opened.
#[must_use]
pub fn lint_source(file: &str, source: &str) -> Vec<LintFinding> {
    let lexed = lex(source);
    let suppressed = |rule: &str, line: u32| {
        lexed.comments.iter().any(|(l, text)| {
            (*l == line || l + 1 == line) && text.contains(&format!("lint: allow({rule})"))
        })
    };
    let has_safety_comment = |line: u32| {
        lexed
            .comments
            .iter()
            .any(|(l, text)| *l <= line && l + 3 >= line && text.contains("SAFETY:"))
    };

    let mut findings = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        if !suppressed(rule, line) {
            findings.push(LintFinding {
                file: file.to_owned(),
                line,
                rule,
                message,
            });
        }
    };

    let report_path = is_report_path(file);
    let timing_path = is_timing_path(file);
    let hot_path = is_hot_path(file);
    // Test modules are file-final in this repository, so everything at
    // or after the first `#[cfg(test)]` is test code — where panics are
    // the assertion mechanism and hash order never reaches a report.
    let first_test_line = lexed
        .code
        .iter()
        .position(|code| code.contains("#[cfg(test)]"))
        .map(|idx| idx as u32 + 1);
    for (idx, code) in lexed.code.iter().enumerate() {
        let line = idx as u32 + 1;
        let in_tests = first_test_line.is_some_and(|t| line >= t);
        let hash_map = has_ident(code, "HashMap") || has_ident(code, "HashSet");
        if hash_map && report_path {
            push(
                "nd-map-in-report",
                line,
                "hash-map iteration order can reach report bytes; \
                 use BTreeMap/BTreeSet or sort before serializing"
                    .to_owned(),
            );
        }
        if hash_map
            && [".values(", ".keys(", ".iter("]
                .iter()
                .any(|m| code.contains(m))
            && [".sum(", ".product(", ".fold("]
                .iter()
                .any(|m| code.contains(m))
        {
            push(
                "nd-unordered-reduction",
                line,
                "reduction over hash-map iteration is order-dependent; \
                 collect and sort first"
                    .to_owned(),
            );
        }
        if hash_map
            && !in_tests
            && ([".iter(", ".keys(", ".values(", ".drain("]
                .iter()
                .any(|m| code.contains(m))
                || (has_ident(code, "for") && has_ident(code, "in")))
        {
            push(
                "nd-hashmap-iter",
                line,
                "iteration over a hash map varies per process; \
                 use an ordered container or sort before consuming"
                    .to_owned(),
            );
        }
        if hot_path
            && !in_tests
            && (code.contains(".unwrap()") || code.contains(".expect(") || code.contains("panic!"))
        {
            push(
                "panic-in-hot-path",
                line,
                "panic on the per-access hot path aborts the simulated \
                 machine; report through the fault/exception path instead"
                    .to_owned(),
            );
        }
        if timing_path && (code.contains("Instant::now") || code.contains("SystemTime::now")) {
            push(
                "nd-wall-clock",
                line,
                "wall-clock read in timing-critical code; \
                 simulated cycles are the only clock here"
                    .to_owned(),
            );
        }
        if has_ident(code, "unsafe") && !has_safety_comment(line) {
            push(
                "unsafe-audit",
                line,
                "`unsafe` without a `// SAFETY:` comment in the 3 lines above".to_owned(),
            );
        }
    }
    findings
}

/// Whether a path component disqualifies a directory from linting:
/// build output and the vendored stand-in crates (external code held to
/// its upstream's conventions, not this repository's).
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | ".git" | "rand" | "proptest" | "criterion")
}

fn walk(dir: &Path, vendored_root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Vendored crates are only skipped at the workspace's
            // crates/ level, so a kernel named `rand.rs` elsewhere
            // still gets linted.
            if name == "target" || name == ".git" || (dir == vendored_root && skip_dir(&name)) {
                continue;
            }
            walk(&path, vendored_root, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root`, skipping build output and the
/// vendored `crates/rand`, `crates/proptest`, and `crates/criterion`.
/// Findings come back sorted by `(file, line, rule)`.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_paths(root: &Path) -> io::Result<Vec<LintFinding>> {
    let mut files = Vec::new();
    walk(root, &root.join("crates"), &mut files)?;
    let mut findings = Vec::new();
    for path in files {
        let source = fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&label, &source));
    }
    findings.sort();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_map_in_report_file_is_flagged() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        let findings = lint_source("crates/obs/src/report.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == "nd-map-in-report"));
        assert_eq!(findings[0].line, 1);
        // The same source off the report path is clean.
        assert!(lint_source("crates/obs/src/event.rs", src).is_empty());
    }

    #[test]
    fn tokens_inside_literals_and_comments_do_not_count() {
        let src = concat!(
            "// HashMap in a comment is fine\n",
            "/* nested /* HashMap */ still fine */\n",
            "let s = \"HashMap\";\n",
            "let r = r#\"HashMap \"quoted\" inside\"#;\n",
            "let c = 'H'; let lt: &'static str = s;\n",
        );
        assert!(lint_source("crates/obs/src/report.rs", src).is_empty());
    }

    #[test]
    fn unordered_reduction_is_flagged_anywhere() {
        let src = "let total: f64 = HashMap::new().values().sum();\n";
        let findings = lint_source("crates/perf/src/lib.rs", src);
        // The same line trips the general iteration rule too.
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["nd-unordered-reduction", "nd-hashmap-iter"]);
        // A reduction over a Vec is ordered: clean.
        let ok = "let total: f64 = v.iter().sum();\n";
        assert!(lint_source("crates/perf/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn wall_clock_only_flags_timing_crates() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(
            lint_source("crates/hetsim/src/bus.rs", src)[0].rule,
            "nd-wall-clock"
        );
        assert!(lint_source("crates/bench/src/harness.rs", src).is_empty());
    }

    #[test]
    fn unsafe_requires_a_safety_comment() {
        let bare = "unsafe { core::hint::unreachable_unchecked() }\n";
        let findings = lint_source("crates/core/src/x.rs", bare);
        assert_eq!(findings[0].rule, "unsafe-audit");

        let audited = concat!(
            "// SAFETY: the caller proved the branch unreachable by\n",
            "// exhaustive match above.\n",
            "unsafe { core::hint::unreachable_unchecked() }\n",
        );
        assert!(lint_source("crates/core/src/x.rs", audited).is_empty());

        // \"unsafe\" in a string is not an unsafe block.
        let quoted = "let s = \"unsafe\";\n";
        assert!(lint_source("crates/core/src/x.rs", quoted).is_empty());
    }

    #[test]
    fn hashmap_iteration_is_flagged_outside_tests() {
        let src = "let ks: Vec<u32> = HashMap::new().keys().copied().collect();\n";
        let findings = lint_source("crates/perf/src/pool.rs", src);
        assert!(
            findings.iter().any(|f| f.rule == "nd-hashmap-iter"),
            "{findings:#?}"
        );
        // A for-loop over a hash set on one line is flagged too.
        let looped = "for x in HashSet::new() { use_it(x); }\n";
        assert_eq!(
            lint_source("crates/perf/src/pool.rs", looped)[0].rule,
            "nd-hashmap-iter"
        );
        // The same line after #[cfg(test)] is test code: clean.
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint_source("crates/perf/src/pool.rs", &in_tests).is_empty());
        // Membership queries don't iterate: clean.
        let member = "let hit = HashSet::new().contains(&k);\n";
        assert!(lint_source("crates/perf/src/pool.rs", member).is_empty());
    }

    #[test]
    fn panics_are_flagged_only_in_hot_path_files() {
        let src =
            "let v = table.get(&key).unwrap();\nlet w = row.expect(\"row\");\npanic!(\"boom\");\n";
        for file in [
            "crates/core/src/checker.rs",
            "crates/core/src/cached.rs",
            "crates/core/src/elide.rs",
            "crates/hetsim/src/timing.rs",
        ] {
            let findings = lint_source(file, src);
            assert_eq!(findings.len(), 3, "{file}: {findings:#?}");
            assert!(findings.iter().all(|f| f.rule == "panic-in-hot-path"));
        }
        // Off the hot path the same source is clean.
        assert!(lint_source("crates/core/src/system.rs", src).is_empty());
        // Inside the file-final test module it is clean too.
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint_source("crates/core/src/checker.rs", &in_tests).is_empty());
        // And the allow comment suppresses a justified site.
        let allowed = concat!(
            "// lint: allow(panic-in-hot-path)\n",
            "let row = rows.last_mut().expect(\"row just ensured\");\n",
        );
        assert!(lint_source("crates/core/src/elide.rs", allowed).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_one_line() {
        let src = concat!(
            "// lint: allow(nd-map-in-report)\n",
            "use std::collections::HashMap;\n",
            "fn f(m: &HashMap<u32, u32>) {}\n",
        );
        let findings = lint_source("crates/obs/src/report.rs", src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn multi_line_strings_keep_line_numbers_straight() {
        let src = "let s = \"line one\nline two\";\nlet m: HashMap<u8, u8>;\n";
        let findings = lint_source("crates/obs/src/json.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn repo_walk_skips_vendored_crates() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_paths(&root).unwrap();
        assert!(
            findings.iter().all(|f| !f.file.starts_with("crates/rand")
                && !f.file.starts_with("crates/proptest")
                && !f.file.starts_with("crates/criterion")),
            "vendored findings leaked"
        );
    }
}
