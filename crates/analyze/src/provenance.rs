//! Provenance lattice: every installed grant's derivation chain, traced
//! back to the grant it was derived from, plus the two audit classes the
//! flow analysis emits on top of it.
//!
//! CHERI derivation is *monotone*: a child capability may narrow bounds
//! and drop permissions but never widen either. The lattice makes that
//! auditable end to end. Each admitted grant becomes a [`GrantNode`];
//! its parent is the live grant that *dominates* it (covers its bounds
//! and permissions) at install time, preferring a same-task dominator
//! and then the most recent one. Two audits read the structure:
//!
//! - **`authority-widening`** — a child whose bounds or permissions
//!   exceed its parent's. Empty by construction (an edge is only drawn
//!   when the parent dominates), so any hit means the lattice itself was
//!   corrupted; the planted-violation test forges exactly that via
//!   [`ProvenanceLattice::from_nodes`].
//! - **`cross-tenant-flow`** — non-interference between tenants (one
//!   task ≙ one tenant): a capability derived from tenant A's grant
//!   installed for tenant B, or any grant whose authority spans another
//!   tenant's home compartment.

use crate::Finding;
use cheri::Perms;
use conformance::stream::{slot_base, OBJECTS, SLOT_BYTES, TASKS};
use std::collections::BTreeMap;

/// One grant the abstract interpreter admitted into the checker table,
/// as recorded by the flow skeleton pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstalledGrant {
    /// Global op index of the installing grant.
    pub op: u64,
    /// Destination task (the tenant the grant belongs to).
    pub task: u8,
    /// Destination object.
    pub object: u8,
    /// Lower bound of the granted capability.
    pub base: u64,
    /// Exclusive upper bound of the granted capability.
    pub top: u128,
    /// Granted permission mask.
    pub perms: Perms,
}

/// One node of the provenance lattice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrantNode {
    /// Node id — the index into [`ProvenanceLattice::nodes`].
    pub id: u32,
    /// The installed grant this node records.
    pub grant: InstalledGrant,
    /// The node this grant was derived from, if any grant live at
    /// install time dominated it (`None` means derived from the root).
    pub parent: Option<u32>,
}

/// `true` if `parent`'s authority covers `child`'s — the monotonicity
/// every derivation edge must satisfy.
#[must_use]
pub fn dominates(parent: &InstalledGrant, child: &InstalledGrant) -> bool {
    parent.base <= child.base && parent.top >= child.top && parent.perms.contains(child.perms)
}

/// Tenant `task`'s home compartment: the address range holding all of
/// its conformance slots.
#[must_use]
pub fn home_region(task: u8) -> (u64, u64) {
    let lo = slot_base(task, 0);
    (lo, lo + u64::from(OBJECTS) * SLOT_BYTES)
}

/// The derivation forest over every installed grant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProvenanceLattice {
    /// Nodes in install order; `nodes[i].id == i`.
    pub nodes: Vec<GrantNode>,
}

impl ProvenanceLattice {
    /// Builds the lattice from the skeleton pass's install/revoke log.
    /// Both slices must be sorted by op index (they are produced that
    /// way); a revocation kills the revoked task's live nodes before
    /// any later grant picks a parent.
    #[must_use]
    pub fn build(installed: &[InstalledGrant], revokes: &[(u64, u8)]) -> ProvenanceLattice {
        let mut nodes: Vec<GrantNode> = Vec::new();
        // Pair → the node currently installed for it (replaced by
        // re-grants, killed by revocation).
        let mut live: BTreeMap<(u8, u8), u32> = BTreeMap::new();
        let mut next_revoke = 0usize;
        for grant in installed {
            while next_revoke < revokes.len() && revokes[next_revoke].0 < grant.op {
                let task = revokes[next_revoke].1;
                live.retain(|&(t, _), _| t != task);
                next_revoke += 1;
            }
            // Parent = the dominating live node, preferring same-task
            // derivation and then the most recent install.
            let mut parent: Option<u32> = None;
            let mut best: Option<(bool, u32)> = None;
            for &id in live.values() {
                let candidate = &nodes[id as usize].grant;
                if dominates(candidate, grant) {
                    let rank = (candidate.task == grant.task, id);
                    if best.is_none_or(|b| rank > b) {
                        best = Some(rank);
                        parent = Some(id);
                    }
                }
            }
            let id = nodes.len() as u32;
            nodes.push(GrantNode {
                id,
                grant: *grant,
                parent,
            });
            live.insert((grant.task, grant.object), id);
        }
        ProvenanceLattice { nodes }
    }

    /// Builds a lattice from pre-made nodes — the hook the planted
    /// `authority-widening` test uses to forge a non-monotone edge that
    /// [`ProvenanceLattice::build`] would never draw.
    #[must_use]
    pub fn from_nodes(nodes: Vec<GrantNode>) -> ProvenanceLattice {
        ProvenanceLattice { nodes }
    }

    /// The derivation chain of node `id`, root-most first.
    #[must_use]
    pub fn chain(&self, id: u32) -> Vec<u32> {
        let mut chain = Vec::new();
        let mut cursor = Some(id);
        while let Some(node) = cursor {
            chain.push(node);
            // A cycle in a forged lattice must not hang the audit.
            if chain.len() > self.nodes.len() {
                break;
            }
            cursor = self.nodes[node as usize].parent;
        }
        chain.reverse();
        chain
    }

    /// Audits every derivation edge for monotonicity. Must return no
    /// findings on any lattice [`ProvenanceLattice::build`] produced.
    #[must_use]
    pub fn audit_widening(&self) -> Vec<Finding> {
        let mut dedup = Dedup::new();
        for node in &self.nodes {
            let Some(parent_id) = node.parent else {
                continue;
            };
            let parent = &self.nodes[parent_id as usize].grant;
            let child = &node.grant;
            if dominates(parent, child) {
                continue;
            }
            let what = if !parent.perms.contains(child.perms) {
                "permissions"
            } else {
                "bounds"
            };
            dedup.push(
                "authority-widening",
                format!("task {} object {}", child.task, child.object),
                format!(
                    "derivation widened {what}: child [{:#x}, {:#x}) perms {:#x} exceeds \
                     parent [{:#x}, {:#x}) perms {:#x} (grant at op {})",
                    child.base,
                    child.top,
                    child.perms,
                    parent.base,
                    parent.top,
                    parent.perms,
                    parent.op,
                ),
                node.grant.op,
            );
        }
        dedup.into_findings()
    }

    /// Audits cross-tenant flows: derivation edges crossing tasks and
    /// grants whose authority spans another tenant's home compartment.
    #[must_use]
    pub fn audit_flows(&self) -> Vec<Finding> {
        let mut dedup = Dedup::new();
        for node in &self.nodes {
            let grant = &node.grant;
            if let Some(parent_id) = node.parent {
                let parent = &self.nodes[parent_id as usize].grant;
                if parent.task != grant.task {
                    dedup.push(
                        "cross-tenant-flow",
                        format!("task {} -> task {}", parent.task, grant.task),
                        format!(
                            "capability for object {} derives from tenant {}'s grant (op {})",
                            grant.object, parent.task, parent.op,
                        ),
                        grant.op,
                    );
                }
            }
            for tenant in 0..TASKS {
                if tenant == grant.task {
                    continue;
                }
                let (lo, hi) = home_region(tenant);
                if grant.base < hi && grant.top > u128::from(lo) {
                    dedup.push(
                        "cross-tenant-flow",
                        format!("task {} -> task {tenant}", grant.task),
                        format!(
                            "grant [{:#x}, {:#x}) spans tenant {tenant}'s compartment \
                             [{lo:#x}, {hi:#x})",
                            grant.base, grant.top,
                        ),
                        grant.op,
                    );
                }
            }
        }
        dedup.into_findings()
    }
}

/// First-occurrence deduplication by `(category, subject)`, mirroring
/// the stream analyzer's finding discipline: the first hit supplies the
/// detail and op index, later hits only bump the count.
struct Dedup {
    order: Vec<(&'static str, String)>,
    found: BTreeMap<(&'static str, String), Finding>,
}

impl Dedup {
    fn new() -> Dedup {
        Dedup {
            order: Vec::new(),
            found: BTreeMap::new(),
        }
    }

    fn push(&mut self, category: &'static str, subject: String, detail: String, op: u64) {
        let key = (category, subject.clone());
        if let Some(existing) = self.found.get_mut(&key) {
            existing.count += 1;
            return;
        }
        self.order.push(key.clone());
        self.found.insert(
            key,
            Finding {
                category,
                subject,
                detail,
                op: Some(op),
                count: 1,
            },
        );
    }

    fn into_findings(mut self) -> Vec<Finding> {
        self.order
            .iter()
            .map(|key| self.found.remove(key).expect("ordered keys exist"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(op: u64, task: u8, object: u8, base: u64, len: u64, perms: Perms) -> InstalledGrant {
        InstalledGrant {
            op,
            task,
            object,
            base,
            top: u128::from(base) + u128::from(len),
            perms,
        }
    }

    #[test]
    fn derivation_chains_trace_to_the_installing_grant() {
        let b = slot_base(0, 0);
        let installed = [
            grant(0, 0, 0, b, 0x1000, Perms::RW),
            grant(1, 0, 1, b, 0x100, Perms::LOAD),
            grant(2, 0, 2, b, 0x10, Perms::LOAD),
        ];
        let lattice = ProvenanceLattice::build(&installed, &[]);
        assert_eq!(lattice.nodes[0].parent, None);
        assert_eq!(lattice.nodes[1].parent, Some(0));
        // Node 2 prefers the most recent same-task dominator.
        assert_eq!(lattice.nodes[2].parent, Some(1));
        assert_eq!(lattice.chain(2), vec![0, 1, 2]);
    }

    #[test]
    fn revocation_severs_future_derivation() {
        let b = slot_base(0, 0);
        let installed = [
            grant(0, 0, 0, b, 0x1000, Perms::RW),
            grant(5, 0, 1, b, 0x100, Perms::LOAD),
        ];
        // Task 0 revoked at op 3, before the second grant installs.
        let lattice = ProvenanceLattice::build(&installed, &[(3, 0)]);
        assert_eq!(lattice.nodes[1].parent, None, "parent died with the revoke");
    }

    #[test]
    fn built_lattices_never_widen() {
        for seed in 1..=6u64 {
            let ops = conformance::generate(seed, 300);
            let flow = crate::flow::analyze_flow(&ops, 1);
            assert!(
                flow.lattice.audit_widening().is_empty(),
                "seed {seed}: build() must only draw monotone edges"
            );
        }
    }

    #[test]
    fn planted_widening_is_caught() {
        let b = slot_base(0, 0);
        let parent = grant(0, 0, 0, b, 0x100, Perms::LOAD);
        // Child claims derivation from the parent but carries STORE the
        // parent never had, and wider bounds.
        let child = grant(1, 0, 1, b, 0x1000, Perms::RW);
        let lattice = ProvenanceLattice::from_nodes(vec![
            GrantNode {
                id: 0,
                grant: parent,
                parent: None,
            },
            GrantNode {
                id: 1,
                grant: child,
                parent: Some(0),
            },
        ]);
        let findings = lattice.audit_widening();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].category, "authority-widening");
        assert!(findings[0].detail.contains("permissions"));
    }

    #[test]
    fn cross_tenant_derivation_and_span_are_flagged() {
        let (lo1, _) = home_region(1);
        // Tenant 0 holds a grant spanning tenant 1's whole compartment;
        // tenant 1 then derives from it.
        let wide = grant(0, 0, 0, lo1, u64::from(OBJECTS) * SLOT_BYTES, Perms::RW);
        let derived = grant(1, 1, 0, lo1, 0x100, Perms::LOAD);
        let lattice = ProvenanceLattice::build(&[wide, derived], &[]);
        assert_eq!(lattice.nodes[1].parent, Some(0));
        let flows = lattice.audit_flows();
        // The span hit (node 0 covers tenant 1's compartment) and the
        // derivation hit (node 1 derives from tenant 0) share the
        // subject, so they fold into one finding with count 2.
        assert_eq!(flows.len(), 1, "{flows:?}");
        assert_eq!(flows[0].category, "cross-tenant-flow");
        assert_eq!(flows[0].subject, "task 0 -> task 1");
        assert_eq!(flows[0].count, 2);
    }

    #[test]
    fn same_tenant_grants_in_own_region_are_clean() {
        let b = slot_base(2, 3);
        let lattice = ProvenanceLattice::build(&[grant(0, 2, 3, b, 0x200, Perms::RW)], &[]);
        assert!(lattice.audit_widening().is_empty());
        assert!(lattice.audit_flows().is_empty());
    }
}
