//! Abstract interpretation of conformance op streams.
//!
//! A conformance stream is a *static input*: every grant, revocation,
//! and access is known ahead of time, so the capability table's state at
//! each access is computable without running any implementation. This
//! module interprets the stream over an abstract table — an independent
//! re-statement of the architectural semantics, deliberately **not**
//! calling into [`conformance::Oracle`], so the soundness tests that
//! diff the two are meaningful — and predicts every verdict.
//!
//! From the predictions it derives per-pair [`PairSummary`]s (the
//! least-privilege envelope: bounds actually spanned, permissions
//! actually exercised) and a [`capchecker::StaticVerdictMap`]:
//!
//! * a pair is **safe** when every provenance-carrying access to it is
//!   provably granted — then eliding its checks is position-insensitive
//!   and sound;
//! * a pair with any provable denial is **unsafe**: the denial becomes a
//!   [`Finding`] (stale grant after revocation, permission mismatch,
//!   bounds overrun…) and the runtime checker keeps judging every beat;
//! * everything else stays **dynamic**.
//!
//! Accesses without hardware provenance are denied before the elision
//! gate in the real checker, so they produce findings but never poison a
//! pair's elidability.

use crate::Finding;
use capchecker::{StaticVerdict, StaticVerdictMap};
use cheri::{CapFault, Perms};
use conformance::{build_grant_cap, Op};
use hetsim::{AccessKind, DenyReason, ObjectId, TaskId};
use obs::EventKind;
use std::collections::BTreeMap;

/// The hardware table's 256 entries — the capacity gate every grant
/// admission decision (and therefore every verdict) can depend on.
pub(crate) const CAPACITY: usize = 256;

/// The analyzer's model of one installed capability: the uncompressed
/// facts the grant recorded, nothing derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct AbstractCap {
    pub(crate) perms: Perms,
    pub(crate) base: u64,
    pub(crate) top: u128,
}

/// Least-privilege summary of one `(task, object)` compartment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairSummary {
    /// Task half of the key.
    pub task: u8,
    /// Object half of the key.
    pub object: u8,
    /// The pair's verdict (what goes into the verdict map).
    pub verdict: StaticVerdict,
    /// Provenance-carrying accesses to the pair.
    pub accesses: u64,
    /// Of those, provably granted.
    pub granted: u64,
    /// Of those, provably denied.
    pub denied: u64,
    /// Lowest address a granted access touched (`u64::MAX` if none).
    pub lo: u64,
    /// One past the highest address a granted access touched.
    pub hi: u128,
    /// Permissions granted accesses actually exercised.
    pub used: Perms,
}

/// Everything one stream analysis produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamAnalysis {
    /// Per-pair summaries, in key order.
    pub pairs: Vec<PairSummary>,
    /// Provable problems, in first-occurrence order.
    pub findings: Vec<Finding>,
    /// Accesses classified statically safe (provably granted, pair
    /// elidable).
    pub safe: u64,
    /// Accesses that are provable violations.
    pub flagged: u64,
    /// Accesses left to the runtime checker (provably granted but the
    /// pair is not elidable).
    pub dynamic: u64,
    /// Grant ops skipped because the capability was underivable (the
    /// harness skips them identically).
    pub skipped: u64,
}

impl StreamAnalysis {
    /// The verdict map to install into a checker. Only classified pairs
    /// appear; absent pairs default to dynamic.
    #[must_use]
    pub fn verdict_map(&self) -> StaticVerdictMap {
        let mut map = StaticVerdictMap::new();
        for p in &self.pairs {
            map.set(
                TaskId(u32::from(p.task)),
                ObjectId(u16::from(p.object)),
                p.verdict,
            );
        }
        map
    }

    /// The summary event for tracing.
    #[must_use]
    pub fn event(&self) -> EventKind {
        EventKind::AnalysisComplete {
            safe: self.safe,
            flagged: self.flagged,
            dynamic: self.dynamic,
        }
    }
}

/// What the interpreter predicted for one access, kept for the second
/// (classification) pass.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Predicted {
    pub(crate) key: (u8, u8),
    pub(crate) provenance: bool,
    /// Whether the pair had been granted at any point *before* this
    /// access — what turns a `no-entry` denial into a stale-grant
    /// (revocation-race) finding.
    pub(crate) granted_before: bool,
}

/// One access the interpreter proved granted: stream index, prediction
/// context, address, length, write flag.
pub(crate) type GrantedRec = (u64, Predicted, u64, u8, bool);

/// One access the interpreter proved denied: stream index, prediction
/// context, denial reason.
pub(crate) type DeniedRec = (u64, Predicted, DenyReason);

/// Interprets `ops` over the abstract table and classifies every access.
///
/// The table model mirrors the architectural semantics exactly: grants
/// reject sealed/untagged capabilities and replace in place, `capacity`
/// is the hardware's 256 entries, revocation drops a task's entries, and
/// judgment runs in the architectural order (provenance → entry → tag →
/// seal → perms → bounds). Spills, sweeps, tag flips, and cache
/// corruption never touch the table, so they cannot change a verdict —
/// the conformance harness proves that independently.
#[must_use]
pub fn analyze_stream(ops: &[Op]) -> StreamAnalysis {
    let mut table: BTreeMap<(u8, u8), AbstractCap> = BTreeMap::new();
    let mut ever_granted: BTreeMap<(u8, u8), bool> = BTreeMap::new();
    let mut predictions: Vec<DeniedRec> = Vec::new();
    let mut granted_ok: Vec<GrantedRec> = Vec::new();
    let mut skipped = 0u64;

    for (index, op) in ops.iter().enumerate() {
        let index = index as u64;
        match *op {
            Op::Grant {
                task,
                object,
                base,
                len,
                perms,
                seal,
                untagged,
            } => {
                let Ok(cap) = build_grant_cap(base, len, perms, seal, untagged) else {
                    skipped += 1;
                    continue;
                };
                if !cap.is_valid() || cap.is_sealed() {
                    // The import path refuses these; the table is
                    // unchanged, so earlier grants stay authoritative.
                    continue;
                }
                let key = (task, object);
                if table.contains_key(&key) || table.len() < CAPACITY {
                    table.insert(
                        key,
                        AbstractCap {
                            perms: cap.perms(),
                            base: cap.base(),
                            top: cap.top(),
                        },
                    );
                    ever_granted.insert(key, true);
                }
            }
            Op::RevokeTask { task } => {
                table.retain(|(t, _), _| *t != task);
            }
            Op::Access {
                task,
                object,
                provenance,
                write,
                addr,
                len,
                value: _,
            } => {
                let key = (task, object);
                let kind = if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let verdict = judge(&table, key, provenance, kind, addr, len);
                let predicted = Predicted {
                    key,
                    provenance,
                    granted_before: ever_granted.contains_key(&key),
                };
                match verdict {
                    None => granted_ok.push((index, predicted, addr, len, write)),
                    Some(reason) => predictions.push((index, predicted, reason)),
                }
            }
            // No table effect; verdicts cannot change.
            Op::Spill { .. } | Op::Sweep { .. } | Op::TagFlip { .. } | Op::CacheCorrupt { .. } => {}
        }
    }

    classify(&predictions, &granted_ok, skipped)
}

/// Pass 2, shared verbatim with the incremental flow engine
/// ([`crate::flow`]): pair verdicts, access classes, and deduplicated
/// findings from the interpreter's per-access predictions. Safe = at
/// least one provenanced access and zero provenanced denials; any
/// provenanced denial makes the pair unsafe (its checks stay on and the
/// denial is a finding).
pub(crate) fn classify(
    predictions: &[DeniedRec],
    granted_ok: &[GrantedRec],
    skipped: u64,
) -> StreamAnalysis {
    let mut summaries: BTreeMap<(u8, u8), PairSummary> = BTreeMap::new();
    fn summary(summaries: &mut BTreeMap<(u8, u8), PairSummary>, key: (u8, u8)) -> &mut PairSummary {
        summaries.entry(key).or_insert(PairSummary {
            task: key.0,
            object: key.1,
            verdict: StaticVerdict::Dynamic,
            accesses: 0,
            granted: 0,
            denied: 0,
            lo: u64::MAX,
            hi: 0,
            used: Perms::NONE,
        })
    }
    for &(_, p, addr, len, write) in granted_ok {
        if !p.provenance {
            continue;
        }
        let s = summary(&mut summaries, p.key);
        s.accesses += 1;
        s.granted += 1;
        s.lo = s.lo.min(addr);
        s.hi = s.hi.max(u128::from(addr) + u128::from(len));
        s.used = s.used | if write { Perms::STORE } else { Perms::LOAD };
    }
    for &(_, p, _) in predictions {
        if !p.provenance {
            continue;
        }
        let s = summary(&mut summaries, p.key);
        s.accesses += 1;
        s.denied += 1;
    }
    for s in summaries.values_mut() {
        s.verdict = if s.denied > 0 {
            StaticVerdict::Unsafe
        } else if s.granted > 0 {
            StaticVerdict::Safe
        } else {
            StaticVerdict::Dynamic
        };
    }

    // Access classes.
    let mut safe = 0u64;
    let mut flagged = 0u64;
    let mut dynamic = 0u64;
    for &(_, p, _, _, _) in granted_ok {
        let elidable = p.provenance
            && summaries
                .get(&p.key)
                .is_some_and(|s| s.verdict == StaticVerdict::Safe);
        if elidable {
            safe += 1;
        } else {
            dynamic += 1;
        }
    }
    flagged += predictions.len() as u64;

    // Findings, deduplicated by (pair, category), first occurrence kept.
    let mut findings: Vec<Finding> = Vec::new();
    let mut seen: BTreeMap<(u8, u8, &'static str), usize> = BTreeMap::new();
    for &(index, p, reason) in predictions {
        let (category, detail) = describe(reason, p.granted_before);
        match seen.entry((p.key.0, p.key.1, category)) {
            std::collections::btree_map::Entry::Occupied(e) => {
                findings[*e.get()].count += 1;
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(findings.len());
                findings.push(Finding {
                    category,
                    subject: format!("task {} object {}", p.key.0, p.key.1),
                    detail,
                    op: Some(index),
                    count: 1,
                });
            }
        }
    }

    StreamAnalysis {
        pairs: summaries.into_values().collect(),
        findings,
        safe,
        flagged,
        dynamic,
        skipped,
    }
}

/// The architectural judgment, restated: `None` = granted, `Some` = the
/// denial reason.
fn judge(
    table: &BTreeMap<(u8, u8), AbstractCap>,
    key: (u8, u8),
    provenance: bool,
    kind: AccessKind,
    addr: u64,
    len: u8,
) -> Option<DenyReason> {
    judge_cap(table.get(&key), provenance, kind, addr, len)
}

/// [`judge`] against one pair's capability directly — the per-pair form
/// the incremental engine ([`crate::flow`]) replays inside a work unit,
/// where no shared table exists.
pub(crate) fn judge_cap(
    cap: Option<&AbstractCap>,
    provenance: bool,
    kind: AccessKind,
    addr: u64,
    len: u8,
) -> Option<DenyReason> {
    if !provenance {
        return Some(DenyReason::BadProvenance);
    }
    let Some(cap) = cap else {
        return Some(DenyReason::NoEntry);
    };
    // Tag and seal are grant-time invariants here (the import path
    // refuses both), so those arms are unreachable — kept for fidelity
    // to the architectural order.
    let needed = match kind {
        AccessKind::Read => Perms::LOAD,
        AccessKind::Write => Perms::STORE,
    };
    if !cap.perms.contains(needed) {
        return Some(DenyReason::Capability(CapFault::PermissionViolation {
            missing: needed.intersect(!cap.perms),
        }));
    }
    let lo = u128::from(addr);
    let hi = lo + u128::from(len);
    if !(addr >= cap.base && hi <= cap.top) {
        return Some(DenyReason::Capability(CapFault::BoundsViolation {
            addr,
            len: u64::from(len),
        }));
    }
    None
}

fn describe(reason: DenyReason, was_ever_granted: bool) -> (&'static str, String) {
    match reason {
        DenyReason::BadProvenance => (
            "bad-provenance",
            "access without hardware object provenance".to_owned(),
        ),
        DenyReason::NoEntry if was_ever_granted => (
            "stale-grant",
            "access after the grant was revoked (revocation race)".to_owned(),
        ),
        DenyReason::NoEntry => ("no-entry", "access to a never-granted object".to_owned()),
        DenyReason::Capability(CapFault::PermissionViolation { missing }) => (
            "permission",
            format!("grant lacks {missing:?} the access needs"),
        ),
        DenyReason::Capability(CapFault::BoundsViolation { addr, len }) => (
            "bounds",
            format!("access [{addr:#x}, +{len}) escapes the granted bounds"),
        ),
        DenyReason::Capability(CapFault::TagViolation) => {
            ("tag", "table entry lost its tag".to_owned())
        }
        DenyReason::Capability(CapFault::SealViolation) => {
            ("seal", "table entry is sealed".to_owned())
        }
        other => ("denied", format!("{other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Perms;

    fn grant(task: u8, object: u8, base: u64, len: u16, perms: Perms) -> Op {
        Op::Grant {
            task,
            object,
            base,
            len,
            perms: perms.bits(),
            seal: false,
            untagged: false,
        }
    }

    fn access(task: u8, object: u8, write: bool, addr: u64, len: u8) -> Op {
        Op::Access {
            task,
            object,
            provenance: true,
            write,
            addr,
            len,
            value: 0,
        }
    }

    #[test]
    fn in_bounds_stream_is_fully_safe() {
        let base = conformance::stream::slot_base(0, 0);
        let ops = vec![
            grant(0, 0, base, 0x100, Perms::RW),
            access(0, 0, false, base, 8),
            access(0, 0, true, base + 0xF8, 8),
        ];
        let a = analyze_stream(&ops);
        assert_eq!((a.safe, a.flagged, a.dynamic), (2, 0, 0));
        assert!(a.findings.is_empty());
        let map = a.verdict_map();
        assert!(map.is_safe(TaskId(0), ObjectId(0)));
        let p = &a.pairs[0];
        assert_eq!((p.lo, p.hi), (base, u128::from(base) + 0x100));
        assert_eq!(p.used, Perms::RW);
    }

    #[test]
    fn one_denial_poisons_the_pair_but_not_others() {
        let b0 = conformance::stream::slot_base(0, 0);
        let b1 = conformance::stream::slot_base(0, 1);
        let ops = vec![
            grant(0, 0, b0, 0x100, Perms::RW),
            grant(0, 1, b1, 0x100, Perms::RW),
            access(0, 0, false, b0, 8),
            access(0, 0, false, b0 + 0x100, 1), // bounds overrun: provable
            access(0, 1, false, b1, 8),
        ];
        let a = analyze_stream(&ops);
        assert_eq!((a.safe, a.flagged, a.dynamic), (1, 1, 1));
        let map = a.verdict_map();
        assert!(!map.is_safe(TaskId(0), ObjectId(0)));
        assert_eq!(map.verdict(TaskId(0), ObjectId(0)), StaticVerdict::Unsafe);
        assert!(map.is_safe(TaskId(0), ObjectId(1)));
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].category, "bounds");
    }

    #[test]
    fn revocation_race_is_a_stale_grant_finding() {
        let base = conformance::stream::slot_base(2, 3);
        let ops = vec![
            grant(2, 3, base, 0x100, Perms::RW),
            access(2, 3, false, base, 4),
            Op::RevokeTask { task: 2 },
            access(2, 3, false, base, 4), // stale: provably denied
        ];
        let a = analyze_stream(&ops);
        assert_eq!(a.flagged, 1);
        assert_eq!(a.findings[0].category, "stale-grant");
        assert_eq!(
            a.verdict_map().verdict(TaskId(2), ObjectId(3)),
            StaticVerdict::Unsafe
        );
    }

    #[test]
    fn missing_provenance_is_flagged_but_does_not_poison() {
        let base = conformance::stream::slot_base(1, 0);
        let ops = vec![
            grant(1, 0, base, 0x100, Perms::RW),
            access(1, 0, false, base, 4),
            Op::Access {
                task: 1,
                object: 0,
                provenance: false,
                write: false,
                addr: base,
                len: 4,
                value: 0,
            },
        ];
        let a = analyze_stream(&ops);
        // The provenance-less denial is flagged, but the pair stays safe:
        // the real checker denies it before the elision gate.
        assert_eq!((a.safe, a.flagged), (1, 1));
        assert!(a.verdict_map().is_safe(TaskId(1), ObjectId(0)));
        assert_eq!(a.findings[0].category, "bad-provenance");
    }

    #[test]
    fn regrant_after_revoke_restores_safety_for_later_accesses() {
        let base = conformance::stream::slot_base(0, 5);
        let ops = vec![
            grant(0, 5, base, 0x100, Perms::RW),
            Op::RevokeTask { task: 0 },
            grant(0, 5, base, 0x100, Perms::RW),
            access(0, 5, true, base, 8),
        ];
        let a = analyze_stream(&ops);
        assert_eq!((a.safe, a.flagged), (1, 0));
        assert!(a.verdict_map().is_safe(TaskId(0), ObjectId(5)));
    }

    #[test]
    fn rejected_regrant_keeps_the_old_capability_authoritative() {
        let base = conformance::stream::slot_base(0, 0);
        let ops = vec![
            grant(0, 0, base, 0x100, Perms::RW),
            // A sealed re-grant is refused by the import path...
            Op::Grant {
                task: 0,
                object: 0,
                base,
                len: 8,
                perms: Perms::LOAD.bits(),
                seal: true,
                untagged: false,
            },
            // ...so the original RW grant still authorizes this write.
            access(0, 0, true, base + 0x80, 8),
        ];
        let a = analyze_stream(&ops);
        assert_eq!((a.safe, a.flagged), (1, 0));
    }

    #[test]
    fn permission_mismatch_is_provable() {
        let base = conformance::stream::slot_base(3, 0);
        let ops = vec![
            grant(3, 0, base, 0x100, Perms::LOAD),
            access(3, 0, true, base, 4),
        ];
        let a = analyze_stream(&ops);
        assert_eq!(a.flagged, 1);
        assert_eq!(a.findings[0].category, "permission");
    }

    #[test]
    fn event_carries_the_class_counts() {
        let base = conformance::stream::slot_base(0, 0);
        let ops = vec![
            grant(0, 0, base, 0x100, Perms::RW),
            access(0, 0, false, base, 4),
        ];
        let a = analyze_stream(&ops);
        assert_eq!(
            a.event(),
            EventKind::AnalysisComplete {
                safe: 1,
                flagged: 0,
                dynamic: 0
            }
        );
    }
}
