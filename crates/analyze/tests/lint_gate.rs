//! The lint gate, proven from both sides: the repository itself is
//! clean, and a planted fixture full of hazards fails loudly. A lint
//! that never fires is indistinguishable from no lint — the fixture is
//! the existence proof.

use capcheri_analyze::{lint_paths, lint_source};
use std::path::Path;

const PLANTED: &str = include_str!("fixtures/planted_hazards.rs.txt");

#[test]
fn lint_fails_on_planted_fixture() {
    // Under a report-path name inside a timing crate, every
    // path-sensitive rule except the hot-path one fires.
    let findings = lint_source("crates/core/src/report.rs", PLANTED);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    for expected in [
        "nd-map-in-report",
        "nd-unordered-reduction",
        "nd-wall-clock",
        "nd-hashmap-iter",
        "unsafe-audit",
    ] {
        assert!(
            rules.contains(&expected),
            "planted fixture did not trip {expected}: {findings:#?}"
        );
    }
    // Under a hot-path name the panic rule fires too.
    let hot = lint_source("crates/core/src/checker.rs", PLANTED);
    assert!(
        hot.iter().any(|f| f.rule == "panic-in-hot-path"),
        "planted fixture did not trip panic-in-hot-path: {hot:#?}"
    );
    // This is exactly the condition under which the lint binary exits
    // non-zero, so CI would reject the fixture were it live code.
    assert!(!findings.is_empty());
}

#[test]
fn fixture_hazards_are_path_sensitive() {
    // Off the report path, outside timing crates, and off the hot path,
    // only the path-insensitive rules remain.
    let findings = lint_source("crates/bench/src/harness.rs", PLANTED);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert!(!rules.contains(&"nd-map-in-report"));
    assert!(!rules.contains(&"nd-wall-clock"));
    assert!(!rules.contains(&"panic-in-hot-path"));
    assert!(rules.contains(&"nd-unordered-reduction"));
    assert!(rules.contains(&"nd-hashmap-iter"));
    assert!(rules.contains(&"unsafe-audit"));
}

#[test]
fn repository_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_paths(&root).unwrap();
    assert!(
        findings.is_empty(),
        "the repository must stay lint-clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
