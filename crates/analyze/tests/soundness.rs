//! Analyzer soundness against the golden oracle.
//!
//! The analyzer re-states the architectural semantics independently of
//! `conformance::Oracle`, so these tests are meaningful: every access
//! the analyzer classifies statically safe must be accepted by the
//! oracle, proven by replaying the verdict map through the elided
//! checkers in the differential harness — an unsound map surfaces as an
//! ordinary divergence there. Planted violations (an over-privileged
//! grant table, aliased ports, a revocation race) must be flagged, and a
//! flagged stream shrinks to a paste-ready reproducer.

use capcheri_analyze::{analyze_benchmark, analyze_stream, audit_grants, default_grants};
use cheri::Perms;
use conformance::{generate, regression_test, run_ops_elided, shrink, Op};
use machsuite::Benchmark;

#[test]
fn statically_safe_is_a_subset_of_oracle_accepted() {
    // Mixed lengths: short streams leave denial-free pairs (elision
    // happens), long ones poison almost everything (elision is refused).
    let mut total_elided = 0;
    for (seed, ops) in [(1, 150), (2, 150), (3, 400), (4, 800), (5, 2000), (6, 300)] {
        let stream = generate(seed, ops);
        let analysis = analyze_stream(&stream);
        let outcome = run_ops_elided(&stream, &analysis.verdict_map());
        assert!(
            outcome.is_clean(),
            "seed {seed}/{ops} ops: unsound verdict map — elided checkers \
             diverged from the oracle: {:#?}",
            outcome.divergences
        );
        total_elided += outcome.elided;
    }
    assert!(
        total_elided > 0,
        "no stream elided anything: the soundness claim was vacuous"
    );
}

#[test]
fn adversarial_streams_always_produce_findings() {
    for seed in [1, 2, 7, 0xC0FFEE] {
        let analysis = analyze_stream(&generate(seed, 2000));
        assert!(analysis.flagged > 0, "seed {seed}");
        assert!(!analysis.findings.is_empty(), "seed {seed}");
        // Every finding slug is one of the documented categories.
        for f in &analysis.findings {
            assert!(
                [
                    "stale-grant",
                    "no-entry",
                    "bad-provenance",
                    "permission",
                    "bounds",
                    "tag",
                    "seal",
                    "denied"
                ]
                .contains(&f.category),
                "unknown category {:?}",
                f.category
            );
        }
    }
}

#[test]
fn planted_over_privileged_grant_table_is_flagged() {
    // gemm_ncubed declares a=In, b=In, c=Out; the default driver grants
    // RW everywhere. The audit must prove all three over-privileged.
    let grants = default_grants(Benchmark::GemmNcubed, 0);
    let findings = audit_grants(Benchmark::GemmNcubed, &grants);
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.category == "over-privilege")
            .count(),
        3,
        "{findings:#?}"
    );
}

#[test]
fn planted_port_aliasing_config_is_flagged() {
    // Two tasks whose grants overlap mid-buffer: a provable cross-task
    // channel, independent of any execution.
    let mut grants = default_grants(Benchmark::GemmBlocked, 0);
    let mut alias = grants[2];
    alias.task = 1;
    alias.base += 64;
    alias.perms = Perms::RW;
    grants.push(alias);
    let findings = audit_grants(Benchmark::GemmBlocked, &grants);
    assert!(
        findings.iter().any(|f| f.category == "port-aliasing"),
        "{findings:#?}"
    );
}

#[test]
fn every_machsuite_config_is_classified_and_safe() {
    for b in Benchmark::ALL {
        let a = analyze_benchmark(b, 0xC0DE);
        assert_eq!(a.ports.len(), b.buffers().len(), "{b}");
        assert!(a.all_safe(), "{b}: {:#?}", a.findings);
    }
}

#[test]
fn flagged_stream_shrinks_to_a_paste_ready_repro() {
    // Find a generated stream with a revocation race, then shrink it
    // down to the minimal op sequence that still proves the violation.
    let stream = (1..20u64)
        .map(|seed| generate(seed, 2000))
        .find(|s| {
            analyze_stream(s)
                .findings
                .iter()
                .any(|f| f.category == "stale-grant")
        })
        .expect("some seed below 20 races a revocation");
    let still_races = |candidate: &[Op]| {
        analyze_stream(candidate)
            .findings
            .iter()
            .any(|f| f.category == "stale-grant")
    };
    let minimal = shrink(&stream, &still_races);
    assert!(
        minimal.len() <= 6,
        "a revocation race needs only grant+revoke+access, got {}: {minimal:#?}",
        minimal.len()
    );
    assert!(minimal.iter().any(|op| matches!(op, Op::Grant { .. })));
    assert!(minimal.iter().any(|op| matches!(op, Op::RevokeTask { .. })));

    let repro = regression_test(&minimal);
    eprintln!("shrunk stale-grant reproducer:\n{repro}");
    assert!(repro.contains("conformance::Op::"));
    assert!(repro.contains("fn conformance_regression()"));
}
