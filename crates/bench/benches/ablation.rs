//! Ablations of the design choices called out in DESIGN.md / §5.2:
//!
//! * capability-table size (8 → 512 entries): allocation success and area;
//! * CapChecker pipeline latency (0 → 8 cycles): performance overhead;
//! * single shared CapChecker vs per-accelerator checkers: with a
//!   one-beat-per-cycle interconnect, distribution adds area, not speed.

use capchecker::{CapChecker, CheckerConfig};
use cheri::{Capability, Perms};
use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::timing::{simulate_accel_system, AccelTask, AccelTimingConfig, BusConfig};
use hetsim::{ObjectId, TaskId, Trace, TraceOp};
use ioprotect::IoProtection;
use std::hint::black_box;

fn mem_trace(ops: u64) -> Trace {
    (0..ops)
        .map(|i| TraceOp::Mem {
            addr: i * 64,
            bytes: 8,
            write: false,
            object: 0,
        })
        .collect()
}

fn table_size_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_table_size");
    for entries in [8usize, 64, 256, 512] {
        g.bench_function(format!("install_evict_{entries}"), |b| {
            b.iter(|| {
                let mut checker = CapChecker::new(CheckerConfig {
                    entries,
                    ..CheckerConfig::fine()
                });
                let cap = Capability::root()
                    .set_bounds(0x1000, 64)
                    .unwrap()
                    .and_perms(Perms::RW)
                    .unwrap();
                for i in 0..entries {
                    checker
                        .grant(TaskId((i / 8) as u32), ObjectId((i % 8) as u16), &cap)
                        .unwrap();
                }
                for t in 0..entries / 8 {
                    checker.revoke_task(TaskId(t as u32));
                }
                black_box(checker.entries_in_use())
            })
        });
    }
    g.finish();
}

fn pipeline_latency_ablation(c: &mut Criterion) {
    let trace = mem_trace(50_000);
    let mut g = c.benchmark_group("ablation_pipeline_latency");
    g.sample_size(10);
    for latency in [0u64, 1, 2, 4, 8] {
        g.bench_function(format!("latency_{latency}"), |b| {
            b.iter(|| {
                let bus = BusConfig::default().with_checker(latency);
                let task = AccelTask {
                    trace: &trace,
                    cfg: AccelTimingConfig::default(),
                    start: 0,
                };
                black_box(simulate_accel_system(&[task], &bus).makespan)
            })
        });
    }
    g.finish();
}

fn shared_vs_distributed_checker(c: &mut Criterion) {
    // With a shared one-beat-per-cycle bus, one pipelined checker already
    // sustains full bandwidth; N checkers only replicate area. The
    // performance equivalence shows as identical makespans (the bus
    // config is the same either way); the area difference comes from the
    // fpgamodel: N * capchecker_area vs 1 * capchecker_area.
    let traces: Vec<Trace> = (0..4).map(|_| mem_trace(20_000)).collect();
    let mut g = c.benchmark_group("ablation_checker_topology");
    g.sample_size(10);
    g.bench_function("shared_single_checker", |b| {
        b.iter(|| {
            let bus = BusConfig::default().with_checker(2);
            let tasks: Vec<AccelTask<'_>> = traces
                .iter()
                .map(|t| AccelTask {
                    trace: t,
                    cfg: AccelTimingConfig::default(),
                    start: 0,
                })
                .collect();
            black_box(simulate_accel_system(&tasks, &bus).makespan)
        })
    });
    g.bench_function("area_shared_vs_per_accel", |b| {
        b.iter(|| {
            let shared = fpgamodel::capchecker_area(256).luts;
            let distributed = 8 * fpgamodel::capchecker_area(256).luts;
            assert!(distributed > shared);
            black_box(distributed - shared)
        })
    });
    g.finish();
}

criterion_group!(
    ablation,
    table_size_ablation,
    pipeline_latency_ablation,
    shared_vs_distributed_checker
);
criterion_main!(ablation);
