//! event-core — event-wheel vs stepping timing cores.
//!
//! Benches the three implementations of the accelerator timing model over
//! two adversarial workload shapes:
//!
//! * **long-idle** — sparse bus events separated by ~50 k-cycle compute
//!   stretches. An event-driven core jumps straight between grants; a
//!   cycle-stepped core must walk (or bulk-skip) the idle gap.
//! * **dense** — a saturated bus: thousands of back-to-back DMA beats per
//!   lane with almost no compute. Here per-event constant cost is
//!   everything, which is exactly what the wheel's flat cursor arena (vs
//!   the heap's sift-down per pop) buys.
//!
//! Cores: `wheel` is the production event wheel
//! ([`hetsim::timing::simulate_accel_system`]), `heap` the retained naive
//! heap scheduler (`simulate_accel_system_naive` — CI's cross-check
//! reference), `stepped` the cycle-accurate validator with its
//! bulk-advance fast path ([`hetsim::validate`]).
//!
//! ```text
//! cargo bench -p capcheri-bench --bench event_core            # print
//! cargo bench ... --bench event_core -- --save FILE           # + JSON
//! ```
//!
//! The JSON (`capcheri.event_core_bench.v1`) rides alongside
//! `perf_smoke`'s baseline so trend tooling (`bench-trend`) can diff any
//! two snapshots; it is informational, not gated — the gated figure is
//! `bench_cells_per_sec` in `BENCH_simulator.json`.

use criterion::{black_box, Criterion};
use hetsim::timing::{
    simulate_accel_system, simulate_accel_system_naive, AccelTask, AccelTimingConfig, BusConfig,
};
use hetsim::validate::simulate_accel_system_cycle_accurate;
use hetsim::{Trace, TraceOp};
use std::process::ExitCode;

/// Long-idle: each mem op hides behind a 100 k-unit compute block at one
/// unit/cycle/lane — the bus is idle ~99.99% of the makespan.
fn long_idle_traces() -> Vec<Trace> {
    (0..4)
        .map(|t| {
            let mut trace = Trace::new();
            for i in 0..64u64 {
                trace.push(TraceOp::Compute(100_000));
                trace.push(TraceOp::Mem {
                    addr: 0x1000 + 8 * (i + 64 * t),
                    bytes: 8,
                    write: i % 2 == 0,
                    object: 0,
                });
            }
            trace
        })
        .collect()
}

/// Dense: 2 000 64-byte DMA ops per task and token compute — every cycle
/// of the makespan has bus work queued behind it.
fn dense_traces() -> Vec<Trace> {
    (0..8)
        .map(|t| {
            let mut trace = Trace::new();
            for i in 0..2_000u64 {
                trace.push(TraceOp::Mem {
                    addr: 0x1000 + 64 * (i + 2_000 * t),
                    bytes: 64,
                    write: i % 3 == 0,
                    object: (i % 3) as u16,
                });
                if i % 16 == 0 {
                    trace.push(TraceOp::Compute(8));
                }
            }
            trace
        })
        .collect()
}

fn tasks_over<'a>(traces: &'a [Trace], lanes: u32) -> Vec<AccelTask<'a>> {
    traces
        .iter()
        .enumerate()
        .map(|(i, trace)| AccelTask {
            trace,
            cfg: AccelTimingConfig {
                lanes,
                compute_per_cycle: 1.0,
                outstanding: 4,
            },
            start: 100 * i as u64,
        })
        .collect()
}

struct Shape {
    name: &'static str,
    traces: Vec<Trace>,
    lanes: u32,
}

fn measure() -> Vec<(String, f64)> {
    let mut c = Criterion::default().configure_from_args();
    let shapes = [
        Shape {
            name: "long_idle",
            traces: long_idle_traces(),
            lanes: 2,
        },
        Shape {
            name: "dense",
            traces: dense_traces(),
            lanes: 4,
        },
    ];

    let bus = BusConfig::default().with_checker(1);
    for shape in &shapes {
        let tasks = tasks_over(&shape.traces, shape.lanes);
        // The three cores must agree before their speeds mean anything.
        let wheel = simulate_accel_system(&tasks, &bus);
        assert_eq!(
            wheel,
            simulate_accel_system_naive(&tasks, &bus),
            "wheel and heap cores disagree on {}",
            shape.name
        );
        let mut g = c.benchmark_group(shape.name);
        g.bench_function("wheel", |b| {
            b.iter(|| black_box(simulate_accel_system(&tasks, &bus)))
        });
        g.bench_function("heap", |b| {
            b.iter(|| black_box(simulate_accel_system_naive(&tasks, &bus)))
        });
        g.bench_function("stepped", |b| {
            b.iter(|| black_box(simulate_accel_system_cycle_accurate(&tasks, &bus)))
        });
        g.finish();
    }

    c.samples()
        .iter()
        .map(|s| {
            (
                format!("{}_ns", s.label().replace('/', "_")),
                s.nanos_per_iter,
            )
        })
        .collect()
}

fn to_json(metrics: &[(String, f64)]) -> String {
    let mut out =
        String::from("{\n  \"schema\": \"capcheri.event_core_bench.v1\",\n  \"metrics\": {");
    for (i, (name, value)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{name}\": {value:.1}"));
    }
    out.push_str("\n  }\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let metrics = measure();
    let json = to_json(&metrics);
    print!("{json}");
    for (name, wheel_ns) in &metrics {
        let Some(base) = name.strip_suffix("_wheel_ns") else {
            continue;
        };
        for other in ["heap", "stepped"] {
            if let Some((_, v)) = metrics
                .iter()
                .find(|(n, _)| n == &format!("{base}_{other}_ns"))
            {
                println!("{base}: wheel is {:.1}x vs {other}", v / wheel_ns);
            }
        }
    }
    if let Some(path) = value_after("--save") {
        // Resolve relative paths against the workspace root — cargo runs
        // benches with the package directory as cwd.
        let p = std::path::Path::new(&path);
        let p = if p.is_absolute() {
            p.to_path_buf()
        } else {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(p)
        };
        if let Err(e) = std::fs::write(&p, &json) {
            eprintln!("cannot write {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
        println!("saved {}", p.display());
    }
    ExitCode::SUCCESS
}
