//! Criterion benches: one group per table/figure, timing the simulation
//! pipeline that regenerates it (representative subsets keep wall time
//! reasonable; the binaries produce the full outputs).

use capchecker::SystemVariant;
use capcheri_bench::{fig10, fig11, fig12, fig7, fig8, fig9, runner, table1, table2, table3};
use criterion::{criterion_group, criterion_main, Criterion};
use machsuite::Benchmark;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1_properties", |b| {
        b.iter(|| black_box(table1::report()))
    });
    g.bench_function("table2_buffers", |b| b.iter(|| black_box(table2::report())));
    g.sample_size(10);
    g.bench_function("table3_attack_matrix", |b| {
        b.iter(|| black_box(table3::rows()))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_speedup");
    g.sample_size(10);
    for bench in [Benchmark::Aes, Benchmark::MdKnn, Benchmark::SpmvCrs] {
        g.bench_function(bench.name(), |b| b.iter(|| black_box(fig7::row(bench))));
    }
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_overhead");
    g.sample_size(10);
    for bench in [Benchmark::Aes, Benchmark::MdKnn, Benchmark::SortRadix] {
        g.bench_function(bench.name(), |b| b.iter(|| black_box(fig8::row(bench))));
    }
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_mixed");
    g.sample_size(10);
    g.bench_function("one_mixed_system", |b| b.iter(|| black_box(fig9::row(0))));
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_breakdown");
    g.sample_size(10);
    for bench in [Benchmark::GemmBlocked, Benchmark::Kmp] {
        g.bench_function(bench.name(), |b| b.iter(|| black_box(fig10::row(bench))));
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_parallelism");
    g.sample_size(10);
    for tasks in [1usize, 8] {
        g.bench_function(format!("tasks_{tasks}"), |b| {
            b.iter(|| black_box(fig11::row(tasks)))
        });
    }
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_entries");
    g.bench_function("all_benchmarks", |b| b.iter(|| black_box(fig12::rows())));
    g.finish();
}

fn bench_simulator_core(c: &mut Criterion) {
    // The hot inner path behind every figure: a protected run.
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("protected_run_sort_merge", |b| {
        b.iter(|| {
            black_box(runner::run_benchmark(
                Benchmark::SortMerge,
                SystemVariant::CheriCpuCheriAccel,
                1,
                42,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    experiments,
    bench_tables,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_simulator_core
);
criterion_main!(experiments);
