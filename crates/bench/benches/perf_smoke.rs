//! perf-smoke — the tracked performance baseline of the simulator.
//!
//! Measures the three numbers the perf work of this repo is judged by and
//! compares them against the committed `BENCH_simulator.json`:
//!
//! 1. **Revocation sweep ns/op** — the indexed sweep
//!    ([`capchecker::sweep_revoked_many`]) against the O(memory) naive
//!    reference, over a populated tag map.
//! 2. **Benchmark cells/sec** — end-to-end [`runner::run_benchmark`]
//!    throughput across the MachSuite suite.
//! 3. **Figure 8 wall time** — the full figure generator, sequential and
//!    on four workers.
//!
//! ```text
//! cargo bench -p capcheri-bench --bench perf_smoke               # print
//! cargo bench ... --bench perf_smoke -- --save FILE             # refresh
//! cargo bench ... --bench perf_smoke -- --check BENCH_simulator.json
//! ```
//!
//! `--check` applies a deliberately generous 2× regression gate: CI boxes
//! are noisy, and the gate exists to catch algorithmic regressions (a
//! sweep going O(memory) again), not scheduler jitter.

use capchecker::{sweep_revoked_many, sweep_revoked_naive, SystemVariant};
use capcheri_bench::{fig8, runner};
use cheri::{Capability, Perms};
use criterion::{black_box, Criterion};
use hetsim::TaggedMemory;
use machsuite::Benchmark;
use std::process::ExitCode;
use std::time::Instant;

/// Physical memory for the sweep microbench — big enough that the naive
/// O(memory) walk visibly dominates the indexed walk.
const SWEEP_MEM_BYTES: u64 = 8 << 20;
/// Live spilled capabilities during the sweep.
const SWEEP_CAPS: u64 = 512;

fn spill(mem: &mut TaggedMemory, at: u64, base: u64, len: u64) {
    let cap = Capability::root()
        .set_bounds(base, len)
        .unwrap()
        .and_perms(Perms::RW)
        .unwrap();
    mem.write_capability(at, cap.compress(), true).unwrap();
}

/// A memory with [`SWEEP_CAPS`] spilled capabilities, none of which
/// intersect the probed region — so a sweep is pure scan cost and leaves
/// the memory unchanged, making iterations identical.
fn sweep_memory() -> (TaggedMemory, Vec<(u64, u64)>) {
    let mut mem = TaggedMemory::new(SWEEP_MEM_BYTES);
    for i in 0..SWEEP_CAPS {
        spill(&mut mem, 0x1000 + i * 16, 0x10_0000 + i * 0x100, 0x80);
    }
    // Probe regions beyond every spilled capability's authority.
    (mem, vec![(0x70_0000, 0x1000), (0x7f_0000, 0x100)])
}

/// One measured baseline metric.
struct Metric {
    name: &'static str,
    value: f64,
    /// `true` when bigger is better (throughput), `false` for times.
    higher_is_better: bool,
}

fn measure() -> Vec<Metric> {
    let mut c = Criterion::default().configure_from_args();

    let (mut mem, regions) = sweep_memory();
    let mut g = c.benchmark_group("sweep");
    g.bench_function("indexed", |b| {
        b.iter(|| black_box(sweep_revoked_many(&mut mem, &regions)))
    });
    g.bench_function("naive", |b| {
        b.iter(|| black_box(sweep_revoked_naive(&mut mem, &regions)))
    });
    g.finish();
    let ns = |label: &str| {
        c.samples()
            .iter()
            .find(|s| s.label() == label)
            .expect("sample recorded")
            .nanos_per_iter
    };
    let sweep_indexed = ns("sweep/indexed");
    let sweep_naive = ns("sweep/naive");

    let cells = Benchmark::ALL.len();
    // One untimed warm-up pass, as the criterion groups above do for the
    // sweeps: the first pass pays one-off page faults on the trace and
    // event-wheel arenas (recycled thereafter), which is allocator noise,
    // not simulator throughput.
    for bench in Benchmark::ALL {
        black_box(runner::run_benchmark(
            bench,
            SystemVariant::CheriCpuCheriAccel,
            1,
            0xC0DE,
        ));
    }
    let start = Instant::now();
    for bench in Benchmark::ALL {
        black_box(runner::run_benchmark(
            bench,
            SystemVariant::CheriCpuCheriAccel,
            1,
            0xC0DE,
        ));
    }
    let cells_per_sec = cells as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    black_box(fig8::report_threads(1));
    let fig8_seq_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    black_box(fig8::report_threads(4));
    let fig8_par_ms = start.elapsed().as_secs_f64() * 1e3;

    vec![
        Metric {
            name: "sweep_indexed_ns_per_op",
            value: sweep_indexed,
            higher_is_better: false,
        },
        Metric {
            name: "sweep_naive_ns_per_op",
            value: sweep_naive,
            higher_is_better: false,
        },
        Metric {
            name: "bench_cells_per_sec",
            value: cells_per_sec,
            higher_is_better: true,
        },
        Metric {
            name: "fig8_wall_ms_threads1",
            value: fig8_seq_ms,
            higher_is_better: false,
        },
        Metric {
            name: "fig8_wall_ms_threads4",
            value: fig8_par_ms,
            higher_is_better: false,
        },
    ]
}

fn to_json(metrics: &[Metric]) -> String {
    let mut out = String::from("{\n  \"schema\": \"capcheri.perf_baseline.v1\",\n  \"metrics\": {");
    for (i, m) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {:.1}", m.name, m.value));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Pulls `"name": <number>` out of the baseline file — the schema is ours
/// and flat, so a scan beats dragging in a JSON parser.
fn baseline_value(doc: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let at = doc.find(&key)? + key.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(metrics: &[Metric], baseline_path: &std::path::Path) -> ExitCode {
    let doc = match std::fs::read_to_string(baseline_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for m in metrics {
        let Some(base) = baseline_value(&doc, m.name) else {
            eprintln!("FAIL {:<26} missing from baseline", m.name);
            failed = true;
            continue;
        };
        // Generous 2× gate in the metric's bad direction.
        let ok = if m.higher_is_better {
            m.value >= base / 2.0
        } else {
            m.value <= base * 2.0
        };
        let verdict = if ok { "ok  " } else { "FAIL" };
        println!(
            "{verdict} {:<26} measured {:>14.1}  baseline {:>14.1}",
            m.name, m.value, base
        );
        failed |= !ok;
    }
    if failed {
        eprintln!("perf-smoke: regression beyond the 2x gate (see FAIL lines)");
        ExitCode::FAILURE
    } else {
        println!("perf-smoke: all metrics within the 2x gate");
        ExitCode::SUCCESS
    }
}

/// Resolves `path` against the workspace root when relative — cargo runs
/// benches with the *package* directory as cwd, but the baseline lives at
/// the repo root.
fn from_root(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `cargo bench` appends `--bench`; ignore flags we don't own.
    let value_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let metrics = measure();
    let json = to_json(&metrics);
    print!("{json}");
    if let Some(path) = value_after("--save") {
        let path = from_root(&path);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("saved {}", path.display());
    }
    if let Some(path) = value_after("--check") {
        return check(&metrics, &from_root(&path));
    }
    ExitCode::SUCCESS
}
