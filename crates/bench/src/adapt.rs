//! The `capcheri.adapt.v1` bench report — the online adaptive policy
//! controller driven by real benchmark epochs.
//!
//! Each epoch runs the benchmark once under the cache-backed checker in
//! the controller's current provenance mode, samples the checker's cache
//! statistics as that epoch's [`EpochSignals`], and feeds them to the
//! [`AdaptController`]. A `SwitchMode` decision takes effect on the next
//! epoch's configuration, so the report shows closed-loop behaviour —
//! which mode each epoch actually ran in, what it cost, and why the
//! controller moved.
//!
//! Epoch 0 runs fully checked while the static analyzer's segment proof
//! is (notionally) being computed; every later epoch re-installs the
//! retained verdict map before its kernels run — the same
//! install-after-drop move `AdaptController` performs after a mode
//! switch, so elision survives Fine ⇄ Coarse transitions instead of
//! being lost at the first rebuild. Each epoch's `checks_elided` column
//! is the measured payoff.
//!
//! Everything serialized derives from simulated quantities, so the JSON
//! is byte-identical for a fixed `(bench, epochs, tasks, seed)` on any
//! machine and at any `--threads` value.

use crate::runner::{run_benchmark_cached, run_benchmark_cached_elided};
use capchecker::{
    AdaptConfig, AdaptController, AdaptDecision, CachedCheckerConfig, CheckerMode, EpochSignals,
};
use capcheri_analyze::analyze_benchmark;
use machsuite::Benchmark;
use obs::json::JsonWriter;
use std::fmt::Write as _;

/// Schema identifier stamped into every adaptive bench report.
pub const ADAPT_SCHEMA: &str = "capcheri.adapt.v1";

/// The cache geometry the adaptive bench loop runs under: small enough
/// that real kernels miss, so the stall-share signal has dynamics worth
/// reacting to (the production default of 16 entries absorbs most
/// benchmarks' working sets).
#[must_use]
pub fn adaptive_cache_config() -> CachedCheckerConfig {
    CachedCheckerConfig {
        cache_entries: 4,
        ..CachedCheckerConfig::default()
    }
}

/// One closed-loop epoch: the mode it ran in, what it cost, and the
/// signals the controller saw at its boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdaptEpoch {
    /// Epoch index (0-based).
    pub epoch: u32,
    /// Provenance mode this epoch executed under.
    pub mode: CheckerMode,
    /// Makespan of the epoch's run, in cycles.
    pub cycles: u64,
    /// The boundary sample handed to the controller.
    pub signals: EpochSignals,
    /// Cache hits this epoch (detail behind `signals.checks`).
    pub hits: u64,
    /// Cache misses this epoch.
    pub misses: u64,
    /// Checks the re-installed segment proof skipped this epoch (zero in
    /// epoch 0, where the proof is still being computed).
    pub checks_elided: u64,
}

/// One benchmark driven through `epochs` closed-loop controller epochs.
#[derive(Clone, Debug)]
pub struct AdaptBenchReport {
    /// Which benchmark ran.
    pub bench: Benchmark,
    /// Concurrent accelerator tasks per epoch.
    pub tasks: usize,
    /// The base seed (epoch `e` runs with `seed + e`).
    pub seed: u64,
    /// The controller configuration in force.
    pub config: AdaptConfig,
    /// Every epoch, in order.
    pub epochs: Vec<AdaptEpoch>,
    /// Every decision the controller made, in order.
    pub decisions: Vec<AdaptDecision>,
    /// Mode the controller wants after the last epoch.
    pub final_mode: CheckerMode,
}

impl AdaptBenchReport {
    /// Runs `bench` through `epochs` controller epochs and wraps the
    /// take.
    ///
    /// # Panics
    ///
    /// As [`crate::runner::run_benchmark`]; also when `config` has no
    /// hysteresis gap.
    #[must_use]
    pub fn collect(
        bench: Benchmark,
        epochs: u32,
        tasks: usize,
        seed: u64,
        config: AdaptConfig,
    ) -> AdaptBenchReport {
        // The bench loop's only actuator is the provenance mode — the
        // cache itself is the signal source and stays in place, so the
        // cache/FU lattices are inert (`cached = false`, no FUs).
        let mut controller = AdaptController::new(config, CheckerMode::Fine, false);
        // The segment proof the loop re-installs from epoch 1 onward:
        // epoch 0 runs fully checked while the analyzer computes it.
        let analysis = analyze_benchmark(bench, seed);
        let mut out = Vec::with_capacity(epochs as usize);
        for epoch in 0..epochs {
            let mode = controller.mode();
            let cfg = adaptive_cache_config().with_mode(mode);
            let epoch_seed = seed.wrapping_add(u64::from(epoch));
            let run = if epoch == 0 {
                run_benchmark_cached(bench, tasks, epoch_seed, cfg)
            } else {
                // Install-after-drop: each epoch's rebuilt checker (and
                // every mid-epoch mode switch) starts without a verdict
                // map; re-installing the retained segment proof is what
                // keeps elision alive across the controller's switches.
                run_benchmark_cached_elided(bench, tasks, epoch_seed, cfg, &analysis)
            };
            // A fresh system per epoch means the full-run stats *are*
            // the epoch's deltas.
            let signals = EpochSignals {
                checks: run.cache.hits + run.cache.misses + run.cache.elided,
                stall_cycles: run.cache.miss_cycles,
                denied: run.cache.denied,
                corruption: run.cache.corruption_detected,
                quarantined_fus: Vec::new(),
            };
            controller.observe(&signals);
            out.push(AdaptEpoch {
                epoch,
                mode,
                cycles: run.result.cycles,
                signals,
                hits: run.cache.hits,
                misses: run.cache.misses,
                checks_elided: run.checks_elided,
            });
        }
        AdaptBenchReport {
            bench,
            tasks,
            seed,
            epochs: out,
            decisions: controller.trace().to_vec(),
            final_mode: controller.mode(),
            config,
        }
    }

    fn write(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("schema");
        w.string(ADAPT_SCHEMA);
        w.key("bench");
        w.string(self.bench.name());
        w.key("tasks");
        w.u64(self.tasks as u64);
        w.key("seed");
        w.u64(self.seed);
        w.key("config");
        w.begin_object();
        self.config.write_fields(w);
        w.end_object();
        w.key("epochs");
        w.begin_array();
        for e in &self.epochs {
            w.begin_object();
            w.key("epoch");
            w.u64(u64::from(e.epoch));
            w.key("mode");
            w.string(e.mode.label());
            w.key("cycles");
            w.u64(e.cycles);
            w.key("checks");
            w.u64(e.signals.checks);
            w.key("stall_cycles");
            w.u64(e.signals.stall_cycles);
            w.key("stall_share_pct");
            w.u64(e.signals.stall_share_pct());
            w.key("hits");
            w.u64(e.hits);
            w.key("misses");
            w.u64(e.misses);
            w.key("checks_elided");
            w.u64(e.checks_elided);
            w.end_object();
        }
        w.end_array();
        w.key("decisions");
        w.begin_array();
        for d in &self.decisions {
            d.write(w);
        }
        w.end_array();
        w.key("final");
        w.begin_object();
        w.key("mode");
        w.string(self.final_mode.label());
        w.end_object();
        w.end_object();
    }

    /// This report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write(&mut w);
        w.finish()
    }

    /// The report as human-readable text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "adapt: {} epochs={} tasks={} seed={}",
            self.bench.name(),
            self.epochs.len(),
            self.tasks,
            self.seed
        );
        let _ = writeln!(
            out,
            "  {:<6} {:<7} {:>12} {:>10} {:>12} {:>6} {:>8}",
            "epoch", "mode", "cycles", "checks", "stall", "share", "elided"
        );
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "  {:<6} {:<7} {:>12} {:>10} {:>12} {:>5}% {:>8}",
                e.epoch,
                e.mode.label(),
                e.cycles,
                e.signals.checks,
                e.signals.stall_cycles,
                e.signals.stall_share_pct(),
                e.checks_elided
            );
        }
        if self.decisions.is_empty() {
            let _ = writeln!(out, "  decisions: none (signals inside the deadband)");
        } else {
            let _ = writeln!(out, "  decisions:");
            for d in &self.decisions {
                let _ = writeln!(
                    out,
                    "    epoch {} {}: share={}% dwell={}",
                    d.epoch,
                    d.rule.label(),
                    d.stall_share_pct,
                    d.dwell
                );
            }
        }
        let _ = writeln!(out, "  final mode: {}", self.final_mode.label());
        out
    }
}

/// Several reports as one JSON document:
/// `{"schema":"...","runs":[...]}`.
#[must_use]
pub fn reports_to_json(reports: &[AdaptBenchReport]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string(ADAPT_SCHEMA);
    w.key("runs");
    w.begin_array();
    for r in reports {
        r.write(&mut w);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Several reports as one text document.
#[must_use]
pub fn render_all(reports: &[AdaptBenchReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_valid_and_closed_loop() {
        let r = AdaptBenchReport::collect(Benchmark::Aes, 3, 1, 3, AdaptConfig::default());
        let json = r.to_json();
        obs::json::validate(&json).unwrap();
        for needle in [
            "\"schema\":\"capcheri.adapt.v1\"",
            "\"bench\":\"aes\"",
            "\"config\":",
            "\"decisions\":",
            "\"final\":",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        assert!(!json.contains("wall"), "host time must never serialize");
        assert_eq!(r.epochs.len(), 3);
        // The closed loop is consistent: epoch 0 starts Fine, and each
        // SwitchMode decision changes the very next epoch's mode.
        assert_eq!(r.epochs[0].mode, CheckerMode::Fine);
        for pair in r.epochs.windows(2) {
            let switched = r.decisions.iter().any(|d| {
                d.epoch == pair[0].epoch
                    && matches!(d.action, capchecker::AdaptAction::SwitchMode { .. })
            });
            if switched {
                assert_eq!(pair[1].mode, pair[0].mode.toggled());
            } else {
                assert_eq!(pair[1].mode, pair[0].mode);
            }
        }
    }

    #[test]
    fn small_cache_drives_a_stall_switch() {
        // With 4 cache entries a multi-buffer kernel misses hard enough
        // that the default up-threshold fires. Once the segment proof is
        // re-installed, elided epochs stall so little that the
        // down-threshold brings the system back to Fine — the round trip
        // static elision buys.
        let r = AdaptBenchReport::collect(Benchmark::SpmvCrs, 4, 2, 1, AdaptConfig::default());
        assert!(
            r.decisions
                .iter()
                .any(|d| d.rule == obs::AdaptRule::StallUp),
            "no stall-up fired: {:?}",
            r.decisions
        );
        assert_eq!(r.final_mode, CheckerMode::Fine);
        // Constant input ⇒ at most one flip in each direction.
        assert!(r.decisions.len() <= 2, "oscillation: {:?}", r.decisions);
    }

    #[test]
    fn elision_survives_the_first_mode_switch() {
        // The acceptance figure: before epoch-scoped re-install, any mode
        // switch dropped the verdict map and every later epoch reported
        // zero elided checks. Now every epoch after the proof epoch —
        // including those past the first switch — elides.
        let r = AdaptBenchReport::collect(Benchmark::SpmvCrs, 4, 2, 1, AdaptConfig::default());
        let first_switch = r
            .decisions
            .iter()
            .find(|d| matches!(d.action, capchecker::AdaptAction::SwitchMode { .. }))
            .map(|d| d.epoch)
            .expect("the small cache drives at least one switch");
        assert_eq!(r.epochs[0].checks_elided, 0, "epoch 0 computes the proof");
        for e in r.epochs.iter().filter(|e| e.epoch > first_switch) {
            assert!(
                e.checks_elided > 0,
                "epoch {} (mode {}) lost elision after the switch at epoch {}",
                e.epoch,
                e.mode.label(),
                first_switch
            );
        }
        assert!(r.to_json().contains("\"checks_elided\":"));
    }

    #[test]
    fn reports_are_byte_deterministic() {
        let a = AdaptBenchReport::collect(Benchmark::GemmNcubed, 3, 2, 7, AdaptConfig::default());
        let b = AdaptBenchReport::collect(Benchmark::GemmNcubed, 3, 2, 7, AdaptConfig::default());
        assert_eq!(a.to_json(), b.to_json());
    }
}
