//! Ablations of the CapChecker design choices (§5.2 / DESIGN.md):
//! capability-table size, pipeline depth, fixed table vs cache-backed
//! table, and shared vs per-accelerator checker area.

use capchecker::{
    CachedCapChecker, CachedCheckerConfig, CapChecker, CheckerConfig, HeteroSystem,
    ProtectionChoice, SystemConfig, TaskRequest,
};
use capcheri_bench::render::{pct, table};
use hetsim::timing::{simulate_accel_system, AccelTask, AccelTimingConfig, BusConfig};
use hetsim::{Trace, TraceOp};
use ioprotect::IoProtection;
use machsuite::INSTANCES;

fn mem_trace(ops: u64) -> Trace {
    (0..ops)
        .map(|i| TraceOp::Mem {
            addr: i * 64,
            bytes: 8,
            write: false,
            object: 0,
        })
        .collect()
}

fn table_size_sweep() -> String {
    // How many 5-buffer tasks fit before allocation stalls, and what the
    // table costs, per size.
    let mut rows = Vec::new();
    for entries in [16usize, 64, 128, 256, 512] {
        let mut sys = HeteroSystem::new(SystemConfig {
            protection: ProtectionChoice::CapChecker(CheckerConfig {
                entries,
                ..CheckerConfig::fine()
            }),
            ..SystemConfig::default()
        });
        sys.add_fus("k", 128);
        let mut fitted = 0;
        for i in 0..128 {
            match sys.allocate_task(&TaskRequest::accel(format!("t{i}"), "k").rw_buffers([64; 5])) {
                Ok(_) => fitted += 1,
                Err(_) => break,
            }
        }
        rows.push(vec![
            entries.to_string(),
            fitted.to_string(),
            fpgamodel::capchecker_area(entries).luts.to_string(),
            format!("{:.0} MHz", fpgamodel::fmax::capchecker_mhz(entries)),
        ]);
    }
    format!(
        "Ablation 1: capability-table size vs concurrent 5-buffer tasks\n\
         (associative lookup is the critical path: Fmax falls with entries)\n\n{}",
        table(&["Entries", "Tasks before stall", "LUTs", "Fmax"], &rows)
    )
}

fn pipeline_latency_sweep() -> String {
    let trace = mem_trace(50_000);
    let base = simulate_accel_system(
        &[AccelTask {
            trace: &trace,
            cfg: AccelTimingConfig::default(),
            start: 0,
        }],
        &BusConfig::default(),
    )
    .makespan;
    let mut rows = Vec::new();
    for latency in [0u64, 1, 2, 4, 8] {
        let makespan = simulate_accel_system(
            &[AccelTask {
                trace: &trace,
                cfg: AccelTimingConfig::default(),
                start: 0,
            }],
            &BusConfig::default().with_checker(latency),
        )
        .makespan;
        rows.push(vec![
            latency.to_string(),
            makespan.to_string(),
            pct((makespan as f64 - base as f64) / base as f64),
        ]);
    }
    format!(
        "Ablation 2: checker pipeline depth on a memory-bound stream\n\n{}",
        table(&["Latency (cy)", "Makespan", "Overhead"], &rows)
    )
}

fn fixed_vs_cached() -> String {
    use cheri::{Capability, Perms};
    use hetsim::{Access, MasterId, ObjectId, TaskId};

    // 64 tasks x 5 buffers = 320 capabilities; a hot working set of 8.
    let cap = |i: u64| {
        Capability::root()
            .set_bounds(i * 4096, 4096)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap()
    };
    let mut fixed = CapChecker::new(CheckerConfig::fine());
    let mut cached = CachedCapChecker::new(CachedCheckerConfig::default());
    let mut fixed_stalls = 0u64;
    for t in 0..64u32 {
        for o in 0..5u16 {
            let c = cap(u64::from(t) * 5 + u64::from(o));
            if fixed.grant(TaskId(t), ObjectId(o), &c).is_err() {
                fixed_stalls += 1;
            }
            cached
                .grant(TaskId(t), ObjectId(o), &c)
                .expect("memory-backed never stalls");
        }
    }
    for round in 0..2000u64 {
        let t = (round % 8) as u32; // hot set: 8 tasks
        let a = Access::read(MasterId(1), TaskId(t), u64::from(t) * 5 * 4096, 8)
            .with_object(ObjectId(0));
        let _ = cached.check(&a);
    }
    let rows = vec![
        vec![
            "fixed-256".to_owned(),
            fpgamodel::capchecker_area(256).luts.to_string(),
            format!("{fixed_stalls} grant stalls"),
            format!("{} cy", CheckerConfig::fine().pipeline_latency),
        ],
        vec![
            "cached-16".to_owned(),
            fpgamodel::capchecker_lite_area(16).luts.to_string(),
            "0 grant stalls".to_owned(),
            format!(
                "{:.1} cy effective ({} hot-set hit rate)",
                cached.effective_latency(),
                pct(1.0 - cached.cache_stats().miss_ratio())
            ),
        ],
    ];
    format!(
        "Ablation 3: fixed 256-entry table vs 16-entry cache over a memory table\n\
         (320 capabilities live, 8-task hot set)\n\n{}",
        table(
            &["Design", "LUTs", "Capacity behaviour", "Check latency"],
            &rows
        )
    )
}

fn shared_vs_distributed() -> String {
    let shared = fpgamodel::capchecker_area(256).luts;
    let distributed = INSTANCES as u64 * shared;
    let rows = vec![
        vec![
            "single shared".to_owned(),
            shared.to_string(),
            "full (1 beat/cycle bus)".to_owned(),
        ],
        vec![
            format!("per-accelerator x{INSTANCES}"),
            distributed.to_string(),
            "identical (bus is the bottleneck)".to_owned(),
        ],
    ];
    format!(
        "Ablation 4: shared vs per-accelerator CapCheckers (§5.2.1)\n\n{}",
        table(&["Topology", "LUTs", "Sustained bandwidth"], &rows)
    )
}

fn element_vs_burst_dma() -> String {
    // A streaming kernel issued element-by-element vs with AXI bursts.
    let element: Trace = (0..40_000u64)
        .map(|i| TraceOp::Mem {
            addr: i * 4,
            bytes: 4,
            write: false,
            object: 0,
        })
        .collect();
    let mut rows = Vec::new();
    for (label, trace) in [
        ("element (4 B)", element.clone()),
        ("burst 64 B", element.coalesce_bursts(64)),
        ("burst 256 B", element.coalesce_bursts(256)),
        ("burst 1 KiB", element.coalesce_bursts(1024)),
    ] {
        let run = |bus: &BusConfig| {
            simulate_accel_system(
                &[AccelTask {
                    trace: &trace,
                    cfg: AccelTimingConfig::default(),
                    start: 0,
                }],
                bus,
            )
            .makespan
        };
        let plain = run(&BusConfig::default());
        let checked = run(&BusConfig::default().with_checker(1));
        rows.push(vec![
            label.to_owned(),
            trace.mem_ops().to_string(),
            plain.to_string(),
            pct((checked as f64 - plain as f64) / plain as f64),
        ]);
    }
    format!(
        "Ablation 5: element DMA vs AXI bursts (same 160 KB of traffic)\n\
         (bursts slash request count, so per-request checker latency washes out)\n\n{}",
        table(&["DMA style", "Requests", "Makespan", "Checker ovh"], &rows)
    )
}

fn main() {
    println!("{}\n", table_size_sweep());
    println!("{}\n", pipeline_latency_sweep());
    println!("{}\n", fixed_vs_cached());
    println!("{}\n", shared_vs_distributed());
    println!("{}", element_vs_burst_dma());
}
