//! Regenerates every table and figure of the evaluation, in order.
fn main() {
    println!("{}", capcheri_bench::table1::report());
    println!("{}", capcheri_bench::table2::report());
    println!("{}", capcheri_bench::table3::report());
    println!("{}", capcheri_bench::fig7::report());
    println!("{}", capcheri_bench::fig8::report());
    println!("{}", capcheri_bench::fig9::report());
    println!("{}", capcheri_bench::fig10::report());
    println!("{}", capcheri_bench::fig11::report());
    println!("{}", capcheri_bench::fig12::report());
}
