//! `bench-trend` — diff performance snapshots and flag regressions.
//!
//! ```text
//! bench-trend <old.json> <new.json> [more.json ...] [--threshold PCT] [--json]
//! ```
//!
//! Takes two or more JSON snapshots — `BENCH_simulator.json`
//! (`capcheri.perf_baseline.v1`), `capcheri.profile.v1` reports, or any
//! other JSON document — flattens every numeric leaf to a dotted path
//! (`metrics.fig8_wall_ms_threads4`, `runs.0.cycles`, ...), and diffs
//! each consecutive pair. A metric moves the *wrong* way when it grows
//! by more than `--threshold` percent (default 5) — except for keys
//! that name rates or ratios (`per_sec`, `coverage`, `hit_rate`,
//! `speedup`, `throughput`, `utilization`), where shrinking is the
//! regression. Exit status is nonzero when any metric regresses, so CI
//! can gate on it; `--json` emits a `capcheri.trend.v1` report.
//!
//! ```text
//! cargo run --release -p capcheri-bench --bin bench-trend -- \
//!     BENCH_simulator.json /tmp/new.json --threshold 10
//! ```

use obs::json::JsonWriter;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> String {
    "usage: bench-trend <old.json> <new.json> [more.json ...] \
     [--threshold PCT] [--json]"
        .to_owned()
}

/// Flattens every numeric leaf of one JSON document into
/// `dotted.path -> value`. Array elements use their index as the path
/// segment. Strings, booleans, and nulls are skipped; duplicate paths
/// keep the last value.
fn flatten(text: &str) -> Result<BTreeMap<String, f64>, String> {
    obs::json::validate(text)?;
    let mut out = BTreeMap::new();
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    walk(bytes, &mut pos, "", &mut out);
    Ok(out)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn join(path: &str, segment: &str) -> String {
    if path.is_empty() {
        segment.to_owned()
    } else {
        format!("{path}.{segment}")
    }
}

/// Consumes one already-validated JSON value, recording number leaves.
fn walk(bytes: &[u8], pos: &mut usize, path: &str, out: &mut BTreeMap<String, f64>) {
    skip_ws(bytes, pos);
    match bytes[*pos] {
        b'{' => {
            *pos += 1;
            loop {
                skip_ws(bytes, pos);
                if bytes[*pos] == b'}' {
                    *pos += 1;
                    return;
                }
                let key = take_string(bytes, pos);
                skip_ws(bytes, pos);
                *pos += 1; // ':'
                walk(bytes, pos, &join(path, &key), out);
                skip_ws(bytes, pos);
                if bytes[*pos] == b',' {
                    *pos += 1;
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut index = 0usize;
            loop {
                skip_ws(bytes, pos);
                if bytes[*pos] == b']' {
                    *pos += 1;
                    return;
                }
                walk(bytes, pos, &join(path, &index.to_string()), out);
                index += 1;
                skip_ws(bytes, pos);
                if bytes[*pos] == b',' {
                    *pos += 1;
                }
            }
        }
        b'"' => {
            take_string(bytes, pos);
        }
        b't' => *pos += 4,
        b'f' => *pos += 5,
        b'n' => *pos += 4,
        _ => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if let Ok(v) = std::str::from_utf8(&bytes[start..*pos])
                .unwrap_or("")
                .parse::<f64>()
            {
                out.insert(path.to_owned(), v);
            }
        }
    }
}

/// Consumes a validated JSON string, returning its content with simple
/// escapes resolved (`\uXXXX` becomes `?` — path segments only).
fn take_string(bytes: &[u8], pos: &mut usize) -> String {
    let mut s = String::new();
    *pos += 1; // opening quote
    loop {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return s;
            }
            b'\\' => {
                *pos += 1;
                match bytes[*pos] {
                    b'u' => {
                        s.push('?');
                        *pos += 5;
                    }
                    b'n' => {
                        s.push('\n');
                        *pos += 1;
                    }
                    b't' => {
                        s.push('\t');
                        *pos += 1;
                    }
                    other => {
                        s.push(other as char);
                        *pos += 1;
                    }
                }
            }
            other => {
                s.push(other as char);
                *pos += 1;
            }
        }
    }
}

/// Metrics where bigger is better; everything else (latencies, cycle
/// counts, miss counters, wall times) regresses by growing.
fn higher_is_better(path: &str) -> bool {
    [
        "per_sec",
        "coverage",
        "hit_rate",
        "speedup",
        "throughput",
        "utilization",
    ]
    .iter()
    .any(|token| path.contains(token))
}

struct Delta {
    path: String,
    old: f64,
    new: f64,
    pct: f64,
    regressed: bool,
}

fn diff(old: &BTreeMap<String, f64>, new: &BTreeMap<String, f64>, threshold: f64) -> Vec<Delta> {
    let mut deltas = Vec::new();
    for (path, &a) in old {
        let Some(&b) = new.get(path) else { continue };
        if a == 0.0 {
            continue;
        }
        let pct = (b - a) / a * 100.0;
        let regressed = if higher_is_better(path) {
            pct < -threshold
        } else {
            pct > threshold
        };
        deltas.push(Delta {
            path: path.clone(),
            old: a,
            new: b,
            pct,
            regressed,
        });
    }
    deltas
}

struct Options {
    files: Vec<String>,
    threshold: f64,
    json: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        threshold: 5.0,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--threshold" => {
                opts.threshold = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
            }
            "--json" => opts.json = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}\n\n{}", usage()));
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    if opts.files.len() < 2 {
        return Err(format!("need at least two snapshots\n\n{}", usage()));
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut snapshots = Vec::new();
    for file in &opts.files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match flatten(&text) {
            Ok(map) => snapshots.push(map),
            Err(e) => {
                eprintln!("{file}: invalid JSON: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut regressions = 0usize;
    let mut w = JsonWriter::new();
    if opts.json {
        w.begin_object();
        w.key("schema");
        w.string("capcheri.trend.v1");
        w.key("threshold_pct");
        w.f64(opts.threshold);
        w.key("steps");
        w.begin_array();
    }
    for pair in opts.files.windows(2).zip(snapshots.windows(2)) {
        let ((from, to), (old, new)) = ((&pair.0[0], &pair.0[1]), (&pair.1[0], &pair.1[1]));
        let deltas = diff(old, new, opts.threshold);
        if opts.json {
            w.begin_object();
            w.key("from");
            w.string(from);
            w.key("to");
            w.string(to);
            w.key("deltas");
            w.begin_array();
            for d in &deltas {
                w.begin_object();
                w.key("metric");
                w.string(&d.path);
                w.key("old");
                w.f64(d.old);
                w.key("new");
                w.f64(d.new);
                w.key("pct");
                w.f64(d.pct);
                w.key("regressed");
                w.bool(d.regressed);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        } else {
            println!(
                "trend: {from} -> {to} ({} shared metrics, threshold {}%)",
                deltas.len(),
                opts.threshold
            );
            for d in &deltas {
                let verdict = if d.regressed {
                    "REGRESSED"
                } else if d.pct.abs() <= opts.threshold {
                    "ok"
                } else {
                    "improved"
                };
                println!(
                    "  {:<44} {:>12.1} -> {:>12.1}  {:>+7.1}%  {verdict}",
                    d.path, d.old, d.new, d.pct
                );
            }
        }
        regressions += deltas.iter().filter(|d| d.regressed).count();
    }
    if opts.json {
        w.end_array();
        w.key("regressions");
        w.u64(regressions as u64);
        w.end_object();
        println!("{}", w.finish());
    } else {
        println!("regressions: {regressions}");
    }
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_walks_objects_arrays_and_skips_non_numbers() {
        let map = flatten("{\"a\":{\"b\":1.5,\"c\":[2,3]},\"s\":\"text\",\"t\":true,\"n\":null}")
            .unwrap();
        assert_eq!(map.get("a.b"), Some(&1.5));
        assert_eq!(map.get("a.c.0"), Some(&2.0));
        assert_eq!(map.get("a.c.1"), Some(&3.0));
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn direction_heuristic_matches_metric_names() {
        assert!(higher_is_better("metrics.bench_cells_per_sec"));
        assert!(higher_is_better("runs.0.coverage"));
        assert!(!higher_is_better("metrics.fig8_wall_ms_threads4"));
        assert!(!higher_is_better("runs.0.cycles"));
    }

    #[test]
    fn diff_flags_the_right_direction() {
        let old = BTreeMap::from([
            ("wall_ms".to_owned(), 100.0),
            ("ops_per_sec".to_owned(), 100.0),
        ]);
        let new = BTreeMap::from([
            ("wall_ms".to_owned(), 120.0),
            ("ops_per_sec".to_owned(), 120.0),
        ]);
        let deltas = diff(&old, &new, 5.0);
        let wall = deltas.iter().find(|d| d.path == "wall_ms").unwrap();
        let ops = deltas.iter().find(|d| d.path == "ops_per_sec").unwrap();
        assert!(wall.regressed, "wall time +20% must regress");
        assert!(!ops.regressed, "throughput +20% is an improvement");
        let deltas = diff(&new, &old, 5.0);
        assert!(
            deltas
                .iter()
                .find(|d| d.path == "ops_per_sec")
                .unwrap()
                .regressed,
            "throughput -17% must regress"
        );
    }
}
