//! Regenerates the paper's fig10 output.
fn main() {
    println!("{}", capcheri_bench::fig10::report());
}
