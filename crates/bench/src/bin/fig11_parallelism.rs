//! Regenerates the paper's fig11 output.
fn main() {
    println!("{}", capcheri_bench::fig11::report());
}
