//! Regenerates the paper's fig12 output.
fn main() {
    println!("{}", capcheri_bench::fig12::report());
}
