//! Regenerates the paper's fig7 output.
fn main() {
    println!("{}", capcheri_bench::fig7::report());
}
