//! Regenerates the paper's fig8 output.
fn main() {
    println!("{}", capcheri_bench::fig8::report());
}
