//! Regenerates the paper's fig9 output.
fn main() {
    println!("{}", capcheri_bench::fig9::report());
}
