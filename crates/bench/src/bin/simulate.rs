//! `simulate` — run any benchmark under any system configuration.
//!
//! A small operator tool over the same harness the figures use:
//!
//! ```text
//! simulate <benchmark|all> [--variant cpu|ccpu|cpu+accel|ccpu+accel|ccpu+caccel]
//!          [--tasks N] [--seed S] [--json] [--trace-out <path>]
//! ```
//!
//! `--json` replaces the table with a machine-readable report on the
//! `capcheri.bench_report.v1` schema; `--trace-out` writes a Chrome
//! trace-event file (load it at <https://ui.perfetto.dev>). Both are
//! byte-deterministic for a fixed benchmark, variant, task count, and
//! seed.
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p capcheri-bench --bin simulate -- gemm_ncubed --tasks 4
//! cargo run --release -p capcheri-bench --bin simulate -- all --variant ccpu
//! ```

use capchecker::SystemVariant;
use capcheri_bench::runner;
use machsuite::Benchmark;
use obs::report::{reports_to_json, BenchReport};
use std::process::ExitCode;

struct Options {
    benches: Vec<Benchmark>,
    variant: SystemVariant,
    tasks: usize,
    seed: u64,
    json: bool,
    trace_out: Option<String>,
}

fn usage() -> String {
    let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
    format!(
        "usage: simulate <benchmark|all> [--variant cpu|ccpu|cpu+accel|ccpu+accel|ccpu+caccel]\n\
         \x20               [--tasks N] [--seed S] [--json] [--trace-out FILE]\n\n\
         benchmarks: {}",
        names.join(", ")
    )
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        benches: Vec::new(),
        variant: SystemVariant::CheriCpuCheriAccel,
        tasks: 1,
        seed: 0xC0DE,
        json: false,
        trace_out: None,
    };
    let mut it = args.iter();
    let first = it.next().ok_or_else(usage)?;
    if first == "all" {
        opts.benches = Benchmark::ALL.to_vec();
    } else {
        opts.benches.push(
            first
                .parse::<Benchmark>()
                .map_err(|e| format!("{e}\n\n{}", usage()))?,
        );
    }
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--variant" => {
                let v = value(&mut it)?;
                opts.variant = SystemVariant::ALL
                    .into_iter()
                    .find(|x| x.label() == v)
                    .ok_or_else(|| format!("unknown variant {v:?}"))?;
            }
            "--tasks" => {
                opts.tasks = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?;
            }
            "--seed" => {
                opts.seed = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--json" => opts.json = true,
            "--trace-out" => opts.trace_out = Some(value(&mut it)?),
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    if opts.trace_out.is_some() && opts.benches.len() > 1 {
        return Err("--trace-out needs a single benchmark (events from \
                    several runs would share one file)"
            .to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let observed = opts.json || opts.trace_out.is_some();
    if !opts.json {
        println!(
            "{:<14} {:>12} {:>8} {:>12} {:>10} {:>9}",
            "benchmark", "variant", "tasks", "cycles", "setup", "bus util"
        );
    }
    let mut reports = Vec::new();
    for bench in opts.benches {
        let r = if observed {
            let run = runner::run_benchmark_observed(bench, opts.variant, opts.tasks, opts.seed);
            if let Some(path) = &opts.trace_out {
                let json = obs::chrome::chrome_trace_json(&run.events.sorted_by_cycle());
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            reports.push(BenchReport {
                bench: bench.name().to_owned(),
                variant: run.result.variant.label().to_owned(),
                tasks: run.result.tasks,
                seed: opts.seed,
                metrics: run.metrics,
            });
            run.result
        } else {
            runner::run_benchmark(bench, opts.variant, opts.tasks, opts.seed)
        };
        if !opts.json {
            println!(
                "{:<14} {:>12} {:>8} {:>12} {:>10} {:>8.1}%",
                bench.name(),
                r.variant.label(),
                r.tasks,
                r.cycles,
                r.setup_cycles,
                r.bus_utilization * 100.0
            );
        }
    }
    if opts.json {
        println!("{}", reports_to_json(&reports));
    }
    ExitCode::SUCCESS
}
