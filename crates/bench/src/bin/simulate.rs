//! `simulate` — run any benchmark under any system configuration.
//!
//! A small operator tool over the same harness the figures use:
//!
//! ```text
//! simulate <benchmark|all> [--variant cpu|ccpu|cpu+accel|ccpu+accel|ccpu+caccel]
//!          [--tasks N] [--seed S] [--threads N] [--json] [--trace-out <path>]
//! simulate faults [--spec SPEC] [--tasks N] [--seed S] [--fus N] [--json]
//! simulate conformance [--seed S] [--ops N] [--json]
//! simulate analyze [--lint] [--flow | --incremental] [--streams N] [--ops N]
//!          [--seed S] [--threads N] [--json] [--out FILE]
//! simulate profile <benchmark|all> [--variant V] [--tasks N] [--seed S]
//!          [--threads N] [--json] [--out FILE]
//! simulate adapt <benchmark|all|campaign> [--epochs N] [--tasks N] [--seed S]
//!          [--spec SPEC] [--fus N] [--threads N] [--json] [--out FILE]
//! ```
//!
//! `--threads N` fans independent benchmark cells out over a scoped
//! worker pool (default: `CAPCHERI_THREADS` or the machine's available
//! parallelism). Results are merged in benchmark order, so every output
//! — table, `--json` report, `--trace-out` file — is byte-identical for
//! any thread count.
//!
//! `--json` replaces the table with a machine-readable report on the
//! `capcheri.bench_report.v1` schema; `--trace-out` writes a Chrome
//! trace-event file (load it at <https://ui.perfetto.dev>). Both are
//! byte-deterministic for a fixed benchmark, variant, task count, and
//! seed.
//!
//! The `faults` subcommand runs a deterministic fault-injection campaign
//! against the recovering driver. `--spec` takes a declarative fault
//! spec — `none`, `all:<rate>`, or `kind:rate,...` over the kinds
//! `tag-flip`, `rogue-dma`, `garbled-dma`, `engine-hang`, `bus-stall`,
//! `dropped-beat`, `cache-corrupt` — and `--json` emits the
//! `capcheri.fault_campaign.v1` report, byte-identical for a fixed spec,
//! seed, and task count.
//!
//! The `conformance` subcommand replays a seeded op stream through every
//! checker implementation and the golden oracle, diffing each verdict,
//! exception code, and the final tag state (see the `conformance`
//! crate). Exit status is nonzero on any divergence; `--json` emits the
//! `capcheri.conformance.v1` report; a divergent run prints a shrunk,
//! ready-to-paste minimal reproducer.
//!
//! The `profile` subcommand reruns a benchmark with the hierarchical
//! span profiler and check attribution attached and prints where every
//! simulated cycle went — the span tree, profiler histograms, and hot
//! `(task, object)` check pairs. `--json` emits the
//! `capcheri.profile.v1` report, which serializes only cycle-domain
//! quantities and is therefore byte-identical for any `--threads`
//! value; `--out FILE` writes the report to a file instead of stdout.
//!
//! The `adapt` subcommand closes the loop: the online adaptive policy
//! controller drives real runs. With a benchmark (or `all`) it runs
//! `--epochs` epochs under the cache-backed checker, feeding the cache's
//! stall signals back into the controller so Fine ⇄ Coarse mode switches
//! take effect on the next epoch. With the `campaign` pseudo-target it
//! reruns the fault campaign with the controller in charge of
//! degradation, probationary re-promotion, and quarantine release.
//! `--json` emits the `capcheri.adapt.v1` report; decisions carry their
//! epoch, rule, raw inputs, and hysteresis state, and the bytes are
//! identical for any `--threads` value.
//!
//! The `analyze` subcommand runs the static capability-flow analyzer
//! over every benchmark configuration and reports the proved-safe ports,
//! over-privileged default grants, and the measured cycle payoff of
//! eliding the proved checks (`capcheri.staticreport.v1` with `--json`).
//! `--streams N` additionally analyzes N seeded conformance op streams
//! and *verifies* each verdict map by replaying the elided checkers
//! against the golden oracle — an unsound map is a hard failure.
//! `--lint` runs the repository lint pass (nondeterminism hazards,
//! panic-in-hot-path, nd-hashmap-iter, unsafe-audit) and fails on any
//! finding. `--flow` switches to the incremental dataflow engine's
//! report: barrier-delimited segment verdicts, the re-analysis work
//! ratio under grant churn, and provenance flow findings
//! (`capcheri.flowreport.v1` with `--json`); `--incremental` does the
//! same through the caching engine and asserts incremental ≡
//! from-scratch — the emitted bytes are identical either way, so CI
//! `cmp`s the two files. Each segment's verdict map is replayed through
//! the elided checkers against the golden oracle; a divergence fails
//! the run.
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p capcheri-bench --bin simulate -- gemm_ncubed --tasks 4
//! cargo run --release -p capcheri-bench --bin simulate -- all --variant ccpu
//! cargo run --release -p capcheri-bench --bin simulate -- faults --spec all:0.8 --tasks 64
//! cargo run --release -p capcheri-bench --bin simulate -- conformance --seed 1 --ops 10000
//! ```

use capchecker::{run_adaptive_campaign, run_campaign, AdaptConfig, CampaignConfig, SystemVariant};
use capcheri_bench::adapt::AdaptBenchReport;
use capcheri_bench::profile::ProfileReport;
use capcheri_bench::runner;
use hetsim::FaultSpec;
use machsuite::Benchmark;
use obs::report::{reports_to_json, BenchReport};
use std::process::ExitCode;

struct Options {
    benches: Vec<Benchmark>,
    variant: SystemVariant,
    tasks: usize,
    seed: u64,
    threads: usize,
    json: bool,
    trace_out: Option<String>,
}

fn usage() -> String {
    let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
    format!(
        "usage: simulate <benchmark|all> [--variant cpu|ccpu|cpu+accel|ccpu+accel|ccpu+caccel]\n\
         \x20               [--tasks N] [--seed S] [--threads N] [--json] [--trace-out FILE]\n\
         \x20      simulate faults [--spec none|all:RATE|kind:RATE,...] [--tasks N] [--seed S]\n\
         \x20               [--fus N] [--json]\n\
         \x20      simulate conformance [--seed S] [--ops N] [--json]\n\
         \x20      simulate verify [--depth N] [--tasks N] [--objects N] [--threads N]\n\
         \x20               [--planted-bug off-by-one] [--json] [--out FILE]\n\
         \x20      simulate analyze [--lint] [--flow | --incremental] [--streams N] [--ops N]\n\
         \x20               [--seed S] [--threads N] [--json] [--out FILE]\n\
         \x20      simulate profile <benchmark|all> [--variant V] [--tasks N] [--seed S]\n\
         \x20               [--threads N] [--json] [--out FILE]\n\
         \x20      simulate adapt <benchmark|all|campaign> [--epochs N] [--tasks N] [--seed S]\n\
         \x20               [--spec SPEC] [--fus N] [--threads N] [--json] [--out FILE]\n\n\
         benchmarks: {}\n\
         fault kinds: {}",
        names.join(", "),
        obs::FaultKind::ALL
            .iter()
            .map(|k| k.label())
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn parse_faults(args: &[String]) -> Result<(CampaignConfig, bool), String> {
    let mut config = CampaignConfig::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--spec" => {
                config.spec = value(&mut it)?
                    .parse::<FaultSpec>()
                    .map_err(|e| format!("--spec: {e}"))?;
            }
            "--tasks" => {
                config.tasks = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?;
            }
            "--seed" => {
                config.seed = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--fus" => {
                config.fus = value(&mut it)?.parse().map_err(|e| format!("--fus: {e}"))?;
            }
            "--json" => json = true,
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    Ok((config, json))
}

fn run_faults(config: &CampaignConfig, json: bool) -> ExitCode {
    let report = match run_campaign(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", report.to_json());
        return ExitCode::SUCCESS;
    }
    println!(
        "fault campaign: {} tasks, seed {:#x}, spec {:?}",
        report.tasks, report.seed, report.spec
    );
    println!("{:<16} {:>8}", "injected", "count");
    for (kind, n) in report.injected_counts() {
        println!("{kind:<16} {n:>8}");
    }
    println!("{:<18} {:>8}", "resolution", "count");
    for (res, n) in report.resolution_counts() {
        println!("{res:<18} {n:>8}");
    }
    println!(
        "degraded: {}  quarantined fus: {}  denied checks: {}  \
         corruption detected: {}  driver cycles: {}  events: {}",
        report.degraded,
        report.quarantined_fus,
        report.denied_checks,
        report.corruption_detected,
        report.driver_cycles,
        report.events
    );
    ExitCode::SUCCESS
}

fn parse_conformance(args: &[String]) -> Result<(u64, u64, bool), String> {
    let (mut seed, mut ops, mut json) = (1u64, 10_000u64, false);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--seed" => {
                seed = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--ops" => ops = value(&mut it)?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--json" => json = true,
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    Ok((seed, ops, json))
}

fn parse_verify(
    args: &[String],
) -> Result<(capcheri_mc::ExploreConfig, bool, Option<String>), String> {
    let mut cfg = capcheri_mc::ExploreConfig::new(10);
    let mut json = false;
    let mut out = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--depth" => {
                cfg.depth = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?;
            }
            "--tasks" => {
                cfg.tasks = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?;
            }
            "--objects" => {
                cfg.objects = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--objects: {e}"))?;
            }
            "--threads" => {
                cfg.threads = value(&mut it)?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1);
            }
            "--planted-bug" => match value(&mut it)?.as_str() {
                "off-by-one" => cfg.planted = Some(capcheri_mc::PlantedBug::BoundsOffByOne),
                other => return Err(format!("--planted-bug: unknown bug {other:?}")),
            },
            "--json" => json = true,
            "--out" => out = Some(value(&mut it)?),
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    if !(1..=4).contains(&cfg.tasks) || !(1..=4).contains(&cfg.objects) {
        return Err("--tasks and --objects must be 1-4 (the model is deliberately tiny)".into());
    }
    Ok((cfg, json, out))
}

fn run_verify(cfg: capcheri_mc::ExploreConfig, json: bool, out: Option<String>) -> ExitCode {
    let result = capcheri_mc::explore(cfg);
    let rendered = if json {
        capcheri_mc::to_json(&cfg, &result)
    } else {
        capcheri_mc::summary(&cfg, &result)
    };
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("cannot write {path}: {e}");
            // Internal error, not a property verdict.
            return ExitCode::from(2);
        }
    } else {
        print!("{rendered}");
        if !rendered.ends_with('\n') {
            println!();
        }
    }
    if result.violation.is_none() {
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!("verify FAILED: a property violation was found");
        }
        ExitCode::FAILURE
    }
}

fn run_conformance(seed: u64, ops: u64, json: bool) -> ExitCode {
    let report = threatbench::fuzz::conformance_campaign(ops, seed);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.summary());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!("conformance FAILED: an implementation diverged from the oracle");
        }
        ExitCode::FAILURE
    }
}

struct AnalyzeOptions {
    lint: bool,
    streams: u64,
    ops: u64,
    seed: u64,
    threads: usize,
    json: bool,
    out: Option<String>,
    /// Emit the `capcheri.flowreport.v1` report from a from-scratch
    /// flow analysis.
    flow: bool,
    /// As `flow`, but through the incremental engine (byte-identical
    /// output; the engine asserts incremental ≡ from-scratch itself).
    incremental: bool,
}

fn parse_analyze(args: &[String]) -> Result<AnalyzeOptions, String> {
    let mut opts = AnalyzeOptions {
        lint: false,
        streams: 0,
        // Short enough that the adversarial generator leaves some pairs
        // denial-free, so verified runs actually exercise elision.
        ops: 400,
        seed: 1,
        threads: perf::auto_threads(),
        json: false,
        out: None,
        flow: false,
        incremental: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--lint" => opts.lint = true,
            "--flow" => opts.flow = true,
            "--incremental" => {
                opts.flow = true;
                opts.incremental = true;
            }
            "--streams" => {
                opts.streams = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--streams: {e}"))?;
            }
            "--ops" => opts.ops = value(&mut it)?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--seed" => {
                opts.seed = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                opts.threads = value(&mut it)?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1);
            }
            "--json" => opts.json = true,
            "--out" => opts.out = Some(value(&mut it)?),
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Analyzes `count` seeded op streams and replays each verdict map
/// through the elided checkers against the golden oracle. Returns
/// `false` if any replay diverges (an unsound verdict map).
fn verify_streams(first_seed: u64, count: u64, ops: u64) -> bool {
    let mut sound = true;
    for i in 0..count {
        let seed = first_seed.wrapping_add(i);
        let stream = conformance::generate(seed, ops as usize);
        let analysis = capcheri_analyze::analyze_stream(&stream);
        let outcome = conformance::run_ops_elided(&stream, &analysis.verdict_map());
        let ok = outcome.is_clean();
        sound &= ok;
        println!(
            "stream seed {seed}: {} safe, {} flagged, {} dynamic; \
             {} checks elided; oracle replay {}",
            analysis.safe,
            analysis.flagged,
            analysis.dynamic,
            outcome.elided,
            if ok { "clean" } else { "DIVERGED" }
        );
        for f in &analysis.findings {
            println!("  finding {f}");
        }
    }
    sound
}

/// Runs the flow-report path of `simulate analyze`: the incremental (or
/// from-scratch) dataflow engine over seeded streams plus the kernel
/// fixtures, emitting the byte-deterministic `capcheri.flowreport.v1`.
fn run_analyze_flow(opts: &AnalyzeOptions) -> ExitCode {
    // The flow report always analyzes at least a few streams — the work
    // ratio is meaningless on an empty stream set.
    let streams = opts.streams.max(4);
    let report = capcheri_bench::flowreport::FlowReport::collect(
        opts.seed,
        streams,
        opts.ops,
        opts.threads,
        opts.incremental,
    );
    let rendered = if opts.json {
        report.to_json()
    } else {
        report.render()
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => {
            print!("{rendered}");
            if !rendered.ends_with('\n') {
                println!();
            }
        }
    }
    if !report.all_replays_clean() {
        eprintln!("analyze: a segment-elided replay diverged from the oracle");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_analyze(opts: &AnalyzeOptions) -> ExitCode {
    if opts.lint {
        let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        match capcheri_analyze::lint_paths(&root) {
            Ok(findings) if findings.is_empty() => println!("lint: clean"),
            Ok(findings) => {
                for f in &findings {
                    println!("{f}");
                }
                eprintln!("lint: {} finding(s)", findings.len());
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("lint: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    if opts.flow {
        return run_analyze_flow(opts);
    }
    let rows = capcheri_bench::staticreport::rows_threads(opts.threads);
    let unsafe_findings: usize = rows.iter().map(|r| r.run.analysis.findings.len()).sum();
    let rendered = if opts.json {
        capcheri_bench::staticreport::rows_to_json(&rows)
    } else {
        capcheri_bench::staticreport::render_rows(&rows)
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => println!("{rendered}"),
    }
    if unsafe_findings > 0 {
        eprintln!("analyze: {unsafe_findings} statically-unsafe finding(s)");
        return ExitCode::FAILURE;
    }
    if opts.streams > 0 && !verify_streams(opts.seed, opts.streams, opts.ops) {
        eprintln!("analyze: an elided replay diverged from the oracle");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

struct ProfileOptions {
    benches: Vec<Benchmark>,
    variant: SystemVariant,
    tasks: usize,
    seed: u64,
    threads: usize,
    json: bool,
    out: Option<String>,
}

fn parse_profile(args: &[String]) -> Result<ProfileOptions, String> {
    let mut opts = ProfileOptions {
        benches: Vec::new(),
        variant: SystemVariant::CheriCpuCheriAccel,
        tasks: 1,
        seed: 0xC0DE,
        threads: perf::auto_threads(),
        json: false,
        out: None,
    };
    let mut it = args.iter();
    let first = it.next().ok_or_else(usage)?;
    if first == "all" {
        opts.benches = Benchmark::ALL.to_vec();
    } else {
        opts.benches.push(
            first
                .parse::<Benchmark>()
                .map_err(|e| format!("{e}\n\n{}", usage()))?,
        );
    }
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--variant" => {
                let v = value(&mut it)?;
                opts.variant = SystemVariant::ALL
                    .into_iter()
                    .find(|x| x.label() == v)
                    .ok_or_else(|| format!("unknown variant {v:?}"))?;
            }
            "--tasks" => {
                opts.tasks = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?;
            }
            "--seed" => {
                opts.seed = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                opts.threads = value(&mut it)?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1);
            }
            "--json" => opts.json = true,
            "--out" => opts.out = Some(value(&mut it)?),
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    Ok(opts)
}

fn run_profile(opts: &ProfileOptions) -> ExitCode {
    // One profiled run per worker; index-ordered merge makes the output
    // byte-identical for any --threads value (the profile serializes
    // only simulated quantities — see capcheri_bench::profile).
    let reports = perf::parallel_map(opts.threads, opts.benches.len(), |i| {
        ProfileReport::collect(opts.benches[i], opts.variant, opts.tasks, opts.seed)
    });
    let reports = match reports {
        Ok(r) => r,
        Err(p) => {
            eprintln!("{p}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = if opts.json {
        capcheri_bench::profile::reports_to_json(&reports)
    } else {
        capcheri_bench::profile::render_all(&reports)
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

struct AdaptOptions {
    /// Empty means the `campaign` pseudo-target.
    benches: Vec<Benchmark>,
    campaign: CampaignConfig,
    epochs: u32,
    /// `None` keeps each target's own default (1 concurrent task per
    /// bench epoch; the campaign default task count for `campaign`).
    tasks: Option<usize>,
    seed: u64,
    threads: usize,
    json: bool,
    out: Option<String>,
}

fn parse_adapt(args: &[String]) -> Result<AdaptOptions, String> {
    let mut opts = AdaptOptions {
        benches: Vec::new(),
        campaign: CampaignConfig::default(),
        epochs: 4,
        tasks: None,
        seed: 0xC0DE,
        threads: perf::auto_threads(),
        json: false,
        out: None,
    };
    let mut it = args.iter();
    let first = it.next().ok_or_else(usage)?;
    match first.as_str() {
        "campaign" => {}
        "all" => opts.benches = Benchmark::ALL.to_vec(),
        name => opts.benches.push(
            name.parse::<Benchmark>()
                .map_err(|e| format!("{e}\n\n{}", usage()))?,
        ),
    }
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--epochs" => {
                opts.epochs = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?;
            }
            "--tasks" => {
                opts.tasks = Some(
                    value(&mut it)?
                        .parse()
                        .map_err(|e| format!("--tasks: {e}"))?,
                );
            }
            "--seed" => {
                opts.seed = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--spec" => {
                opts.campaign.spec = value(&mut it)?
                    .parse::<FaultSpec>()
                    .map_err(|e| format!("--spec: {e}"))?;
            }
            "--fus" => {
                opts.campaign.fus = value(&mut it)?.parse().map_err(|e| format!("--fus: {e}"))?;
            }
            "--threads" => {
                opts.threads = value(&mut it)?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1);
            }
            "--json" => opts.json = true,
            "--out" => opts.out = Some(value(&mut it)?),
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    Ok(opts)
}

fn write_or_print(out: &Option<String>, rendered: &str) -> ExitCode {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        None => {
            print!("{rendered}");
            if !rendered.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
    }
}

fn run_adapt_campaign(opts: &AdaptOptions) -> ExitCode {
    let mut config = opts.campaign.clone();
    if let Some(tasks) = opts.tasks {
        config.tasks = u32::try_from(tasks.max(1)).map_or(u32::MAX, |t| t);
    }
    config.seed = opts.seed;
    let report = match run_adaptive_campaign(&config, &AdaptConfig::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("adaptive campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.json {
        return write_or_print(&opts.out, &report.to_json());
    }
    let mut text = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        text,
        "adaptive campaign: {} tasks, seed {:#x}, spec {:?}, {} epochs",
        report.campaign.tasks, report.campaign.seed, report.campaign.spec, report.epochs
    );
    let _ = writeln!(text, "{:<22} {:>8}", "resolution", "count");
    for (res, n) in report.campaign.resolution_counts() {
        let _ = writeln!(text, "{res:<22} {n:>8}");
    }
    if report.decisions.is_empty() {
        let _ = writeln!(text, "decisions: none");
    } else {
        let _ = writeln!(text, "decisions:");
        for d in &report.decisions {
            let _ = writeln!(
                text,
                "  epoch {:<3} {:<15} share={}% corruption={} dwell={}",
                d.epoch,
                d.rule.label(),
                d.stall_share_pct,
                d.corruption,
                d.dwell
            );
        }
    }
    let _ = writeln!(
        text,
        "final: mode={} cache={} released_fus={} latched_fus={}",
        report.final_mode.label(),
        report.cache_health.label(),
        report.released_fus,
        report.latched_fus
    );
    write_or_print(&opts.out, &text)
}

fn run_adapt(opts: &AdaptOptions) -> ExitCode {
    if opts.benches.is_empty() {
        return run_adapt_campaign(opts);
    }
    // One closed-loop series per worker; index-ordered merge keeps the
    // output byte-identical for any --threads value (the report
    // serializes only simulated quantities).
    let reports = perf::parallel_map(opts.threads, opts.benches.len(), |i| {
        AdaptBenchReport::collect(
            opts.benches[i],
            opts.epochs,
            opts.tasks.unwrap_or(1),
            opts.seed,
            AdaptConfig::default(),
        )
    });
    let reports = match reports {
        Ok(r) => r,
        Err(p) => {
            eprintln!("{p}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = if opts.json {
        capcheri_bench::adapt::reports_to_json(&reports)
    } else {
        capcheri_bench::adapt::render_all(&reports)
    };
    write_or_print(&opts.out, &rendered)
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        benches: Vec::new(),
        variant: SystemVariant::CheriCpuCheriAccel,
        tasks: 1,
        seed: 0xC0DE,
        threads: perf::auto_threads(),
        json: false,
        trace_out: None,
    };
    let mut it = args.iter();
    let first = it.next().ok_or_else(usage)?;
    if first == "all" {
        opts.benches = Benchmark::ALL.to_vec();
    } else {
        opts.benches.push(
            first
                .parse::<Benchmark>()
                .map_err(|e| format!("{e}\n\n{}", usage()))?,
        );
    }
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--variant" => {
                let v = value(&mut it)?;
                opts.variant = SystemVariant::ALL
                    .into_iter()
                    .find(|x| x.label() == v)
                    .ok_or_else(|| format!("unknown variant {v:?}"))?;
            }
            "--tasks" => {
                opts.tasks = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?;
            }
            "--seed" => {
                opts.seed = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                opts.threads = value(&mut it)?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1);
            }
            "--json" => opts.json = true,
            "--trace-out" => opts.trace_out = Some(value(&mut it)?),
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    if opts.trace_out.is_some() && opts.benches.len() > 1 {
        return Err("--trace-out needs a single benchmark (events from \
                    several runs would share one file)"
            .to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("conformance") {
        return match parse_conformance(&args[1..]) {
            Ok((seed, ops, json)) => run_conformance(seed, ops, json),
            Err(msg) => {
                eprintln!("{msg}");
                // Exit 1 is reserved for "property violated"; a bad
                // invocation is an internal error (exit 2), so CI can
                // tell a red verdict from a broken harness.
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("verify") {
        return match parse_verify(&args[1..]) {
            Ok((cfg, json, out)) => run_verify(cfg, json, out),
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("analyze") {
        return match parse_analyze(&args[1..]) {
            Ok(opts) => run_analyze(&opts),
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("profile") {
        return match parse_profile(&args[1..]) {
            Ok(opts) => run_profile(&opts),
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("adapt") {
        return match parse_adapt(&args[1..]) {
            Ok(opts) => run_adapt(&opts),
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("faults") {
        return match parse_faults(&args[1..]) {
            Ok((config, json)) => run_faults(&config, json),
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let observed = opts.json || opts.trace_out.is_some();
    if !opts.json {
        println!(
            "{:<14} {:>12} {:>8} {:>12} {:>10} {:>9}",
            "benchmark", "variant", "tasks", "cycles", "setup", "bus util"
        );
    }
    // Each cell runs on its own worker with its own registry and trace
    // buffer; merging in benchmark order keeps every output byte-identical
    // to a sequential run. A worker panic surfaces as one clean error.
    let cells = perf::parallel_map(opts.threads, opts.benches.len(), |i| {
        let bench = opts.benches[i];
        if observed {
            let run = runner::run_benchmark_observed(bench, opts.variant, opts.tasks, opts.seed);
            let trace = opts
                .trace_out
                .is_some()
                .then(|| obs::chrome::chrome_trace_json(&run.events.sorted_by_cycle()));
            let report = BenchReport {
                bench: bench.name().to_owned(),
                variant: run.result.variant.label().to_owned(),
                tasks: run.result.tasks,
                seed: opts.seed,
                metrics: run.metrics,
            };
            (run.result, Some(report), trace)
        } else {
            let r = runner::run_benchmark(bench, opts.variant, opts.tasks, opts.seed);
            (r, None, None)
        }
    });
    let cells = match cells {
        Ok(c) => c,
        Err(p) => {
            eprintln!("{p}");
            return ExitCode::FAILURE;
        }
    };
    let mut reports = Vec::new();
    for (bench, (r, report, trace)) in opts.benches.iter().zip(cells) {
        if let (Some(path), Some(json)) = (&opts.trace_out, trace) {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        reports.extend(report);
        if !opts.json {
            println!(
                "{:<14} {:>12} {:>8} {:>12} {:>10} {:>8.1}%",
                bench.name(),
                r.variant.label(),
                r.tasks,
                r.cycles,
                r.setup_cycles,
                r.bus_utilization * 100.0
            );
        }
    }
    if opts.json {
        println!("{}", reports_to_json(&reports));
    }
    ExitCode::SUCCESS
}
