//! Regenerates the paper's table1 output.
fn main() {
    println!("{}", capcheri_bench::table1::report());
}
