//! Regenerates the paper's table2 output.
fn main() {
    println!("{}", capcheri_bench::table2::report());
}
