//! Regenerates the paper's table3 output.
fn main() {
    println!("{}", capcheri_bench::table3::report());
}
