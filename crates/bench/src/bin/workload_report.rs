//! Characterizes every benchmark's operation stream: memory traffic,
//! compute, arithmetic intensity, and write/copy mix — the quantitative
//! backing for the Figure 7 calibration (see `machsuite::accel`).

use capcheri_bench::render::table;
use machsuite::{stats, Benchmark};

fn main() {
    let rows: Vec<Vec<String>> = Benchmark::ALL
        .iter()
        .map(|b| {
            let s = stats::characterize(*b, 0xC0DE);
            vec![
                b.name().to_owned(),
                s.mem_ops.to_string(),
                s.mem_bytes.to_string(),
                s.compute_units.to_string(),
                format!("{:.2}", s.arithmetic_intensity),
                format!("{:.0}%", s.write_fraction * 100.0),
                s.copy_bytes.to_string(),
            ]
        })
        .collect();
    println!("Workload characterization (one task; kernels verified against references)\n");
    println!(
        "{}",
        table(
            &[
                "Benchmark",
                "Mem ops",
                "Mem bytes",
                "Compute",
                "Units/B",
                "Writes",
                "Copy bytes"
            ],
            &rows
        )
    );
    println!("Units/B = arithmetic intensity; > ~50 accelerates by thousands (Fig 7),");
    println!("< ~2 is memory-bound and loses to the cached CPU.");
}
