//! Figure 10 — wall-clock breakdown across the five system
//! configurations, per benchmark.
//!
//! The paper's observations this reproduces: adding the CapChecker
//! (`ccpu+accel` → `ccpu+caccel`) costs less than adding CHERI to the CPU
//! (`cpu` → `ccpu`) for most benchmarks, and `gemm_blocked` actually runs
//! *faster* on the CHERI CPU thanks to the 128-bit capability-copy
//! instruction.

use crate::render::{pct, speedup, table};
use crate::runner;
use capchecker::SystemVariant;
use hetsim::Cycles;
use machsuite::Benchmark;

/// One benchmark's cycles under all five configurations.
#[derive(Clone, Copy, Debug)]
pub struct BreakdownRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// Cycles in [`SystemVariant::ALL`] order.
    pub cycles: [Cycles; 5],
}

impl BreakdownRow {
    /// Cycles under one configuration.
    #[must_use]
    pub fn of(&self, variant: SystemVariant) -> Cycles {
        let idx = SystemVariant::ALL
            .iter()
            .position(|v| *v == variant)
            .expect("known variant");
        self.cycles[idx]
    }

    /// CHERI-on-CPU overhead: `ccpu` vs `cpu`.
    #[must_use]
    pub fn cheri_cpu_overhead(&self) -> f64 {
        let cpu = self.of(SystemVariant::Cpu) as f64;
        (self.of(SystemVariant::CheriCpu) as f64 - cpu) / cpu
    }

    /// CapChecker overhead: `ccpu+caccel` vs `ccpu+accel`.
    #[must_use]
    pub fn checker_overhead(&self) -> f64 {
        let base = self.of(SystemVariant::CheriCpuAccel) as f64;
        (self.of(SystemVariant::CheriCpuCheriAccel) as f64 - base) / base
    }
}

/// Computes one row.
#[must_use]
pub fn row(bench: Benchmark) -> BreakdownRow {
    let mut cycles = [0; 5];
    for (i, v) in SystemVariant::ALL.into_iter().enumerate() {
        cycles[i] = runner::cycles(bench, v);
    }
    BreakdownRow { bench, cycles }
}

/// All rows.
#[must_use]
pub fn rows() -> Vec<BreakdownRow> {
    rows_threads(1)
}

/// [`rows`] fanned out over a worker pool; any thread count produces the
/// same rows in the same order.
#[must_use]
pub fn rows_threads(threads: usize) -> Vec<BreakdownRow> {
    crate::fan_out(threads, Benchmark::ALL.len(), |i| row(Benchmark::ALL[i]))
}

/// Renders Figure 10.
#[must_use]
pub fn report() -> String {
    report_threads(1)
}

/// [`report`] with its benchmark cells computed on `threads` workers —
/// byte-identical output for any thread count.
#[must_use]
pub fn report_threads(threads: usize) -> String {
    let mut headers = vec!["Benchmark"];
    headers.extend(SystemVariant::ALL.iter().map(|v| v.label()));
    headers.extend(["cCPU ovh", "CapChk ovh", "Speedup"]);
    let table_rows: Vec<Vec<String>> = rows_threads(threads)
        .into_iter()
        .map(|r| {
            let mut row = vec![r.bench.name().to_owned()];
            row.extend(r.cycles.iter().map(Cycles::to_string));
            row.push(pct(r.cheri_cpu_overhead()));
            row.push(pct(r.checker_overhead()));
            row.push(speedup(
                r.of(SystemVariant::CheriCpu) as f64
                    / r.of(SystemVariant::CheriCpuCheriAccel) as f64,
            ));
            row
        })
        .collect();
    format!(
        "Figure 10: wall-clock cycles under the five system configurations\n\n{}",
        table(&headers, &table_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_blocked_is_faster_on_the_cheri_cpu() {
        let r = row(Benchmark::GemmBlocked);
        assert!(
            r.of(SystemVariant::CheriCpu) < r.of(SystemVariant::Cpu),
            "capability copies should win: ccpu {} vs cpu {}",
            r.of(SystemVariant::CheriCpu),
            r.of(SystemVariant::Cpu)
        );
    }

    #[test]
    fn checker_cheaper_than_cpu_cheri_for_most() {
        let mut cheaper = 0;
        let sample = [
            Benchmark::Aes,
            Benchmark::GemmNcubed,
            Benchmark::FftStrided,
            Benchmark::Viterbi,
            Benchmark::SortMerge,
            Benchmark::Kmp,
        ];
        for b in sample {
            let r = row(b);
            if r.checker_overhead() <= r.cheri_cpu_overhead() {
                cheaper += 1;
            }
        }
        assert!(
            cheaper * 2 > sample.len(),
            "only {cheaper}/{} cheaper",
            sample.len()
        );
    }

    #[test]
    fn accelerator_variants_agree_with_cpu_variants_on_work() {
        // cpu+accel vs ccpu+accel differ only in CPU-side effects, which
        // are absent in accelerator timing: equal cycles.
        let r = row(Benchmark::SpmvCrs);
        assert_eq!(
            r.of(SystemVariant::CpuAccel),
            r.of(SystemVariant::CheriCpuAccel)
        );
    }
}
