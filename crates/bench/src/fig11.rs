//! Figure 11 — gemm_ncubed over different degrees of parallelism.
//!
//! More parallel accelerator tasks improve throughput until the shared
//! memory bandwidth saturates; the CapChecker's relative overhead shrinks
//! as the interconnect, not the checker, becomes the bottleneck.

use crate::render::{pct, speedup, table};
use crate::runner;
use capchecker::SystemVariant;
use hetsim::Cycles;
use machsuite::Benchmark;

/// The sweep of parallel task counts.
pub const PARALLELISM: [usize; 5] = [1, 2, 4, 8, 16];

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct ParallelismRow {
    /// Concurrent gemm_ncubed tasks.
    pub tasks: usize,
    /// Makespan without the checker.
    pub base_cycles: Cycles,
    /// Makespan with it.
    pub checked_cycles: Cycles,
    /// Relative checker overhead.
    pub overhead: f64,
    /// Throughput speedup over one CHERI-CPU task (work/time).
    pub throughput_speedup: f64,
    /// Interconnect utilization with the checker.
    pub bus_utilization: f64,
}

/// Measures one sweep point.
#[must_use]
pub fn row(tasks: usize) -> ParallelismRow {
    let bench = Benchmark::GemmNcubed;
    let base = runner::run_benchmark(bench, SystemVariant::CheriCpuAccel, tasks, 0x11);
    let checked = runner::run_benchmark(bench, SystemVariant::CheriCpuCheriAccel, tasks, 0x11);
    let cpu_single = runner::cycles(bench, SystemVariant::CheriCpu);
    ParallelismRow {
        tasks,
        base_cycles: base.cycles,
        checked_cycles: checked.cycles,
        overhead: (checked.cycles as f64 - base.cycles as f64) / base.cycles as f64,
        throughput_speedup: (tasks as f64 * cpu_single as f64) / checked.cycles as f64,
        bus_utilization: checked.bus_utilization,
    }
}

/// The full sweep.
#[must_use]
pub fn rows() -> Vec<ParallelismRow> {
    rows_threads(1)
}

/// [`rows`] fanned out over a worker pool; any thread count produces the
/// same rows in the same order.
#[must_use]
pub fn rows_threads(threads: usize) -> Vec<ParallelismRow> {
    crate::fan_out(threads, PARALLELISM.len(), |i| row(PARALLELISM[i]))
}

/// Renders Figure 11.
#[must_use]
pub fn report() -> String {
    report_threads(1)
}

/// [`report`] with its sweep points computed on `threads` workers —
/// byte-identical output for any thread count.
#[must_use]
pub fn report_threads(threads: usize) -> String {
    let table_rows: Vec<Vec<String>> = rows_threads(threads)
        .into_iter()
        .map(|r| {
            vec![
                r.tasks.to_string(),
                r.base_cycles.to_string(),
                r.checked_cycles.to_string(),
                pct(r.overhead),
                speedup(r.throughput_speedup),
                pct(r.bus_utilization),
            ]
        })
        .collect();
    format!(
        "Figure 11: gemm_ncubed across degrees of parallelism\n\n{}",
        table(
            &[
                "Tasks",
                "ccpu+accel",
                "ccpu+caccel",
                "Overhead",
                "Throughput speedup",
                "Bus util"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_grows_with_parallelism() {
        let one = row(1);
        let four = row(4);
        assert!(four.throughput_speedup > one.throughput_speedup * 1.5);
    }

    #[test]
    fn bus_saturates_and_overhead_stays_small() {
        let sixteen = row(16);
        assert!(
            sixteen.bus_utilization > 0.8,
            "bus should saturate: {}",
            sixteen.bus_utilization
        );
        assert!(
            sixteen.overhead < 0.05,
            "overhead {} should be tiny at saturation",
            sixteen.overhead
        );
        assert!(
            sixteen.overhead <= row(1).overhead + 0.02,
            "overhead should not grow"
        );
    }
}
