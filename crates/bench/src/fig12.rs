//! Figure 12 — entries required by the IOMMU vs the CapChecker.
//!
//! The IOMMU's entry count scales with buffer *sizes* (pages, at most one
//! buffer per page for equal protection granularity — the paper's
//! fairness rule); the CapChecker's scales only with buffer *count*.

use crate::render::table;
use ioprotect::Iommu;
use machsuite::{Benchmark, INSTANCES};

/// The IOMMU page size evaluated (4 kB).
pub const PAGE_SIZE: u64 = 4096;
/// Superpage size for the §6.4 discussion point ("this challenge may be
/// reduced by superpages… the IOMMU entries still scale with buffer
/// size").
pub const SUPERPAGE_SIZE: u64 = 64 * 1024;

/// One benchmark's entry requirements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntriesRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// Entries a 4 kB-page IOMMU needs (all instances).
    pub iommu_entries: u64,
    /// Entries a 64 kB-superpage IOMMU needs (all instances).
    pub iommu_superpage_entries: u64,
    /// Entries the CapChecker needs (all instances).
    pub capchecker_entries: u64,
}

/// Computes one row.
#[must_use]
pub fn row(bench: Benchmark) -> EntriesRow {
    let pages = |page: u64| -> u64 {
        bench
            .buffers()
            .iter()
            .map(|b| Iommu::entries_for_buffer(page, b.size))
            .sum()
    };
    let per_instance_caps = bench.buffers().len() as u64;
    EntriesRow {
        bench,
        iommu_entries: pages(PAGE_SIZE) * INSTANCES as u64,
        iommu_superpage_entries: pages(SUPERPAGE_SIZE) * INSTANCES as u64,
        capchecker_entries: per_instance_caps * INSTANCES as u64,
    }
}

/// All rows.
#[must_use]
pub fn rows() -> Vec<EntriesRow> {
    rows_threads(1)
}

/// [`rows`] fanned out over a worker pool; any thread count produces the
/// same rows in the same order.
#[must_use]
pub fn rows_threads(threads: usize) -> Vec<EntriesRow> {
    crate::fan_out(threads, Benchmark::ALL.len(), |i| row(Benchmark::ALL[i]))
}

/// Renders Figure 12.
#[must_use]
pub fn report() -> String {
    report_threads(1)
}

/// [`report`] with its benchmark cells computed on `threads` workers —
/// byte-identical output for any thread count.
#[must_use]
pub fn report_threads(threads: usize) -> String {
    let table_rows: Vec<Vec<String>> = rows_threads(threads)
        .into_iter()
        .map(|r| {
            vec![
                r.bench.name().to_owned(),
                r.iommu_entries.to_string(),
                r.iommu_superpage_entries.to_string(),
                r.capchecker_entries.to_string(),
                format!(
                    "{:.2}",
                    r.iommu_entries as f64 / r.capchecker_entries as f64
                ),
            ]
        })
        .collect();
    format!(
        "Figure 12: protection entries required (IOMMU page size = 4 kB,\n\
         superpage = 64 kB, at most one buffer per page for equal granularity)\n\n{}",
        table(
            &[
                "Benchmark",
                "IOMMU 4k",
                "IOMMU 64k",
                "CapChecker",
                "4k/CapChecker"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capchecker_needs_no_more_entries_than_the_iommu() {
        for r in rows() {
            assert!(
                r.capchecker_entries <= r.iommu_entries,
                "{}: {} vs {}",
                r.bench,
                r.capchecker_entries,
                r.iommu_entries
            );
        }
    }

    #[test]
    fn big_buffer_benchmarks_show_the_gap() {
        // nw has two 65 kB+ buffers: 17 pages each vs 1 capability each.
        let nw = row(Benchmark::Nw);
        assert!(nw.iommu_entries as f64 / nw.capchecker_entries as f64 > 3.0);
        // aes is one tiny buffer: both need a single entry per instance.
        let aes = row(Benchmark::Aes);
        assert_eq!(aes.iommu_entries, aes.capchecker_entries);
    }

    #[test]
    fn every_row_fits_the_256_entry_prototype() {
        for r in rows() {
            assert!(r.capchecker_entries <= 256, "{}", r.bench);
        }
    }

    #[test]
    fn superpages_reduce_but_never_beat_the_capchecker() {
        for r in rows() {
            assert!(r.iommu_superpage_entries <= r.iommu_entries, "{}", r.bench);
            assert!(
                r.capchecker_entries <= r.iommu_superpage_entries,
                "{}",
                r.bench
            );
        }
        // And for a workload bigger than a superpage, the size-scaling
        // persists — the §6.4 point that superpages only defer the blowup.
        use ioprotect::Iommu;
        assert_eq!(Iommu::entries_for_buffer(SUPERPAGE_SIZE, 10 << 20), 160);
    }
}
