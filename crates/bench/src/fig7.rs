//! Figure 7 — accelerator speedup on the proposed system.
//!
//! Speedup of the protected accelerator (`ccpu+caccel`) over the CHERI
//! CPU (`ccpu`) per benchmark. The paper's shape: backprop and viterbi
//! above 2000×, most benchmarks comfortably above 1×, and the
//! memory-bound four (md_knn, stencil2d, bfs_bulk, bfs_queue) below 1×.

use crate::render;
use crate::runner;
use capchecker::SystemVariant;
use hetsim::Cycles;
use machsuite::Benchmark;

/// One bar of Figure 7.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// `ccpu` cycles.
    pub cpu_cycles: Cycles,
    /// `ccpu+caccel` cycles.
    pub accel_cycles: Cycles,
    /// The speedup factor.
    pub speedup: f64,
}

/// Computes one row.
#[must_use]
pub fn row(bench: Benchmark) -> SpeedupRow {
    let cpu_cycles = runner::cycles(bench, SystemVariant::CheriCpu);
    let accel_cycles = runner::cycles(bench, SystemVariant::CheriCpuCheriAccel);
    SpeedupRow {
        bench,
        cpu_cycles,
        accel_cycles,
        speedup: cpu_cycles as f64 / accel_cycles as f64,
    }
}

/// All 19 rows.
#[must_use]
pub fn rows() -> Vec<SpeedupRow> {
    rows_threads(1)
}

/// [`rows`] fanned out over a worker pool; any thread count produces the
/// same rows in the same order.
#[must_use]
pub fn rows_threads(threads: usize) -> Vec<SpeedupRow> {
    crate::fan_out(threads, Benchmark::ALL.len(), |i| row(Benchmark::ALL[i]))
}

/// Renders Figure 7 as a table.
#[must_use]
pub fn report() -> String {
    report_threads(1)
}

/// [`report`] with its benchmark cells computed on `threads` workers —
/// byte-identical output for any thread count.
#[must_use]
pub fn report_threads(threads: usize) -> String {
    let table_rows: Vec<Vec<String>> = rows_threads(threads)
        .into_iter()
        .map(|r| {
            vec![
                r.bench.name().to_owned(),
                r.cpu_cycles.to_string(),
                r.accel_cycles.to_string(),
                render::speedup(r.speedup),
            ]
        })
        .collect();
    format!(
        "Figure 7: accelerator speedup (ccpu vs ccpu+caccel, one task)\n\n{}",
        render::table(
            &["Benchmark", "ccpu cycles", "accel cycles", "Speedup"],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_benchmarks_lose() {
        for b in [
            Benchmark::MdKnn,
            Benchmark::Stencil2d,
            Benchmark::BfsBulk,
            Benchmark::BfsQueue,
        ] {
            let r = row(b);
            assert!(
                r.speedup < 1.2,
                "{b} should be near or below 1x, got {:.2}",
                r.speedup
            );
        }
    }

    #[test]
    fn flagships_exceed_two_thousand() {
        for b in [Benchmark::Backprop, Benchmark::Viterbi] {
            let r = row(b);
            assert!(r.speedup > 2000.0, "{b} got only {:.0}x", r.speedup);
        }
    }
}
