//! Figure 8 — overhead of adding the CapChecker: performance, power,
//! and circuit area, per benchmark.

use crate::render::{pct, table};
use crate::runner;
use crate::{geomean, runner::CHECKER_PIPELINE_LATENCY};
use capchecker::SystemVariant;
use fpgamodel::SystemArea;
use machsuite::{Benchmark, INSTANCES};

/// Overheads of one benchmark's system.
#[derive(Clone, Copy, Debug)]
pub struct OverheadRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// `ccpu+accel` cycles.
    pub base_cycles: u64,
    /// `ccpu+caccel` cycles.
    pub checked_cycles: u64,
    /// Relative performance overhead.
    pub perf_overhead: f64,
    /// Relative LUT overhead of the 256-entry CapChecker.
    pub area_overhead: f64,
    /// Relative power overhead.
    pub power_overhead: f64,
}

/// The FPGA area breakdown of one benchmark's full system (CHERI CPU +
/// 8 accelerator instances + interconnect + CapChecker).
#[must_use]
pub fn system_area(bench: Benchmark, with_checker: bool) -> SystemArea {
    let p = bench.profile();
    SystemArea::assemble(
        true,
        INSTANCES,
        p.lanes,
        p.compute_per_cycle,
        with_checker.then_some(256),
    )
}

/// Computes one row.
#[must_use]
pub fn row(bench: Benchmark) -> OverheadRow {
    let base = runner::run_benchmark(bench, SystemVariant::CheriCpuAccel, 1, 0xC0DE);
    let checked = runner::run_benchmark(bench, SystemVariant::CheriCpuCheriAccel, 1, 0xC0DE);
    let perf_overhead = (checked.cycles as f64 - base.cycles as f64) / base.cycles as f64;

    let with = system_area(bench, true);
    let area_overhead = with.checker_overhead();

    // Power: accelerator activity tracks the bus; the CPU idles while
    // offloaded. Only the checker's matched table bank and decoder toggle
    // per request (the CAM banks are clock-gated), so its switching
    // activity is a small fraction of the bus utilization.
    let util = checked.bus_utilization.clamp(0.05, 1.0);
    let base_power = system_area(bench, false).power(0.2, util, 0.0).total_mw();
    let checked_power = with.power(0.2, util, util * 0.08).total_mw();
    let power_overhead = (checked_power - base_power) / base_power;

    OverheadRow {
        bench,
        base_cycles: base.cycles,
        checked_cycles: checked.cycles,
        perf_overhead,
        area_overhead,
        power_overhead,
    }
}

/// All rows plus geometric means.
#[must_use]
pub fn rows() -> Vec<OverheadRow> {
    rows_threads(1)
}

/// [`rows`] fanned out over a worker pool; any thread count produces the
/// same rows in the same order.
#[must_use]
pub fn rows_threads(threads: usize) -> Vec<OverheadRow> {
    crate::fan_out(threads, Benchmark::ALL.len(), |i| row(Benchmark::ALL[i]))
}

/// Geometric-mean overheads `(perf, area, power)` across benchmarks.
#[must_use]
pub fn geomeans(rows: &[OverheadRow]) -> (f64, f64, f64) {
    let g = |f: fn(&OverheadRow) -> f64| {
        geomean(&rows.iter().map(|r| f(r).max(1e-6)).collect::<Vec<_>>())
    };
    (
        g(|r| r.perf_overhead),
        g(|r| r.area_overhead),
        g(|r| r.power_overhead),
    )
}

/// Renders Figure 8.
#[must_use]
pub fn report() -> String {
    report_threads(1)
}

/// [`report`] with its benchmark cells computed on `threads` workers —
/// byte-identical output for any thread count.
#[must_use]
pub fn report_threads(threads: usize) -> String {
    let rows = rows_threads(threads);
    let mut table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bench.name().to_owned(),
                r.base_cycles.to_string(),
                r.checked_cycles.to_string(),
                pct(r.perf_overhead),
                pct(r.area_overhead),
                pct(r.power_overhead),
            ]
        })
        .collect();
    let (gp, ga, gw) = geomeans(&rows);
    table_rows.push(vec![
        "geomean".into(),
        "-".into(),
        "-".into(),
        pct(gp),
        pct(ga),
        pct(gw),
    ]);
    format!(
        "Figure 8: CapChecker overhead per benchmark\n\
         (checker pipeline latency {CHECKER_PIPELINE_LATENCY} cycles, 256 entries)\n\n{}",
        table(
            &[
                "Benchmark",
                "ccpu+accel",
                "ccpu+caccel",
                "Perf ovh",
                "Area ovh",
                "Power ovh"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_overhead_is_small_for_long_benchmarks() {
        for b in [Benchmark::Aes, Benchmark::GemmNcubed, Benchmark::Viterbi] {
            let r = row(b);
            assert!(
                r.perf_overhead < 0.05,
                "{b} overhead {} should be under 5%",
                pct(r.perf_overhead)
            );
            assert!(r.perf_overhead >= 0.0, "{b} checker cannot speed things up");
        }
    }

    #[test]
    fn md_knn_is_the_percentage_outlier() {
        let knn = row(Benchmark::MdKnn);
        assert!(
            knn.perf_overhead > 0.10,
            "md_knn's fixed install cost should dominate its small latency, got {}",
            pct(knn.perf_overhead)
        );
        // Its absolute latency stays in the few-thousand-cycle range.
        assert!(knn.checked_cycles < 20_000, "got {}", knn.checked_cycles);
    }

    #[test]
    fn area_overhead_is_constant_entries_not_datapath() {
        let a = system_area(Benchmark::Aes, true);
        let b = system_area(Benchmark::Backprop, true);
        assert_eq!(a.checker, b.checker);
    }
}
