//! Figure 9 — overhead in systems with mixed accelerators.
//!
//! Twenty systems, each running eight accelerator tasks whose benchmarks
//! are drawn at random from the suite, all sharing one interconnect and
//! one CapChecker. The per-system overheads cluster around the Figure 8
//! geometric mean.

use crate::render::{pct, table};
use crate::runner::CHECKER_PIPELINE_LATENCY;
use capchecker::{HeteroSystem, SystemVariant, TaskRequest};
use hetsim::timing::{simulate_accel_system, AccelTask, AccelTimingConfig, BusConfig};
use hetsim::{Cycles, Trace};
use machsuite::Benchmark;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of mixed systems (the paper evaluates 20).
pub const SYSTEMS: usize = 20;
/// Accelerator tasks per system.
pub const TASKS_PER_SYSTEM: usize = 8;

/// One mixed system's result.
#[derive(Clone, Debug)]
pub struct MixedRow {
    /// Which benchmarks were drawn.
    pub mix: Vec<Benchmark>,
    /// Makespan without the CapChecker (`ccpu+accel`).
    pub base_cycles: Cycles,
    /// Makespan with it (`ccpu+caccel`).
    pub checked_cycles: Cycles,
    /// Relative overhead.
    pub overhead: f64,
}

fn run_mix(mix: &[Benchmark], variant: SystemVariant, seed: u64) -> Cycles {
    let mut sys = HeteroSystem::new(variant.config());
    for bench in mix {
        // One FU per drawn task (classes may repeat).
        sys.add_fus(bench.name(), mix.iter().filter(|b| *b == bench).count());
    }
    let mut traces: Vec<Trace> = Vec::new();
    let mut starts: Vec<Cycles> = Vec::new();
    for (i, bench) in mix.iter().enumerate() {
        let req = TaskRequest::accel(format!("{bench}#{i}"), bench.name())
            .rw_buffers(bench.buffers().iter().map(|b| b.size));
        let id = sys.allocate_task(&req).expect("mixed system fits");
        for (obj, image) in bench.init(seed.wrapping_add(i as u64)).iter().enumerate() {
            sys.write_buffer(id, obj, 0, image).expect("init fits");
        }
        let outcome = sys
            .run_accel_task(id, |eng| bench.kernel(eng))
            .expect("kernel runs");
        assert!(outcome.completed(), "benign {bench} denied");
        starts.push(sys.setup_cycles(id).expect("live task"));
        traces.push(sys.take_trace(id).expect("live task").expect("ran"));
    }
    let bus = if variant == SystemVariant::CheriCpuCheriAccel {
        BusConfig::default().with_checker(CHECKER_PIPELINE_LATENCY)
    } else {
        BusConfig::default()
    };
    let tasks: Vec<AccelTask<'_>> = mix
        .iter()
        .zip(traces.iter().zip(&starts))
        .map(|(bench, (trace, start))| {
            let p = bench.profile();
            AccelTask {
                trace,
                cfg: AccelTimingConfig {
                    lanes: p.lanes,
                    compute_per_cycle: p.compute_per_cycle,
                    outstanding: p.outstanding,
                },
                start: *start,
            }
        })
        .collect();
    simulate_accel_system(&tasks, &bus).makespan
}

/// Draws and measures one mixed system.
#[must_use]
pub fn row(system_index: usize) -> MixedRow {
    let mut rng = SmallRng::seed_from_u64(0x519 + system_index as u64);
    let mix: Vec<Benchmark> = (0..TASKS_PER_SYSTEM)
        .map(|_| Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())])
        .collect();
    let base_cycles = run_mix(&mix, SystemVariant::CheriCpuAccel, 0xF19);
    let checked_cycles = run_mix(&mix, SystemVariant::CheriCpuCheriAccel, 0xF19);
    MixedRow {
        mix,
        base_cycles,
        checked_cycles,
        overhead: (checked_cycles as f64 - base_cycles as f64) / base_cycles as f64,
    }
}

/// All 20 systems.
#[must_use]
pub fn rows() -> Vec<MixedRow> {
    rows_threads(1)
}

/// [`rows`] fanned out over a worker pool; any thread count produces the
/// same rows in the same order.
#[must_use]
pub fn rows_threads(threads: usize) -> Vec<MixedRow> {
    crate::fan_out(threads, SYSTEMS, row)
}

/// Mean overhead across a set of measured systems.
///
/// Figure 9's headline number: individual systems can flip sign (see the
/// note in [`row`]'s test), but the *mean* across the twenty mixes must
/// stay positive — the checker never pays for itself.
#[must_use]
pub fn mean_overhead(rows: &[MixedRow]) -> f64 {
    rows.iter().map(|r| r.overhead).sum::<f64>() / rows.len().max(1) as f64
}

/// Renders Figure 9.
#[must_use]
pub fn report() -> String {
    report_threads(1)
}

/// [`report`] with its system cells computed on `threads` workers —
/// byte-identical output for any thread count.
#[must_use]
pub fn report_threads(threads: usize) -> String {
    let rows = rows_threads(threads);
    let mean = mean_overhead(&rows);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let names: Vec<&str> = r.mix.iter().map(|b| b.name()).collect();
            vec![
                format!("mix{i:02}"),
                names.join("+"),
                r.base_cycles.to_string(),
                r.checked_cycles.to_string(),
                pct(r.overhead),
            ]
        })
        .collect();
    format!(
        "Figure 9: {SYSTEMS} systems with {TASKS_PER_SYSTEM} randomly mixed accelerators\n\
         mean overhead: {}\n\n{}",
        pct(mean),
        table(
            &["System", "Mix", "ccpu+accel", "ccpu+caccel", "Overhead"],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_overhead_across_all_systems_is_positive_and_modest() {
        // Per-system overheads can flip sign: the checker delays task
        // starts, which reorders FCFS bus arbitration, and for some drawn
        // mixes that reshuffling finishes the trailing task a fraction of
        // a percent *earlier*. That is a property of arbitration order,
        // not of the checker being free, so no per-cell lower bound is
        // meaningful. The claim Figure 9 actually makes is about the
        // population: the mean overhead across the twenty mixes is
        // positive (the checker costs something) and modest (it costs
        // little).
        let rows = rows_threads(perf::auto_threads());
        assert_eq!(rows.len(), SYSTEMS);
        for r in &rows {
            assert_eq!(r.mix.len(), TASKS_PER_SYSTEM);
            assert!(
                r.overhead < 0.15,
                "per-system overhead {} too large",
                pct(r.overhead)
            );
        }
        let mean = mean_overhead(&rows);
        assert!(
            mean > 0.0,
            "mean overhead across {SYSTEMS} systems must be positive, got {}",
            pct(mean)
        );
        assert!(mean < 0.10, "mean overhead {} too large", pct(mean));
    }

    #[test]
    fn draws_are_deterministic_per_index() {
        assert_eq!(row(3).mix, row(3).mix);
        assert_ne!(row(0).mix, row(1).mix);
    }
}
