//! Figure 9 — overhead in systems with mixed accelerators.
//!
//! Twenty systems, each running eight accelerator tasks whose benchmarks
//! are drawn at random from the suite, all sharing one interconnect and
//! one CapChecker. The per-system overheads cluster around the Figure 8
//! geometric mean.

use crate::render::{pct, table};
use crate::runner::CHECKER_PIPELINE_LATENCY;
use capchecker::{HeteroSystem, SystemVariant, TaskRequest};
use hetsim::timing::{simulate_accel_system, AccelTask, AccelTimingConfig, BusConfig};
use hetsim::{Cycles, Trace};
use machsuite::Benchmark;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of mixed systems (the paper evaluates 20).
pub const SYSTEMS: usize = 20;
/// Accelerator tasks per system.
pub const TASKS_PER_SYSTEM: usize = 8;

/// One mixed system's result.
#[derive(Clone, Debug)]
pub struct MixedRow {
    /// Which benchmarks were drawn.
    pub mix: Vec<Benchmark>,
    /// Makespan without the CapChecker (`ccpu+accel`).
    pub base_cycles: Cycles,
    /// Makespan with it (`ccpu+caccel`).
    pub checked_cycles: Cycles,
    /// Relative overhead.
    pub overhead: f64,
}

fn run_mix(mix: &[Benchmark], variant: SystemVariant, seed: u64) -> Cycles {
    let mut sys = HeteroSystem::new(variant.config());
    for bench in mix {
        // One FU per drawn task (classes may repeat).
        sys.add_fus(bench.name(), mix.iter().filter(|b| *b == bench).count());
    }
    let mut traces: Vec<Trace> = Vec::new();
    let mut starts: Vec<Cycles> = Vec::new();
    for (i, bench) in mix.iter().enumerate() {
        let req = TaskRequest::accel(format!("{bench}#{i}"), bench.name())
            .rw_buffers(bench.buffers().iter().map(|b| b.size));
        let id = sys.allocate_task(&req).expect("mixed system fits");
        for (obj, image) in bench.init(seed.wrapping_add(i as u64)).iter().enumerate() {
            sys.write_buffer(id, obj, 0, image).expect("init fits");
        }
        let outcome = sys
            .run_accel_task(id, |eng| bench.kernel(eng))
            .expect("kernel runs");
        assert!(outcome.completed(), "benign {bench} denied");
        starts.push(sys.setup_cycles(id).expect("live task"));
        traces.push(sys.trace(id).expect("live task").expect("ran").clone());
    }
    let bus = if variant == SystemVariant::CheriCpuCheriAccel {
        BusConfig::default().with_checker(CHECKER_PIPELINE_LATENCY)
    } else {
        BusConfig::default()
    };
    let tasks: Vec<AccelTask<'_>> = mix
        .iter()
        .zip(traces.iter().zip(&starts))
        .map(|(bench, (trace, start))| {
            let p = bench.profile();
            AccelTask {
                trace,
                cfg: AccelTimingConfig {
                    lanes: p.lanes,
                    compute_per_cycle: p.compute_per_cycle,
                    outstanding: p.outstanding,
                },
                start: *start,
            }
        })
        .collect();
    simulate_accel_system(&tasks, &bus).makespan
}

/// Draws and measures one mixed system.
#[must_use]
pub fn row(system_index: usize) -> MixedRow {
    let mut rng = SmallRng::seed_from_u64(0x519 + system_index as u64);
    let mix: Vec<Benchmark> = (0..TASKS_PER_SYSTEM)
        .map(|_| Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())])
        .collect();
    let base_cycles = run_mix(&mix, SystemVariant::CheriCpuAccel, 0xF19);
    let checked_cycles = run_mix(&mix, SystemVariant::CheriCpuCheriAccel, 0xF19);
    MixedRow {
        mix,
        base_cycles,
        checked_cycles,
        overhead: (checked_cycles as f64 - base_cycles as f64) / base_cycles as f64,
    }
}

/// All 20 systems.
#[must_use]
pub fn rows() -> Vec<MixedRow> {
    (0..SYSTEMS).map(row).collect()
}

/// Renders Figure 9.
#[must_use]
pub fn report() -> String {
    let rows = rows();
    let mean = rows.iter().map(|r| r.overhead).sum::<f64>() / rows.len() as f64;
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let names: Vec<&str> = r.mix.iter().map(|b| b.name()).collect();
            vec![
                format!("mix{i:02}"),
                names.join("+"),
                r.base_cycles.to_string(),
                r.checked_cycles.to_string(),
                pct(r.overhead),
            ]
        })
        .collect();
    format!(
        "Figure 9: {SYSTEMS} systems with {TASKS_PER_SYSTEM} randomly mixed accelerators\n\
         mean overhead: {}\n\n{}",
        pct(mean),
        table(
            &["System", "Mix", "ccpu+accel", "ccpu+caccel", "Overhead"],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_mixed_system_has_modest_overhead() {
        let r = row(0);
        assert_eq!(r.mix.len(), TASKS_PER_SYSTEM);
        // The checker delays task starts, which reorders FCFS bus
        // arbitration; for some drawn mixes that reshuffling finishes a
        // trailing task a fraction of a percent *earlier*, so tolerate a
        // small negative overhead.
        assert!(
            r.overhead > -0.005,
            "mixed overhead {} unexpectedly negative",
            pct(r.overhead)
        );
        assert!(
            r.overhead < 0.15,
            "mixed overhead {} too large",
            pct(r.overhead)
        );
    }

    #[test]
    fn draws_are_deterministic_per_index() {
        assert_eq!(row(3).mix, row(3).mix);
        assert_ne!(row(0).mix, row(1).mix);
    }
}
