//! The `capcheri.flowreport.v1` report — the incremental dataflow
//! engine's segment verdicts, re-analysis work ratio, and provenance
//! flow findings.
//!
//! For every seeded conformance stream the report analyzes the stream,
//! churns its grants ([`capcheri_analyze::churn_grants`] — the bounded
//! re-grant pattern an adaptive driver produces), analyzes the churned
//! stream, and reports the churned analysis alongside the *pure*
//! re-analysis work ratio ([`capcheri_analyze::reanalysis_work`]): how
//! many `(segment, pair)` units actually depended on the grants that
//! moved. Each verdict map is validated differentially by replaying the
//! elided checkers segment-by-segment against the golden oracle
//! ([`conformance::run_ops_elided_segments`]); a divergence means an
//! unsound map and fails the run.
//!
//! Two MachSuite kernels ride along as fixed fixtures
//! ([`kernel_stream`]): their port grants are laid out at the
//! conformance slot geometry for two tenant instances, separated by
//! revocation and sweep barriers, so the segment partition and the
//! cross-tenant provenance audit run over realistic driver behaviour.
//!
//! The serialized report never mentions *how* a result was obtained —
//! [`capcheri_analyze::FlowAnalysis::reused`] is deliberately excluded —
//! so the bytes are identical between `--incremental` and from-scratch
//! runs, and for any `--threads` value. CI compares the two files with
//! `cmp`.

use capchecker::StaticVerdict;
use capcheri_analyze::{
    analyze_benchmark, analyze_flow, churn_grants, reanalysis_work, Finding, FlowAnalysis,
    IncrementalAnalyzer, WorkRatio,
};
use conformance::stream::{slot_base, OBJECTS, SLOT_BYTES};
use conformance::{generate, Op};
use machsuite::Benchmark;
use obs::json::JsonWriter;
use std::fmt::Write as _;

/// Schema identifier stamped into every flow report.
pub const FLOW_SCHEMA: &str = "capcheri.flowreport.v1";

/// The kernels pinned by the golden snapshot.
pub const KERNELS: [Benchmark; 2] = [Benchmark::Aes, Benchmark::GemmNcubed];

/// One seeded conformance stream's analysis row.
#[derive(Clone, Debug)]
pub struct FlowStreamRow {
    /// The stream's generator seed.
    pub seed: u64,
    /// Analysis of the grant-churned stream (the current state).
    pub analysis: FlowAnalysis,
    /// Units whose dependency slice the churn touched, over all units —
    /// computed from the two op streams alone, so it is identical
    /// between incremental and from-scratch runs.
    pub work: WorkRatio,
    /// Whether the segment-by-segment elided replay matched the oracle.
    pub replay_clean: bool,
}

/// One kernel fixture's analysis row.
#[derive(Clone, Debug)]
pub struct KernelFlowRow {
    /// The kernel.
    pub bench: Benchmark,
    /// Analysis of [`kernel_stream`].
    pub analysis: FlowAnalysis,
    /// Whether the segment-by-segment elided replay matched the oracle.
    pub replay_clean: bool,
}

/// The full flow report.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// First stream seed (stream `i` uses `seed + i`).
    pub seed: u64,
    /// Ops per generated stream.
    pub ops: u64,
    /// Per-stream rows, in seed order.
    pub streams: Vec<FlowStreamRow>,
    /// Per-kernel rows, in [`KERNELS`] order.
    pub kernels: Vec<KernelFlowRow>,
    /// Units the incremental engine reused across the whole collection
    /// (0 on a from-scratch run). Display/telemetry only — never
    /// serialized, so report bytes cannot depend on the engine mode.
    pub reused: u64,
}

/// A deterministic driver-shaped op stream for one kernel: two tenant
/// instances of the kernel's declared ports at the conformance slot
/// geometry, separated by analysis barriers.
///
/// Layout: tenant 0 and tenant 1 each grant every port into their own
/// home slots and touch it as the port's replay envelope observed; a
/// `RevokeTask` barrier evicts tenant 0, which then re-enters with
/// narrower grants; a `Sweep` barrier scrubs tenant 0's home region
/// while tenant 1 keeps running. Three segments, no cross-tenant spans.
#[must_use]
pub fn kernel_stream(bench: Benchmark) -> Vec<Op> {
    let analysis = analyze_benchmark(bench, 0xC0DE);
    let mut ops = Vec::new();
    let grant_len = |size: u64| -> u16 {
        let len = size.clamp(16, SLOT_BYTES);
        u16::try_from(len).expect("slot-clamped length fits u16")
    };
    let touch = |ops: &mut Vec<Op>, task: u8| {
        for (obj, port) in analysis.ports.iter().enumerate() {
            let object = obj as u8;
            let addr = slot_base(task, object);
            if port.read {
                ops.push(Op::Access {
                    task,
                    object,
                    provenance: true,
                    write: false,
                    addr,
                    len: 8,
                    value: 0,
                });
            }
            if port.write {
                ops.push(Op::Access {
                    task,
                    object,
                    provenance: true,
                    write: true,
                    addr,
                    len: 8,
                    value: u64::from(object) + 1,
                });
            }
        }
    };
    // Segment 0: both tenants enter with full declared grants and run.
    for task in 0..2u8 {
        for (obj, port) in analysis.ports.iter().enumerate() {
            let object = obj as u8;
            ops.push(Op::Grant {
                task,
                object,
                base: slot_base(task, object),
                len: grant_len(port.region.1 - port.region.0),
                perms: port.declared.bits(),
                seal: false,
                untagged: false,
            });
        }
        touch(&mut ops, task);
    }
    // Segment 1: tenant 0 is revoked, re-enters with half-size grants.
    ops.push(Op::RevokeTask { task: 0 });
    for (obj, port) in analysis.ports.iter().enumerate() {
        let object = obj as u8;
        ops.push(Op::Grant {
            task: 0,
            object,
            base: slot_base(0, object),
            len: grant_len((port.region.1 - port.region.0) / 2),
            perms: port.declared.bits(),
            seal: false,
            untagged: false,
        });
    }
    touch(&mut ops, 0);
    touch(&mut ops, 1);
    // Segment 2: tenant 0's home region is swept; tenant 1 keeps running.
    ops.push(Op::Sweep {
        base: slot_base(0, 0),
        len: u32::try_from(u64::from(OBJECTS) * SLOT_BYTES).expect("home region fits u32"),
    });
    touch(&mut ops, 1);
    ops
}

impl FlowReport {
    /// Collects the report over `streams` generated streams plus the
    /// [`KERNELS`] fixtures.
    ///
    /// With `incremental` the engine analyzes the base stream, then
    /// re-analyzes the churned stream reusing every unit whose
    /// dependency slice is unchanged — and asserts the result is
    /// identical to a from-scratch pass (the incremental ≡ from-scratch
    /// guarantee, enforced on every run, not only under test).
    ///
    /// # Panics
    ///
    /// If an incremental analysis diverges from the from-scratch one.
    #[must_use]
    pub fn collect(
        seed: u64,
        streams: u64,
        ops: u64,
        threads: usize,
        incremental: bool,
    ) -> FlowReport {
        let mut reused = 0;
        let stream_rows = (0..streams)
            .map(|i| {
                let stream_seed = seed.wrapping_add(i);
                let base = generate(stream_seed, ops as usize);
                let churned = churn_grants(&base);
                let analysis = if incremental {
                    let mut engine = IncrementalAnalyzer::with_threads(threads);
                    let _ = engine.analyze(&base);
                    let inc = engine.analyze(&churned);
                    let scratch = analyze_flow(&churned, threads);
                    assert!(
                        inc.same_results(&scratch),
                        "incremental analysis diverged from scratch (seed {stream_seed})"
                    );
                    inc
                } else {
                    analyze_flow(&churned, threads)
                };
                reused += analysis.reused;
                let replay_clean =
                    conformance::run_ops_elided_segments(&churned, &analysis.segment_maps())
                        .is_clean();
                FlowStreamRow {
                    seed: stream_seed,
                    work: reanalysis_work(&base, &churned),
                    analysis,
                    replay_clean,
                }
            })
            .collect();
        let kernels = KERNELS
            .iter()
            .map(|&bench| {
                let stream = kernel_stream(bench);
                let analysis = analyze_flow(&stream, threads);
                let replay_clean =
                    conformance::run_ops_elided_segments(&stream, &analysis.segment_maps())
                        .is_clean();
                KernelFlowRow {
                    bench,
                    analysis,
                    replay_clean,
                }
            })
            .collect();
        FlowReport {
            seed,
            ops,
            streams: stream_rows,
            kernels,
            reused,
        }
    }

    /// Whether every segment replay matched the oracle.
    #[must_use]
    pub fn all_replays_clean(&self) -> bool {
        self.streams.iter().all(|r| r.replay_clean) && self.kernels.iter().all(|r| r.replay_clean)
    }

    /// This report as one JSON object on the [`FLOW_SCHEMA`] schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.string(FLOW_SCHEMA);
        w.key("seed");
        w.u64(self.seed);
        w.key("ops");
        w.u64(self.ops);
        w.key("streams");
        w.begin_array();
        for row in &self.streams {
            w.begin_object();
            w.key("seed");
            w.u64(row.seed);
            write_segments(&mut w, &row.analysis);
            w.key("units");
            w.begin_object();
            w.key("total");
            w.u64(row.work.units);
            w.key("changed");
            w.u64(row.work.changed);
            w.key("work_ratio_pct");
            w.u64(row.work.pct());
            w.end_object();
            write_flows(&mut w, &row.analysis.flows);
            w.key("replay_clean");
            w.bool(row.replay_clean);
            w.end_object();
        }
        w.end_array();
        w.key("kernels");
        w.begin_array();
        for row in &self.kernels {
            w.begin_object();
            w.key("kernel");
            w.string(row.bench.name());
            write_segments(&mut w, &row.analysis);
            write_flows(&mut w, &row.analysis.flows);
            w.key("replay_clean");
            w.bool(row.replay_clean);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// The report as human-readable text. Like the JSON, the text never
    /// mentions cache reuse, so it too is mode- and thread-independent.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flow analysis: {} stream(s) x {} ops (seed {}), {} kernel fixture(s)",
            self.streams.len(),
            self.ops,
            self.seed,
            self.kernels.len()
        );
        for row in &self.streams {
            let _ = writeln!(
                out,
                "  stream seed {}: {} segment(s); re-analysis {}/{} units ({}%); \
                 {} flow finding(s); replay {}",
                row.seed,
                row.analysis.segments.len(),
                row.work.changed,
                row.work.units,
                row.work.pct(),
                row.analysis.flows.len(),
                if row.replay_clean {
                    "clean"
                } else {
                    "DIVERGED"
                }
            );
            render_segments(&mut out, &row.analysis);
        }
        for row in &self.kernels {
            let _ = writeln!(
                out,
                "  kernel {}: {} segment(s); {} flow finding(s); replay {}",
                row.bench.name(),
                row.analysis.segments.len(),
                row.analysis.flows.len(),
                if row.replay_clean {
                    "clean"
                } else {
                    "DIVERGED"
                }
            );
            render_segments(&mut out, &row.analysis);
        }
        out
    }
}

/// The pinned golden configuration: the [`KERNELS`] fixtures plus two
/// seeded streams at 300 ops, analyzed incrementally — so every golden
/// run also re-proves the incremental ≡ from-scratch guarantee.
#[must_use]
pub fn report_threads(threads: usize) -> String {
    FlowReport::collect(1, 2, 300, threads, true).to_json()
}

fn render_segments(out: &mut String, analysis: &FlowAnalysis) {
    for s in &analysis.segments {
        let _ = writeln!(
            out,
            "    segment {} ({:<6} at op {:>5}, {:>4} ops): {} safe, {} flagged, {} dynamic",
            s.index,
            s.barrier.label(),
            s.start,
            s.ops,
            s.count(StaticVerdict::Safe),
            s.count(StaticVerdict::Unsafe),
            s.count(StaticVerdict::Dynamic)
        );
    }
    for f in &analysis.flows {
        let _ = writeln!(out, "    finding {f}");
    }
}

fn write_segments(w: &mut JsonWriter, analysis: &FlowAnalysis) {
    w.key("segments");
    w.begin_array();
    for s in &analysis.segments {
        w.begin_object();
        w.key("index");
        w.u64(u64::from(s.index));
        w.key("start");
        w.u64(s.start);
        w.key("ops");
        w.u64(s.ops);
        w.key("barrier");
        w.string(s.barrier.label());
        w.key("safe");
        w.u64(s.count(StaticVerdict::Safe));
        w.key("flagged");
        w.u64(s.count(StaticVerdict::Unsafe));
        w.key("dynamic");
        w.u64(s.count(StaticVerdict::Dynamic));
        w.end_object();
    }
    w.end_array();
}

fn write_flows(w: &mut JsonWriter, flows: &[Finding]) {
    w.key("flows");
    w.begin_array();
    for f in flows {
        w.begin_object();
        w.key("category");
        w.string(f.category);
        w.key("subject");
        w.string(&f.subject);
        w.key("detail");
        w.string(&f.detail);
        w.key("count");
        w.u64(f.count);
        w.end_object();
    }
    w.end_array();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_streams_partition_into_three_segments() {
        for bench in KERNELS {
            let stream = kernel_stream(bench);
            let analysis = analyze_flow(&stream, 1);
            assert_eq!(analysis.segments.len(), 3, "{bench}");
            assert!(
                analysis.flows.is_empty(),
                "stock {bench} must have no flow findings: {:?}",
                analysis.flows
            );
            assert!(
                conformance::run_ops_elided_segments(&stream, &analysis.segment_maps()).is_clean(),
                "{bench} segment replay diverged"
            );
        }
    }

    #[test]
    fn incremental_and_scratch_reports_are_byte_identical() {
        let inc = FlowReport::collect(1, 2, 300, 1, true);
        let scratch = FlowReport::collect(1, 2, 300, 1, false);
        assert!(inc.reused > 0, "the incremental engine reused nothing");
        assert_eq!(scratch.reused, 0);
        assert_eq!(inc.to_json(), scratch.to_json());
        assert_eq!(inc.render(), scratch.render());
        obs::json::validate(&inc.to_json()).unwrap();
    }

    #[test]
    fn thread_count_does_not_change_report_bytes() {
        let one = FlowReport::collect(5, 2, 300, 1, true);
        let eight = FlowReport::collect(5, 2, 300, 8, true);
        assert_eq!(one.to_json(), eight.to_json());
    }

    #[test]
    fn replays_are_clean_and_schema_tagged() {
        let r = FlowReport::collect(1, 3, 300, 1, true);
        assert!(r.all_replays_clean());
        let json = r.to_json();
        assert!(json.contains("\"schema\":\"capcheri.flowreport.v1\""));
        assert!(json.contains("\"work_ratio_pct\":"));
        assert!(
            !json.contains("reused"),
            "reuse accounting must never serialize"
        );
    }
}
