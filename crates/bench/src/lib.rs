//! # capcheri-bench — the paper's evaluation, regenerated
//!
//! One module per table/figure of the evaluation section, each exposing a
//! typed `rows()`/data function and a `report()` string that prints the
//! same rows/series the paper shows. The matching binaries
//! (`cargo run -p capcheri-bench --release --bin <name>`) are thin wrappers:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 — qualitative mechanism comparison |
//! | `table2` | Table 2 — benchmark buffer counts and sizes |
//! | `table3` | Table 3 — CWE weakness matrix (runs the attacks) |
//! | `fig7_speedup` | Figure 7 — accelerator speedup per benchmark |
//! | `fig8_overhead` | Figure 8 — CapChecker performance/area/power overhead |
//! | `fig9_mixed` | Figure 9 — 20 mixed-accelerator systems |
//! | `fig10_breakdown` | Figure 10 — five system configurations per benchmark |
//! | `fig11_parallelism` | Figure 11 — gemm_ncubed parallelism sweep |
//! | `fig12_entries` | Figure 12 — IOMMU vs CapChecker entry counts |
//! | `all_experiments` | everything above, in order |
//!
//! Beyond the paper's artifacts, [`staticreport`] reports the static
//! capability-flow analysis and the cycle payoff of check elision
//! (`simulate analyze`).
//!
//! Simulations are deterministic: the same seeds produce the same rows.

#![warn(missing_docs)]

pub mod adapt;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod flowreport;
pub mod profile;
pub mod render;
pub mod runner;
pub mod staticreport;
pub mod table1;
pub mod table2;
pub mod table3;

/// Runs `cells` independent experiment cells on a pool of `threads`
/// scoped workers and returns the results in cell order — the figure
/// modules' parallel backbone (see [`perf::parallel_map`] for the
/// determinism contract). A worker panic resumes on the caller, so
/// figure generation keeps plain panic semantics.
#[must_use]
pub fn fan_out<T, F>(threads: usize, cells: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    perf::parallel_map(threads, cells, f).unwrap_or_else(|p| p.resume())
}

/// Geometric mean of strictly positive samples.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let g = geomean(&[1.0, 100.0]);
        assert!(g > 1.0 && g < 100.0);
        assert!((g - 10.0).abs() < 1e-9);
    }
}
