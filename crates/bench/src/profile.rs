//! The `capcheri.profile.v1` report — where a run's simulated cycles
//! went, as a machine-readable document and a human-readable tree.
//!
//! Everything serialized here derives from simulated quantities (the
//! cycle-domain span tree, profiler histograms, and check attribution),
//! so the JSON is byte-identical for a fixed `(bench, variant, tasks,
//! seed)` on any machine and at any `--threads` value. Host wall-clock
//! readings never enter this report — they belong to the diagnostic
//! domain ([`perf::PoolProfile`], rendered as text only).

use crate::runner::{run_benchmark_profiled, ProfiledRun};
use capchecker::SystemVariant;
use machsuite::Benchmark;
use obs::json::JsonWriter;
use obs::SpanSnapshot;
use std::fmt::Write as _;

/// Schema identifier stamped into every profile report.
pub const PROFILE_SCHEMA: &str = "capcheri.profile.v1";

/// One profiled benchmark run: its identity plus the frozen profile.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Which benchmark ran.
    pub bench: Benchmark,
    /// Under which system configuration.
    pub variant: SystemVariant,
    /// Concurrent accelerator tasks.
    pub tasks: usize,
    /// The run's seed.
    pub seed: u64,
    /// The profiled run itself.
    pub run: ProfiledRun,
}

impl ProfileReport {
    /// Runs `bench` with the profiler attached and wraps the take.
    #[must_use]
    pub fn collect(
        bench: Benchmark,
        variant: SystemVariant,
        tasks: usize,
        seed: u64,
    ) -> ProfileReport {
        ProfileReport {
            bench,
            variant,
            tasks,
            seed,
            run: run_benchmark_profiled(bench, variant, tasks, seed),
        }
    }

    /// Fraction of the run's total cycles the span tree attributes
    /// (1.0 = every cycle accounted for).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.run.result.cycles == 0 {
            return 1.0;
        }
        self.run.profile.attributed_cycles() as f64 / self.run.result.cycles as f64
    }

    fn write_span(&self, w: &mut JsonWriter, at: usize) {
        let span = &self.run.profile.spans[at];
        w.begin_object();
        w.key("name");
        w.string(span.name);
        w.key("count");
        w.u64(span.count);
        w.key("cycles");
        w.u64(span.cycles);
        // wall_ns deliberately omitted: host time is nondeterministic
        // and never serialized (the determinism contract of this schema).
        w.key("children");
        w.begin_array();
        for &c in &span.children {
            self.write_span(w, c);
        }
        w.end_array();
        w.end_object();
    }

    fn write(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("schema");
        w.string(PROFILE_SCHEMA);
        w.key("bench");
        w.string(self.bench.name());
        w.key("variant");
        w.string(&self.variant.to_string());
        w.key("tasks");
        w.u64(self.tasks as u64);
        w.key("seed");
        w.u64(self.seed);
        w.key("cycles");
        w.u64(self.run.result.cycles);
        w.key("attributed_cycles");
        w.u64(self.run.profile.attributed_cycles());
        w.key("spans");
        if self.run.profile.spans.is_empty() {
            w.begin_array();
            w.end_array();
        } else {
            w.begin_array();
            self.write_span(w, 0);
            w.end_array();
        }
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.run.profile.metrics.histograms {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.u64(h.count);
            w.key("sum");
            w.u64(h.sum);
            w.key("min");
            w.u64(h.min);
            w.key("max");
            w.u64(h.max);
            w.key("mean");
            w.f64(h.mean);
            w.key("buckets");
            w.begin_array();
            for (bucket, count) in &h.buckets {
                w.begin_array();
                w.u64(u64::from(*bucket));
                w.u64(*count);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.key("attribution");
        match &self.run.attribution {
            None => {
                w.begin_object();
                w.end_object();
            }
            Some(a) => {
                w.begin_object();
                w.key("masters");
                w.begin_object();
                for (master, c) in &a.masters {
                    w.key(&master.to_string());
                    write_counters(w, c);
                }
                w.end_object();
                w.key("pairs");
                w.begin_object();
                for ((task, object), c) in &a.pairs {
                    w.key(&format!("{task}/{object}"));
                    write_counters(w, c);
                }
                w.end_object();
                w.end_object();
            }
        }
        w.end_object();
    }

    /// This report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write(&mut w);
        w.finish()
    }

    /// The report as indented human-readable text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} {} tasks={} seed={}",
            self.bench.name(),
            self.variant,
            self.tasks,
            self.seed
        );
        let _ = writeln!(
            out,
            "  cycles {}, attributed {} ({:.1}%)",
            self.run.result.cycles,
            self.run.profile.attributed_cycles(),
            self.coverage() * 100.0
        );
        let _ = writeln!(out, "  spans (self cycles):");
        self.run.profile.walk(|depth, span: &SpanSnapshot| {
            let indent = "  ".repeat(depth + 2);
            let _ = writeln!(
                out,
                "{indent}{:<18} {:>12}  x{}",
                span.name, span.cycles, span.count
            );
        });
        if !self.run.profile.metrics.histograms.is_empty() {
            let _ = writeln!(out, "  histograms:");
            for (name, h) in &self.run.profile.metrics.histograms {
                let _ = writeln!(
                    out,
                    "    {name:<18} count={} mean={:.1} max={}",
                    h.count, h.mean, h.max
                );
            }
        }
        if let Some(a) = &self.run.attribution {
            let t = a.total();
            let _ = writeln!(
                out,
                "  checks: granted={} denied={} elided={} hits={} misses={} stall={}",
                t.granted, t.denied, t.elided, t.hits, t.misses, t.stall_cycles
            );
            let hot = a.hot_pairs(8);
            if !hot.is_empty() {
                let _ = writeln!(out, "  hot (task,object) pairs:");
                for ((task, object), c) in hot {
                    let _ = writeln!(
                        out,
                        "    task{task}/obj{object:<4} checks={:<8} granted={} elided={} misses={}",
                        c.checks(),
                        c.granted,
                        c.elided,
                        c.misses
                    );
                }
            }
        }
        out
    }
}

fn write_counters(w: &mut JsonWriter, c: &capchecker::CheckCounters) {
    w.begin_object();
    w.key("granted");
    w.u64(c.granted);
    w.key("denied");
    w.u64(c.denied);
    w.key("elided");
    w.u64(c.elided);
    w.key("hits");
    w.u64(c.hits);
    w.key("misses");
    w.u64(c.misses);
    w.key("stall_cycles");
    w.u64(c.stall_cycles);
    w.end_object();
}

/// Several reports as one JSON document:
/// `{"schema":"...","runs":[...]}`.
#[must_use]
pub fn reports_to_json(reports: &[ProfileReport]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string(PROFILE_SCHEMA);
    w.key("runs");
    w.begin_array();
    for r in reports {
        r.write(&mut w);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Several reports as one text document.
#[must_use]
pub fn render_all(reports: &[ProfileReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_valid_and_carries_the_tree() {
        let r = ProfileReport::collect(Benchmark::Aes, SystemVariant::CheriCpuCheriAccel, 1, 3);
        let json = r.to_json();
        obs::json::validate(&json).unwrap();
        for needle in [
            "\"schema\":\"capcheri.profile.v1\"",
            "\"bench\":\"aes\"",
            "\"name\":\"run\"",
            "\"name\":\"accel\"",
            "\"attribution\":",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        assert!(!json.contains("wall"), "host time must never serialize");
    }

    #[test]
    fn coverage_is_high_and_never_exceeds_one() {
        for bench in [Benchmark::Aes, Benchmark::SpmvCrs] {
            for variant in [SystemVariant::CheriCpu, SystemVariant::CheriCpuCheriAccel] {
                let r = ProfileReport::collect(bench, variant, 1, 1);
                let cov = r.coverage();
                assert!(cov <= 1.0 + 1e-12, "{bench} {variant}: {cov}");
                assert!(cov >= 0.95, "{bench} {variant}: only {cov} attributed");
            }
        }
    }

    #[test]
    fn render_mentions_spans_and_checks() {
        let r = ProfileReport::collect(
            Benchmark::GemmNcubed,
            SystemVariant::CheriCpuCheriAccel,
            2,
            1,
        );
        let text = r.render();
        assert!(text.contains("spans (self cycles)"), "{text}");
        assert!(text.contains("bus_busy"), "{text}");
        assert!(text.contains("hot (task,object) pairs"), "{text}");
    }
}
