//! Plain-text table rendering for experiment reports.

/// Renders `rows` under `headers` with aligned columns.
#[must_use]
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup factor.
#[must_use]
pub fn speedup(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.014), "1.4%");
        assert_eq!(speedup(2315.0), "2315x");
        assert_eq!(speedup(0.55), "0.55x");
    }
}
