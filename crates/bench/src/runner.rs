//! Runs one benchmark under one of the five §6.3 system configurations
//! and costs it with the timing models.

use capchecker::{HeteroSystem, SystemVariant, TaskRequest};
use hetsim::timing::{
    simulate_accel_system, simulate_cpu, AccelTask, AccelTimingConfig, BusConfig, CpuTiming,
};
use hetsim::{Cycles, Trace};
use machsuite::Benchmark;

/// Pipeline depth the CapChecker adds to each request in the prototype.
pub const CHECKER_PIPELINE_LATENCY: Cycles = 1;

/// The outcome of one measured run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Which benchmark ran.
    pub bench: Benchmark,
    /// Under which system configuration.
    pub variant: SystemVariant,
    /// Concurrent accelerator tasks (1 for CPU configurations).
    pub tasks: usize,
    /// Wall-clock cycles (makespan over all tasks).
    pub cycles: Cycles,
    /// Driver setup cycles of the first task (capability installs show up
    /// here on `ccpu+caccel`).
    pub setup_cycles: Cycles,
    /// Interconnect busy fraction (accelerator runs only).
    pub bus_utilization: f64,
}

/// Builds the system, executes the kernel(s) functionally through the
/// protected path, and costs the recorded trace(s) under the variant's
/// timing model.
///
/// # Panics
///
/// Panics if the benign benchmark is denied by its own system — that
/// would be a protection-model bug, and the tests treat it as one.
#[must_use]
pub fn run_benchmark(
    bench: Benchmark,
    variant: SystemVariant,
    tasks: usize,
    seed: u64,
) -> RunResult {
    let tasks = if variant.uses_accelerator() {
        tasks.max(1)
    } else {
        1
    };
    let mut sys = HeteroSystem::new(variant.config());
    sys.add_fus(bench.name(), tasks);

    let mut traces: Vec<Trace> = Vec::with_capacity(tasks);
    let mut setups: Vec<Cycles> = Vec::with_capacity(tasks);
    for t in 0..tasks {
        let req = if variant.uses_accelerator() {
            TaskRequest::accel(format!("{bench}#{t}"), bench.name())
        } else {
            TaskRequest::cpu(format!("{bench}#{t}"))
        }
        .rw_buffers(bench.buffers().iter().map(|b| b.size));
        let id = sys
            .allocate_task(&req)
            .expect("workload fits the prototype system");
        for (obj, image) in bench.init(seed.wrapping_add(t as u64)).iter().enumerate() {
            sys.write_buffer(id, obj, 0, image)
                .expect("init data fits its buffer");
        }
        let outcome = if variant.uses_accelerator() {
            sys.run_accel_task(id, |eng| bench.kernel(eng))
        } else {
            sys.run_cpu_task(id, |eng| bench.kernel(eng))
        }
        .expect("kernel executes");
        assert!(
            outcome.completed(),
            "benign {bench} denied under {variant}: {:?}",
            outcome.denial
        );
        setups.push(sys.setup_cycles(id).expect("task is live"));
        traces.push(
            sys.trace(id)
                .expect("task is live")
                .expect("kernel ran")
                .clone(),
        );
    }

    let profile = bench.profile();
    if variant.uses_accelerator() {
        let bus = if variant == SystemVariant::CheriCpuCheriAccel {
            BusConfig::default().with_checker(CHECKER_PIPELINE_LATENCY)
        } else {
            BusConfig::default()
        };
        let accel_tasks: Vec<AccelTask<'_>> = traces
            .iter()
            .zip(&setups)
            .map(|(trace, start)| AccelTask {
                trace,
                cfg: AccelTimingConfig {
                    lanes: profile.lanes,
                    compute_per_cycle: profile.compute_per_cycle,
                    outstanding: profile.outstanding,
                },
                start: *start,
            })
            .collect();
        let report = simulate_accel_system(&accel_tasks, &bus);
        RunResult {
            bench,
            variant,
            tasks,
            cycles: report.makespan,
            setup_cycles: setups[0],
            bus_utilization: report.bus_utilization,
        }
    } else {
        let timing = CpuTiming {
            cycles_per_unit: profile.cpu_cycles_per_unit,
            ..CpuTiming::default()
        };
        let timing = if variant.cheri_cpu() {
            timing.with_cheri()
        } else {
            timing
        };
        let report = simulate_cpu(&traces[0], &timing);
        RunResult {
            bench,
            variant,
            tasks: 1,
            cycles: report.cycles,
            setup_cycles: setups[0],
            bus_utilization: 0.0,
        }
    }
}

/// Convenience: cycles for `bench` under `variant` with one task.
#[must_use]
pub fn cycles(bench: Benchmark, variant: SystemVariant) -> Cycles {
    run_benchmark(bench, variant, 1, 0xC0DE).cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_run_aes() {
        for v in SystemVariant::ALL {
            let r = run_benchmark(Benchmark::Aes, v, 1, 1);
            assert!(r.cycles > 0, "{v}");
        }
    }

    #[test]
    fn checker_setup_cost_appears_only_on_caccel() {
        let plain = run_benchmark(Benchmark::MdKnn, SystemVariant::CheriCpuAccel, 1, 1);
        let checked = run_benchmark(Benchmark::MdKnn, SystemVariant::CheriCpuCheriAccel, 1, 1);
        assert!(checked.setup_cycles > plain.setup_cycles);
        assert!(checked.cycles > plain.cycles);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_benchmark(
            Benchmark::SortRadix,
            SystemVariant::CheriCpuCheriAccel,
            2,
            7,
        );
        let b = run_benchmark(
            Benchmark::SortRadix,
            SystemVariant::CheriCpuCheriAccel,
            2,
            7,
        );
        assert_eq!(a.cycles, b.cycles);
    }
}
