//! Runs one benchmark under one of the five §6.3 system configurations
//! and costs it with the timing models.

use capchecker::{
    CacheStats, CachedCheckerConfig, CheckAttribution, HeteroSystem, ProtectionChoice,
    StaticVerdictMap, SystemVariant, TaskRequest,
};
use capcheri_analyze::{analyze_benchmark, declared_perms, BenchAnalysis};
use hetsim::timing::{
    simulate_accel_system_prof, simulate_cpu_prof, simulate_cpu_traced, AccelTask,
    AccelTimingConfig, BusConfig, CpuTiming,
};
use hetsim::{Cycles, Trace};
use machsuite::Benchmark;
use obs::{
    NullProfiler, NullTracer, ProfileSnapshot, Profiler, Registry, SharedTracer, Snapshot,
    SpanProfiler, TraceBuffer, Tracer,
};

/// Pipeline depth the CapChecker adds to each request in the prototype.
pub const CHECKER_PIPELINE_LATENCY: Cycles = 1;

/// The outcome of one measured run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Which benchmark ran.
    pub bench: Benchmark,
    /// Under which system configuration.
    pub variant: SystemVariant,
    /// Concurrent accelerator tasks (1 for CPU configurations).
    pub tasks: usize,
    /// Wall-clock cycles (makespan over all tasks).
    pub cycles: Cycles,
    /// Driver setup cycles of the first task (capability installs show up
    /// here on `ccpu+caccel`).
    pub setup_cycles: Cycles,
    /// Interconnect busy fraction (accelerator runs only).
    pub bus_utilization: f64,
}

/// [`run_benchmark`] plus the full observability take: the metrics
/// snapshot and the recorded event trace.
#[derive(Clone, Debug)]
pub struct ObservedRun {
    /// The same result the untraced path produces (bit-identical cycles:
    /// both paths share one implementation).
    pub result: RunResult,
    /// The frozen metrics registry for this run.
    pub metrics: Snapshot,
    /// Every event the run recorded (driver, checker, bus, L1 domains).
    pub events: TraceBuffer,
}

/// Builds the system, executes the kernel(s) functionally through the
/// protected path, and costs the recorded trace(s) under the variant's
/// timing model.
///
/// # Panics
///
/// Panics if the benign benchmark is denied by its own system — that
/// would be a protection-model bug, and the tests treat it as one.
#[must_use]
pub fn run_benchmark(
    bench: Benchmark,
    variant: SystemVariant,
    tasks: usize,
    seed: u64,
) -> RunResult {
    run_inner(
        bench,
        variant,
        tasks,
        seed,
        None,
        None,
        None,
        &mut NullProfiler,
    )
    .result
}

/// A checked run and its statically-elided twin, for the adaptive-elision
/// figure.
#[derive(Clone, Debug)]
pub struct ElidedRun {
    /// The static analysis that authorized the elision.
    pub analysis: BenchAnalysis,
    /// `ccpu+caccel` with every runtime check on the path.
    pub checked: RunResult,
    /// The same configuration with proved-safe checks elided: tasks get
    /// least-privilege device grants, the verdict map is installed, and
    /// — when every port is proved safe — the checker pipeline stage
    /// drops off the bus path.
    pub elided: RunResult,
    /// Runtime checks the verdict map skipped (functional proof that the
    /// elision actually happened).
    pub checks_elided: u64,
}

impl ElidedRun {
    /// Cycle speedup of the elided run over the checked one.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.checked.cycles as f64 / self.elided.cycles as f64
    }
}

/// Runs `bench` under `ccpu+caccel` twice — fully checked, then with the
/// static analyzer's proof installed — and reports both costs.
///
/// The elided run is only as trustworthy as the analysis; the
/// conformance harness replays elided checkers against the golden oracle
/// (`conformance::run_ops_elided`), so an unsound verdict map shows up
/// there as a divergence rather than silently here.
///
/// # Panics
///
/// As [`run_benchmark`].
#[must_use]
pub fn run_benchmark_elided(bench: Benchmark, tasks: usize, seed: u64) -> ElidedRun {
    let variant = SystemVariant::CheriCpuCheriAccel;
    let analysis = analyze_benchmark(bench, seed);
    let checked = run_inner(
        bench,
        variant,
        tasks,
        seed,
        None,
        None,
        None,
        &mut NullProfiler,
    )
    .result;
    let elided = run_inner(
        bench,
        variant,
        tasks,
        seed,
        None,
        None,
        Some(&analysis),
        &mut NullProfiler,
    );
    ElidedRun {
        analysis,
        checked,
        elided: elided.result,
        checks_elided: elided.checks_elided,
    }
}

/// [`run_benchmark`] with tracing and metrics collection attached. The
/// cycle results are bit-identical to the untraced run — the two entry
/// points share one code path that differs only in the tracer it passes.
///
/// # Panics
///
/// As [`run_benchmark`].
#[must_use]
pub fn run_benchmark_observed(
    bench: Benchmark,
    variant: SystemVariant,
    tasks: usize,
    seed: u64,
) -> ObservedRun {
    let tracer = SharedTracer::new();
    let inner = run_inner(
        bench,
        variant,
        tasks,
        seed,
        None,
        Some(tracer.clone()),
        None,
        &mut NullProfiler,
    );
    ObservedRun {
        result: inner.result,
        metrics: inner
            .metrics
            .expect("observed runs always produce a snapshot"),
        events: tracer.take(),
    }
}

/// [`run_benchmark`] plus the profiling take: the deterministic span
/// tree, check attribution, and the metrics snapshot.
#[derive(Clone, Debug)]
pub struct ProfiledRun {
    /// The same result the unprofiled path produces (bit-identical
    /// cycles: all entry points share one implementation).
    pub result: RunResult,
    /// The frozen metrics registry for this run.
    pub metrics: Snapshot,
    /// The span tree and profiler histograms — everything serialized
    /// from it derives from simulated quantities, so it is byte-stable.
    pub profile: ProfileSnapshot,
    /// Per-master / per-`(task, object)` check attribution (`None` on
    /// baseline variants, which have no checker to attribute).
    pub attribution: Option<CheckAttribution>,
}

/// [`run_benchmark`] with the span profiler and check attribution
/// enabled. Cycle results stay bit-identical to the unprofiled run.
///
/// # Panics
///
/// As [`run_benchmark`].
#[must_use]
pub fn run_benchmark_profiled(
    bench: Benchmark,
    variant: SystemVariant,
    tasks: usize,
    seed: u64,
) -> ProfiledRun {
    let tracer = SharedTracer::new();
    let mut prof = SpanProfiler::new();
    let inner = run_inner(
        bench,
        variant,
        tasks,
        seed,
        None,
        Some(tracer.clone()),
        None,
        &mut prof,
    );
    ProfiledRun {
        result: inner.result,
        metrics: inner
            .metrics
            .expect("observed runs always produce a snapshot"),
        profile: prof.snapshot(),
        attribution: inner.attribution,
    }
}

/// A run under the cache-backed checker plus the checker's own cache
/// statistics — the signal source for the adaptive controller.
#[derive(Clone, Debug)]
pub struct CachedRun {
    /// The measured run (variant `ccpu+caccel` with the protection
    /// overridden to the cached checker).
    pub result: RunResult,
    /// Cache statistics accumulated over the whole run, captured before
    /// task teardown resets the checker.
    pub cache: CacheStats,
    /// Runtime checks the installed verdict map skipped (zero unless the
    /// run was seeded with a static proof via
    /// [`run_benchmark_cached_elided`]).
    pub checks_elided: u64,
}

/// Runs `bench` under `ccpu+caccel` with the protection swapped to the
/// cache-backed checker in `config` — the adaptive controller's actuator
/// for Fine ⇄ Coarse mode epochs.
///
/// # Panics
///
/// As [`run_benchmark`].
#[must_use]
pub fn run_benchmark_cached(
    bench: Benchmark,
    tasks: usize,
    seed: u64,
    config: CachedCheckerConfig,
) -> CachedRun {
    let inner = run_inner(
        bench,
        SystemVariant::CheriCpuCheriAccel,
        tasks,
        seed,
        Some(ProtectionChoice::CachedCapChecker(config)),
        None,
        None,
        &mut NullProfiler,
    );
    CachedRun {
        result: inner.result,
        cache: inner
            .cache
            .expect("the cached protection was just installed"),
        checks_elided: inner.checks_elided,
    }
}

/// [`run_benchmark_cached`] with a static proof installed: the analysis'
/// verdict map is retained on the system's epoch-scoped segment ledger
/// and installed before the kernels run, so proved-safe checks are
/// elided — the adaptive bench loop's re-install actuator for epochs
/// after the segment's proof was computed.
///
/// # Panics
///
/// As [`run_benchmark`].
#[must_use]
pub fn run_benchmark_cached_elided(
    bench: Benchmark,
    tasks: usize,
    seed: u64,
    config: CachedCheckerConfig,
    analysis: &BenchAnalysis,
) -> CachedRun {
    let inner = run_inner(
        bench,
        SystemVariant::CheriCpuCheriAccel,
        tasks,
        seed,
        Some(ProtectionChoice::CachedCapChecker(config)),
        None,
        Some(analysis),
        &mut NullProfiler,
    );
    CachedRun {
        result: inner.result,
        cache: inner
            .cache
            .expect("the cached protection was just installed"),
        checks_elided: inner.checks_elided,
    }
}

/// Everything one inner run can produce; the public entry points each
/// surface the slice they promise.
struct InnerRun {
    result: RunResult,
    metrics: Option<Snapshot>,
    checks_elided: u64,
    attribution: Option<CheckAttribution>,
    cache: Option<CacheStats>,
}

#[allow(clippy::too_many_arguments)]
fn run_inner(
    bench: Benchmark,
    variant: SystemVariant,
    tasks: usize,
    seed: u64,
    protection: Option<ProtectionChoice>,
    observe: Option<SharedTracer>,
    elide: Option<&BenchAnalysis>,
    prof: &mut dyn Profiler,
) -> InnerRun {
    let tasks = if variant.uses_accelerator() {
        tasks.max(1)
    } else {
        1
    };
    let mut config = variant.config();
    if let Some(p) = protection {
        config.protection = p;
    }
    let mut sys = HeteroSystem::new(config);
    if let Some(t) = &observe {
        sys.set_tracer(t.clone());
    }
    sys.add_fus(bench.name(), tasks);
    if prof.enabled() {
        sys.enable_check_attribution();
    }

    // Elision only applies where a checker exists to elide from.
    let elide = elide.filter(|_| variant == SystemVariant::CheriCpuCheriAccel);

    let mut traces: Vec<Trace> = Vec::with_capacity(tasks);
    let mut setups: Vec<Cycles> = Vec::with_capacity(tasks);
    let mut ids = Vec::with_capacity(tasks);
    let mut verdicts = StaticVerdictMap::new();
    for t in 0..tasks {
        let mut req = if variant.uses_accelerator() {
            TaskRequest::accel(format!("{bench}#{t}"), bench.name())
        } else {
            TaskRequest::cpu(format!("{bench}#{t}"))
        }
        .rw_buffers(bench.buffers().iter().map(|b| b.size));
        if elide.is_some() {
            // Least-privilege device grants: the host keeps RW staging
            // access, the checker sees only the declared directions.
            req = req.device_ports(declared_perms(bench));
        }
        let id = sys
            .allocate_task(&req)
            .expect("workload fits the prototype system");
        if let Some(analysis) = elide {
            // Accumulate this task's proved pairs and (re)install the
            // combined map before its kernel runs.
            for (task, object, verdict) in analysis.verdict_map(id).iter() {
                verdicts.set(task, object, verdict);
            }
            // Retained, not merely installed: a mode switch mid-run drops
            // the checker's copy, and the epoch-scoped ledger is what the
            // adaptive controller re-installs from.
            sys.retain_segment_verdicts(verdicts.clone());
        }
        for (obj, image) in bench.init(seed.wrapping_add(t as u64)).iter().enumerate() {
            sys.write_buffer(id, obj, 0, image)
                .expect("init data fits its buffer");
        }
        let outcome = if variant.uses_accelerator() {
            sys.run_accel_task(id, |eng| bench.kernel(eng))
        } else {
            sys.run_cpu_task(id, |eng| bench.kernel(eng))
        }
        .expect("kernel executes");
        assert!(
            outcome.completed(),
            "benign {bench} denied under {variant}: {:?}",
            outcome.denial
        );
        setups.push(sys.setup_cycles(id).expect("task is live"));
        traces.push(
            sys.take_trace(id)
                .expect("task is live")
                .expect("kernel ran"),
        );
        ids.push(id);
    }

    // One timing code path for both entry points: the only difference is
    // whether the tracer is a recording handle or the null sink.
    let mut shared = observe.clone();
    let mut null = NullTracer;
    let tracer: &mut dyn Tracer = match shared.as_mut() {
        Some(t) => t,
        None => &mut null,
    };

    let mut registry = observe.as_ref().map(|_| Registry::new());
    let profile = bench.profile();
    let checks_elided = sys.checks_elided();
    let result = if variant.uses_accelerator() {
        let bus = if variant == SystemVariant::CheriCpuCheriAccel {
            // When the analyzer proved every port safe, the checker's
            // pipeline stage drops off the request path — that cycle is
            // the figure-level payoff of static elision.
            if elide.is_some_and(BenchAnalysis::all_safe) {
                BusConfig::default().with_checker(0)
            } else {
                BusConfig::default().with_checker(CHECKER_PIPELINE_LATENCY)
            }
        } else {
            BusConfig::default()
        };
        let accel_tasks: Vec<AccelTask<'_>> = traces
            .iter()
            .zip(&setups)
            .map(|(trace, start)| AccelTask {
                trace,
                cfg: AccelTimingConfig {
                    lanes: profile.lanes,
                    compute_per_cycle: profile.compute_per_cycle,
                    outstanding: profile.outstanding,
                },
                start: *start,
            })
            .collect();
        let report = simulate_accel_system_prof(&accel_tasks, &bus, tracer, prof);
        if let Some(reg) = registry.as_mut() {
            reg.counter_add("bus.beats", report.bus_beats);
            for cycles in &report.per_task {
                reg.observe("task.cycles", *cycles);
            }
            // Accelerator runs bypass the CPU's L1, so the hit rate is the
            // reference costing of the first task's trace on the default
            // CPU model (side-effect-free: a NullTracer, no new events).
            let l1 = simulate_cpu_traced(&traces[0], &CpuTiming::default(), &mut NullTracer);
            add_l1_metrics(reg, l1.hits, l1.misses);
        }
        RunResult {
            bench,
            variant,
            tasks,
            cycles: report.makespan,
            setup_cycles: setups[0],
            bus_utilization: report.bus_utilization,
        }
    } else {
        let timing = CpuTiming {
            cycles_per_unit: profile.cpu_cycles_per_unit,
            ..CpuTiming::default()
        };
        let timing = if variant.cheri_cpu() {
            timing.with_cheri()
        } else {
            timing
        };
        let report = simulate_cpu_prof(&traces[0], &timing, tracer, prof);
        if let Some(reg) = registry.as_mut() {
            add_l1_metrics(reg, report.hits, report.misses);
        }
        RunResult {
            bench,
            variant,
            tasks: 1,
            cycles: report.cycles,
            setup_cycles: setups[0],
            bus_utilization: 0.0,
        }
    };

    // Figure 6 ②: return every task through the driver's deallocation
    // path (evictions, register clears, scrub). Cycles were already
    // costed from the traces, so this cannot perturb the results.
    let attribution = sys.check_attribution().cloned();
    let cache = sys.cached_checker().map(|c| c.cache_stats());
    for id in ids {
        sys.deallocate_task(id).expect("task is live");
    }

    let snapshot = registry.map(|mut reg| {
        reg.counter_add("cycles", result.cycles);
        reg.counter_add("setup_cycles", result.setup_cycles);
        reg.gauge_set("bus_utilization", result.bus_utilization);
        if let Some(t) = &observe {
            reg.counter_add("trace.recorded", t.recorded());
            reg.counter_add("trace.dropped_events", t.dropped());
        }
        sys.export_metrics(&mut reg);
        reg.absorb(&machsuite::stats::of_trace(bench, &traces[0]), "workload.");
        reg.snapshot()
    });
    InnerRun {
        result,
        metrics: snapshot,
        checks_elided,
        attribution,
        cache,
    }
}

fn add_l1_metrics(reg: &mut Registry, hits: u64, misses: u64) {
    reg.counter_add("l1.hits", hits);
    reg.counter_add("l1.misses", misses);
    let total = hits + misses;
    reg.gauge_set(
        "l1.hit_rate",
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        },
    );
}

/// Convenience: cycles for `bench` under `variant` with one task.
#[must_use]
pub fn cycles(bench: Benchmark, variant: SystemVariant) -> Cycles {
    run_benchmark(bench, variant, 1, 0xC0DE).cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_run_aes() {
        for v in SystemVariant::ALL {
            let r = run_benchmark(Benchmark::Aes, v, 1, 1);
            assert!(r.cycles > 0, "{v}");
        }
    }

    #[test]
    fn checker_setup_cost_appears_only_on_caccel() {
        let plain = run_benchmark(Benchmark::MdKnn, SystemVariant::CheriCpuAccel, 1, 1);
        let checked = run_benchmark(Benchmark::MdKnn, SystemVariant::CheriCpuCheriAccel, 1, 1);
        assert!(checked.setup_cycles > plain.setup_cycles);
        assert!(checked.cycles > plain.cycles);
    }

    #[test]
    fn elided_run_skips_checks_and_saves_cycles() {
        let run = run_benchmark_elided(Benchmark::GemmNcubed, 1, 1);
        assert!(run.analysis.all_safe());
        assert!(run.checks_elided > 0, "no check was actually elided");
        assert!(
            run.elided.cycles < run.checked.cycles,
            "elision saved nothing: {} vs {}",
            run.elided.cycles,
            run.checked.cycles
        );
        assert!(run.speedup() > 1.0);
        // Setup is untouched: the same number of capabilities installs,
        // merely narrower ones.
        assert_eq!(run.elided.setup_cycles, run.checked.setup_cycles);
    }

    #[test]
    fn elided_runs_are_deterministic() {
        let a = run_benchmark_elided(Benchmark::SpmvCrs, 2, 7);
        let b = run_benchmark_elided(Benchmark::SpmvCrs, 2, 7);
        assert_eq!(a.elided.cycles, b.elided.cycles);
        assert_eq!(a.checks_elided, b.checks_elided);
    }

    #[test]
    fn cached_run_reports_cache_traffic() {
        let run = run_benchmark_cached(Benchmark::Aes, 1, 1, CachedCheckerConfig::default());
        assert!(run.result.cycles > 0);
        assert!(
            run.cache.hits + run.cache.misses > 0,
            "the cached checker saw no requests"
        );
        let again = run_benchmark_cached(Benchmark::Aes, 1, 1, CachedCheckerConfig::default());
        assert_eq!(run.cache, again.cache, "cache stats are deterministic");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_benchmark(
            Benchmark::SortRadix,
            SystemVariant::CheriCpuCheriAccel,
            2,
            7,
        );
        let b = run_benchmark(
            Benchmark::SortRadix,
            SystemVariant::CheriCpuCheriAccel,
            2,
            7,
        );
        assert_eq!(a.cycles, b.cycles);
    }
}
