//! The static-analysis report: per-benchmark capability-flow analysis
//! and the cycle payoff of eliding proved-safe checks.
//!
//! For every MachSuite benchmark this runs the static analyzer
//! ([`capcheri_analyze::analyze_benchmark`]), audits the driver's
//! default RW grant table against the declared port directions, then
//! measures `ccpu+caccel` twice — fully checked and with the proof
//! installed ([`runner::run_benchmark_elided`]) — reporting the checks
//! skipped and the speedup. The machine-readable form is the
//! `capcheri.staticreport.v1` schema; rows are produced in
//! `Benchmark::ALL` order and every map the report touches is ordered,
//! so output is byte-identical at any `--threads` count.

use crate::runner::{self, ElidedRun};
use capcheri_analyze::{audit_grants, default_grants};
use machsuite::Benchmark;
use obs::json::JsonWriter;

/// Schema tag of the JSON form.
pub const STATIC_REPORT_SCHEMA: &str = "capcheri.staticreport.v1";

/// One benchmark's static-analysis row.
#[derive(Clone, Debug)]
pub struct StaticRow {
    /// The measured pair of runs plus the analysis behind them.
    pub run: ElidedRun,
    /// Over-privilege findings against the default RW grant table (how
    /// much narrower the least-privilege grants are).
    pub over_privileged_grants: u64,
}

impl StaticRow {
    /// Ports proved safe.
    #[must_use]
    pub fn safe_ports(&self) -> usize {
        self.run
            .analysis
            .ports
            .iter()
            .filter(|p| p.verdict == capchecker::StaticVerdict::Safe)
            .count()
    }
}

/// Computes one row.
#[must_use]
pub fn row(bench: Benchmark) -> StaticRow {
    let run = runner::run_benchmark_elided(bench, 1, 0xC0DE);
    let over_privileged_grants = audit_grants(bench, &default_grants(bench, 0))
        .iter()
        .filter(|f| f.category == "over-privilege")
        .count() as u64;
    StaticRow {
        run,
        over_privileged_grants,
    }
}

/// All 19 rows, sequentially.
#[must_use]
pub fn rows() -> Vec<StaticRow> {
    rows_threads(1)
}

/// [`rows`] fanned out over a worker pool; any thread count produces the
/// same rows in the same order.
#[must_use]
pub fn rows_threads(threads: usize) -> Vec<StaticRow> {
    crate::fan_out(threads, Benchmark::ALL.len(), |i| row(Benchmark::ALL[i]))
}

/// Renders the report as a table.
#[must_use]
pub fn report() -> String {
    report_threads(1)
}

/// [`report`] with its benchmark cells computed on `threads` workers —
/// byte-identical output for any thread count.
#[must_use]
pub fn report_threads(threads: usize) -> String {
    render_rows(&rows_threads(threads))
}

/// Renders already-computed rows as the text table.
#[must_use]
pub fn render_rows(all: &[StaticRow]) -> String {
    let table_rows: Vec<Vec<String>> = all
        .iter()
        .map(|r| {
            vec![
                r.run.checked.bench.name().to_owned(),
                format!("{}/{}", r.safe_ports(), r.run.analysis.ports.len()),
                r.over_privileged_grants.to_string(),
                r.run.checks_elided.to_string(),
                r.run.checked.cycles.to_string(),
                r.run.elided.cycles.to_string(),
                crate::render::speedup(r.run.speedup()),
            ]
        })
        .collect();
    format!(
        "Static capability-flow analysis: proved-safe ports and check elision\n\
         (ccpu+caccel, one task; grants narrowed to declared directions)\n\n{}",
        crate::render::table(
            &[
                "Benchmark",
                "Safe ports",
                "RW excess",
                "Elided",
                "Checked cyc",
                "Elided cyc",
                "Speedup",
            ],
            &table_rows
        )
    )
}

/// The `capcheri.staticreport.v1` JSON document for `rows`.
#[must_use]
pub fn rows_to_json(rows: &[StaticRow]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string(STATIC_REPORT_SCHEMA);
    w.key("benchmarks");
    w.begin_array();
    for r in rows {
        let a = &r.run.analysis;
        w.begin_object();
        w.key("bench");
        w.string(a.bench.name());
        w.key("all_safe");
        w.bool(a.all_safe());
        w.key("over_privileged_grants");
        w.u64(r.over_privileged_grants);
        w.key("checks_elided");
        w.u64(r.run.checks_elided);
        w.key("checked_cycles");
        w.u64(r.run.checked.cycles);
        w.key("elided_cycles");
        w.u64(r.run.elided.cycles);
        w.key("speedup");
        w.f64(r.run.speedup());
        w.key("ports");
        w.begin_array();
        for p in &a.ports {
            w.begin_object();
            w.key("name");
            w.string(p.name);
            w.key("mode");
            w.string(p.mode.label());
            w.key("verdict");
            w.string(p.verdict.label());
            w.key("read");
            w.bool(p.read);
            w.key("write");
            w.bool(p.write);
            w.end_object();
        }
        w.end_array();
        w.key("findings");
        w.begin_array();
        for f in &a.findings {
            w.begin_object();
            w.key("category");
            w.string(f.category);
            w.key("subject");
            w.string(&f.subject);
            w.key("detail");
            w.string(&f.detail);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_benchmarks_all_prove_safe_and_gain() {
        // A cheap representative subset (the golden test covers all 19).
        for b in [Benchmark::Aes, Benchmark::GemmNcubed, Benchmark::SpmvCrs] {
            let r = row(b);
            assert!(r.run.analysis.all_safe(), "{b}");
            assert!(r.run.checks_elided > 0, "{b}");
            assert!(r.run.speedup() >= 1.0, "{b}");
        }
    }

    #[test]
    fn json_is_valid_and_schema_tagged() {
        let rows = vec![row(Benchmark::Aes)];
        let json = rows_to_json(&rows);
        obs::json::validate(&json).unwrap();
        assert!(json.contains("\"schema\":\"capcheri.staticreport.v1\""));
        assert!(json.contains("\"bench\":\"aes\""));
        assert!(json.contains("\"verdict\":\"safe\""));
    }
}
