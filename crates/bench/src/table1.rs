//! Table 1 — comparison with traditional hardware protection methods.

use crate::render;
use ioprotect::MechanismProperties;
#[cfg(test)]
use ioprotect::{Scalability, Translation};

fn mark(b: bool) -> String {
    (if b { "yes" } else { "no" }).to_owned()
}

/// The four property columns, in the paper's order.
#[must_use]
pub fn columns() -> [MechanismProperties; 4] {
    MechanismProperties::table1()
}

/// Renders Table 1.
#[must_use]
pub fn report() -> String {
    let cols = columns();
    let mut headers = vec!["Properties"];
    for c in &cols {
        headers.push(c.name);
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |label: &str, f: &dyn Fn(&MechanismProperties) -> String| {
        let mut r = vec![label.to_owned()];
        r.extend(cols.iter().map(f));
        rows.push(r);
    };
    row("Spatial enforcement", &|c| mark(c.spatial_enforcement));
    row("- granularity (bytes)", &|c| {
        c.granularity_bytes
            .map_or_else(|| "-".to_owned(), |g| g.to_string())
    });
    row("Common object representation", &|c| {
        mark(c.common_object_representation)
    });
    row("Unforgeability", &|c| mark(c.unforgeable));
    row("Scalability", &|c| c.scalability.to_string());
    row("Address translation", &|c| {
        c.address_translation.to_string()
    });
    row("Suitable for microcontrollers", &|c| {
        mark(c.microcontroller_suitable)
    });
    row("Suitable for application processors", &|c| {
        mark(c.app_processor_suitable)
    });
    format!(
        "Table 1: hardware protection methods for device memory accesses\n\n{}",
        render::table(&headers, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_the_key_judgements() {
        let r = report();
        assert!(r.contains("CHERI"));
        assert!(r.contains("4096")); // IOMMU granularity
        assert!(r.contains("semi")); // CHERI scalability
        assert!(r.contains("optional")); // CHERI translation
    }

    #[test]
    fn only_cheri_is_unforgeable() {
        let cols = columns();
        assert_eq!(cols.iter().filter(|c| c.unforgeable).count(), 1);
        assert!(cols[3].unforgeable);
        assert_eq!(cols[3].scalability, Scalability::Semi);
        assert_eq!(cols[2].address_translation, Translation::Yes);
    }
}
