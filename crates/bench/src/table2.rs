//! Table 2 — data buffer sizes of the benchmarks in the CapChecker.

use crate::render;
use machsuite::{Benchmark, Table2Row, INSTANCES};

/// All rows, in the paper's order.
#[must_use]
pub fn rows() -> Vec<Table2Row> {
    Benchmark::ALL.iter().map(|b| b.table2_row()).collect()
}

/// Renders Table 2.
#[must_use]
pub fn report() -> String {
    let table_rows: Vec<Vec<String>> = rows()
        .into_iter()
        .map(|r| {
            vec![
                r.benchmark.name().to_owned(),
                r.buffer_count.to_string(),
                r.min_bytes.to_string(),
                r.max_bytes.to_string(),
            ]
        })
        .collect();
    format!(
        "Table 2: buffer counts and sizes ({INSTANCES} instances per benchmark, 256-entry CapChecker)\n\n{}",
        render::table(&["Benchmark", "Buffers", "Min (B)", "Max (B)"], &table_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_19_benchmarks() {
        assert_eq!(rows().len(), 19);
        let r = report();
        for b in Benchmark::ALL {
            assert!(r.contains(b.name()), "{b} missing from the report");
        }
    }
}
