//! Table 3 — the CWE memory-safety matrix, produced by running the
//! attack suite against every mechanism.

use crate::render;
use threatbench::{table3, CweRow, Mechanism};

/// The measured/encoded rows.
#[must_use]
pub fn rows() -> Vec<CweRow> {
    table3()
}

/// Renders Table 3.
#[must_use]
pub fn report() -> String {
    let mut headers = vec!["Grp", "CWE ids", "Weakness"];
    let labels: Vec<&str> = Mechanism::ALL.iter().map(|m| m.label()).collect();
    headers.extend(labels.iter().copied());
    headers.push("src");

    let table_rows: Vec<Vec<String>> = rows()
        .into_iter()
        .map(|r| {
            let ids = r
                .ids
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let ids = if ids.len() > 24 {
                format!("{}...", &ids[..21])
            } else {
                ids
            };
            let mut row = vec![r.group.to_string(), ids, r.name.to_owned()];
            row.extend(r.cells.iter().map(|c| c.to_string()));
            row.push(if r.measured { "measured" } else { "analysis" }.to_owned());
            row
        })
        .collect();
    format!(
        "Table 3: CWE memory-safety weaknesses vs protection mechanisms\n\
         (X = unprotected, PG/TA/OB = protected at page/task/object granularity,\n\
          OK = protected, NA = not applicable; 'measured' rows ran real attacks)\n\n{}",
        render::table(&headers, &table_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatbench::Cell;

    #[test]
    fn headline_row_is_measured_and_correct() {
        let rows = rows();
        assert!(rows[0].measured);
        assert_eq!(
            rows[0].cells[5],
            Cell::Object,
            "Fine must be object-granular"
        );
    }

    #[test]
    fn report_prints_all_columns() {
        let r = report();
        for m in Mechanism::ALL {
            assert!(r.contains(m.label()));
        }
        assert!(r.contains("OB"));
        assert!(r.contains("measured"));
    }
}
