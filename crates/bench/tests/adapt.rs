//! Acceptance tests for the adaptive policy controller's reports: the
//! `capcheri.adapt.v1` bytes are identical at any worker count, and the
//! adaptive fault campaign's trace is byte-reproducible for a fixed
//! seed — the paper-level determinism claim for the closed loop.

use capchecker::{run_adaptive_campaign, AdaptConfig, CampaignConfig};
use capcheri_bench::adapt::{reports_to_json, AdaptBenchReport};
use hetsim::FaultSpec;
use machsuite::Benchmark;

const EPOCHS: u32 = 3;
const TASKS: usize = 2;
const SEED: u64 = 0xC0DE;

fn collect_all(threads: usize) -> Vec<AdaptBenchReport> {
    perf::parallel_map(threads, Benchmark::ALL.len(), |i| {
        AdaptBenchReport::collect(
            Benchmark::ALL[i],
            EPOCHS,
            TASKS,
            SEED,
            AdaptConfig::default(),
        )
    })
    .unwrap_or_else(|p| p.resume())
}

#[test]
fn adapt_report_bytes_are_identical_for_any_thread_count() {
    let baseline = reports_to_json(&collect_all(1));
    obs::json::validate(&baseline).unwrap();
    assert!(baseline.contains("\"schema\":\"capcheri.adapt.v1\""));
    for threads in [2, 4, 8] {
        let got = reports_to_json(&collect_all(threads));
        assert_eq!(
            got, baseline,
            "adapt JSON diverged between --threads 1 and --threads {threads}"
        );
    }
}

#[test]
fn adaptive_campaign_trace_is_byte_reproducible() {
    let config = CampaignConfig {
        tasks: 24,
        seed: SEED,
        spec: "engine-hang:0.4,cache-corrupt:0.2"
            .parse::<FaultSpec>()
            .unwrap(),
        ..CampaignConfig::default()
    };
    let a = run_adaptive_campaign(&config, &AdaptConfig::default()).unwrap();
    let b = run_adaptive_campaign(&config, &AdaptConfig::default()).unwrap();
    let json = a.to_json();
    obs::json::validate(&json).unwrap();
    assert_eq!(json, b.to_json());
    assert!(
        !a.decisions.is_empty(),
        "a faulting campaign must produce decisions"
    );
    // Every decision in the serialized trace explains itself: epoch,
    // rule, raw inputs, hysteresis state.
    for needle in [
        "\"epoch\":",
        "\"rule\":",
        "\"stall_share_pct\":",
        "\"dwell\":",
    ] {
        assert!(json.contains(needle), "missing {needle}");
    }
}
