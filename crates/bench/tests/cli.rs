//! Exit-code contract of the `simulate` verification subcommands.
//!
//! CI tells three outcomes apart by exit status alone: 0 = every
//! property held, 1 = a property was violated (a red verdict), 2 = the
//! harness itself failed (bad invocation, unwritable output). A
//! conflated code would let a broken harness masquerade as a clean run —
//! these tests pin each code end-to-end through the real binary.

use std::process::Command;

fn simulate(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(args)
        .output()
        .expect("simulate binary runs")
}

#[test]
fn verify_clean_model_exits_zero() {
    let out = simulate(&["verify", "--depth", "3", "--tasks", "2", "--objects", "2"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("verdict: clean"), "{stdout}");
}

#[test]
fn verify_planted_violation_exits_one() {
    let out = simulate(&[
        "verify",
        "--depth",
        "4",
        "--tasks",
        "2",
        "--objects",
        "2",
        "--planted-bug",
        "off-by-one",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("verify FAILED"),
        "violation must be loud on stderr: {stderr}"
    );
}

#[test]
fn verify_bad_invocation_exits_two() {
    for bad in [
        &["verify", "--no-such-flag"][..],
        &["verify", "--depth", "not-a-number"][..],
        &["verify", "--tasks", "9"][..],
    ] {
        let out = simulate(bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}: {out:?}");
    }
}

#[test]
fn verify_unwritable_out_exits_two() {
    let out = simulate(&[
        "verify",
        "--depth",
        "2",
        "--tasks",
        "2",
        "--objects",
        "2",
        "--json",
        "--out",
        "/nonexistent-dir/report.json",
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "an IO failure is an internal error, not a verdict: {out:?}"
    );
}

#[test]
fn conformance_clean_exits_zero_and_bad_invocation_exits_two() {
    let out = simulate(&["conformance", "--ops", "50", "--seed", "7"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = simulate(&["conformance", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn verify_json_report_is_byte_identical_across_threads() {
    let run = |threads: &str| {
        let out = simulate(&[
            "verify",
            "--depth",
            "4",
            "--tasks",
            "2",
            "--objects",
            "2",
            "--threads",
            threads,
            "--json",
        ]);
        assert_eq!(out.status.code(), Some(0), "{out:?}");
        out.stdout
    };
    let sequential = run("1");
    let stdout = String::from_utf8(sequential.clone()).unwrap();
    assert!(
        stdout.contains("\"schema\":\"capcheri.modelcheck.v1\""),
        "{stdout}"
    );
    for t in ["2", "4"] {
        assert_eq!(run(t), sequential, "threads={t}");
    }
}
