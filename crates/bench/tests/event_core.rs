//! Event-wheel timing core pinned against the retained naive heap core.
//!
//! The production `simulate_accel_system` runs on the pre-folded
//! event-wheel arena; `simulate_accel_system_naive` is the original
//! heap-scheduled implementation, kept public precisely so this suite and
//! CI can diff the two. The contract is *cycle-for-cycle equality* — not
//! "close": per-task completion cycles, makespan, bus beats, and
//! utilization must be identical on every MachSuite kernel, under bus
//! faults, and for staggered multi-task mixes. Any wheel event that was
//! skipped, reordered, or double-counted shows up here as a cycle diff.

use hetsim::timing::{
    simulate_accel_system, simulate_accel_system_naive, AccelReport, AccelTask, AccelTimingConfig,
    BusConfig,
};
use hetsim::{BusFaultConfig, DirectEngine, TaggedMemory, Trace};
use machsuite::Benchmark;

/// Executes one instance of `bench` functionally and returns its DMA trace.
fn kernel_trace(bench: Benchmark, seed: u64) -> Trace {
    let mut mem = TaggedMemory::new(64 << 20);
    let layout = bench.place(0x1000);
    for (obj, image) in bench.init(seed).iter().enumerate() {
        mem.write_bytes(layout.address(obj, 0), image)
            .expect("init data fits its buffer");
    }
    let mut eng = DirectEngine::new(&mut mem, layout);
    bench.kernel(&mut eng).expect("benign kernel executes");
    eng.into_trace()
}

fn accel_cfg(bench: Benchmark) -> AccelTimingConfig {
    let p = bench.profile();
    AccelTimingConfig {
        lanes: p.lanes,
        compute_per_cycle: p.compute_per_cycle,
        outstanding: p.outstanding,
    }
}

/// Runs both cores over the same tasks and asserts full report equality.
fn assert_cores_agree(bench: Benchmark, tasks: &[AccelTask<'_>], bus: &BusConfig) -> AccelReport {
    let wheel = simulate_accel_system(tasks, bus);
    let naive = simulate_accel_system_naive(tasks, bus);
    assert_eq!(
        wheel, naive,
        "event wheel diverged from the naive heap core on {bench}"
    );
    wheel
}

#[test]
fn wheel_matches_naive_on_every_kernel() {
    let bus = BusConfig::default().with_checker(1);
    for bench in Benchmark::ALL {
        let traces: Vec<Trace> = (0..2).map(|t| kernel_trace(bench, 0xC0DE + t)).collect();
        let tasks: Vec<AccelTask<'_>> = traces
            .iter()
            .enumerate()
            .map(|(t, trace)| AccelTask {
                trace,
                cfg: accel_cfg(bench),
                start: 150 * t as u64,
            })
            .collect();
        let report = assert_cores_agree(bench, &tasks, &bus);
        assert!(report.makespan > 0, "{bench} simulated no cycles");
    }
}

/// The cross-check CI runs on every push: two kernels with contrasting
/// shapes — gemm_ncubed (dense compute, deep traces) and md_knn (the
/// Figure 8 overhead outlier, memory-bound). Named so the perf-smoke job
/// can invoke exactly this test without paying for the full suite.
#[test]
fn wheel_matches_naive_two_kernel_smoke() {
    let bus = BusConfig::default().with_checker(1);
    for bench in [Benchmark::GemmNcubed, Benchmark::MdKnn] {
        let trace = kernel_trace(bench, 0xC0DE);
        let tasks = [AccelTask {
            trace: &trace,
            cfg: accel_cfg(bench),
            start: 150,
        }];
        assert_cores_agree(bench, &tasks, &bus);
    }
}

#[test]
fn wheel_matches_naive_under_bus_faults() {
    // Stalls move grant times; drops double beat occupancy. Both cores
    // must count grants in the same global order for these to agree.
    let faults = BusFaultConfig {
        stall_every: 7,
        stall_cycles: 12,
        drop_every: 11,
    };
    let bus = BusConfig::default().with_checker(1).with_faults(faults);
    for bench in [Benchmark::Aes, Benchmark::SpmvCrs, Benchmark::MdKnn] {
        let traces: Vec<Trace> = (0..3).map(|t| kernel_trace(bench, 0xBEEF + t)).collect();
        let tasks: Vec<AccelTask<'_>> = traces
            .iter()
            .enumerate()
            .map(|(t, trace)| AccelTask {
                trace,
                cfg: accel_cfg(bench),
                start: 40 * t as u64,
            })
            .collect();
        assert_cores_agree(bench, &tasks, &bus);
    }
}

#[test]
fn wheel_matches_naive_on_heterogeneous_mixes() {
    // Different FU configs sharing one bus — the scheduler interleaving
    // across unequal lane counts is where an ordering bug would hide.
    let bus = BusConfig::default();
    let benches = [Benchmark::Aes, Benchmark::GemmBlocked, Benchmark::Viterbi];
    let traces: Vec<(Benchmark, Trace)> = benches
        .iter()
        .map(|&b| (b, kernel_trace(b, 0xFEED)))
        .collect();
    let tasks: Vec<AccelTask<'_>> = traces
        .iter()
        .enumerate()
        .map(|(t, (b, trace))| AccelTask {
            trace,
            cfg: accel_cfg(*b),
            start: 25 * t as u64,
        })
        .collect();
    let wheel = simulate_accel_system(&tasks, &bus);
    let naive = simulate_accel_system_naive(&tasks, &bus);
    assert_eq!(wheel, naive, "mixed-FU system diverged between cores");
}
