//! Regression tests for the provenance flow audit and the incremental
//! engine's equivalence guarantee.
//!
//! The cross-tenant test plants a single hostile grant into a realistic
//! kernel driver stream, asserts the audit catches it, and then runs the
//! conformance ddmin shrinker over the whole stream — the reproducer
//! must reduce to exactly the planted op, proving the finding is not an
//! artifact of the surrounding stream.

use capcheri_analyze::{analyze_flow, churn_grants, IncrementalAnalyzer};
use capcheri_bench::flowreport::kernel_stream;
use conformance::stream::slot_base;
use conformance::{generate, regression_test, shrink, Op};
use machsuite::Benchmark;

fn trips_cross_tenant(ops: &[Op]) -> bool {
    analyze_flow(ops, 1)
        .flows
        .iter()
        .any(|f| f.category == "cross-tenant-flow")
}

#[test]
fn planted_cross_tenant_grant_shrinks_to_the_single_culprit() {
    // A stock kernel driver stream is flow-clean...
    let mut ops = kernel_stream(Benchmark::Aes);
    assert!(!trips_cross_tenant(&ops), "stock stream must be clean");
    // ...until tenant 1 is granted a window into tenant 0's home
    // compartment, planted mid-stream among the legitimate ops.
    let planted = Op::Grant {
        task: 1,
        object: 0,
        base: slot_base(0, 0),
        len: 64,
        perms: 0x3,
        seal: false,
        untagged: false,
    };
    let at = ops.len() / 2;
    ops.insert(at, planted.clone());
    assert!(trips_cross_tenant(&ops), "planted grant was not caught");
    // ddmin reduces the whole driver stream to the one hostile grant.
    let minimal = shrink(&ops, &trips_cross_tenant);
    assert_eq!(minimal, vec![planted]);
    // And the shrunk stream renders as a paste-ready regression test.
    let text = regression_test(&minimal);
    assert!(text.contains("Op::Grant"));
}

#[test]
fn incremental_matches_scratch_on_adversarial_seeds() {
    // Seeded adversarial streams with grant churn: the incremental
    // engine's verdict maps must be identical — not merely equivalent —
    // to a from-scratch analysis of the churned stream.
    for seed in [2u64, 7, 13, 29, 71, 113] {
        let base = generate(seed, 250);
        let churned = churn_grants(&base);
        let mut engine = IncrementalAnalyzer::with_threads(1);
        let _ = engine.analyze(&base);
        let inc = engine.analyze(&churned);
        let scratch = analyze_flow(&churned, 1);
        assert!(inc.same_results(&scratch), "seed {seed}: results diverged");
        assert_eq!(
            inc.segment_maps(),
            scratch.segment_maps(),
            "seed {seed}: verdict maps differ"
        );
        assert!(
            inc.reused > 0,
            "seed {seed}: churn left nothing to reuse — the fixture is degenerate"
        );
    }
}
