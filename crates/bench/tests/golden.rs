//! Golden snapshot tests for every figure and table the paper pipeline
//! renders.
//!
//! Each artifact is pinned as a small JSON document
//! (`capcheri.golden.v1`) under `tests/golden/`, asserted
//! *byte-identical* — any drift in a simulated cycle count, a rendered
//! speedup, or even table whitespace fails loudly. After an intentional
//! change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p capcheri-bench --test golden
//! ```
//!
//! and commit the rewritten files — the diff *is* the review artifact.

use capcheri_bench::{
    fig10, fig11, fig12, fig7, fig8, fig9, flowreport, staticreport, table1, table2, table3,
};
use obs::json::JsonWriter;
use std::fs;
use std::path::PathBuf;

/// Every pinned artifact: `(name, kind, report at `threads`)`. Tables
/// have no parallel path and ignore the thread count.
fn artifacts(threads: usize) -> Vec<(&'static str, &'static str, String)> {
    vec![
        ("fig7", "figure", fig7::report_threads(threads)),
        ("fig8", "figure", fig8::report_threads(threads)),
        ("fig9", "figure", fig9::report_threads(threads)),
        ("fig10", "figure", fig10::report_threads(threads)),
        ("fig11", "figure", fig11::report_threads(threads)),
        ("fig12", "figure", fig12::report_threads(threads)),
        (
            "staticreport",
            "report",
            staticreport::report_threads(threads),
        ),
        ("flowreport", "report", flowreport::report_threads(threads)),
        ("table1", "table", table1::report()),
        ("table2", "table", table2::report()),
        ("table3", "table", table3::report()),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn golden_doc(name: &str, kind: &str, report: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("capcheri.golden.v1");
    w.key("name");
    w.string(name);
    w.key("kind");
    w.string(kind);
    w.key("report");
    w.string(report);
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    doc
}

/// One pass per thread count: the single-thread rendering must match the
/// committed snapshot byte-for-byte, and the eight-thread rendering must
/// match the single-thread one (the fan-out merges cells in benchmark
/// order, so parallelism may not change a single byte).
#[test]
fn reports_match_golden_snapshots_at_one_and_eight_threads() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1");
    let sequential = artifacts(1);
    let parallel = artifacts(8);
    let mut drifted = Vec::new();
    for ((name, kind, report), (_, _, report8)) in sequential.into_iter().zip(parallel) {
        assert_eq!(
            report8, report,
            "{name}: eight-thread rendering differs from single-thread"
        );
        let doc = golden_doc(name, kind, &report);
        obs::json::validate(&doc).expect("golden docs are valid JSON");
        let path = golden_path(name);
        if update {
            fs::write(&path, &doc).expect("golden dir is writable");
            continue;
        }
        let pinned = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        if pinned != doc {
            drifted.push(name);
        }
    }
    assert!(
        drifted.is_empty(),
        "artifacts drifted from their golden snapshots: {drifted:?}\n\
         if the change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test -p capcheri-bench --test golden\n\
         and commit the rewritten files"
    );
}
