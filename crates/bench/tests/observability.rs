//! Observability guarantees: traced runs cost exactly what untraced runs
//! cost, and every export is byte-deterministic for a fixed seed.

use capchecker::SystemVariant;
use capcheri_bench::runner::{run_benchmark, run_benchmark_observed};
use machsuite::Benchmark;
use obs::chrome::chrome_trace_json;
use obs::json::validate;

#[test]
fn observed_runs_match_plain_runs_bit_for_bit() {
    for variant in SystemVariant::ALL {
        let plain = run_benchmark(Benchmark::Aes, variant, 2, 7);
        let observed = run_benchmark_observed(Benchmark::Aes, variant, 2, 7);
        assert_eq!(plain.cycles, observed.result.cycles, "{variant}");
        assert_eq!(
            plain.setup_cycles, observed.result.setup_cycles,
            "{variant}"
        );
        assert_eq!(
            plain.bus_utilization.to_bits(),
            observed.result.bus_utilization.to_bits(),
            "{variant}"
        );
    }
}

#[test]
fn same_seed_runs_export_byte_identical_artifacts() {
    let a = run_benchmark_observed(Benchmark::Aes, SystemVariant::CheriCpuCheriAccel, 2, 42);
    let b = run_benchmark_observed(Benchmark::Aes, SystemVariant::CheriCpuCheriAccel, 2, 42);
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "metrics snapshots must be byte-identical"
    );
    assert_eq!(
        chrome_trace_json(&a.events.sorted_by_cycle()),
        chrome_trace_json(&b.events.sorted_by_cycle()),
        "chrome traces must be byte-identical"
    );
}

#[test]
fn chrome_export_is_well_formed_with_monotone_timestamps() {
    let run = run_benchmark_observed(Benchmark::Aes, SystemVariant::CheriCpuCheriAccel, 2, 1);
    assert!(!run.events.is_empty(), "a run must record events");
    let json = chrome_trace_json(&run.events.sorted_by_cycle());
    validate(&json).expect("chrome trace must be valid JSON");
    let mut last = 0u64;
    let mut seen = 0usize;
    for rest in json.split("\"ts\":").skip(1) {
        let ts = rest
            .bytes()
            .take_while(u8::is_ascii_digit)
            .fold(0u64, |acc, b| acc * 10 + u64::from(b - b'0'));
        assert!(ts >= last, "ts must be monotonically non-decreasing");
        last = ts;
        seen += 1;
    }
    assert!(seen > 0, "the trace must carry timestamped events");
}

#[test]
fn report_carries_the_required_metrics() {
    let run = run_benchmark_observed(Benchmark::Aes, SystemVariant::CheriCpuCheriAccel, 4, 3);
    let m = &run.metrics;
    assert_eq!(m.counter("cycles"), Some(run.result.cycles));
    assert_eq!(m.counter("setup_cycles"), Some(run.result.setup_cycles));
    assert!(m.gauge("bus_utilization").is_some());
    assert!(m.gauge("l1.hit_rate").is_some());
    assert!(m.counter("checker.install_stalls").is_some());
    assert!(m.counter("checker.evictions").is_some());
    assert!(
        m.counter("checker.evictions").unwrap() > 0,
        "deallocation must evict the tasks' capabilities"
    );
    let json = m.to_json();
    validate(&json).expect("metrics JSON must be valid");
}

#[test]
fn driver_lifecycle_appears_in_the_event_stream() {
    use obs::EventKind;
    let run = run_benchmark_observed(Benchmark::Aes, SystemVariant::CheriCpuCheriAccel, 1, 5);
    let events = run.events.events();
    let has = |pred: &dyn Fn(&EventKind) -> bool| events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, EventKind::DriverPhase { .. })));
    assert!(has(&|k| matches!(k, EventKind::MmioCapInstall { .. })));
    assert!(has(&|k| matches!(k, EventKind::CheckerCheck { .. })));
    assert!(has(&|k| matches!(k, EventKind::CheckerEvict { .. })));
    assert!(has(&|k| matches!(k, EventKind::BusGrant { .. })));
    assert!(has(&|k| matches!(k, EventKind::TaskStart { .. })));
    assert!(has(&|k| matches!(k, EventKind::TaskEnd { .. })));
}
