//! Determinism pins for the parallel run harness: every figure, table,
//! and campaign report must be **byte-identical** for any worker count.
//!
//! The pool's contract (see `perf::parallel_map`) is that results merge
//! in cell-index order regardless of which worker computed what, so a
//! sequential run (`threads = 1`) is the reference for every other count.

use capchecker::{run_campaign_grid, CampaignConfig};
use capcheri_bench::{fig10, fig11, fig12, fig7, fig8, fig9};
use hetsim::FaultSpec;
use std::process::Command;
use std::str::FromStr;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

#[test]
fn fig7_report_is_byte_identical_for_any_thread_count() {
    let sequential = fig7::report_threads(1);
    for t in THREAD_COUNTS {
        assert_eq!(fig7::report_threads(t), sequential, "threads={t}");
    }
}

#[test]
fn fig8_report_is_byte_identical_for_any_thread_count() {
    let sequential = fig8::report_threads(1);
    for t in THREAD_COUNTS {
        assert_eq!(fig8::report_threads(t), sequential, "threads={t}");
    }
}

#[test]
fn fig9_report_is_byte_identical_for_any_thread_count() {
    let sequential = fig9::report_threads(1);
    for t in THREAD_COUNTS {
        assert_eq!(fig9::report_threads(t), sequential, "threads={t}");
    }
}

#[test]
fn fig10_report_is_byte_identical_for_any_thread_count() {
    let sequential = fig10::report_threads(1);
    for t in THREAD_COUNTS {
        assert_eq!(fig10::report_threads(t), sequential, "threads={t}");
    }
}

#[test]
fn fig11_report_is_byte_identical_for_any_thread_count() {
    let sequential = fig11::report_threads(1);
    for t in THREAD_COUNTS {
        assert_eq!(fig11::report_threads(t), sequential, "threads={t}");
    }
}

#[test]
fn fig12_report_is_byte_identical_for_any_thread_count() {
    let sequential = fig12::report_threads(1);
    for t in THREAD_COUNTS {
        assert_eq!(fig12::report_threads(t), sequential, "threads={t}");
    }
}

/// The campaign grid: each campaign is one fan-out cell, and its
/// `capcheri.fault_campaign.v1` JSON must not depend on the thread count.
#[test]
fn campaign_grid_json_is_byte_identical_for_any_thread_count() {
    let configs: Vec<CampaignConfig> = [
        ("none", 0xC0DE),
        ("all:0.8", 0xC0DE),
        ("engine-hang:1.0", 0x5EED),
        ("tag-flip:0.5,rogue-dma:0.5", 7),
    ]
    .into_iter()
    .map(|(spec, seed)| CampaignConfig {
        tasks: 12,
        seed,
        spec: FaultSpec::from_str(spec).expect("valid spec"),
        ..CampaignConfig::default()
    })
    .collect();

    let sequential: Vec<String> = run_campaign_grid(&configs, 1)
        .expect("campaigns run")
        .iter()
        .map(capchecker::CampaignReport::to_json)
        .collect();
    for t in THREAD_COUNTS {
        let got: Vec<String> = run_campaign_grid(&configs, t)
            .expect("campaigns run")
            .iter()
            .map(capchecker::CampaignReport::to_json)
            .collect();
        assert_eq!(got, sequential, "threads={t}");
    }
}

#[test]
fn survival_table_is_identical_for_any_thread_count() {
    let sequential = threatbench::recovery::survival_table_threads(8, 0x5EED, 1);
    for t in THREAD_COUNTS {
        assert_eq!(
            threatbench::recovery::survival_table_threads(8, 0x5EED, t),
            sequential,
            "threads={t}"
        );
    }
}

/// End-to-end: the `simulate` binary's stdout — table and JSON modes —
/// must not change with `--threads`.
#[test]
fn simulate_binary_output_is_byte_identical_across_threads() {
    let run = |extra: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_simulate"))
            .args(["all", "--tasks", "2", "--seed", "99"])
            .args(extra)
            .env_remove(perf::THREADS_ENV)
            .output()
            .expect("simulate runs");
        assert!(out.status.success(), "{:?}", out);
        out.stdout
    };
    let table_seq = run(&["--threads", "1"]);
    let json_seq = run(&["--threads", "1", "--json"]);
    for t in ["2", "4", "8"] {
        assert_eq!(run(&["--threads", t]), table_seq, "table, threads={t}");
        assert_eq!(
            run(&["--threads", t, "--json"]),
            json_seq,
            "json, threads={t}"
        );
    }
}
