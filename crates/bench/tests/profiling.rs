//! Acceptance tests for the profiling observatory: the
//! `capcheri.profile.v1` report is byte-identical at any worker count,
//! the span tree attributes (nearly) every simulated cycle, and
//! attaching the profiler never changes what the simulation computes.

use capchecker::SystemVariant;
use capcheri_bench::profile::{reports_to_json, ProfileReport};
use capcheri_bench::runner;
use machsuite::Benchmark;

const TASKS: usize = 2;
const SEED: u64 = 0xC0DE;

fn collect_all(threads: usize) -> Vec<ProfileReport> {
    perf::parallel_map(threads, Benchmark::ALL.len(), |i| {
        ProfileReport::collect(
            Benchmark::ALL[i],
            SystemVariant::CheriCpuCheriAccel,
            TASKS,
            SEED,
        )
    })
    .unwrap_or_else(|p| p.resume())
}

#[test]
fn profile_report_bytes_are_identical_for_any_thread_count() {
    let baseline = reports_to_json(&collect_all(1));
    obs::json::validate(&baseline).unwrap();
    for threads in [2, 4, 8] {
        let got = reports_to_json(&collect_all(threads));
        assert_eq!(
            got, baseline,
            "profile JSON diverged between --threads 1 and --threads {threads}"
        );
    }
}

#[test]
fn span_tree_attributes_at_least_95_percent_across_machsuite() {
    for bench in Benchmark::ALL {
        for variant in [
            SystemVariant::CheriCpu,
            SystemVariant::CpuAccel,
            SystemVariant::CheriCpuAccel,
            SystemVariant::CheriCpuCheriAccel,
        ] {
            let r = ProfileReport::collect(bench, variant, TASKS, SEED);
            let cov = r.coverage();
            assert!(
                cov <= 1.0 + 1e-12,
                "{bench} {variant}: over-attributed ({cov})"
            );
            assert!(
                cov >= 0.95,
                "{bench} {variant}: span tree attributes only {:.1}% of {} cycles",
                cov * 100.0,
                r.run.result.cycles
            );
        }
    }
}

#[test]
fn profiled_run_is_cycle_identical_to_the_null_profiler_path() {
    for bench in [Benchmark::Aes, Benchmark::SpmvCrs, Benchmark::GemmNcubed] {
        for variant in [SystemVariant::CheriCpu, SystemVariant::CheriCpuCheriAccel] {
            let plain = runner::run_benchmark(bench, variant, TASKS, SEED);
            let profiled = runner::run_benchmark_profiled(bench, variant, TASKS, SEED);
            assert_eq!(
                plain.cycles, profiled.result.cycles,
                "{bench} {variant}: attaching the profiler changed the simulation"
            );
            assert_eq!(plain.setup_cycles, profiled.result.setup_cycles);
        }
    }
}
