//! The architectural (uncompressed) capability and its monotonic operations.

use crate::compressed::{self, CompressedCapability};
use crate::error::CapFault;
use crate::otype::OType;
use crate::perms::Perms;
use std::fmt;

/// Top of the 64-bit address space (one past the last byte), as a `u128`.
pub const ADDRESS_SPACE_TOP: u128 = 1 << 64;

/// A CHERI capability: a pointer with hardware-enforced bounds, permissions,
/// sealing state, and a validity tag.
///
/// This is the *architectural* view — exact bounds held as full integers —
/// which is what a CPU register file or the CapChecker's decoded table entry
/// holds. The in-memory 128-bit form is [`CompressedCapability`].
///
/// All mutating operations are **monotonic**: they can only maintain or
/// reduce rights, never increase them, mirroring the CHERI ISA. Operations
/// that would increase rights return [`CapFault`].
///
/// # Examples
///
/// ```
/// use cheri::{Capability, Perms};
///
/// # fn main() -> Result<(), cheri::CapFault> {
/// let root = Capability::root();
/// let buf = root.set_bounds(0x1000, 256)?.and_perms(Perms::RW)?;
/// assert!(buf.check_access(0x1000, 16, Perms::LOAD).is_ok());
/// assert!(buf.check_access(0x1100, 1, Perms::LOAD).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability {
    tag: bool,
    address: u64,
    base: u64,
    top: u128,
    perms: Perms,
    otype: OType,
}

impl Capability {
    /// The root capability: the entire address space with every permission.
    ///
    /// Created once at system boot and tightly controlled by the OS; every
    /// other capability in the system derives from it (Figure 4 of the
    /// paper).
    #[must_use]
    pub fn root() -> Capability {
        Capability {
            tag: true,
            address: 0,
            base: 0,
            top: ADDRESS_SPACE_TOP,
            perms: Perms::ALL,
            otype: OType::Unsealed,
        }
    }

    /// The null capability: untagged, zero everywhere.
    #[must_use]
    pub fn null() -> Capability {
        Capability {
            tag: false,
            address: 0,
            base: 0,
            top: 0,
            perms: Perms::NONE,
            otype: OType::Unsealed,
        }
    }

    /// Assembles a capability from raw fields without any validity checks.
    ///
    /// This exists so that tests and the threat-model harness can build
    /// *forged* capabilities that the rest of the model must reject. It is
    /// not part of the architectural interface: hardware provides no such
    /// operation.
    #[doc(hidden)]
    #[must_use]
    pub fn from_raw_parts(
        tag: bool,
        address: u64,
        base: u64,
        top: u128,
        perms: Perms,
        otype: OType,
    ) -> Capability {
        Capability {
            tag,
            address,
            base,
            top,
            perms,
            otype,
        }
    }

    /// Whether the tag is set (the capability is valid and dereferenceable).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.tag
    }

    /// The current pointer address.
    #[must_use]
    pub fn address(&self) -> u64 {
        self.address
    }

    /// Inclusive lower bound of the authorized region.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Exclusive upper bound of the authorized region (may be `2^64`).
    #[must_use]
    pub fn top(&self) -> u128 {
        self.top
    }

    /// Length of the authorized region in bytes.
    #[must_use]
    pub fn length(&self) -> u128 {
        self.top - self.base as u128
    }

    /// The permission mask.
    #[must_use]
    pub fn perms(&self) -> Perms {
        self.perms
    }

    /// The sealing state.
    #[must_use]
    pub fn otype(&self) -> OType {
        self.otype
    }

    /// Whether the capability is sealed (non-dereferenceable token).
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.otype.is_sealed()
    }

    /// Whether `[addr, addr + len)` lies entirely within the bounds.
    #[must_use]
    pub fn bounds_contain(&self, addr: u64, len: u64) -> bool {
        let end = addr as u128 + len as u128;
        addr >= self.base && end <= self.top
    }

    /// Full dereference check: tag, seal, permissions, then bounds —
    /// the same sequence the CapChecker pipeline applies per request.
    ///
    /// # Errors
    ///
    /// Returns the first failing check as a [`CapFault`].
    pub fn check_access(&self, addr: u64, len: u64, needed: Perms) -> Result<(), CapFault> {
        if !self.tag {
            return Err(CapFault::TagViolation);
        }
        if self.is_sealed() {
            return Err(CapFault::SealViolation);
        }
        if !self.perms.contains(needed) {
            return Err(CapFault::PermissionViolation {
                missing: needed.intersect(!self.perms),
            });
        }
        if !self.bounds_contain(addr, len) {
            return Err(CapFault::BoundsViolation { addr, len });
        }
        Ok(())
    }

    /// Narrows the bounds to `[new_base, new_base + len)`, rounding outward
    /// as required by the compressed encoding, and moves the address to
    /// `new_base` (the `CSetBounds` idiom).
    ///
    /// # Errors
    ///
    /// * [`CapFault::TagViolation`] / [`CapFault::SealViolation`] on an
    ///   invalid or sealed source.
    /// * [`CapFault::MonotonicityViolation`] if the requested — or rounded —
    ///   region is not contained in the current bounds.
    pub fn set_bounds(&self, new_base: u64, len: u64) -> Result<Capability, CapFault> {
        self.derivable()?;
        let req_top = new_base as u128 + len as u128;
        if !(new_base >= self.base && req_top <= self.top) {
            return Err(CapFault::MonotonicityViolation);
        }
        let (rounded_base, rounded_top) = compressed::round_bounds(new_base, req_top);
        if !((rounded_base as u128) >= self.base as u128 && rounded_top <= self.top) {
            // The representable region grew past the parent: refusing keeps
            // the model strictly monotonic.
            return Err(CapFault::MonotonicityViolation);
        }
        Ok(Capability {
            address: new_base,
            base: rounded_base,
            top: rounded_top,
            ..*self
        })
    }

    /// Like [`Capability::set_bounds`] but fails instead of rounding.
    ///
    /// # Errors
    ///
    /// [`CapFault::UnrepresentableBounds`] if the encoding would have to
    /// round, plus everything [`Capability::set_bounds`] returns.
    pub fn set_bounds_exact(&self, new_base: u64, len: u64) -> Result<Capability, CapFault> {
        let req_top = new_base as u128 + len as u128;
        let (rounded_base, rounded_top) = compressed::round_bounds(new_base, req_top);
        if rounded_base != new_base || rounded_top != req_top {
            return Err(CapFault::UnrepresentableBounds);
        }
        self.set_bounds(new_base, len)
    }

    /// Moves the pointer to `new_address`, keeping bounds and permissions.
    ///
    /// The address may point outside the bounds (a C one-past-the-end or
    /// scan pointer); dereference is what bounds-checks, not pointer
    /// arithmetic.
    ///
    /// # Errors
    ///
    /// * [`CapFault::SealViolation`] on a sealed, valid capability.
    /// * [`CapFault::UnrepresentableAddress`] if the new address leaves the
    ///   compressed encoding's representable region (hardware would clear
    ///   the tag here; this model surfaces the fault instead).
    pub fn set_address(&self, new_address: u64) -> Result<Capability, CapFault> {
        if self.tag {
            if self.is_sealed() {
                return Err(CapFault::SealViolation);
            }
            if !compressed::address_is_representable(self.base, self.top, new_address) {
                return Err(CapFault::UnrepresentableAddress);
            }
        }
        Ok(Capability {
            address: new_address,
            ..*self
        })
    }

    /// Offsets the pointer by `delta` bytes (pointer arithmetic).
    ///
    /// # Errors
    ///
    /// Same as [`Capability::set_address`].
    pub fn offset_address(&self, delta: i64) -> Result<Capability, CapFault> {
        self.set_address(self.address.wrapping_add(delta as u64))
    }

    /// Intersects the permission mask with `mask` (the `CAndPerm` idiom).
    ///
    /// # Errors
    ///
    /// [`CapFault::TagViolation`] / [`CapFault::SealViolation`] on an
    /// invalid or sealed source.
    pub fn and_perms(&self, mask: Perms) -> Result<Capability, CapFault> {
        self.derivable()?;
        Ok(Capability {
            perms: self.perms.intersect(mask),
            ..*self
        })
    }

    /// Seals the capability with a software object type.
    ///
    /// # Errors
    ///
    /// [`CapFault::InvalidObjectType`] for reserved/out-of-range otypes,
    /// plus the usual tag/seal checks.
    pub fn seal(&self, otype: u32) -> Result<Capability, CapFault> {
        self.derivable()?;
        Ok(Capability {
            otype: OType::sealed(otype)?,
            ..*self
        })
    }

    /// Seals the capability as a sealed-entry (sentry) capability.
    ///
    /// # Errors
    ///
    /// The usual tag/seal checks.
    pub fn seal_entry(&self) -> Result<Capability, CapFault> {
        self.derivable()?;
        Ok(Capability {
            otype: OType::Sentry,
            ..*self
        })
    }

    /// Unseals a sealed capability (authority checks are the caller's
    /// responsibility in this model — the trusted driver is the only
    /// unsealer).
    ///
    /// # Errors
    ///
    /// [`CapFault::TagViolation`] on an untagged source,
    /// [`CapFault::SealViolation`] if it was not sealed.
    pub fn unseal(&self) -> Result<Capability, CapFault> {
        if !self.tag {
            return Err(CapFault::TagViolation);
        }
        if !self.is_sealed() {
            return Err(CapFault::SealViolation);
        }
        Ok(Capability {
            otype: OType::Unsealed,
            ..*self
        })
    }

    /// Returns a copy with the tag cleared — what happens to any capability
    /// bit-pattern overwritten by a capability-unaware (DMA) write.
    #[must_use]
    pub fn clear_tag(&self) -> Capability {
        Capability {
            tag: false,
            ..*self
        }
    }

    /// Whether `other`'s rights are a subset of this capability's rights
    /// (bounds and permissions) — the invariant every edge of the
    /// capability tree maintains.
    #[must_use]
    pub fn dominates(&self, other: &Capability) -> bool {
        other.base >= self.base && other.top <= self.top && other.perms.is_subset_of(self.perms)
    }

    /// Compresses to the 128-bit in-memory format (tag travels out of band).
    #[must_use]
    pub fn compress(&self) -> CompressedCapability {
        CompressedCapability::from_capability(self)
    }

    fn derivable(&self) -> Result<(), CapFault> {
        if !self.tag {
            return Err(CapFault::TagViolation);
        }
        if self.is_sealed() {
            return Err(CapFault::SealViolation);
        }
        Ok(())
    }
}

impl Default for Capability {
    fn default() -> Capability {
        Capability::null()
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Capability")
            .field("tag", &self.tag)
            .field("address", &format_args!("{:#x}", self.address))
            .field("base", &format_args!("{:#x}", self.base))
            .field("top", &format_args!("{:#x}", self.top))
            .field("perms", &self.perms)
            .field("otype", &self.otype)
            .finish()
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}cap {:#x} [{:#x}, {:#x}) {} {}",
            if self.tag { "" } else { "!" },
            self.address,
            self.base,
            self.top,
            self.perms,
            self.otype
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_covers_everything() {
        let root = Capability::root();
        assert!(root.is_valid());
        assert_eq!(root.base(), 0);
        assert_eq!(root.top(), ADDRESS_SPACE_TOP);
        assert!(root.check_access(0, 1, Perms::LOAD).is_ok());
        assert!(root.check_access(u64::MAX, 1, Perms::RW).is_ok());
    }

    #[test]
    fn null_is_invalid() {
        let null = Capability::null();
        assert!(!null.is_valid());
        assert_eq!(
            null.check_access(0, 0, Perms::NONE),
            Err(CapFault::TagViolation)
        );
    }

    #[test]
    fn set_bounds_narrows() {
        let c = Capability::root().set_bounds(0x1000, 0x100).unwrap();
        assert_eq!(c.base(), 0x1000);
        assert_eq!(c.top(), 0x1100);
        assert_eq!(c.address(), 0x1000);
        assert!(c.check_access(0x10ff, 1, Perms::LOAD).is_ok());
        assert_eq!(
            c.check_access(0x1100, 1, Perms::LOAD),
            Err(CapFault::BoundsViolation {
                addr: 0x1100,
                len: 1
            })
        );
    }

    #[test]
    fn set_bounds_rejects_widening() {
        let c = Capability::root().set_bounds(0x1000, 0x100).unwrap();
        assert_eq!(
            c.set_bounds(0x0800, 0x100),
            Err(CapFault::MonotonicityViolation)
        );
        assert_eq!(
            c.set_bounds(0x1000, 0x200),
            Err(CapFault::MonotonicityViolation)
        );
    }

    #[test]
    fn perms_only_shrink() {
        let c = Capability::root().and_perms(Perms::RW).unwrap();
        assert_eq!(c.perms(), Perms::RW);
        let r = c.and_perms(Perms::LOAD | Perms::EXECUTE).unwrap();
        assert_eq!(r.perms(), Perms::LOAD);
        assert_eq!(
            r.check_access(0, 1, Perms::STORE),
            Err(CapFault::PermissionViolation {
                missing: Perms::STORE
            })
        );
    }

    #[test]
    fn sealed_capability_is_inert() {
        let c = Capability::root()
            .set_bounds(0, 0x1000)
            .unwrap()
            .seal(42)
            .unwrap();
        assert!(c.is_sealed());
        assert_eq!(
            c.check_access(0, 1, Perms::LOAD),
            Err(CapFault::SealViolation)
        );
        assert_eq!(c.set_bounds(0, 16), Err(CapFault::SealViolation));
        assert_eq!(c.and_perms(Perms::LOAD), Err(CapFault::SealViolation));
        let u = c.unseal().unwrap();
        assert!(!u.is_sealed());
        assert!(u.check_access(0, 1, Perms::LOAD).is_ok());
    }

    #[test]
    fn unseal_requires_sealed() {
        assert_eq!(Capability::root().unseal(), Err(CapFault::SealViolation));
    }

    #[test]
    fn cleared_tag_cannot_derive() {
        let c = Capability::root().clear_tag();
        assert_eq!(c.set_bounds(0, 16), Err(CapFault::TagViolation));
        assert_eq!(c.and_perms(Perms::LOAD), Err(CapFault::TagViolation));
        assert_eq!(c.seal(42), Err(CapFault::TagViolation));
    }

    #[test]
    fn untagged_address_arithmetic_is_free() {
        let c = Capability::root().clear_tag();
        let moved = c.set_address(0xdead_beef).unwrap();
        assert_eq!(moved.address(), 0xdead_beef);
        assert!(!moved.is_valid());
    }

    #[test]
    fn address_can_point_one_past_end() {
        let c = Capability::root().set_bounds(0x1000, 0x100).unwrap();
        let end = c.set_address(0x1100).unwrap();
        assert_eq!(end.address(), 0x1100);
        assert!(end.is_valid());
    }

    #[test]
    fn offset_address_moves_pointer() {
        let c = Capability::root().set_bounds(0x1000, 0x100).unwrap();
        let p = c.offset_address(0x40).unwrap();
        assert_eq!(p.address(), 0x1040);
        let back = p.offset_address(-0x20).unwrap();
        assert_eq!(back.address(), 0x1020);
    }

    #[test]
    fn dominates_is_reflexive_and_antitone() {
        let parent = Capability::root().set_bounds(0x1000, 0x1000).unwrap();
        let child = parent
            .set_bounds(0x1200, 0x100)
            .unwrap()
            .and_perms(Perms::LOAD)
            .unwrap();
        assert!(parent.dominates(&parent));
        assert!(parent.dominates(&child));
        assert!(!child.dominates(&parent));
    }

    #[test]
    fn exact_bounds_reject_rounding() {
        // A huge, misaligned region cannot be exact under a 14-bit mantissa.
        let r = Capability::root().set_bounds_exact(1, (1 << 40) + 3);
        assert_eq!(r, Err(CapFault::UnrepresentableBounds));
        // Small regions are always exact.
        assert!(Capability::root().set_bounds_exact(1, 100).is_ok());
    }
}
