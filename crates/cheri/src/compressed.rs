//! The 128-bit compressed in-memory capability format.
//!
//! Real CHERI systems store capabilities in memory as 128 bits plus an
//! out-of-band tag, compressing the two 64-bit bounds into a floating-point
//! style exponent/mantissa form relative to the address (CHERI
//! Concentrate). This module implements a Concentrate-style scheme with the
//! same behavioural properties — bounds round *outward* to a 14-bit
//! mantissa at a power-of-two granule, and moving the address too far from
//! the bounds makes the capability unrepresentable — without copying the
//! draft RISC-V standard bit-for-bit.
//!
//! Layout (low 64 bits are metadata, high 64 bits the address):
//!
//! ```text
//! [127:64] address
//! [ 63:52] permissions (12 bits)
//! [ 51:34] otype       (18 bits)
//! [ 33:28] exponent E  (6 bits)
//! [ 27:14] base mantissa B (14 bits) = bits [E+13:E] of the aligned base
//! [ 13: 0] length mantissa L (14 bits), length = L << E
//! ```
//!
//! The bits of the base above `E + 14` are reconstructed from the address:
//! the representable region is `[alignedBase, alignedBase + 2^(E+14))` and
//! any address inside it decodes the bounds exactly.

use crate::capability::{Capability, ADDRESS_SPACE_TOP};
use crate::otype::OType;
use crate::perms::Perms;
use std::fmt;

/// Width of the bounds mantissas in bits.
pub const MANTISSA_BITS: u32 = 14;
/// Largest encodable length mantissa.
const MANTISSA_MAX: u128 = (1 << MANTISSA_BITS) - 1;
/// Largest exponent ever produced by [`encode_bounds`] (covers a full
/// 2^64-byte region: `8192 << 51 = 2^64`).
pub const MAX_EXPONENT: u32 = 52;

const PERMS_SHIFT: u32 = 52;
const OTYPE_SHIFT: u32 = 34;
const EXP_SHIFT: u32 = 28;
const BASE_SHIFT: u32 = 14;

/// The exponent/mantissa triple produced by bounds compression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundsEncoding {
    /// Power-of-two granule (`2^exponent` bytes).
    pub exponent: u32,
    /// Bits `[exponent+13 : exponent]` of the rounded base.
    pub base_mantissa: u16,
    /// Rounded length divided by the granule.
    pub length_mantissa: u16,
}

/// Compresses `[base, top)` to the smallest-exponent encoding, rounding
/// outward when the region is too large or misaligned for the mantissa.
///
/// # Panics
///
/// Panics if `top < base` or `top > 2^64` (impossible for capabilities
/// built through the public API).
#[must_use]
pub fn encode_bounds(base: u64, top: u128) -> BoundsEncoding {
    assert!(top >= base as u128, "top below base");
    assert!(top <= ADDRESS_SPACE_TOP, "top beyond the address space");
    for exponent in 0..=MAX_EXPONENT {
        let granule_mask = (1u128 << exponent) - 1;
        let b = base as u128 & !granule_mask;
        let t = top.checked_add(granule_mask).expect("no overflow") & !granule_mask;
        let l = (t - b) >> exponent;
        if l <= MANTISSA_MAX {
            return BoundsEncoding {
                exponent,
                base_mantissa: ((b >> exponent) & MANTISSA_MAX) as u16,
                length_mantissa: l as u16,
            };
        }
    }
    unreachable!("exponent {MAX_EXPONENT} always fits a 2^64 region")
}

/// The bounds that [`encode_bounds`] would actually represent: the requested
/// region rounded outward to the encoding granule.
#[must_use]
pub fn round_bounds(base: u64, top: u128) -> (u64, u128) {
    let enc = encode_bounds(base, top);
    let granule_mask = (1u128 << enc.exponent) - 1;
    let b = base as u128 & !granule_mask;
    let t = (top + granule_mask) & !granule_mask;
    (b as u64, t)
}

/// Whether `address` stays inside the representable region of a capability
/// with the given (already rounded) bounds.
#[must_use]
pub fn address_is_representable(base: u64, top: u128, address: u64) -> bool {
    let enc = encode_bounds(base, top);
    let aligned_base = base as u128 & !((1u128 << enc.exponent) - 1);
    let region_end = aligned_base + (1u128 << (enc.exponent + MANTISSA_BITS));
    let a = address as u128;
    a >= aligned_base && a < region_end
}

/// Reconstructs `(base, top)` from an encoding and the capability address.
///
/// Only meaningful when `address` lies inside the representable region; the
/// encoder and every monotonic operation maintain that invariant.
#[must_use]
pub fn decode_bounds(enc: BoundsEncoding, address: u64) -> (u64, u128) {
    let e = enc.exponent.min(MAX_EXPONENT);
    let b_mant = enc.base_mantissa as u128 & MANTISSA_MAX;
    let l_mant = enc.length_mantissa as u128 & MANTISSA_MAX;
    let a = address as u128;
    let a_mid = (a >> e) & MANTISSA_MAX;
    let a_hi = a >> (e + MANTISSA_BITS);
    // If the address's mantissa slice is below the base mantissa, the
    // address has wrapped into the block above the base's block.
    let block_index = if a_mid < b_mant {
        a_hi.saturating_sub(1)
    } else {
        a_hi
    };
    let base = (block_index << (e + MANTISSA_BITS)) | (b_mant << e);
    let top = base + (l_mant << e);
    (base as u64, top.min(ADDRESS_SPACE_TOP))
}

/// A capability in its 128-bit in-memory representation.
///
/// The validity tag is *not* part of the 128 bits: it lives out of band
/// (shadow tag storage in [`hetsim`-style memories]) so that
/// capability-unaware writes can never produce a valid capability.
///
/// # Examples
///
/// ```
/// use cheri::{Capability, Perms};
///
/// # fn main() -> Result<(), cheri::CapFault> {
/// let cap = Capability::root().set_bounds(0x4000, 512)?.and_perms(Perms::RW)?;
/// let bits = cap.compress();
/// let back = bits.decode(true);
/// assert_eq!(back, cap);
/// // An untagged decode yields the same fields but an invalid capability.
/// assert!(!bits.decode(false).is_valid());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CompressedCapability(u128);

impl CompressedCapability {
    /// Compresses an architectural capability (the tag travels separately).
    #[must_use]
    pub fn from_capability(cap: &Capability) -> CompressedCapability {
        let enc = encode_bounds(cap.base(), cap.top());
        let mut bits: u128 = (cap.address() as u128) << 64;
        bits |= ((cap.perms().bits() as u128) & 0xfff) << PERMS_SHIFT;
        bits |= ((cap.otype().encoding() as u128) & 0x3ffff) << OTYPE_SHIFT;
        bits |= ((enc.exponent as u128) & 0x3f) << EXP_SHIFT;
        bits |= ((enc.base_mantissa as u128) & MANTISSA_MAX) << BASE_SHIFT;
        bits |= (enc.length_mantissa as u128) & MANTISSA_MAX;
        CompressedCapability(bits)
    }

    /// Reinterprets raw memory bits as a compressed capability.
    #[must_use]
    pub fn from_bits(bits: u128) -> CompressedCapability {
        CompressedCapability(bits)
    }

    /// The raw 128-bit pattern.
    #[must_use]
    pub fn bits(self) -> u128 {
        self.0
    }

    /// The address field without decoding the bounds.
    #[must_use]
    pub fn address(self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// The bounds-encoding fields without decoding them.
    #[must_use]
    pub fn bounds_encoding(self) -> BoundsEncoding {
        BoundsEncoding {
            exponent: ((self.0 >> EXP_SHIFT) & 0x3f) as u32,
            base_mantissa: ((self.0 >> BASE_SHIFT) & MANTISSA_MAX) as u16,
            length_mantissa: (self.0 & MANTISSA_MAX) as u16,
        }
    }

    /// Decodes to the architectural form; `tag` comes from shadow storage.
    ///
    /// This is the job of the CapChecker's *capability decoder* block
    /// (Figure 5): recover address bounds and permissions for the memory
    /// check.
    #[must_use]
    pub fn decode(self, tag: bool) -> Capability {
        let address = self.address();
        let perms = Perms::from_bits(((self.0 >> PERMS_SHIFT) & 0xfff) as u16);
        let otype = OType::from_encoding(((self.0 >> OTYPE_SHIFT) & 0x3ffff) as u32);
        let (base, top) = decode_bounds(self.bounds_encoding(), address);
        Capability::from_raw_parts(tag, address, base, top, perms, otype)
    }
}

impl fmt::Debug for CompressedCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompressedCapability({:#034x})", self.0)
    }
}

impl fmt::Display for CompressedCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#034x}", self.0)
    }
}

impl fmt::LowerHex for CompressedCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(base: u64, len: u64) -> Capability {
        Capability::root()
            .set_bounds(base, len)
            .expect("in-range bounds")
    }

    #[test]
    fn small_bounds_encode_exactly() {
        for (base, len) in [(0u64, 16u64), (0x1000, 1), (0x1234, 0x3fff), (7, 9)] {
            let enc = encode_bounds(base, base as u128 + len as u128);
            assert_eq!(enc.exponent, 0, "len {len} should not need an exponent");
            let (b, t) = round_bounds(base, base as u128 + len as u128);
            assert_eq!((b, t), (base, base as u128 + len as u128));
        }
    }

    #[test]
    fn large_bounds_round_outward() {
        let base = 0x1001;
        let top = base as u128 + (1 << 20) + 5;
        let (b, t) = round_bounds(base, top);
        assert!(b <= base);
        assert!(t >= top);
        // Rounding is bounded by one granule on each side.
        let enc = encode_bounds(base, top);
        let granule = 1u128 << enc.exponent;
        assert!((base as u128 - b as u128) < granule);
        assert!(t - top < granule);
    }

    #[test]
    fn full_address_space_is_encodable() {
        let enc = encode_bounds(0, ADDRESS_SPACE_TOP);
        let (b, t) = decode_bounds(enc, 0);
        assert_eq!(b, 0);
        assert_eq!(t, ADDRESS_SPACE_TOP);
    }

    #[test]
    fn decode_recovers_bounds_across_the_region() {
        let base = 0xab_c000;
        let len = 0x4000u64; // needs exponent > 0
        let top = base as u128 + len as u128;
        let (rb, rt) = round_bounds(base, top);
        let enc = encode_bounds(base, top);
        for addr in [rb, rb + 1, base + len / 2, rt as u64 - 1, rt as u64] {
            assert!(address_is_representable(rb, rt, addr), "addr {addr:#x}");
            assert_eq!(decode_bounds(enc, addr), (rb, rt), "addr {addr:#x}");
        }
    }

    #[test]
    fn compress_round_trips() {
        let c = cap(0x8000, 4096);
        assert_eq!(c.compress().decode(true), c);
    }

    #[test]
    fn tag_is_out_of_band() {
        let c = cap(0x8000, 4096);
        let decoded = c.compress().decode(false);
        assert!(!decoded.is_valid());
        assert_eq!(decoded.base(), c.base());
    }

    #[test]
    fn null_bits_decode_to_null() {
        let null = CompressedCapability::from_bits(0).decode(false);
        assert_eq!(null, Capability::null());
    }

    #[test]
    fn forged_bits_decode_untagged() {
        // An attacker writing arbitrary bits gets fields, but never a tag.
        let forged = CompressedCapability::from_bits(u128::MAX).decode(false);
        assert!(!forged.is_valid());
    }

    #[test]
    fn far_address_is_unrepresentable() {
        let c = cap(0x10_0000, 0x100);
        let enc = encode_bounds(c.base(), c.top());
        assert_eq!(enc.exponent, 0);
        // The representable region at E=0 spans 2^14 bytes above the
        // aligned base; far beyond that must be rejected.
        assert!(!address_is_representable(
            c.base(),
            c.top(),
            0x10_0000 + (1 << 20)
        ));
        assert!(!address_is_representable(c.base(), c.top(), 0));
    }
}
