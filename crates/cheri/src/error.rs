//! Capability fault types.

use crate::perms::Perms;
use std::error::Error;
use std::fmt;

/// A violation of the capability model.
///
/// Raised by capability derivation and by every dereference check (on the
/// CPU model and in the CapChecker alike). The variants mirror the CHERI
/// architectural exception causes that matter to this system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CapFault {
    /// The capability's tag is clear: it is not a valid capability.
    TagViolation,
    /// The capability is sealed and the operation requires an unsealed one.
    SealViolation,
    /// The access `[addr, addr + len)` falls outside the capability bounds.
    BoundsViolation {
        /// First byte of the offending access.
        addr: u64,
        /// Length of the offending access in bytes.
        len: u64,
    },
    /// The capability lacks the permissions required for the operation.
    PermissionViolation {
        /// Permissions that were required but missing.
        missing: Perms,
    },
    /// A derivation attempted to *increase* rights (bounds or permissions).
    MonotonicityViolation,
    /// The requested bounds cannot be represented exactly by the compressed
    /// encoding and the operation demanded exactness.
    UnrepresentableBounds,
    /// The new address would leave the representable region, so the
    /// capability's tag would be cleared by the operation.
    UnrepresentableAddress,
    /// The object type is out of range for the encoding.
    InvalidObjectType,
}

impl fmt::Display for CapFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapFault::TagViolation => write!(f, "tag violation: capability is invalid"),
            CapFault::SealViolation => write!(f, "seal violation: capability is sealed"),
            CapFault::BoundsViolation { addr, len } => {
                write!(
                    f,
                    "bounds violation: access [{addr:#x}, +{len}) outside capability bounds"
                )
            }
            CapFault::PermissionViolation { missing } => {
                write!(f, "permission violation: missing {missing}")
            }
            CapFault::MonotonicityViolation => {
                write!(
                    f,
                    "monotonicity violation: derivation would increase rights"
                )
            }
            CapFault::UnrepresentableBounds => {
                write!(f, "requested bounds are not exactly representable")
            }
            CapFault::UnrepresentableAddress => {
                write!(f, "new address is outside the representable region")
            }
            CapFault::InvalidObjectType => write!(f, "object type out of encodable range"),
        }
    }
}

impl Error for CapFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let faults = [
            CapFault::TagViolation,
            CapFault::SealViolation,
            CapFault::BoundsViolation {
                addr: 0x1000,
                len: 4,
            },
            CapFault::PermissionViolation {
                missing: Perms::STORE,
            },
            CapFault::MonotonicityViolation,
            CapFault::UnrepresentableBounds,
            CapFault::UnrepresentableAddress,
            CapFault::InvalidObjectType,
        ];
        for fault in faults {
            let msg = fault.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(CapFault::TagViolation);
        assert!(e.to_string().contains("tag"));
    }
}
