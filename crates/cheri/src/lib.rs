//! # cheri — the CHERI capability model
//!
//! The capability substrate for the CapChecker heterogeneous-system
//! reproduction: architectural capabilities with monotonic derivation
//! ([`Capability`]), the 128-bit compressed in-memory format with an
//! out-of-band tag ([`CompressedCapability`]), permissions ([`Perms`]),
//! sealing ([`OType`]), and the provenance tree of Figure 4
//! ([`CapabilityTree`]).
//!
//! A CHERI capability is an unforgeable, delegatable token of authority
//! over a memory region. Three properties carry the entire security
//! argument of the paper, and this crate enforces all of them:
//!
//! 1. **Monotonicity** — every operation on a valid capability maintains or
//!    reduces rights; widening returns a [`CapFault`].
//! 2. **Unforgeability** — the validity tag is out of band; no sequence of
//!    data writes can produce `decode(bits, tag = true)`.
//! 3. **Intentional use** — dereference is checked against the specific
//!    capability used, not any capability the task happens to hold.
//!
//! # Examples
//!
//! ```
//! use cheri::{Capability, Perms};
//!
//! # fn main() -> Result<(), cheri::CapFault> {
//! // The OS derives an application heap from the boot root…
//! let heap = Capability::root().set_bounds(0x1000_0000, 1 << 20)?;
//! // …and the application derives a buffer pointer for an accelerator.
//! let buffer = heap.set_bounds(0x1000_2000, 4096)?.and_perms(Perms::RW)?;
//!
//! assert!(buffer.check_access(0x1000_2000, 64, Perms::STORE).is_ok());
//! // Out-of-bounds and permission violations are architectural faults:
//! assert!(buffer.check_access(0x1000_3000, 64, Perms::STORE).is_err());
//! assert!(buffer.check_access(0x1000_2000, 4, Perms::EXECUTE).is_err());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod capability;
pub mod compressed;
mod error;
mod otype;
mod perms;
mod tree;

pub use capability::{Capability, ADDRESS_SPACE_TOP};
pub use compressed::CompressedCapability;
pub use error::CapFault;
pub use otype::{OType, MAX_OTYPE, MAX_SEALED_OTYPE, MIN_SEALED_OTYPE};
pub use perms::Perms;
pub use tree::{CapabilityTree, NodeId, ObjectKind};

/// Size in bytes of a capability in memory (and of a tag granule).
pub const CAP_SIZE_BYTES: u64 = 16;
