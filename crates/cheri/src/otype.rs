//! Object types and sealing.

use crate::error::CapFault;
use std::fmt;

/// Maximum encodable object type (18-bit field in the 128-bit format).
pub const MAX_OTYPE: u32 = (1 << 18) - 1;

/// Reserved otype encoding for an unsealed capability.
///
/// Zero, so that the all-zero bit pattern (the null capability) decodes as
/// an ordinary unsealed capability.
const OTYPE_UNSEALED: u32 = 0;
/// Reserved otype encoding for a sealed-entry (sentry) capability.
const OTYPE_SENTRY: u32 = 1;
/// Smallest otype usable for software sealing.
pub const MIN_SEALED_OTYPE: u32 = 2;
/// Largest otype usable for software sealing.
pub const MAX_SEALED_OTYPE: u32 = MAX_OTYPE;

/// The sealing state of a capability.
///
/// Sealed capabilities are immutable and non-dereferenceable tokens; the
/// driver in this system uses them to hand opaque accelerator-task handles
/// back to applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum OType {
    /// Ordinary, dereferenceable capability.
    #[default]
    Unsealed,
    /// Sealed-entry capability: only invocable, which atomically unseals it.
    Sentry,
    /// Sealed with a software-chosen object type in
    /// [`MIN_SEALED_OTYPE`]`..=`[`MAX_SEALED_OTYPE`].
    Sealed(u32),
}

impl OType {
    /// Decodes an 18-bit otype field.
    #[must_use]
    pub fn from_encoding(raw: u32) -> OType {
        match raw & MAX_OTYPE {
            OTYPE_UNSEALED => OType::Unsealed,
            OTYPE_SENTRY => OType::Sentry,
            o => OType::Sealed(o),
        }
    }

    /// Encodes to the 18-bit otype field.
    #[must_use]
    pub fn encoding(self) -> u32 {
        match self {
            OType::Unsealed => OTYPE_UNSEALED,
            OType::Sentry => OTYPE_SENTRY,
            OType::Sealed(o) => o & MAX_OTYPE,
        }
    }

    /// Builds a software-sealed otype, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`CapFault::InvalidObjectType`] if `otype` collides with a
    /// reserved encoding or exceeds the 18-bit field.
    pub fn sealed(otype: u32) -> Result<OType, CapFault> {
        if (MIN_SEALED_OTYPE..=MAX_SEALED_OTYPE).contains(&otype) {
            Ok(OType::Sealed(otype))
        } else {
            Err(CapFault::InvalidObjectType)
        }
    }

    /// Returns `true` for any sealed state (sentry or software-sealed).
    #[must_use]
    pub fn is_sealed(self) -> bool {
        !matches!(self, OType::Unsealed)
    }
}

impl fmt::Display for OType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OType::Unsealed => write!(f, "unsealed"),
            OType::Sentry => write!(f, "sentry"),
            OType::Sealed(o) => write!(f, "sealed({o})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trip() {
        for ot in [
            OType::Unsealed,
            OType::Sentry,
            OType::Sealed(2),
            OType::Sealed(42),
        ] {
            assert_eq!(OType::from_encoding(ot.encoding()), ot);
        }
    }

    #[test]
    fn null_pattern_decodes_unsealed() {
        assert_eq!(OType::from_encoding(0), OType::Unsealed);
    }

    #[test]
    fn sealed_constructor_validates_range() {
        assert!(OType::sealed(0).is_err());
        assert!(OType::sealed(1).is_err());
        assert_eq!(OType::sealed(2), Ok(OType::Sealed(2)));
        assert_eq!(
            OType::sealed(MAX_SEALED_OTYPE),
            Ok(OType::Sealed(MAX_SEALED_OTYPE))
        );
        assert!(OType::sealed(MAX_OTYPE + 1).is_err());
    }

    #[test]
    fn sealed_query() {
        assert!(!OType::Unsealed.is_sealed());
        assert!(OType::Sentry.is_sealed());
        assert!(OType::Sealed(7).is_sealed());
    }
}
