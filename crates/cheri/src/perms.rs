//! Capability permission bits.
//!
//! CHERI capabilities carry a permission mask restricting how the pointer
//! may be used. Permissions are *monotonic*: derivation may clear bits but
//! never set them ([`Perms::intersect`] is the only combining operation).

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A set of capability permissions.
///
/// Modelled on the architectural permissions of the 128-bit RISC-V CHERI
/// encoding (16-bit field). The paper's CapChecker consumes primarily
/// [`Perms::LOAD`] and [`Perms::STORE`]; the capability-interconnect path
/// additionally honours [`Perms::LOAD_CAP`] / [`Perms::STORE_CAP`].
///
/// # Examples
///
/// ```
/// use cheri::Perms;
///
/// let rw = Perms::LOAD | Perms::STORE;
/// assert!(rw.contains(Perms::LOAD));
/// assert!(!rw.contains(Perms::EXECUTE));
/// assert!(rw.intersect(Perms::LOAD).is_subset_of(rw));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u16);

impl Perms {
    /// No permissions at all.
    pub const NONE: Perms = Perms(0);
    /// Capability is not scoped to a compartment and may be stored freely.
    pub const GLOBAL: Perms = Perms(1 << 0);
    /// Permit instruction fetch through this capability.
    pub const EXECUTE: Perms = Perms(1 << 1);
    /// Permit data loads.
    pub const LOAD: Perms = Perms(1 << 2);
    /// Permit data stores.
    pub const STORE: Perms = Perms(1 << 3);
    /// Permit loading valid (tagged) capabilities.
    pub const LOAD_CAP: Perms = Perms(1 << 4);
    /// Permit storing valid (tagged) capabilities.
    pub const STORE_CAP: Perms = Perms(1 << 5);
    /// Permit storing non-global capabilities.
    pub const STORE_LOCAL_CAP: Perms = Perms(1 << 6);
    /// Permit sealing other capabilities with this capability's address as
    /// the object type.
    pub const SEAL: Perms = Perms(1 << 7);
    /// Permit unsealing capabilities sealed with this capability's address.
    pub const UNSEAL: Perms = Perms(1 << 8);
    /// Permit CInvoke-style domain crossing.
    pub const INVOKE: Perms = Perms(1 << 9);
    /// Permit access to system registers.
    pub const ACCESS_SYS_REGS: Perms = Perms(1 << 10);
    /// Software-defined permission 0 (the prototype driver uses this to mark
    /// capabilities delegated to accelerator tasks).
    pub const USER0: Perms = Perms(1 << 11);

    /// Every architectural permission (the root capability's mask).
    pub const ALL: Perms = Perms(0x0fff);

    /// Read/write data permissions, the common grant for accelerator buffers.
    pub const RW: Perms = Perms(Perms::LOAD.0 | Perms::STORE.0);

    /// Creates a permission set from its raw 16-bit encoding.
    ///
    /// Bits outside [`Perms::ALL`] are preserved so that a decoded
    /// capability round-trips exactly.
    #[must_use]
    pub const fn from_bits(bits: u16) -> Perms {
        Perms(bits)
    }

    /// Returns the raw 16-bit encoding.
    #[must_use]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Returns `true` if every permission in `other` is present in `self`.
    #[must_use]
    pub const fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if `self` grants no permission outside `other`.
    #[must_use]
    pub const fn is_subset_of(self, other: Perms) -> bool {
        other.contains(self)
    }

    /// Monotonic permission combination: the intersection of two masks.
    #[must_use]
    pub const fn intersect(self, other: Perms) -> Perms {
        Perms(self.0 & other.0)
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl Not for Perms {
    type Output = Perms;
    fn not(self) -> Perms {
        Perms(!self.0)
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(u16, &str); 12] = [
            (1 << 0, "GLOBAL"),
            (1 << 1, "EXECUTE"),
            (1 << 2, "LOAD"),
            (1 << 3, "STORE"),
            (1 << 4, "LOAD_CAP"),
            (1 << 5, "STORE_CAP"),
            (1 << 6, "STORE_LOCAL_CAP"),
            (1 << 7, "SEAL"),
            (1 << 8, "UNSEAL"),
            (1 << 9, "INVOKE"),
            (1 << 10, "ACCESS_SYS_REGS"),
            (1 << 11, "USER0"),
        ];
        if self.0 == 0 {
            return write!(f, "Perms(NONE)");
        }
        write!(f, "Perms(")?;
        let mut first = true;
        for (bit, name) in NAMES {
            if self.0 & bit != 0 {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        let unknown = self.0 & !Perms::ALL.0;
        if unknown != 0 {
            if !first {
                write!(f, "|")?;
            }
            write!(f, "{unknown:#x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Binary for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_named_permission() {
        for p in [
            Perms::GLOBAL,
            Perms::EXECUTE,
            Perms::LOAD,
            Perms::STORE,
            Perms::LOAD_CAP,
            Perms::STORE_CAP,
            Perms::STORE_LOCAL_CAP,
            Perms::SEAL,
            Perms::UNSEAL,
            Perms::INVOKE,
            Perms::ACCESS_SYS_REGS,
            Perms::USER0,
        ] {
            assert!(Perms::ALL.contains(p), "{p:?} missing from ALL");
        }
    }

    #[test]
    fn intersect_is_monotonic() {
        let rw = Perms::RW;
        let r = rw.intersect(Perms::LOAD);
        assert_eq!(r, Perms::LOAD);
        assert!(r.is_subset_of(rw));
        assert!(rw.intersect(Perms::NONE).is_empty());
    }

    #[test]
    fn subset_relation() {
        assert!(Perms::LOAD.is_subset_of(Perms::RW));
        assert!(!Perms::RW.is_subset_of(Perms::LOAD));
        assert!(Perms::NONE.is_subset_of(Perms::NONE));
    }

    #[test]
    fn bit_round_trip() {
        let p = Perms::LOAD | Perms::STORE_CAP | Perms::SEAL;
        assert_eq!(Perms::from_bits(p.bits()), p);
    }

    #[test]
    fn debug_never_empty() {
        assert_eq!(format!("{:?}", Perms::NONE), "Perms(NONE)");
        assert!(format!("{:?}", Perms::LOAD | Perms::STORE).contains("LOAD"));
    }
}
