//! The capability derivation tree (Figure 4 of the paper).
//!
//! Every capability in a running CHERI system derives from the boot-time
//! root. This module records that provenance explicitly so the software
//! stack (OS, driver, applications) and the security analysis can audit
//! that every delegation was monotonic — including the green accelerator
//! edges the paper adds: accelerator tasks and the buffers a CPU task
//! allocates on their behalf.

use crate::capability::Capability;
use crate::error::CapFault;
use std::fmt;

/// Identifies a node in a [`CapabilityTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Index form, useful for dense side tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// What kind of software object a tree node represents.
///
/// Mirrors the node kinds of Figure 4: CPU tasks (black), accelerator tasks
/// and their data buffers (green), and plain data buffers owned by CPU
/// tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// The boot-time root, held by the OS.
    Root,
    /// A CPU task: process, thread, or function compartment.
    CpuTask,
    /// An accelerator task: dedicated use of a functional unit for a time.
    AcceleratorTask,
    /// A data buffer.
    Buffer,
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::Root => "root",
            ObjectKind::CpuTask => "cpu-task",
            ObjectKind::AcceleratorTask => "accel-task",
            ObjectKind::Buffer => "buffer",
        };
        f.write_str(s)
    }
}

#[derive(Clone, Debug)]
struct Node {
    cap: Capability,
    kind: ObjectKind,
    label: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    revoked: bool,
}

/// An append-only record of capability derivations.
///
/// Derivation through the tree enforces the CHERI monotonicity invariant:
/// a child's rights are always a subset of its parent's. Revocation marks a
/// subtree dead, modelling the trusted software's asynchronous revocation.
///
/// # Examples
///
/// ```
/// use cheri::{CapabilityTree, ObjectKind, Perms};
///
/// # fn main() -> Result<(), cheri::CapFault> {
/// let mut tree = CapabilityTree::new();
/// let app = tree.derive(tree.root(), ObjectKind::CpuTask, "video app", |c| {
///     c.set_bounds(0x1_0000, 0x10_000)
/// })?;
/// let buf = tree.derive(app, ObjectKind::Buffer, "frame buffer", |c| {
///     c.set_bounds(0x1_2000, 0x1000)?.and_perms(Perms::RW)
/// })?;
/// assert!(tree.capability(buf).bounds_contain(0x1_2000, 0x1000));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CapabilityTree {
    nodes: Vec<Node>,
}

impl CapabilityTree {
    /// Creates a tree holding only the boot-time root capability.
    #[must_use]
    pub fn new() -> CapabilityTree {
        CapabilityTree {
            nodes: vec![Node {
                cap: Capability::root(),
                kind: ObjectKind::Root,
                label: "root".to_owned(),
                parent: None,
                children: Vec::new(),
                revoked: false,
            }],
        }
    }

    /// The root node.
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of live (non-revoked) nodes.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.revoked).count()
    }

    /// The capability held at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    #[must_use]
    pub fn capability(&self, id: NodeId) -> &Capability {
        &self.nodes[id.0].cap
    }

    /// The object kind recorded at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    #[must_use]
    pub fn kind(&self, id: NodeId) -> ObjectKind {
        self.nodes[id.0].kind
    }

    /// The human-readable label recorded at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    #[must_use]
    pub fn label(&self, id: NodeId) -> &str {
        &self.nodes[id.0].label
    }

    /// The parent of `id`, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    #[must_use]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].parent
    }

    /// The children derived from `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    #[must_use]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0].children
    }

    /// Whether `id` (or an ancestor) has been revoked.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    #[must_use]
    pub fn is_revoked(&self, id: NodeId) -> bool {
        self.nodes[id.0].revoked
    }

    /// Derives a child capability from `parent` via `derivation` (any chain
    /// of the monotonic [`Capability`] operations) and records it.
    ///
    /// # Errors
    ///
    /// Propagates any [`CapFault`] from the derivation closure; additionally
    /// returns [`CapFault::MonotonicityViolation`] if the closure somehow
    /// produced a capability not dominated by the parent, and
    /// [`CapFault::TagViolation`] when deriving from a revoked node.
    pub fn derive(
        &mut self,
        parent: NodeId,
        kind: ObjectKind,
        label: impl Into<String>,
        derivation: impl FnOnce(&Capability) -> Result<Capability, CapFault>,
    ) -> Result<NodeId, CapFault> {
        if self.nodes[parent.0].revoked {
            return Err(CapFault::TagViolation);
        }
        let parent_cap = self.nodes[parent.0].cap;
        let child_cap = derivation(&parent_cap)?;
        if !parent_cap.dominates(&child_cap) {
            return Err(CapFault::MonotonicityViolation);
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            cap: child_cap,
            kind,
            label: label.into(),
            parent: Some(parent),
            children: Vec::new(),
            revoked: false,
        });
        self.nodes[parent.0].children.push(id);
        Ok(id)
    }

    /// Revokes `id` and its entire subtree (trusted-software revocation).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    pub fn revoke(&mut self, id: NodeId) {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            self.nodes[n.0].revoked = true;
            self.nodes[n.0].cap = self.nodes[n.0].cap.clear_tag();
            stack.extend(self.nodes[n.0].children.iter().copied());
        }
    }

    /// Verifies the global invariant: every live edge is monotonic.
    ///
    /// Returns the first offending node, if any. A correct system never
    /// trips this; the threat harness uses it to show what capability
    /// forging would break.
    #[must_use]
    pub fn audit(&self) -> Option<NodeId> {
        for (i, node) in self.nodes.iter().enumerate() {
            if node.revoked {
                continue;
            }
            if let Some(p) = node.parent {
                if !self.nodes[p.0].cap.dominates(&node.cap) {
                    return Some(NodeId(i));
                }
            }
        }
        None
    }

    /// Iterates over all node ids, live and revoked, in creation order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }
}

impl Default for CapabilityTree {
    fn default() -> CapabilityTree {
        CapabilityTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perms::Perms;

    fn sample_tree() -> (CapabilityTree, NodeId, NodeId) {
        let mut tree = CapabilityTree::new();
        let task = tree
            .derive(tree.root(), ObjectKind::CpuTask, "task", |c| {
                c.set_bounds(0x1000, 0x1000)
            })
            .unwrap();
        let buf = tree
            .derive(task, ObjectKind::Buffer, "buf", |c| {
                c.set_bounds(0x1800, 0x100)?.and_perms(Perms::RW)
            })
            .unwrap();
        (tree, task, buf)
    }

    #[test]
    fn derivation_links_parent_and_child() {
        let (tree, task, buf) = sample_tree();
        assert_eq!(tree.parent(buf), Some(task));
        assert_eq!(tree.children(task), &[buf]);
        assert_eq!(tree.kind(buf), ObjectKind::Buffer);
        assert_eq!(tree.label(buf), "buf");
        assert!(tree.audit().is_none());
    }

    #[test]
    fn widening_derivation_fails() {
        let (mut tree, task, _) = sample_tree();
        let err = tree.derive(task, ObjectKind::Buffer, "evil", |c| {
            c.set_bounds(0, 0x10_000)
        });
        assert_eq!(err.unwrap_err(), CapFault::MonotonicityViolation);
    }

    #[test]
    fn closure_cannot_smuggle_unrelated_capability() {
        let (mut tree, task, _) = sample_tree();
        let err = tree.derive(task, ObjectKind::Buffer, "smuggled", |_| {
            Ok(Capability::root())
        });
        assert_eq!(err.unwrap_err(), CapFault::MonotonicityViolation);
    }

    #[test]
    fn revocation_kills_subtree() {
        let (mut tree, task, buf) = sample_tree();
        tree.revoke(task);
        assert!(tree.is_revoked(task));
        assert!(tree.is_revoked(buf));
        assert!(!tree.capability(buf).is_valid());
        assert_eq!(tree.live_count(), 1); // only the root survives
        let err = tree.derive(task, ObjectKind::Buffer, "late", |c| {
            c.set_bounds(0x1000, 8)
        });
        assert_eq!(err.unwrap_err(), CapFault::TagViolation);
    }

    #[test]
    fn accelerator_edges_from_figure_4() {
        // CPU task instantiates an accelerator task; the buffers the task
        // computes on are allocated by the CPU task and dominated by the
        // accelerator task's capability.
        let mut tree = CapabilityTree::new();
        let cpu = tree
            .derive(tree.root(), ObjectKind::CpuTask, "app", |c| {
                c.set_bounds(0x10_000, 0x8000)
            })
            .unwrap();
        let acc = tree
            .derive(cpu, ObjectKind::AcceleratorTask, "accel task 1", |c| {
                c.set_bounds(0x12_000, 0x2000)
            })
            .unwrap();
        let b1 = tree
            .derive(acc, ObjectKind::Buffer, "buffer 1", |c| {
                c.set_bounds(0x12_000, 0x800)
            })
            .unwrap();
        let b2 = tree
            .derive(acc, ObjectKind::Buffer, "buffer 2", |c| {
                c.set_bounds(0x13_000, 0x800)
            })
            .unwrap();
        assert!(tree.capability(acc).dominates(tree.capability(b1)));
        assert!(tree.capability(acc).dominates(tree.capability(b2)));
        assert!(tree.audit().is_none());
        assert_eq!(tree.iter().count(), 5);
    }
}
