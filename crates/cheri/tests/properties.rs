//! Property-based tests for the capability model's core invariants.

use cheri::compressed::{self, BoundsEncoding};
use cheri::{CapFault, Capability, CompressedCapability, Perms, ADDRESS_SPACE_TOP};
use proptest::prelude::*;

fn arb_region() -> impl Strategy<Value = (u64, u64)> {
    // Base anywhere, length up to 2^32 so regions stay in-space often.
    (any::<u64>(), 0u64..=(1 << 32)).prop_filter("region fits in the address space", |(b, l)| {
        (*b as u128 + *l as u128) <= ADDRESS_SPACE_TOP
    })
}

proptest! {
    /// Compression never shrinks the requested region.
    #[test]
    fn rounding_covers_request((base, len) in arb_region()) {
        let top = base as u128 + len as u128;
        let (rb, rt) = compressed::round_bounds(base, top);
        prop_assert!(rb <= base);
        prop_assert!(rt >= top);
    }

    /// Rounding slack is bounded by one granule per side.
    #[test]
    fn rounding_slack_is_one_granule((base, len) in arb_region()) {
        let top = base as u128 + len as u128;
        let enc = compressed::encode_bounds(base, top);
        let granule = 1u128 << enc.exponent;
        let (rb, rt) = compressed::round_bounds(base, top);
        prop_assert!(((base - rb) as u128) < granule);
        prop_assert!(rt - top < granule);
    }

    /// Decoding recovers the rounded bounds from any in-bounds address.
    #[test]
    fn decode_is_exact_within_bounds((base, len) in arb_region(), frac in 0.0f64..1.0) {
        let top = base as u128 + len as u128;
        let (rb, rt) = compressed::round_bounds(base, top);
        let enc = compressed::encode_bounds(base, top);
        let span = (rt - rb as u128) as f64;
        let addr = rb as u128 + (span * frac) as u128;
        let addr = addr.min(u64::MAX as u128) as u64;
        prop_assert_eq!(compressed::decode_bounds(enc, addr), (rb, rt));
    }

    /// Full 128-bit round trip through memory representation.
    #[test]
    fn compress_decode_round_trip((base, len) in arb_region(), perm_bits in 0u16..0x1000) {
        let cap = match Capability::root()
            .set_bounds(base, len)
            .and_then(|c| c.and_perms(Perms::from_bits(perm_bits)))
        {
            Ok(c) => c,
            Err(_) => return Ok(()), // bounds rounded past the root: skip
        };
        let bits = cap.compress();
        let back = bits.decode(true);
        prop_assert_eq!(back, cap);
        // And through raw memory bits, as the CapChecker table does.
        let raw = CompressedCapability::from_bits(bits.bits());
        prop_assert_eq!(raw.decode(true), cap);
    }

    /// set_bounds children are always dominated by their parent.
    #[test]
    fn set_bounds_is_monotonic(
        (base, len) in arb_region(),
        inner_off in any::<u64>(),
        inner_len in any::<u64>(),
    ) {
        let parent = match Capability::root().set_bounds(base, len) {
            Ok(c) => c,
            Err(_) => return Ok(()),
        };
        let plen = parent.length() as u64;
        if plen == 0 { return Ok(()); }
        let off = inner_off % plen;
        let ilen = inner_len % (plen - off).max(1);
        match parent.set_bounds(parent.base() + off, ilen) {
            Ok(child) => prop_assert!(parent.dominates(&child)),
            Err(CapFault::MonotonicityViolation) => {} // rounding refused, fine
            Err(other) => prop_assert!(false, "unexpected fault {other}"),
        }
    }

    /// Permission masking can never add a permission.
    #[test]
    fn and_perms_is_monotonic(initial in 0u16..0x1000, mask in 0u16..0x1000) {
        let cap = Capability::root().and_perms(Perms::from_bits(initial)).unwrap();
        let masked = cap.and_perms(Perms::from_bits(mask)).unwrap();
        prop_assert!(masked.perms().is_subset_of(cap.perms()));
    }

    /// Any address within the (rounded) bounds is representable.
    #[test]
    fn in_bounds_addresses_are_representable((base, len) in arb_region(), frac in 0.0f64..=1.0) {
        let top = base as u128 + len as u128;
        let (rb, rt) = compressed::round_bounds(base, top);
        let span = (rt - rb as u128) as f64;
        let addr = (rb as u128 + (span * frac) as u128).min(u64::MAX as u128) as u64;
        prop_assert!(compressed::address_is_representable(rb, rt, addr));
    }

    /// Checked accesses inside bounds with granted perms always pass; any
    /// byte outside always faults.
    #[test]
    fn access_check_matches_bounds((base, len) in arb_region(), probe in any::<u64>()) {
        let cap = match Capability::root().set_bounds(base, len) {
            Ok(c) => c.and_perms(Perms::RW).unwrap(),
            Err(_) => return Ok(()),
        };
        let inside = probe as u128 >= cap.base() as u128 && (probe as u128) < cap.top();
        let ok = cap.check_access(probe, 1, Perms::LOAD).is_ok();
        prop_assert_eq!(ok, inside);
    }

    /// Encoding fields survive a trip through the raw field accessors.
    #[test]
    fn bounds_encoding_fields_round_trip((base, len) in arb_region()) {
        let cap = match Capability::root().set_bounds(base, len) {
            Ok(c) => c,
            Err(_) => return Ok(()),
        };
        let enc_direct = compressed::encode_bounds(cap.base(), cap.top());
        let enc_via_bits: BoundsEncoding = cap.compress().bounds_encoding();
        prop_assert_eq!(enc_direct, enc_via_bits);
    }
}

#[test]
fn sealed_round_trip_via_memory() {
    let cap = Capability::root()
        .set_bounds(0x4000, 64)
        .unwrap()
        .seal(1234)
        .unwrap();
    let back = cap.compress().decode(true);
    assert_eq!(back, cap);
    assert!(back.is_sealed());
}

proptest! {
    /// Decoding arbitrary memory bits and re-encoding reaches a stable
    /// fixed point immediately: the architectural view of any bit pattern
    /// is well-defined and idempotent (no oscillating decodes).
    #[test]
    fn decode_encode_is_a_fixed_point(bits in any::<u128>()) {
        let once = CompressedCapability::from_bits(bits).decode(false);
        let twice = once.compress().decode(false);
        let thrice = twice.compress().decode(false);
        prop_assert_eq!(twice.base(), thrice.base());
        prop_assert_eq!(twice.top(), thrice.top());
        prop_assert_eq!(twice.perms(), thrice.perms());
        prop_assert_eq!(twice.otype(), thrice.otype());
    }

    /// An untagged decode can never be laundered into authority: every
    /// monotonic operation on it fails with a tag violation.
    #[test]
    fn garbage_bits_never_become_authority(bits in any::<u128>()) {
        let cap = CompressedCapability::from_bits(bits).decode(false);
        prop_assert!(!cap.is_valid());
        prop_assert_eq!(cap.set_bounds(cap.base(), 1).unwrap_err(), CapFault::TagViolation);
        prop_assert_eq!(cap.and_perms(Perms::ALL).unwrap_err(), CapFault::TagViolation);
        prop_assert!(cap.check_access(cap.base(), 1, Perms::NONE).is_err());
    }
}

fn arb_otype() -> impl Strategy<Value = u32> {
    // Mostly valid software otypes, plus the reserved encodings (0 =
    // unsealed, 1 = sentry) and out-of-range values that must be refused.
    prop_oneof![
        6 => cheri::MIN_SEALED_OTYPE..=cheri::MAX_SEALED_OTYPE,
        1 => 0u32..cheri::MIN_SEALED_OTYPE,
        1 => (cheri::MAX_OTYPE + 1)..=u32::MAX,
    ]
}

proptest! {
    /// `seal` → `unseal` is the identity for every valid software otype,
    /// including across a trip through the 128-bit memory format; the
    /// reserved and out-of-range otypes are refused with
    /// [`CapFault::InvalidObjectType`] and leave nothing sealed.
    #[test]
    fn seal_unseal_round_trips((base, len) in arb_region(), otype in arb_otype()) {
        let cap = match Capability::root().set_bounds(base, len) {
            Ok(c) => c,
            Err(_) => return Ok(()),
        };
        match cap.seal(otype) {
            Ok(sealed) => {
                prop_assert!((cheri::MIN_SEALED_OTYPE..=cheri::MAX_SEALED_OTYPE)
                    .contains(&otype));
                prop_assert!(sealed.is_sealed());
                prop_assert_eq!(sealed.otype(), cheri::OType::Sealed(otype));
                // Sealed means frozen: no derivation, no dereference.
                prop_assert_eq!(sealed.seal(otype).unwrap_err(), CapFault::SealViolation);
                prop_assert_eq!(sealed.and_perms(Perms::ALL).unwrap_err(),
                    CapFault::SealViolation);
                prop_assert!(sealed.check_access(sealed.base(), 1, Perms::NONE).is_err());
                // Unsealing restores the original exactly.
                prop_assert_eq!(sealed.unseal().unwrap(), cap);
                // And the memory format preserves the seal faithfully.
                let thawed = sealed.compress().decode(true);
                prop_assert_eq!(thawed, sealed);
                prop_assert_eq!(thawed.unseal().unwrap(), cap);
            }
            Err(fault) => {
                prop_assert_eq!(fault, CapFault::InvalidObjectType);
                prop_assert!(!(cheri::MIN_SEALED_OTYPE..=cheri::MAX_SEALED_OTYPE).contains(&otype));
            }
        }
    }

    /// Sentry sealing round-trips too, and unsealing a never-sealed
    /// capability is refused.
    #[test]
    fn sentry_round_trips((base, len) in arb_region()) {
        let cap = match Capability::root().set_bounds(base, len) {
            Ok(c) => c,
            Err(_) => return Ok(()),
        };
        let sentry = cap.seal_entry().unwrap();
        prop_assert!(sentry.is_sealed());
        prop_assert_eq!(sentry.otype(), cheri::OType::Sentry);
        prop_assert_eq!(sentry.unseal().unwrap(), cap);
        prop_assert_eq!(cap.unseal().unwrap_err(), CapFault::SealViolation);
    }
}

/// One step of an arbitrary derivation chain.
#[derive(Clone, Copy, Debug)]
enum DeriveOp {
    Narrow { off: u64, len: u64 },
    Mask { bits: u16 },
    Seal { otype: u32 },
    Unseal,
    Move { off: u64 },
}

fn arb_derive_ops() -> impl Strategy<Value = Vec<DeriveOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (any::<u64>(), any::<u64>()).prop_map(|(off, len)| DeriveOp::Narrow { off, len }),
            3 => (0u16..0x1000).prop_map(|bits| DeriveOp::Mask { bits }),
            1 => (2u32..1000).prop_map(|otype| DeriveOp::Seal { otype }),
            1 => Just(DeriveOp::Unseal),
            2 => any::<u64>().prop_map(|off| DeriveOp::Move { off }),
        ],
        1..24,
    )
}

proptest! {
    /// Global permission monotonicity: *no sequence of operations* ever
    /// widens permissions or bounds beyond what the chain started with —
    /// every intermediate (and the final) capability is dominated by the
    /// starting one, whether each step succeeds or faults.
    #[test]
    fn no_operation_sequence_widens_authority(
        (base, len) in arb_region(),
        ops in arb_derive_ops(),
    ) {
        let origin = match Capability::root().set_bounds(base, len) {
            Ok(c) => c.and_perms(Perms::ALL).unwrap(),
            Err(_) => return Ok(()),
        };
        let mut cap = origin;
        for op in ops {
            let next = match op {
                DeriveOp::Narrow { off, len } => {
                    let span = (cap.length().min(u64::MAX as u128) as u64).max(1);
                    cap.set_bounds(cap.base().wrapping_add(off % span), len % span)
                }
                DeriveOp::Mask { bits } => cap.and_perms(Perms::from_bits(bits)),
                DeriveOp::Seal { otype } => cap.seal(otype),
                DeriveOp::Unseal => cap.unseal(),
                DeriveOp::Move { off } => {
                    let span = (cap.length().min(u64::MAX as u128) as u64).max(1);
                    cap.set_address(cap.base().wrapping_add(off % span))
                }
            };
            if let Ok(derived) = next {
                prop_assert!(origin.dominates(&derived),
                    "{op:?} escaped [{:#x},{:#x}) {:?} -> [{:#x},{:#x}) {:?}",
                    origin.base(), origin.top(), origin.perms(),
                    derived.base(), derived.top(), derived.perms());
                prop_assert!(cap.dominates(&derived), "{op:?} widened its own parent");
                cap = derived;
            }
        }
    }
}
