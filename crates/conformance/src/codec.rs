//! Codec conformance: pins `cheri::compressed` against the exact
//! uncompressed `cheri::Capability` representation.
//!
//! Two obligations:
//!
//! 1. **Round trip** — any capability a well-behaved system can hold
//!    (derived monotonically from the root, with its address inside
//!    bounds) must survive `compress` → `decode` *exactly*: the derive
//!    operations already rounded the bounds to representable ones, so
//!    the codec has nothing left to round.
//! 2. **Idempotence** — for any bit pattern whose decode lands in the
//!    maintained invariant (bounds already rounded to the encoding
//!    granule, address inside the representable region),
//!    `compress` → `decode` must be the identity:
//!    `decode(compress(decode(bits))) == decode(bits)`. Patterns outside
//!    the invariant (a non-canonical exponent, an address that escaped
//!    the representable region) decode to *something*, but no API path
//!    ever re-encodes them — they are counted and skipped. Without the
//!    in-invariant fixed point, sweeping memory (which decodes raw
//!    bytes) and the checker's cached images could drift apart.
//!
//! The differential harness leans on obligation 1: its oracle records
//! uncompressed bounds while `CachedCapChecker` enforces the decoded
//! cached image, and the two only coincide because this module holds.

use cheri::{compressed, Capability, CompressedCapability, Perms};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome of one codec-conformance sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodecReport {
    /// Derived-capability round-trip cases checked.
    pub cases: u64,
    /// Cases where `compress` → `decode` did not reproduce the
    /// capability exactly.
    pub round_trip_failures: u64,
    /// Random bit patterns whose decode → compress → decode was not a
    /// fixed point (or whose raw bits did not round-trip).
    pub idempotence_failures: u64,
    /// Random bit patterns outside the maintained invariant (unrounded
    /// bounds or unrepresentable address) — decoded but not held to the
    /// fixed-point obligation.
    pub non_canonical: u64,
}

impl CodecReport {
    /// `true` when every case agreed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.round_trip_failures == 0 && self.idempotence_failures == 0
    }
}

/// Runs `cases` seeded codec cases of each obligation.
#[must_use]
pub fn check(seed: u64, cases: u64) -> CodecReport {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0DE_C0DE_5EED);
    let mut report = CodecReport {
        cases,
        ..CodecReport::default()
    };

    for _ in 0..cases {
        // Obligation 1: a realistically derived capability.
        let base: u64 = rng.gen_range(0..1u64 << 40);
        // Lengths spread across magnitudes so both exact (small) and
        // rounded (large) encodings are produced by set_bounds.
        let len: u64 = 1 << rng.gen_range(0..30u32);
        let len = len + rng.gen_range(0..len);
        let mut cap = Capability::root()
            .set_bounds(base, len)
            .expect("region is far below the root top")
            .and_perms(Perms::from_bits(rng.gen_range(0..0x1000u16)))
            .expect("derived capability is valid and unsealed");
        // Move the address somewhere inside bounds (always representable).
        let span = cap.length().min(u128::from(u64::MAX)) as u64;
        let offset = rng.gen_range(0..span.max(1));
        cap = cap
            .set_address(cap.base().wrapping_add(offset))
            .expect("in-bounds addresses are representable");
        if rng.gen_bool(0.2) {
            cap = cap.seal(rng.gen_range(4..64u32)).expect("otype in range");
        }
        if rng.gen_bool(0.1) {
            cap = cap.clear_tag();
        }
        let decoded = cap.compress().decode(cap.is_valid());
        if decoded != cap {
            report.round_trip_failures += 1;
        }

        // Obligation 2: arbitrary bits.
        let bits = u128::from(rng.gen::<u64>()) << 64 | u128::from(rng.gen::<u64>());
        if CompressedCapability::from_bits(bits).bits() != bits {
            report.idempotence_failures += 1;
            continue;
        }
        let once = CompressedCapability::from_bits(bits).decode(false);
        let canonical = compressed::round_bounds(once.base(), once.top())
            == (once.base(), once.top())
            && compressed::address_is_representable(once.base(), once.top(), once.address());
        if !canonical {
            report.non_canonical += 1;
            continue;
        }
        let twice = once.compress().decode(false);
        if twice != once {
            report.idempotence_failures += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_agrees_on_many_seeds() {
        for seed in [0, 1, 2, 0xDEAD] {
            let report = check(seed, 2000);
            assert!(report.is_clean(), "seed {seed}: {report:?}");
            assert_eq!(report.cases, 2000);
            // The fixed-point obligation must not be vacuous: a healthy
            // share of random patterns decode into the invariant.
            assert!(
                report.non_canonical < report.cases / 2,
                "seed {seed}: only {} of {} patterns were canonical",
                report.cases - report.non_canonical,
                report.cases
            );
        }
    }

    #[test]
    fn reports_are_deterministic() {
        assert_eq!(check(9, 500), check(9, 500));
    }
}
