//! The differential harness: replays one operation stream through every
//! implementation and the oracle, diffing each verdict, exception code,
//! and the final tag state.
//!
//! ## Subjects
//!
//! Three production paths are wrapped as [`Subject`]s:
//!
//! * [`UncachedSubject`] — the fixed-table [`CapChecker`];
//! * [`CachedSubject`] — the [`CachedCapChecker`], with its sanctioned
//!   fail-stop reconciled (see below);
//! * [`DegradingSubject`] — the recovery path: starts cached, degrades
//!   to a fresh uncached checker (re-granting every live capability,
//!   mirroring `HeteroSystem::degrade_to_uncached`) on the first
//!   corruption detection *or* unconditionally at a fixed operation
//!   index, so every seed exercises both halves of the path.
//!
//! ## Fail-stop reconciliation
//!
//! Injected cache corruption makes the cached checker *deny* with
//! [`DenyReason::InvalidTag`] and bump its corruption counter — that is
//! its specified fail-stop, not a bug. The harness classifies such a
//! denial (reason `InvalidTag` **and** counter increment) as a
//! `fail_stop`, re-issues the check once (the corrupt line has been
//! dropped, so the retry consults the backing store), and diffs the
//! retry's verdict. An `InvalidTag` denial *without* a counter increment
//! is a real divergence.

use crate::oracle::{Oracle, Verdict};
use crate::stream::{self, Op};
use capchecker::{
    sweep_revoked, CachedCapChecker, CachedCheckerConfig, CapChecker, CheckerConfig,
    StaticVerdictMap,
};
use cheri::{CapFault, Capability, Perms};
use hetsim::{Access, DenyReason, MasterId, ObjectId, TaggedMemory, TaskId};
use ioprotect::{GrantError, IoProtection};
use obs::{Event, EventKind};
use std::collections::BTreeMap;

/// One subject's answer to one access, with fail-stop attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checked {
    /// The verdict to diff against the oracle.
    pub verdict: Verdict,
    /// `true` when this check consumed a sanctioned corruption
    /// fail-stop before producing the verdict.
    pub fail_stop: bool,
}

/// One implementation under differential test.
pub trait Subject {
    /// Display name used in divergence records.
    fn name(&self) -> &'static str;
    /// Called at the start of every op with its stream index.
    fn begin_op(&mut self, _index: u64) {}
    /// Install a capability.
    ///
    /// # Errors
    ///
    /// Exactly the implementation's grant error — diffed verbatim.
    fn grant(&mut self, task: TaskId, object: ObjectId, cap: &Capability)
        -> Result<(), GrantError>;
    /// Evict a task's entries.
    fn revoke_task(&mut self, task: TaskId);
    /// Judge one access.
    fn check(&mut self, access: &Access) -> Checked;
    /// Fault overlay: corrupt the capability cache, if the subject has one.
    fn corrupt_cache(&mut self, _slot: u8, _flip: u64, _on_insert: bool) {}
    /// Install (replace) a static verdict map mid-stream, if the
    /// subject elides. Segmented replays use this at analysis barriers.
    fn install_verdicts(&mut self, _map: &StaticVerdictMap) {}
    /// The subject's latched exception flag.
    fn exception_flag(&self) -> bool;
    /// What the flag *should* be given the verdicts this subject
    /// returned (denial or fail-stop latches; degradation resets).
    fn expected_exception_flag(&self) -> bool;
    /// The op index at which the subject degraded, if it did.
    fn degraded_at(&self) -> Option<u64> {
        None
    }
    /// Checks this subject skipped under a static verdict map.
    fn checks_elided(&self) -> u64 {
        0
    }
}

/// The fixed-table checker, verbatim.
#[derive(Debug)]
pub struct UncachedSubject {
    checker: CapChecker,
    expected_flag: bool,
}

impl UncachedSubject {
    /// A Fine-mode checker with the paper's 256-entry table.
    #[must_use]
    pub fn new() -> UncachedSubject {
        UncachedSubject {
            checker: CapChecker::new(CheckerConfig::fine()),
            expected_flag: false,
        }
    }
}

impl Default for UncachedSubject {
    fn default() -> UncachedSubject {
        UncachedSubject::new()
    }
}

impl Subject for UncachedSubject {
    fn name(&self) -> &'static str {
        "CapChecker"
    }

    fn grant(
        &mut self,
        task: TaskId,
        object: ObjectId,
        cap: &Capability,
    ) -> Result<(), GrantError> {
        IoProtection::grant(&mut self.checker, task, object, cap)
    }

    fn revoke_task(&mut self, task: TaskId) {
        IoProtection::revoke_task(&mut self.checker, task);
    }

    fn check(&mut self, access: &Access) -> Checked {
        let verdict = match self.checker.check(access) {
            Ok(()) => Verdict::Granted,
            Err(denial) => {
                self.expected_flag = true;
                Verdict::Denied(denial.reason)
            }
        };
        Checked {
            verdict,
            fail_stop: false,
        }
    }

    fn exception_flag(&self) -> bool {
        self.checker.exception_flag()
    }

    fn expected_exception_flag(&self) -> bool {
        self.expected_flag
    }
}

/// The cached checker with fail-stop reconciliation.
#[derive(Debug)]
pub struct CachedSubject {
    checker: CachedCapChecker,
    expected_flag: bool,
}

impl CachedSubject {
    /// A cached Fine-mode checker with the default 16-entry cache.
    #[must_use]
    pub fn new() -> CachedSubject {
        CachedSubject {
            checker: CachedCapChecker::new(CachedCheckerConfig::default()),
            expected_flag: false,
        }
    }
}

impl Default for CachedSubject {
    fn default() -> CachedSubject {
        CachedSubject::new()
    }
}

impl Subject for CachedSubject {
    fn name(&self) -> &'static str {
        "CachedCapChecker"
    }

    fn grant(
        &mut self,
        task: TaskId,
        object: ObjectId,
        cap: &Capability,
    ) -> Result<(), GrantError> {
        IoProtection::grant(&mut self.checker, task, object, cap)
    }

    fn revoke_task(&mut self, task: TaskId) {
        IoProtection::revoke_task(&mut self.checker, task);
    }

    fn check(&mut self, access: &Access) -> Checked {
        let before = self.checker.corruption_detected();
        match self.checker.check(access) {
            Ok(()) => Checked {
                verdict: Verdict::Granted,
                fail_stop: false,
            },
            Err(denial)
                if denial.reason == DenyReason::InvalidTag
                    && self.checker.corruption_detected() > before =>
            {
                // Sanctioned fail-stop: the corrupt line was detected and
                // dropped. The retry consults the intact backing store.
                self.expected_flag = true;
                let verdict = match self.checker.check(access) {
                    Ok(()) => Verdict::Granted,
                    Err(retry) => Verdict::Denied(retry.reason),
                };
                Checked {
                    verdict,
                    fail_stop: true,
                }
            }
            Err(denial) => {
                self.expected_flag = true;
                Checked {
                    verdict: Verdict::Denied(denial.reason),
                    fail_stop: false,
                }
            }
        }
    }

    fn corrupt_cache(&mut self, slot: u8, flip: u64, on_insert: bool) {
        let flip = u128::from(flip) | (u128::from(flip) << 64);
        if on_insert {
            self.checker.corrupt_next_insert(flip);
        } else {
            let _hit = self.checker.corrupt_cache_slot(usize::from(slot), flip);
        }
    }

    fn exception_flag(&self) -> bool {
        self.checker.exception_flag()
    }

    fn expected_exception_flag(&self) -> bool {
        self.expected_flag
    }
}

/// The fixed-table checker running with a static verdict map installed.
///
/// This is how an analyzer result gets *proved* rather than trusted:
/// pairs the map marks safe skip the per-beat check and answer
/// `Granted` unchecked, and the harness diffs every one of those
/// answers against the oracle. An unsound map — one that marks a pair
/// safe whose stream contains a denial — shows up as an ordinary
/// divergence.
#[derive(Debug)]
pub struct ElidedSubject {
    checker: CapChecker,
    expected_flag: bool,
}

impl ElidedSubject {
    /// A Fine-mode checker with `map` installed.
    #[must_use]
    pub fn new(map: StaticVerdictMap) -> ElidedSubject {
        let mut checker = CapChecker::new(CheckerConfig::fine());
        checker.set_static_verdicts(map);
        ElidedSubject {
            checker,
            expected_flag: false,
        }
    }
}

impl Subject for ElidedSubject {
    fn name(&self) -> &'static str {
        "CapChecker+elide"
    }

    fn grant(
        &mut self,
        task: TaskId,
        object: ObjectId,
        cap: &Capability,
    ) -> Result<(), GrantError> {
        IoProtection::grant(&mut self.checker, task, object, cap)
    }

    fn revoke_task(&mut self, task: TaskId) {
        IoProtection::revoke_task(&mut self.checker, task);
    }

    fn check(&mut self, access: &Access) -> Checked {
        let verdict = match self.checker.check(access) {
            Ok(()) => Verdict::Granted,
            Err(denial) => {
                self.expected_flag = true;
                Verdict::Denied(denial.reason)
            }
        };
        Checked {
            verdict,
            fail_stop: false,
        }
    }

    fn exception_flag(&self) -> bool {
        self.checker.exception_flag()
    }

    fn expected_exception_flag(&self) -> bool {
        self.expected_flag
    }

    fn checks_elided(&self) -> u64 {
        self.checker.stats().elided
    }

    fn install_verdicts(&mut self, map: &StaticVerdictMap) {
        self.checker.set_static_verdicts(map.clone());
    }
}

/// The cached checker with a static verdict map installed (and the
/// usual fail-stop reconciliation for the pairs that still hit the
/// cache). Elided accesses never touch the cache, so they are immune to
/// injected corruption — which is itself a differential fact the oracle
/// confirms: the verdict stays `Granted` either way.
#[derive(Debug)]
pub struct ElidedCachedSubject {
    checker: CachedCapChecker,
    expected_flag: bool,
}

impl ElidedCachedSubject {
    /// A cached Fine-mode checker with `map` installed.
    #[must_use]
    pub fn new(map: StaticVerdictMap) -> ElidedCachedSubject {
        let mut checker = CachedCapChecker::new(CachedCheckerConfig::default());
        checker.set_static_verdicts(map);
        ElidedCachedSubject {
            checker,
            expected_flag: false,
        }
    }
}

impl Subject for ElidedCachedSubject {
    fn name(&self) -> &'static str {
        "CachedCapChecker+elide"
    }

    fn grant(
        &mut self,
        task: TaskId,
        object: ObjectId,
        cap: &Capability,
    ) -> Result<(), GrantError> {
        IoProtection::grant(&mut self.checker, task, object, cap)
    }

    fn revoke_task(&mut self, task: TaskId) {
        IoProtection::revoke_task(&mut self.checker, task);
    }

    fn check(&mut self, access: &Access) -> Checked {
        let before = self.checker.corruption_detected();
        match self.checker.check(access) {
            Ok(()) => Checked {
                verdict: Verdict::Granted,
                fail_stop: false,
            },
            Err(denial)
                if denial.reason == DenyReason::InvalidTag
                    && self.checker.corruption_detected() > before =>
            {
                self.expected_flag = true;
                let verdict = match self.checker.check(access) {
                    Ok(()) => Verdict::Granted,
                    Err(retry) => Verdict::Denied(retry.reason),
                };
                Checked {
                    verdict,
                    fail_stop: true,
                }
            }
            Err(denial) => {
                self.expected_flag = true;
                Checked {
                    verdict: Verdict::Denied(denial.reason),
                    fail_stop: false,
                }
            }
        }
    }

    fn corrupt_cache(&mut self, slot: u8, flip: u64, on_insert: bool) {
        let flip = u128::from(flip) | (u128::from(flip) << 64);
        if on_insert {
            self.checker.corrupt_next_insert(flip);
        } else {
            let _hit = self.checker.corrupt_cache_slot(usize::from(slot), flip);
        }
    }

    fn exception_flag(&self) -> bool {
        self.checker.exception_flag()
    }

    fn expected_exception_flag(&self) -> bool {
        self.expected_flag
    }

    fn checks_elided(&self) -> u64 {
        self.checker.cache_stats().elided
    }

    fn install_verdicts(&mut self, map: &StaticVerdictMap) {
        self.checker.set_static_verdicts(map.clone());
    }
}

/// The recovery path: cached until corruption is detected (or a forced
/// midpoint), then degraded to a fresh uncached checker with every live
/// capability re-granted — mirroring `HeteroSystem::degrade_to_uncached`.
#[derive(Debug)]
pub struct DegradingSubject {
    cached: Option<CachedCapChecker>,
    fixed: Option<CapChecker>,
    /// Live grants, replayed into the replacement checker on
    /// degradation. `BTreeMap` so the re-grant order is deterministic.
    live: BTreeMap<(u32, u16), Capability>,
    base: CheckerConfig,
    degrade_after: u64,
    degraded_at: Option<u64>,
    current_op: u64,
    expected_flag: bool,
}

impl DegradingSubject {
    /// Starts cached; unconditionally degrades before op
    /// `degrade_after` even if no corruption is ever detected, so both
    /// halves of the path run under every seed.
    #[must_use]
    pub fn new(degrade_after: u64) -> DegradingSubject {
        let config = CachedCheckerConfig::default();
        DegradingSubject {
            cached: Some(CachedCapChecker::new(config)),
            fixed: None,
            live: BTreeMap::new(),
            base: config.base,
            degrade_after,
            degraded_at: None,
            current_op: 0,
            expected_flag: false,
        }
    }

    fn degrade(&mut self, at: u64) {
        let mut replacement = CapChecker::new(self.base);
        for ((task, object), cap) in &self.live {
            IoProtection::grant(&mut replacement, TaskId(*task), ObjectId(*object), cap)
                .expect("live capabilities fit the replacement table");
        }
        self.cached = None;
        self.fixed = Some(replacement);
        self.degraded_at = Some(at);
        // The replacement checker starts with a clear exception flag.
        self.expected_flag = false;
    }
}

impl Subject for DegradingSubject {
    fn name(&self) -> &'static str {
        "DegradedPath"
    }

    fn begin_op(&mut self, index: u64) {
        self.current_op = index;
        if self.cached.is_some() && index >= self.degrade_after {
            self.degrade(index);
        }
    }

    fn grant(
        &mut self,
        task: TaskId,
        object: ObjectId,
        cap: &Capability,
    ) -> Result<(), GrantError> {
        let result = match (&mut self.cached, &mut self.fixed) {
            (Some(cached), _) => IoProtection::grant(cached, task, object, cap),
            (None, Some(fixed)) => IoProtection::grant(fixed, task, object, cap),
            (None, None) => unreachable!("one checker is always active"),
        };
        if result.is_ok() {
            self.live.insert((task.0, object.0), *cap);
        }
        result
    }

    fn revoke_task(&mut self, task: TaskId) {
        match (&mut self.cached, &mut self.fixed) {
            (Some(cached), _) => IoProtection::revoke_task(cached, task),
            (None, Some(fixed)) => IoProtection::revoke_task(fixed, task),
            (None, None) => unreachable!("one checker is always active"),
        }
        self.live.retain(|(t, _), _| *t != task.0);
    }

    fn check(&mut self, access: &Access) -> Checked {
        if let Some(cached) = &mut self.cached {
            let before = cached.corruption_detected();
            return match cached.check(access) {
                Ok(()) => Checked {
                    verdict: Verdict::Granted,
                    fail_stop: false,
                },
                Err(denial)
                    if denial.reason == DenyReason::InvalidTag
                        && cached.corruption_detected() > before =>
                {
                    // First corruption detection: this is the recovery
                    // path, so degrade now and re-judge on the
                    // replacement checker.
                    let at = self.current_op;
                    self.degrade(at);
                    let fixed = self.fixed.as_mut().expect("just degraded");
                    let verdict = match fixed.check(access) {
                        Ok(()) => Verdict::Granted,
                        Err(retry) => {
                            self.expected_flag = true;
                            Verdict::Denied(retry.reason)
                        }
                    };
                    Checked {
                        verdict,
                        fail_stop: true,
                    }
                }
                Err(denial) => {
                    self.expected_flag = true;
                    Checked {
                        verdict: Verdict::Denied(denial.reason),
                        fail_stop: false,
                    }
                }
            };
        }
        let fixed = self.fixed.as_mut().expect("one checker is always active");
        let verdict = match fixed.check(access) {
            Ok(()) => Verdict::Granted,
            Err(denial) => {
                self.expected_flag = true;
                Verdict::Denied(denial.reason)
            }
        };
        Checked {
            verdict,
            fail_stop: false,
        }
    }

    fn corrupt_cache(&mut self, slot: u8, flip: u64, on_insert: bool) {
        if let Some(cached) = &mut self.cached {
            let flip = u128::from(flip) | (u128::from(flip) << 64);
            if on_insert {
                cached.corrupt_next_insert(flip);
            } else {
                let _hit = cached.corrupt_cache_slot(usize::from(slot), flip);
            }
        }
    }

    fn exception_flag(&self) -> bool {
        match (&self.cached, &self.fixed) {
            (Some(cached), _) => cached.exception_flag(),
            (None, Some(fixed)) => fixed.exception_flag(),
            (None, None) => unreachable!("one checker is always active"),
        }
    }

    fn expected_exception_flag(&self) -> bool {
        self.expected_flag
    }

    fn degraded_at(&self) -> Option<u64> {
        self.degraded_at
    }
}

/// How many ops of each kind a run replayed (corpus composition).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Capability installs attempted.
    pub grants: u64,
    /// Accesses judged.
    pub accesses: u64,
    /// Task revocations.
    pub revokes: u64,
    /// Capability spills to memory.
    pub spills: u64,
    /// Revocation sweeps.
    pub sweeps: u64,
    /// Tag flips applied.
    pub tag_flips: u64,
    /// Cache corruptions injected.
    pub cache_corruptions: u64,
    /// Ops skipped because they could not apply deterministically
    /// (tag flip on unknown bytes, out-of-range spill, underivable grant).
    pub skipped: u64,
}

/// One disagreement between a subject and the oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Stream index of the diverging op (`ops.len()` for final-state
    /// divergences).
    pub op: u64,
    /// Name of the diverging subject, or `"tag-state"`.
    pub subject: String,
    /// What the oracle said.
    pub expected: String,
    /// What the subject said.
    pub got: String,
}

/// Everything one differential run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Corpus composition.
    pub counts: OpCounts,
    /// Oracle-vs-subject comparisons made.
    pub checked: u64,
    /// Accesses the oracle granted.
    pub granted: u64,
    /// Accesses the oracle denied.
    pub denied: u64,
    /// Sanctioned corruption fail-stops consumed across subjects.
    pub fail_stops: u64,
    /// Checks skipped under a static verdict map, summed over subjects
    /// (0 unless an elided subject ran).
    pub elided: u64,
    /// Op index at which the degrading subject switched to uncached.
    pub degraded_at: Option<u64>,
    /// Granules carrying a tag in either the memory or the oracle at
    /// the end of the run.
    pub tag_granules: u64,
    /// Final tag-state granules where memory and oracle disagreed.
    pub tag_mismatches: u64,
    /// Every disagreement, in stream order.
    pub divergences: Vec<Divergence>,
    /// Obs events the run emitted (divergences + completion).
    pub events: Vec<Event>,
}

impl RunOutcome {
    /// `true` when every implementation agreed with the oracle on every
    /// verdict and on the final tag state.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty() && self.tag_mismatches == 0
    }
}

/// The standard subject set: uncached, cached, and the degrading path
/// (forced to degrade at the stream midpoint so both halves run).
#[must_use]
pub fn default_subjects(ops_len: usize) -> Vec<Box<dyn Subject>> {
    vec![
        Box::new(UncachedSubject::new()),
        Box::new(CachedSubject::new()),
        Box::new(DegradingSubject::new(ops_len as u64 / 2)),
    ]
}

/// Replays `ops` through the standard subjects and the oracle.
#[must_use]
pub fn run_ops(ops: &[Op]) -> RunOutcome {
    run_stream(ops, default_subjects(ops.len()))
}

/// Replays `ops` through elision-enabled subjects (plain and cached,
/// both carrying `map`) and the oracle: the differential proof that the
/// analyzer's verdict map is sound for this stream.
#[must_use]
pub fn run_ops_elided(ops: &[Op], map: &StaticVerdictMap) -> RunOutcome {
    run_stream(
        ops,
        vec![
            Box::new(ElidedSubject::new(map.clone())),
            Box::new(ElidedCachedSubject::new(map.clone())),
        ],
    )
}

/// Replays `ops` through elision-enabled subjects, re-installing a new
/// verdict map at every segment boundary: the differential proof that
/// an incremental analysis's *per-segment* maps are each sound while
/// their segment executes. `segments` pairs each segment's first op
/// index with its map, in ascending order (a map whose start is 0
/// replaces the initial empty map before any op runs).
#[must_use]
pub fn run_ops_elided_segments(ops: &[Op], segments: &[(u64, StaticVerdictMap)]) -> RunOutcome {
    run_stream_with_installs(
        ops,
        vec![
            Box::new(ElidedSubject::new(StaticVerdictMap::new())),
            Box::new(ElidedCachedSubject::new(StaticVerdictMap::new())),
        ],
        segments,
    )
}

/// Builds the capability a [`Op::Grant`] would install — the one
/// construction both the harness and the static analyzer use, so the
/// analyzer's model can never drift from what actually enters a table.
///
/// # Errors
///
/// The [`CapFault`] of an underivable request (the harness skips such
/// ops; the analyzer must too).
pub fn build_grant_cap(
    base: u64,
    len: u16,
    perms: u16,
    seal: bool,
    untagged: bool,
) -> Result<Capability, CapFault> {
    // `and_perms` intersects with the root's 12 meaningful bits, so
    // out-of-range mask bits can never survive into the table.
    let mut cap = Capability::root()
        .set_bounds(base, u64::from(len))?
        .and_perms(Perms::from_bits(perms))?;
    if seal {
        cap = cap.seal(4)?;
    }
    if untagged {
        cap = cap.clear_tag();
    }
    Ok(cap)
}

/// Builds the [`Access`] a [`Op::Access`] issues (shared with the
/// static analyzer, like [`build_grant_cap`]).
#[must_use]
pub fn build_access(
    task: u8,
    object: u8,
    provenance: bool,
    write: bool,
    addr: u64,
    len: u8,
) -> Access {
    let access = if write {
        Access::write(MasterId(0), TaskId(u32::from(task)), addr, u64::from(len))
    } else {
        Access::read(MasterId(0), TaskId(u32::from(task)), addr, u64::from(len))
    };
    if provenance {
        access.with_object(ObjectId(u16::from(object)))
    } else {
        access
    }
}

/// Replays `ops` through an explicit subject set and the oracle.
///
/// Tests use this to insert a deliberately buggy subject and prove the
/// harness catches it; [`run_ops`] is the production entry point.
#[must_use]
pub fn run_stream(ops: &[Op], subjects: Vec<Box<dyn Subject>>) -> RunOutcome {
    run_stream_with_installs(ops, subjects, &[])
}

/// [`run_stream`] plus mid-stream verdict-map installation: before the
/// op at each `installs` index runs, every subject receives the map via
/// [`Subject::install_verdicts`].
#[allow(clippy::too_many_lines)]
fn run_stream_with_installs(
    ops: &[Op],
    mut subjects: Vec<Box<dyn Subject>>,
    installs: &[(u64, StaticVerdictMap)],
) -> RunOutcome {
    let mut next_install = 0usize;
    let mut oracle = Oracle::new(256);
    let mut mem = TaggedMemory::new(stream::MEM_BYTES);
    let mut out = RunOutcome {
        counts: OpCounts::default(),
        checked: 0,
        granted: 0,
        denied: 0,
        fail_stops: 0,
        elided: 0,
        degraded_at: None,
        tag_granules: 0,
        tag_mismatches: 0,
        divergences: Vec::new(),
        events: Vec::new(),
    };

    for (index, op) in ops.iter().enumerate() {
        let index = index as u64;
        while next_install < installs.len() && installs[next_install].0 == index {
            for subject in &mut subjects {
                subject.install_verdicts(&installs[next_install].1);
            }
            next_install += 1;
        }
        for subject in &mut subjects {
            subject.begin_op(index);
        }
        match *op {
            Op::Grant {
                task,
                object,
                base,
                len,
                perms,
                seal,
                untagged,
            } => {
                let Ok(cap) = build_grant_cap(base, len, perms, seal, untagged) else {
                    out.counts.skipped += 1;
                    continue;
                };
                out.counts.grants += 1;
                let task = TaskId(u32::from(task));
                let object = ObjectId(u16::from(object));
                let want = oracle.grant(task, object, &cap);
                out.checked += 1;
                for subject in &mut subjects {
                    let got = subject.grant(task, object, &cap);
                    if got != want {
                        diverge(&mut out, index, subject.name(), &want, &got);
                    }
                }
            }
            Op::Access {
                task,
                object,
                provenance,
                write,
                addr,
                len,
                value,
            } => {
                out.counts.accesses += 1;
                let access = build_access(task, object, provenance, write, addr, len);
                let want = oracle.check(&access);
                match want {
                    Verdict::Granted => out.granted += 1,
                    Verdict::Denied(_) => out.denied += 1,
                }
                out.checked += 1;
                for subject in &mut subjects {
                    let checked = subject.check(&access);
                    if checked.fail_stop {
                        out.fail_stops += 1;
                    }
                    if checked.verdict != want {
                        diverge(&mut out, index, subject.name(), &want, &checked.verdict);
                    }
                }
                if want == Verdict::Granted && write {
                    // A granted DMA write lands: data changes, and every
                    // tag its span overlaps dies — on both sides.
                    let wlen = len.min(8);
                    if mem.write_uint(addr, wlen, value).is_ok() {
                        oracle.dma_write(addr, u64::from(wlen));
                    }
                }
            }
            Op::RevokeTask { task } => {
                out.counts.revokes += 1;
                let task = TaskId(u32::from(task));
                oracle.revoke_task(task);
                for subject in &mut subjects {
                    subject.revoke_task(task);
                }
            }
            Op::Spill { granule, base, len } => {
                let addr = u64::from(granule) * 16;
                let spilled = Capability::root()
                    .set_bounds(base, u64::from(len))
                    .and_then(|c| c.and_perms(Perms::RW));
                match spilled {
                    Ok(cap) if mem.write_capability(addr, cap.compress(), true).is_ok() => {
                        out.counts.spills += 1;
                        oracle.spill(addr, cap.base(), cap.top());
                    }
                    _ => out.counts.skipped += 1,
                }
            }
            Op::Sweep { base, len } => {
                out.counts.sweeps += 1;
                let _report = sweep_revoked(&mut mem, base, u64::from(len));
                oracle.sweep(base, u64::from(len));
            }
            Op::TagFlip { granule } => {
                let addr = u64::from(granule) * 16;
                if addr < stream::MEM_BYTES && oracle.tag_flip(addr).is_some() {
                    out.counts.tag_flips += 1;
                    mem.set_tag_raw(addr, true)
                        .expect("flip target is in range by the guard above");
                } else {
                    out.counts.skipped += 1;
                }
            }
            Op::CacheCorrupt {
                slot,
                flip,
                on_insert,
            } => {
                out.counts.cache_corruptions += 1;
                for subject in &mut subjects {
                    subject.corrupt_cache(slot, flip, on_insert);
                }
            }
        }
    }

    let final_op = ops.len() as u64;

    // Final tag state: the memory's shadow tags (with the bounds its
    // index derived) must equal the oracle's flat tag memory exactly.
    let mem_tags: BTreeMap<u64, (u64, u128)> = mem
        .tagged_capabilities()
        .map(|(addr, base, top)| (addr, (base, top)))
        .collect();
    let oracle_tags = oracle.tags();
    let mut granules: Vec<u64> = mem_tags.keys().chain(oracle_tags.keys()).copied().collect();
    granules.sort_unstable();
    granules.dedup();
    out.tag_granules = granules.len() as u64;
    for granule in granules {
        let in_mem = mem_tags.get(&granule);
        let in_oracle = oracle_tags.get(&granule);
        if in_mem != in_oracle {
            out.tag_mismatches += 1;
            diverge(
                &mut out,
                final_op,
                &format!("tag-state@{granule:#x}"),
                &in_oracle,
                &in_mem,
            );
        }
    }

    // Exception flags: each subject's latch must reflect the verdicts it
    // returned (denial or fail-stop sets it; degradation resets it).
    for subject in &subjects {
        let got = subject.exception_flag();
        let want = subject.expected_exception_flag();
        if got != want {
            diverge(
                &mut out,
                final_op,
                &format!("{}.exception_flag", subject.name()),
                &want,
                &got,
            );
        }
        if let Some(at) = subject.degraded_at() {
            out.degraded_at = Some(out.degraded_at.map_or(at, |prev: u64| prev.min(at)));
        }
        out.elided += subject.checks_elided();
    }

    out.events.push(Event {
        cycle: final_op,
        kind: EventKind::ConformanceComplete {
            ops: final_op,
            divergences: out.divergences.len() as u64,
        },
    });
    out
}

fn diverge<W: std::fmt::Debug + ?Sized, G: std::fmt::Debug + ?Sized>(
    out: &mut RunOutcome,
    op: u64,
    subject: &str,
    want: &W,
    got: &G,
) {
    out.events.push(Event {
        cycle: op,
        kind: EventKind::ConformanceDivergence { op },
    });
    out.divergences.push(Divergence {
        op,
        subject: subject.to_string(),
        expected: format!("{want:?}"),
        got: format!("{got:?}"),
    });
}
