//! # conformance — differential testing against a golden CHERI oracle
//!
//! The repo now carries three implementations of the same protection
//! semantics — [`capchecker::CapChecker`], [`capchecker::CachedCapChecker`],
//! and the recovery degradation path — plus a compressed capability codec.
//! Following the reference-model methodology of VeriCHERI and the
//! CHERIoT-Ibex observational-correctness work, none of them is trusted to
//! check itself: this crate cross-checks all of them against a
//! [`golden oracle`](Oracle) that is deliberately simple enough to be
//! correct by inspection (see DESIGN.md §3e for the trust argument).
//!
//! ## Quick start
//!
//! ```
//! let report = conformance::run_conformance(1, 500);
//! assert!(report.is_clean(), "{}", report.summary());
//! ```
//!
//! Or from the command line:
//! `simulate conformance --seed 1 --ops 10000 [--json]`.
//!
//! ## Pieces
//!
//! * [`Oracle`] — flat, uncompressed, unoptimized interpreter of
//!   capability semantics with its own tiny tag memory;
//! * [`generate`] — deterministic seeded op streams (grants, DMA
//!   reads/writes, revocations, spills, sweeps, cache-pressure bursts,
//!   fault overlays from [`hetsim::FaultPlan`]);
//! * [`run_ops`]/[`run_stream`] — the differential harness, diffing every
//!   verdict, exception code, and the final tag state;
//! * [`shrink()`]/[`regression_test`] — delta-debugs a failing stream to a
//!   minimal reproducer printed as a ready-to-paste test;
//! * [`codec_check`] — round-trip/idempotence pinning of
//!   `cheri::compressed` against the exact representation;
//! * [`ConformanceReport`] — the `capcheri.conformance.v1` JSON artifact.

#![warn(missing_docs)]

pub mod codec;
pub mod harness;
pub mod oracle;
pub mod report;
pub mod shrink;
pub mod stream;

pub use codec::{check as codec_check, CodecReport};
pub use harness::{
    build_access, build_grant_cap, default_subjects, run_ops, run_ops_elided,
    run_ops_elided_segments, run_stream, CachedSubject, Checked, DegradingSubject, Divergence,
    ElidedCachedSubject, ElidedSubject, OpCounts, RunOutcome, Subject, UncachedSubject,
};
pub use oracle::{Oracle, OracleCap, Verdict};
pub use report::{ConformanceReport, SCHEMA};
pub use shrink::{regression_test, shrink};
pub use stream::{generate, Op};

/// Runs the full conformance pipeline: generate a stream from `seed`,
/// replay it differentially, sweep the codec, and — if anything
/// diverged — shrink the stream to a minimal reproducer.
#[must_use]
pub fn run_conformance(seed: u64, ops: u64) -> ConformanceReport {
    let stream = generate(seed, ops as usize);
    let outcome = run_ops(&stream);
    let codec = codec_check(seed, ops / 4 + 256);
    let reproducer = if outcome.divergences.is_empty() {
        None
    } else {
        let minimal = shrink(&stream, &|candidate| !run_ops(candidate).is_clean());
        Some(regression_test(&minimal))
    };
    ConformanceReport::assemble(seed, ops, outcome, codec, reproducer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_runs_are_clean_and_deterministic() {
        let a = run_conformance(3, 400);
        let b = run_conformance(3, 400);
        assert!(a.is_clean(), "{}", a.summary());
        assert_eq!(a.to_json(), b.to_json());
        obs::json::validate(&a.to_json()).unwrap();
    }
}
