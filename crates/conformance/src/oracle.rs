//! The golden oracle: an uncompressed, unoptimized interpreter of
//! capability semantics.
//!
//! Everything here is written for *inspectability*, not speed: a flat
//! `Vec` stands in for the capability table, a `BTreeMap` of granule
//! addresses is the entire tag memory, and every check is straight-line
//! `u128` arithmetic in the architectural order (tag → seal → perms →
//! bounds). The oracle never touches the compressed encoding — it records
//! the exact `base`/`top`/`perms` the granted [`cheri::Capability`]
//! reports — so a codec bug cannot hide inside the reference model. The
//! codec itself is pinned separately by [`crate::codec`].

use cheri::{CapFault, Perms};
use hetsim::{Access, AccessKind, DenyReason, ObjectId, TaskId};
use ioprotect::GrantError;
use std::collections::BTreeMap;

/// What the oracle recorded about one granted capability: the exact
/// uncompressed representation, nothing derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleCap {
    /// Validity tag at grant time.
    pub tag: bool,
    /// Whether the capability was sealed at grant time.
    pub sealed: bool,
    /// Permission bits at grant time.
    pub perms: Perms,
    /// Lower bound (inclusive).
    pub base: u64,
    /// Upper bound (exclusive); `u128` so the full address space is a
    /// legal region.
    pub top: u128,
}

/// The verdict every implementation must agree on for one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The access is allowed.
    Granted,
    /// The access is refused, with the architectural exception code.
    Denied(DenyReason),
}

/// What the oracle knows about the byte content of one tagged-memory
/// granule — tracked so a forged tag bit ([`Oracle::tag_flip`]) can only
/// resurrect bounds the oracle already derived architecturally, keeping
/// the reference model independent of the compressed codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Content {
    /// Never written, or overwritten by a capability-unaware store.
    Unknown,
    /// Holds the bit-pattern of a spilled capability with these bounds.
    Spilled {
        /// Lower bound of the spilled capability.
        base: u64,
        /// Upper bound of the spilled capability.
        top: u128,
    },
}

/// The golden reference model: a flat capability table plus a tiny flat
/// tag memory.
///
/// `Clone` is deliberate: the bounded model checker forks the oracle at
/// every explored state, and every field is plain owned data, so a clone
/// is an exact independent copy of the reference model.
#[derive(Clone, Debug)]
pub struct Oracle {
    capacity: usize,
    entries: Vec<(TaskId, ObjectId, OracleCap)>,
    /// tag memory: granule address → authority bounds of the capability
    /// whose tag is set there.
    tags: BTreeMap<u64, (u64, u128)>,
    /// byte content per granule that ever held a capability pattern.
    content: BTreeMap<u64, Content>,
    /// Latched exception flag (any denial since the last clear).
    exception: bool,
}

impl Oracle {
    /// A fresh oracle with a `capacity`-entry table (the hardware table
    /// size the oracle mirrors).
    #[must_use]
    pub fn new(capacity: usize) -> Oracle {
        Oracle {
            capacity,
            entries: Vec::new(),
            tags: BTreeMap::new(),
            content: BTreeMap::new(),
            exception: false,
        }
    }

    /// Installs a capability for `(task, object)`, exactly as the MMIO
    /// import path must: reject anything untagged or sealed, replace an
    /// existing entry in place, and stall only when the table is full.
    ///
    /// # Errors
    ///
    /// [`GrantError::InvalidCapability`] for untagged/sealed capabilities,
    /// [`GrantError::TableFull`] when no entry is free.
    pub fn grant(
        &mut self,
        task: TaskId,
        object: ObjectId,
        cap: &cheri::Capability,
    ) -> Result<(), GrantError> {
        if !cap.is_valid() || cap.is_sealed() {
            return Err(GrantError::InvalidCapability);
        }
        let recorded = OracleCap {
            tag: cap.is_valid(),
            sealed: cap.is_sealed(),
            perms: cap.perms(),
            base: cap.base(),
            top: cap.top(),
        };
        for entry in &mut self.entries {
            if entry.0 == task && entry.1 == object {
                entry.2 = recorded;
                return Ok(());
            }
        }
        if self.entries.len() >= self.capacity {
            return Err(GrantError::TableFull);
        }
        self.entries.push((task, object, recorded));
        Ok(())
    }

    /// Drops every table entry owned by `task`.
    pub fn revoke_task(&mut self, task: TaskId) {
        self.entries.retain(|(t, _, _)| *t != task);
    }

    /// Judges one Fine-mode access in the architectural order:
    /// provenance → table entry → tag → seal → perms → bounds.
    #[must_use]
    pub fn check(&mut self, access: &Access) -> Verdict {
        let verdict = self.judge(access);
        if verdict != Verdict::Granted {
            self.exception = true;
        }
        verdict
    }

    fn judge(&self, access: &Access) -> Verdict {
        // Fine mode: hardware provenance identifies the object. Without
        // it the request cannot be attributed.
        let Some(object) = access.object else {
            return Verdict::Denied(DenyReason::BadProvenance);
        };
        let Some((_, _, cap)) = self
            .entries
            .iter()
            .find(|(t, o, _)| *t == access.task && *o == object)
        else {
            return Verdict::Denied(DenyReason::NoEntry);
        };
        if !cap.tag {
            return Verdict::Denied(DenyReason::Capability(CapFault::TagViolation));
        }
        if cap.sealed {
            return Verdict::Denied(DenyReason::Capability(CapFault::SealViolation));
        }
        let needed = match access.kind {
            AccessKind::Read => Perms::LOAD,
            AccessKind::Write => Perms::STORE,
        };
        if !cap.perms.contains(needed) {
            return Verdict::Denied(DenyReason::Capability(CapFault::PermissionViolation {
                missing: needed.intersect(!cap.perms),
            }));
        }
        let lo = u128::from(access.addr);
        let hi = lo + u128::from(access.len);
        if !(access.addr >= cap.base && hi <= cap.top) {
            return Verdict::Denied(DenyReason::Capability(CapFault::BoundsViolation {
                addr: access.addr,
                len: access.len,
            }));
        }
        Verdict::Granted
    }

    /// Records a capability-aware store of a capability with bounds
    /// `[base, top)` at `granule_addr`: tag set, content known.
    pub fn spill(&mut self, granule_addr: u64, base: u64, top: u128) {
        self.tags.insert(granule_addr, (base, top));
        self.content
            .insert(granule_addr, Content::Spilled { base, top });
    }

    /// Records a capability-unaware (DMA) write over `[addr, addr+len)`:
    /// every intersecting granule loses its tag and its content becomes
    /// unknown bytes.
    pub fn dma_write(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / 16 * 16;
        let last = (addr + len - 1) / 16 * 16;
        let mut g = first;
        loop {
            self.tags.remove(&g);
            self.content.insert(g, Content::Unknown);
            if g >= last {
                break;
            }
            g += 16;
        }
    }

    /// A software revocation sweep over `[base, base+len)`: clears the tag
    /// of every in-memory capability whose authority intersects the
    /// region (half-open on both sides, so merely-adjacent regions do not
    /// intersect). Bytes are untouched — only tags die.
    pub fn sweep(&mut self, base: u64, len: u64) {
        let lo = u128::from(base);
        let hi = lo + u128::from(len);
        self.tags
            .retain(|_, (cap_base, cap_top)| !(u128::from(*cap_base) < hi && *cap_top > lo));
    }

    /// A fault-injection tag flip at `granule_addr`: re-tags whatever
    /// bytes sit there. Returns the bounds the forged capability decodes
    /// to when the oracle knows the granule's content exactly (a spilled
    /// capability whose bytes were never overwritten), or `None` — the
    /// harness skips flips on unknown bytes so the reference model never
    /// has to emulate the compressed decoder.
    pub fn tag_flip(&mut self, granule_addr: u64) -> Option<(u64, u128)> {
        match self.content.get(&granule_addr) {
            Some(Content::Spilled { base, top }) => {
                let bounds = (*base, *top);
                self.tags.insert(granule_addr, bounds);
                Some(bounds)
            }
            _ => None,
        }
    }

    /// The tag memory: granule address → authority bounds, in address
    /// order.
    #[must_use]
    pub fn tags(&self) -> &BTreeMap<u64, (u64, u128)> {
        &self.tags
    }

    /// Live table entries (used by the harness to re-derive state).
    #[must_use]
    pub fn entries(&self) -> &[(TaskId, ObjectId, OracleCap)] {
        &self.entries
    }

    /// The latched exception flag: `true` once any access was denied.
    #[must_use]
    pub fn exception_flag(&self) -> bool {
        self.exception
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;
    use hetsim::MasterId;

    fn cap(base: u64, len: u64, perms: Perms) -> Capability {
        Capability::root()
            .set_bounds(base, len)
            .unwrap()
            .and_perms(perms)
            .unwrap()
    }

    fn read(task: u32, object: u16, addr: u64, len: u64) -> Access {
        Access::read(MasterId(0), TaskId(task), addr, len).with_object(ObjectId(object))
    }

    #[test]
    fn grant_check_deny_in_architectural_order() {
        let mut o = Oracle::new(4);
        o.grant(TaskId(1), ObjectId(0), &cap(0x1000, 64, Perms::LOAD))
            .unwrap();

        assert_eq!(o.check(&read(1, 0, 0x1000, 64)), Verdict::Granted);
        assert_eq!(
            o.check(&read(1, 1, 0x1000, 1)),
            Verdict::Denied(DenyReason::NoEntry)
        );
        assert_eq!(
            o.check(&read(1, 0, 0x1040, 1)),
            Verdict::Denied(DenyReason::Capability(CapFault::BoundsViolation {
                addr: 0x1040,
                len: 1
            }))
        );
        let write = Access::write(MasterId(0), TaskId(1), 0x1000, 8).with_object(ObjectId(0));
        assert_eq!(
            o.check(&write),
            Verdict::Denied(DenyReason::Capability(CapFault::PermissionViolation {
                missing: Perms::STORE
            }))
        );
        let no_provenance = Access::read(MasterId(0), TaskId(1), 0x1000, 8);
        assert_eq!(
            o.check(&no_provenance),
            Verdict::Denied(DenyReason::BadProvenance)
        );
        assert!(o.exception_flag());
    }

    #[test]
    fn grant_rejects_sealed_and_untagged_and_fills_up() {
        let mut o = Oracle::new(1);
        let c = cap(0x1000, 64, Perms::RW);
        assert_eq!(
            o.grant(TaskId(0), ObjectId(0), &c.seal(4).unwrap()),
            Err(GrantError::InvalidCapability)
        );
        assert_eq!(
            o.grant(TaskId(0), ObjectId(0), &c.clear_tag()),
            Err(GrantError::InvalidCapability)
        );
        o.grant(TaskId(0), ObjectId(0), &c).unwrap();
        // Replacement in place is not a capacity event.
        o.grant(TaskId(0), ObjectId(0), &c).unwrap();
        assert_eq!(
            o.grant(TaskId(0), ObjectId(1), &c),
            Err(GrantError::TableFull)
        );
        o.revoke_task(TaskId(0));
        o.grant(TaskId(0), ObjectId(1), &c).unwrap();
    }

    #[test]
    fn tag_model_spill_write_sweep_flip() {
        let mut o = Oracle::new(4);
        o.spill(0x20, 0x1000, 0x1100);
        assert_eq!(o.tags().get(&0x20), Some(&(0x1000, 0x1100)));

        // Adjacent region: no intersection, tag survives.
        o.sweep(0x1100, 0x100);
        assert!(o.tags().contains_key(&0x20));
        // Overlapping region: revoked.
        o.sweep(0x10ff, 1);
        assert!(!o.tags().contains_key(&0x20));

        // A forged tag resurrects the spilled bounds...
        assert_eq!(o.tag_flip(0x20), Some((0x1000, 0x1100)));
        assert!(o.tags().contains_key(&0x20));
        // ...but not once a DMA write destroyed the bytes.
        o.dma_write(0x28, 4);
        assert!(!o.tags().contains_key(&0x20));
        assert_eq!(o.tag_flip(0x20), None);
        // Unknown granules can't be flipped either.
        assert_eq!(o.tag_flip(0x40), None);
    }
}
