//! The `capcheri.conformance.v1` machine-readable report.
//!
//! Byte-deterministic for a given `(seed, ops)` — CI diffs two runs and
//! archives the artifact. Built with `obs`'s [`JsonWriter`] like every
//! other report schema in the repo.

use crate::codec::CodecReport;
use crate::harness::{Divergence, OpCounts, RunOutcome};
use obs::json::JsonWriter;
use obs::Event;

/// Schema identifier embedded in the report.
pub const SCHEMA: &str = "capcheri.conformance.v1";

/// Divergence entries included verbatim in the JSON (the rest are
/// counted only, to bound artifact size on a badly broken build).
const MAX_JSON_DIVERGENCES: usize = 25;

/// Everything one `simulate conformance` run produced.
#[derive(Debug)]
pub struct ConformanceReport {
    /// Stream seed.
    pub seed: u64,
    /// Requested stream length.
    pub ops: u64,
    /// Corpus composition.
    pub counts: OpCounts,
    /// Oracle-vs-implementation comparisons made.
    pub checked: u64,
    /// Accesses the oracle granted.
    pub granted: u64,
    /// Accesses the oracle denied.
    pub denied: u64,
    /// Sanctioned corruption fail-stops reconciled.
    pub fail_stops: u64,
    /// Op index at which the degrading subject switched to uncached.
    pub degraded_at: Option<u64>,
    /// Granules tagged in memory or the oracle at the end.
    pub tag_granules: u64,
    /// Final-tag-state disagreements.
    pub tag_mismatches: u64,
    /// Codec round-trip/idempotence sweep.
    pub codec: CodecReport,
    /// Every divergence, in stream order.
    pub divergences: Vec<Divergence>,
    /// Minimal reproducer as a paste-ready test, when divergences exist.
    pub reproducer: Option<String>,
    /// Obs events the run emitted.
    pub events: Vec<Event>,
}

impl ConformanceReport {
    /// `true` when every implementation agreed with the oracle
    /// everywhere and the codec sweep was clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty() && self.tag_mismatches == 0 && self.codec.is_clean()
    }

    /// Assembles the report from a run outcome plus the codec sweep.
    #[must_use]
    pub fn assemble(
        seed: u64,
        ops: u64,
        outcome: RunOutcome,
        codec: CodecReport,
        reproducer: Option<String>,
    ) -> ConformanceReport {
        ConformanceReport {
            seed,
            ops,
            counts: outcome.counts,
            checked: outcome.checked,
            granted: outcome.granted,
            denied: outcome.denied,
            fail_stops: outcome.fail_stops,
            degraded_at: outcome.degraded_at,
            tag_granules: outcome.tag_granules,
            tag_mismatches: outcome.tag_mismatches,
            codec,
            divergences: outcome.divergences,
            reproducer,
            events: outcome.events,
        }
    }

    /// The `capcheri.conformance.v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.string(SCHEMA);
        w.key("seed");
        w.u64(self.seed);
        w.key("ops");
        w.u64(self.ops);

        w.key("corpus");
        w.begin_object();
        w.key("grants");
        w.u64(self.counts.grants);
        w.key("accesses");
        w.u64(self.counts.accesses);
        w.key("revokes");
        w.u64(self.counts.revokes);
        w.key("spills");
        w.u64(self.counts.spills);
        w.key("sweeps");
        w.u64(self.counts.sweeps);
        w.key("tag_flips");
        w.u64(self.counts.tag_flips);
        w.key("cache_corruptions");
        w.u64(self.counts.cache_corruptions);
        w.key("skipped");
        w.u64(self.counts.skipped);
        w.end_object();

        w.key("agreement");
        w.begin_object();
        w.key("checked");
        w.u64(self.checked);
        w.key("granted");
        w.u64(self.granted);
        w.key("denied");
        w.u64(self.denied);
        w.key("fail_stops");
        w.u64(self.fail_stops);
        w.key("divergences");
        w.u64(self.divergences.len() as u64);
        w.end_object();

        w.key("degraded");
        w.bool(self.degraded_at.is_some());
        w.key("degraded_at_op");
        w.u64(self.degraded_at.unwrap_or(0));

        w.key("tag_state");
        w.begin_object();
        w.key("granules");
        w.u64(self.tag_granules);
        w.key("mismatches");
        w.u64(self.tag_mismatches);
        w.end_object();

        w.key("codec");
        w.begin_object();
        w.key("cases");
        w.u64(self.codec.cases);
        w.key("round_trip_failures");
        w.u64(self.codec.round_trip_failures);
        w.key("idempotence_failures");
        w.u64(self.codec.idempotence_failures);
        w.key("non_canonical");
        w.u64(self.codec.non_canonical);
        w.end_object();

        w.key("divergence_list");
        w.begin_array();
        for d in self.divergences.iter().take(MAX_JSON_DIVERGENCES) {
            w.begin_object();
            w.key("op");
            w.u64(d.op);
            w.key("subject");
            w.string(&d.subject);
            w.key("expected");
            w.string(&d.expected);
            w.key("got");
            w.string(&d.got);
            w.end_object();
        }
        w.end_array();

        if let Some(repro) = &self.reproducer {
            w.key("reproducer");
            w.string(repro);
        }
        w.end_object();
        w.finish()
    }

    /// A short human-readable summary for terminal output.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut text = format!(
            "conformance seed={} ops={}\n\
             corpus: {} grants, {} accesses, {} revokes, {} spills, {} sweeps, \
             {} tag flips, {} cache corruptions ({} skipped)\n\
             agreement: {} checked, {} granted, {} denied, {} fail-stops\n\
             degraded at op: {}\n\
             tag state: {} granules, {} mismatches\n\
             codec: {} cases, {} round-trip failures, {} idempotence failures \
             ({} non-canonical skipped)\n\
             divergences: {}\n",
            self.seed,
            self.ops,
            self.counts.grants,
            self.counts.accesses,
            self.counts.revokes,
            self.counts.spills,
            self.counts.sweeps,
            self.counts.tag_flips,
            self.counts.cache_corruptions,
            self.counts.skipped,
            self.checked,
            self.granted,
            self.denied,
            self.fail_stops,
            self.degraded_at
                .map_or_else(|| "never".to_string(), |at| at.to_string()),
            self.tag_granules,
            self.tag_mismatches,
            self.codec.cases,
            self.codec.round_trip_failures,
            self.codec.idempotence_failures,
            self.codec.non_canonical,
            self.divergences.len(),
        );
        for d in self.divergences.iter().take(10) {
            text.push_str(&format!(
                "  op {} [{}]: expected {}, got {}\n",
                d.op, d.subject, d.expected, d.got
            ));
        }
        if let Some(repro) = &self.reproducer {
            text.push_str("minimal reproducer (paste into a test):\n");
            text.push_str(repro);
        }
        text
    }
}
