//! Greedy delta-debugging shrinker for failing operation streams.
//!
//! The vendored `proptest` has no shrinking, so the conformance harness
//! brings its own: remove chunks (halving the chunk size down to single
//! ops), keeping any reduction that still fails, until a fixed point.
//! Replay is fully deterministic ([`crate::harness::run_stream`] builds
//! fresh state every time), so the predicate is pure.

use crate::stream::Op;

/// Shrinks `ops` to a locally minimal stream for which `still_fails`
/// holds. `still_fails(ops)` must be `true` on entry; the result is
/// 1-minimal (removing any single remaining op makes the failure
/// disappear).
///
/// Generic over the op type so other harnesses — the bounded model
/// checker shrinks its own op alphabet — can reuse the same ddmin loop;
/// conformance call sites instantiate it at [`Op`] unchanged.
#[must_use]
pub fn shrink<T: Clone>(ops: &[T], still_fails: &dyn Fn(&[T]) -> bool) -> Vec<T> {
    let mut current = ops.to_vec();
    debug_assert!(still_fails(&current), "shrink needs a failing stream");
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(start..end);
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                reduced = true;
                // Re-test the same position: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !reduced {
                break;
            }
        } else {
            chunk /= 2;
        }
    }
    current
}

/// Formats a minimal failing stream as a ready-to-paste regression test.
///
/// [`Op`]'s fields are all plain integers/bools, so its `Debug` output —
/// prefixed with `Op::` — is valid Rust constructor syntax.
#[must_use]
pub fn regression_test(ops: &[Op]) -> String {
    let mut body = String::new();
    body.push_str("#[test]\nfn conformance_regression() {\n    let ops = vec![\n");
    for op in ops {
        body.push_str(&format!("        conformance::Op::{op:?},\n"));
    }
    body.push_str(
        "    ];\n    let outcome = conformance::run_ops(&ops);\n    \
         assert!(outcome.is_clean(), \"{:#?}\", outcome.divergences);\n}\n",
    );
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(task: u8) -> Op {
        Op::RevokeTask { task }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let ops: Vec<Op> = (0..100).map(|i| op(i as u8)).collect();
        // "Fails" iff task 73's op is present.
        let fails = |ops: &[Op]| ops.iter().any(|o| matches!(o, Op::RevokeTask { task: 73 }));
        let minimal = shrink(&ops, &fails);
        assert_eq!(minimal, vec![op(73)]);
    }

    #[test]
    fn shrinks_a_dependent_pair() {
        let ops: Vec<Op> = (0..64).map(|i| op(i as u8)).collect();
        // "Fails" only when both 5 and 40 survive, in order.
        let fails = |ops: &[Op]| {
            let five = ops
                .iter()
                .position(|o| matches!(o, Op::RevokeTask { task: 5 }));
            let forty = ops
                .iter()
                .position(|o| matches!(o, Op::RevokeTask { task: 40 }));
            matches!((five, forty), (Some(a), Some(b)) if a < b)
        };
        let minimal = shrink(&ops, &fails);
        assert_eq!(minimal, vec![op(5), op(40)]);
    }

    #[test]
    fn regression_test_is_paste_ready() {
        let text = regression_test(&[Op::RevokeTask { task: 3 }]);
        assert!(text.contains("conformance::Op::RevokeTask { task: 3 },"));
        assert!(text.contains("fn conformance_regression()"));
        assert!(text.contains("outcome.is_clean()"));
    }
}
