//! Deterministic, seed-reproducible operation streams.
//!
//! Every [`Op`] carries only plain integers and bools, so the `Debug`
//! form of an op — prefixed with `Op::` — is a valid Rust expression.
//! That is what makes a shrunk failing stream printable as a
//! ready-to-paste regression test ([`crate::shrink::regression_test`]).

use hetsim::{FaultKind, FaultPlan, FaultSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Distinct tasks the generator draws from.
pub const TASKS: u8 = 6;
/// Distinct objects per task.
pub const OBJECTS: u8 = 16;
/// Bytes reserved per `(task, object)` slot in simulated memory.
pub const SLOT_BYTES: u64 = 0x1000;
/// Where the object slots start; below this is the capability spill area.
pub const SLOTS_BASE: u64 = 0x1_0000;
/// One byte past the last object slot.
pub const SLOTS_END: u64 = SLOTS_BASE + TASKS as u64 * OBJECTS as u64 * SLOT_BYTES;
/// Simulated physical memory size.
pub const MEM_BYTES: u64 = 0x8_0000;
/// 16-byte granules addressable by spill/tag-flip ops.
pub const GRANULES: u16 = (SLOTS_END / 16) as u16;

/// The keyspace (`TASKS × OBJECTS` = 96 keys) is deliberately smaller
/// than the checker's 256-entry table so a grant never stalls on
/// capacity and all implementations stay in lockstep on every verdict;
/// table-full semantics are pinned separately by unit tests.
const _: () = assert!((TASKS as usize) * (OBJECTS as usize) <= 256);
const _: () = assert!(SLOTS_END <= MEM_BYTES);

/// One operation of a conformance stream.
///
/// Fields are plain integers/bools only — see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Derive a capability from the root and install it for
    /// `(task, object)` in every implementation.
    Grant {
        /// Destination task.
        task: u8,
        /// Destination object.
        object: u8,
        /// Requested lower bound.
        base: u64,
        /// Requested length in bytes (≥ 1).
        len: u16,
        /// Permission mask (`cheri::Perms` bits, ⊆ 0x0fff).
        perms: u16,
        /// Seal the capability first (every implementation must refuse).
        seal: bool,
        /// Clear the tag first (every implementation must refuse).
        untagged: bool,
    },
    /// One DMA request, judged by every implementation and the oracle.
    Access {
        /// Requesting task.
        task: u8,
        /// Claimed object.
        object: u8,
        /// Whether hardware object provenance accompanies the request
        /// (`false` forces a Fine-mode provenance fault).
        provenance: bool,
        /// `true` for a write, `false` for a read.
        write: bool,
        /// Target address.
        addr: u64,
        /// Length in bytes (1..=8).
        len: u8,
        /// Value stored on a granted write (clears tags it overlaps).
        value: u64,
    },
    /// Evict every table entry the task owns, in every implementation.
    RevokeTask {
        /// Task to evict.
        task: u8,
    },
    /// A capability-aware store: spill a fresh root-derived capability
    /// with bounds `[base, base+len)` to granule `granule * 16`.
    Spill {
        /// Destination granule index.
        granule: u16,
        /// Lower bound of the spilled capability.
        base: u64,
        /// Length of the spilled capability (kept < 0x2000 so the
        /// compressed encoding is exact and the oracle needs no codec).
        len: u16,
    },
    /// A software revocation sweep over `[base, base+len)`.
    Sweep {
        /// Region base.
        base: u64,
        /// Region length.
        len: u32,
    },
    /// Fault overlay: force the shadow tag bit of granule `granule * 16`
    /// (applied only when the granule's bytes are a known spilled
    /// capability; skipped otherwise).
    TagFlip {
        /// Target granule index.
        granule: u16,
    },
    /// Fault overlay: flip bits in the cached checker's capability cache.
    CacheCorrupt {
        /// Cache slot to corrupt (`on_insert = false`).
        slot: u8,
        /// XOR mask applied to the cached image (never 0).
        flip: u64,
        /// Poison the next inserted line instead of a resident slot.
        on_insert: bool,
    },
}

/// Base address of the `(task, object)` slot.
#[must_use]
pub fn slot_base(task: u8, object: u8) -> u64 {
    SLOTS_BASE + (u64::from(task) * u64::from(OBJECTS) + u64::from(object)) * SLOT_BYTES
}

/// Generates `n` ops, fully determined by `seed`.
///
/// The mix covers grants (including sealed/untagged ones every
/// implementation must refuse), in/out/edge-of-bounds reads and writes,
/// task revocations, capability spills, revocation sweeps,
/// cache-pressure bursts cycling more keys than the cache holds, and
/// fault overlays (tag flips, cache corruption) drawn from a seeded
/// [`hetsim::FaultPlan`].
#[must_use]
pub fn generate(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC04F_0441_5EED);
    let spec: FaultSpec = "tag-flip:0.3,cache-corrupt:0.3"
        .parse()
        .expect("overlay spec is well-formed");
    let mut plan = FaultPlan::new(spec, seed);
    let mut ops = Vec::with_capacity(n);
    // Rotation counter for cache-pressure bursts: cycling through all 96
    // keys guarantees >16 distinct keys per burst, thrashing the cache.
    let mut rot: u32 = 0;

    while ops.len() < n {
        // Fault overlays ride along every 8 ops, like the campaign
        // harness samples its plan once per task window.
        if ops.len() % 8 == 0 {
            if let Some(injected) = plan.sample() {
                match injected.kind {
                    FaultKind::TagFlip => ops.push(Op::TagFlip {
                        granule: rng.gen_range(0..GRANULES),
                    }),
                    FaultKind::CacheCorrupt => ops.push(Op::CacheCorrupt {
                        slot: rng.gen_range(0..16u8),
                        flip: rng.gen::<u64>() | 1,
                        on_insert: rng.gen_bool(0.5),
                    }),
                    // The spec only arms the two memory-level kinds.
                    _ => {}
                }
                continue;
            }
        }
        let roll: u32 = rng.gen_range(0..100);
        match roll {
            0..=34 => ops.push(gen_grant(&mut rng)),
            35..=74 => ops.push(gen_access(&mut rng)),
            75..=79 => {
                let task = rng.gen_range(0..TASKS);
                ops.push(Op::RevokeTask { task });
                // Half the time, model the full deallocation: revoke the
                // table entries *and* sweep the task's region so spilled
                // capabilities into it die too.
                if rng.gen_bool(0.5) {
                    ops.push(Op::Sweep {
                        base: slot_base(task, 0),
                        len: (u64::from(OBJECTS) * SLOT_BYTES) as u32,
                    });
                }
            }
            80..=87 => ops.push(Op::Spill {
                granule: rng.gen_range(0..GRANULES),
                base: rng.gen_range(0..SLOTS_END - 0x2000),
                len: rng.gen_range(1..0x2000u16),
            }),
            88..=93 => ops.push(Op::Sweep {
                base: rng.gen_range(0..SLOTS_END),
                len: rng.gen_range(16..0x8000u32),
            }),
            _ => {
                // Cache-pressure burst: touch 24 keys in rotation —
                // more distinct keys than cache entries, so lines are
                // evicted and re-filled under the diff.
                for _ in 0..24 {
                    if ops.len() >= n {
                        break;
                    }
                    let task = (rot % u32::from(TASKS)) as u8;
                    let object = ((rot / u32::from(TASKS)) % u32::from(OBJECTS)) as u8;
                    rot = rot.wrapping_add(1);
                    // Grant every 7th key: 7 is coprime with the 96-key
                    // rotation, so the granted phase drifts and every key
                    // is eventually both granted and re-read under
                    // pressure (a fixed divisor of 96 would pin grants
                    // and reads to disjoint keys forever).
                    if rot.is_multiple_of(7) {
                        ops.push(Op::Grant {
                            task,
                            object,
                            base: slot_base(task, object),
                            len: 0x100,
                            perms: cheri::Perms::RW.bits(),
                            seal: false,
                            untagged: false,
                        });
                    } else {
                        ops.push(Op::Access {
                            task,
                            object,
                            provenance: true,
                            write: false,
                            addr: slot_base(task, object) + rng.gen_range(0..0x100u64),
                            len: 1,
                            value: 0,
                        });
                    }
                }
            }
        }
    }
    ops.truncate(n);
    ops
}

fn gen_grant(rng: &mut SmallRng) -> Op {
    let task = rng.gen_range(0..TASKS);
    let object = rng.gen_range(0..OBJECTS);
    // Half the grants cover the slot from its start — those are the ones
    // in-slot accesses mostly land in, keeping the granted/denied mix
    // healthy — and half start at a random offset to move the lower
    // bounds edge around.
    let (base, len) = if rng.gen_bool(0.5) {
        (
            slot_base(task, object),
            rng.gen_range(0x200..(SLOT_BYTES / 2) as u16),
        )
    } else {
        (
            slot_base(task, object) + rng.gen_range(0..SLOT_BYTES / 2),
            rng.gen_range(1..(SLOT_BYTES / 2) as u16),
        )
    };
    let perms = match rng.gen_range(0..10u32) {
        0..=3 => cheri::Perms::RW,
        4..=5 => cheri::Perms::LOAD,
        6 => cheri::Perms::STORE,
        7 => cheri::Perms::ALL,
        8 => cheri::Perms::GLOBAL | cheri::Perms::LOAD,
        _ => cheri::Perms::NONE,
    };
    Op::Grant {
        task,
        object,
        base,
        len,
        perms: perms.bits(),
        seal: rng.gen_bool(0.05),
        untagged: rng.gen_bool(0.05),
    }
}

fn gen_access(rng: &mut SmallRng) -> Op {
    let mut task = rng.gen_range(0..TASKS);
    let mut object = rng.gen_range(0..OBJECTS);
    let slot = slot_base(task, object);
    let mut provenance = true;
    let addr = match rng.gen_range(0..20u32) {
        // Low in the slot: lands inside slot-start grants.
        0..=5 => slot + rng.gen_range(0..0x200u64),
        // Anywhere in the slot: exercises interior bounds edges.
        6..=9 => slot + rng.gen_range(0..SLOT_BYTES - 16),
        // Around the slot end: probes bounds edges (off-by-one country).
        10..=12 => slot + SLOT_BYTES - 16 + rng.gen_range(0..32u64),
        // Just below the slot.
        13..=14 => slot.saturating_sub(rng.gen_range(1..64u64)),
        // The spill area (never granted): NoEntry / bounds faults.
        15..=16 => rng.gen_range(0..SLOTS_BASE),
        // Missing provenance: the Fine-mode attribution fault.
        17 => {
            provenance = false;
            slot + rng.gen_range(0..SLOT_BYTES)
        }
        // Unknown task or object: no table entry can match.
        _ => {
            if rng.gen_bool(0.5) {
                task = TASKS + rng.gen_range(0..2u8);
            } else {
                object = OBJECTS + rng.gen_range(0..4u8);
            }
            slot + rng.gen_range(0..SLOT_BYTES)
        }
    };
    Op::Access {
        task,
        object,
        provenance,
        write: rng.gen_bool(0.4),
        addr,
        len: rng.gen_range(1..=8u8),
        value: rng.gen(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_seed_deterministic() {
        assert_eq!(generate(7, 500), generate(7, 500));
        assert_ne!(generate(7, 500), generate(8, 500));
        assert_eq!(generate(7, 500).len(), 500);
    }

    #[test]
    fn streams_cover_every_op_kind() {
        let ops = generate(1, 4000);
        let mut seen = [false; 7];
        for op in &ops {
            let i = match op {
                Op::Grant { .. } => 0,
                Op::Access { .. } => 1,
                Op::RevokeTask { .. } => 2,
                Op::Spill { .. } => 3,
                Op::Sweep { .. } => 4,
                Op::TagFlip { .. } => 5,
                Op::CacheCorrupt { .. } => 6,
            };
            seen[i] = true;
        }
        assert_eq!(seen, [true; 7], "4000 ops should exercise every kind");
    }

    #[test]
    fn debug_form_is_a_rust_expression() {
        let op = Op::Access {
            task: 1,
            object: 2,
            provenance: true,
            write: false,
            addr: 0x1000,
            len: 4,
            value: 9,
        };
        let printed = format!("Op::{op:?}");
        assert_eq!(
            printed,
            "Op::Access { task: 1, object: 2, provenance: true, write: false, \
             addr: 4096, len: 4, value: 9 }"
        );
    }
}
