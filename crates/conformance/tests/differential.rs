//! End-to-end differential conformance tests: clean agreement across all
//! implementations, fail-stop reconciliation, fault-overlay tag-state
//! agreement, and — with a deliberately buggy checker injected — the
//! catch-and-shrink pipeline.

use capchecker::{CapChecker, CheckerConfig};
use cheri::{CapFault, Capability, Perms};
use conformance::{
    default_subjects, generate, regression_test, run_ops, run_stream, shrink, Checked, Op, Subject,
    Verdict,
};
use hetsim::{Access, DenyReason, ObjectId, TaskId};
use ioprotect::{GrantError, IoProtection};

#[test]
fn all_implementations_agree_across_seeds() {
    for seed in [1, 2, 7, 0xC0FFEE] {
        let report = conformance::run_conformance(seed, 3000);
        assert!(report.is_clean(), "seed {seed}:\n{}", report.summary());
        // The stream must have exercised real decisions, not vacuous ones.
        assert!(report.granted > 0, "seed {seed} granted nothing");
        assert!(report.denied > 0, "seed {seed} denied nothing");
        assert!(report.counts.grants > 0);
        // The degrading subject always flips at the forced midpoint.
        assert!(report.degraded_at.is_some(), "seed {seed} never degraded");
    }
}

#[test]
fn cache_corruption_is_a_reconciled_fail_stop() {
    let grant = Op::Grant {
        task: 0,
        object: 0,
        base: conformance::stream::slot_base(0, 0),
        len: 64,
        perms: Perms::RW.bits(),
        seal: false,
        untagged: false,
    };
    let access = Op::Access {
        task: 0,
        object: 0,
        provenance: true,
        write: false,
        addr: conformance::stream::slot_base(0, 0),
        len: 4,
        value: 0,
    };
    let ops = vec![
        grant,
        // Poison the next inserted cache line...
        Op::CacheCorrupt {
            slot: 0,
            flip: 0xFFFF,
            on_insert: true,
        },
        // ...inserted by this miss (enforced from backing: fine)...
        access,
        // ...and detected by this hit: fail-stop, then reconciled retry.
        access,
        access,
    ];
    let outcome = run_ops(&ops);
    assert!(outcome.is_clean(), "{:#?}", outcome.divergences);
    // Cached subject fail-stops; the degrading subject degrades instead
    // of fail-stopping forever (its midpoint here is op 2, so it already
    // runs uncached when the corrupt hit would have happened).
    assert!(outcome.fail_stops >= 1, "{outcome:#?}");
}

#[test]
fn tag_flip_resurrection_is_modelled_and_swept() {
    let ops = vec![
        // Spill a capability to granule 2 covering [0x11000, 0x11040).
        Op::Spill {
            granule: 2,
            base: 0x11000,
            len: 0x40,
        },
        // Revoke it: the sweep clears the tag.
        Op::Sweep {
            base: 0x11000,
            len: 0x40,
        },
        // Fault: forge the tag back (bytes still hold the capability).
        Op::TagFlip { granule: 2 },
        // Sweep again: the resurrected capability dies again.
        Op::Sweep {
            base: 0x11020,
            len: 1,
        },
        // Forge it back once more and leave it for the final-state diff.
        Op::TagFlip { granule: 2 },
    ];
    let outcome = run_ops(&ops);
    assert!(outcome.is_clean(), "{:#?}", outcome.divergences);
    assert_eq!(outcome.counts.tag_flips, 2);
    assert_eq!(outcome.tag_granules, 1);
}

#[test]
fn granted_dma_write_kills_spilled_capability_tags() {
    let granule = (conformance::stream::slot_base(1, 3) / 16) as u16;
    let ops = vec![
        // Spill a capability *inside* task 1 / object 3's slot.
        Op::Spill {
            granule,
            base: 0x11000,
            len: 0x100,
        },
        // Grant task 1 a write capability over that slot.
        Op::Grant {
            task: 1,
            object: 3,
            base: conformance::stream::slot_base(1, 3),
            len: 0x100,
            perms: Perms::RW.bits(),
            seal: false,
            untagged: false,
        },
        // A granted DMA write over the granule: the tag must die.
        Op::Access {
            task: 1,
            object: 3,
            provenance: true,
            write: true,
            addr: conformance::stream::slot_base(1, 3),
            len: 8,
            value: 0xDEAD_BEEF,
        },
        // And a forged tag can no longer resurrect it (bytes unknown).
        Op::TagFlip { granule },
    ];
    let outcome = run_ops(&ops);
    assert!(outcome.is_clean(), "{:#?}", outcome.divergences);
    assert_eq!(outcome.tag_granules, 0, "the spilled tag must be gone");
    assert_eq!(outcome.counts.skipped, 1, "the flip on dirty bytes skips");
}

/// A checker with a classic off-by-one: bounds accept one byte past the
/// top (`<=` where `<` belongs). Used to prove the harness catches and
/// shrinks real bugs; `scratch_off_by_one_is_caught_and_shrunk` is the
/// acceptance-criteria run.
struct OffByOneSubject {
    checker: CapChecker,
    expected_flag: bool,
}

impl OffByOneSubject {
    fn new() -> OffByOneSubject {
        OffByOneSubject {
            checker: CapChecker::new(CheckerConfig::fine()),
            expected_flag: false,
        }
    }
}

impl Subject for OffByOneSubject {
    fn name(&self) -> &'static str {
        "OffByOneChecker"
    }

    fn grant(
        &mut self,
        task: TaskId,
        object: ObjectId,
        cap: &Capability,
    ) -> Result<(), GrantError> {
        IoProtection::grant(&mut self.checker, task, object, cap)
    }

    fn revoke_task(&mut self, task: TaskId) {
        IoProtection::revoke_task(&mut self.checker, task);
    }

    fn check(&mut self, access: &Access) -> Checked {
        let verdict = match self.checker.check(access) {
            Ok(()) => Verdict::Granted,
            Err(denial) => {
                // The bug: a bounds fault exactly one byte past the end
                // is waved through.
                if let DenyReason::Capability(CapFault::BoundsViolation { .. }) = denial.reason {
                    let mut shorter = *access;
                    shorter.len = access.len.saturating_sub(1);
                    if shorter.len > 0 && self.checker.check(&shorter).is_ok() {
                        self.checker.clear_exception_flag();
                        return Checked {
                            verdict: Verdict::Granted,
                            fail_stop: false,
                        };
                    }
                }
                self.expected_flag = true;
                Verdict::Denied(denial.reason)
            }
        };
        Checked {
            verdict,
            fail_stop: false,
        }
    }

    fn exception_flag(&self) -> bool {
        self.checker.exception_flag()
    }

    fn expected_exception_flag(&self) -> bool {
        self.expected_flag
    }
}

fn buggy_subjects(ops_len: usize) -> Vec<Box<dyn Subject>> {
    let mut subjects = default_subjects(ops_len);
    subjects.push(Box::new(OffByOneSubject::new()));
    subjects
}

#[test]
fn scratch_off_by_one_is_caught_and_shrunk() {
    // Find a seed whose stream trips the bug (the first one does: edge
    // probes around slot ends are 15% of generated accesses).
    let mut caught = None;
    for seed in 1..20u64 {
        let ops = generate(seed, 4000);
        let outcome = run_stream(&ops, buggy_subjects(ops.len()));
        if outcome
            .divergences
            .iter()
            .any(|d| d.subject == "OffByOneChecker")
        {
            caught = Some(ops);
            break;
        }
    }
    let ops = caught.expect("some seed below 20 must trip an off-by-one");

    let fails = |candidate: &[Op]| {
        run_stream(candidate, buggy_subjects(candidate.len()))
            .divergences
            .iter()
            .any(|d| d.subject == "OffByOneChecker")
    };
    let minimal = shrink(&ops, &fails);
    assert!(
        minimal.len() <= 10,
        "off-by-one must shrink to ≤10 ops, got {}: {minimal:#?}",
        minimal.len()
    );
    // A grant and one access suffice to express the bug.
    assert!(minimal.iter().any(|op| matches!(op, Op::Grant { .. })));
    assert!(minimal.iter().any(|op| matches!(op, Op::Access { .. })));

    let repro = regression_test(&minimal);
    eprintln!("shrunk off-by-one reproducer:\n{repro}");
    assert!(repro.contains("conformance::Op::"));
    assert!(repro.contains("fn conformance_regression()"));
    // The reproducer replays cleanly against the *production* subjects —
    // the bug lives only in the scratch checker.
    assert!(run_ops(&minimal).is_clean());
}

#[test]
fn sound_verdict_map_elides_cleanly() {
    use capchecker::{StaticVerdict, StaticVerdictMap};
    let base = conformance::stream::slot_base(0, 0);
    let ops = vec![
        Op::Grant {
            task: 0,
            object: 0,
            base,
            len: 64,
            perms: Perms::RW.bits(),
            seal: false,
            untagged: false,
        },
        Op::Access {
            task: 0,
            object: 0,
            provenance: true,
            write: false,
            addr: base,
            len: 4,
            value: 0,
        },
        Op::Access {
            task: 0,
            object: 0,
            provenance: true,
            write: false,
            addr: base + 32,
            len: 8,
            value: 0,
        },
    ];
    let mut map = StaticVerdictMap::new();
    map.set(TaskId(0), ObjectId(0), StaticVerdict::Safe);
    let outcome = conformance::run_ops_elided(&ops, &map);
    assert!(outcome.is_clean(), "{:#?}", outcome.divergences);
    // Both elided subjects skipped both accesses.
    assert_eq!(outcome.elided, 4);
}

#[test]
fn unsound_verdict_map_is_caught_as_divergence() {
    use capchecker::{StaticVerdict, StaticVerdictMap};
    let base = conformance::stream::slot_base(0, 0);
    let ops = vec![
        Op::Grant {
            task: 0,
            object: 0,
            base,
            len: 64,
            perms: Perms::LOAD.bits(), // read-only grant
            seal: false,
            untagged: false,
        },
        // A write the oracle denies — an unsound "safe" verdict elides
        // the check and answers Granted instead.
        Op::Access {
            task: 0,
            object: 0,
            provenance: true,
            write: true,
            addr: base,
            len: 4,
            value: 7,
        },
    ];
    let mut map = StaticVerdictMap::new();
    map.set(TaskId(0), ObjectId(0), StaticVerdict::Safe);
    let outcome = conformance::run_ops_elided(&ops, &map);
    assert!(!outcome.is_clean(), "unsound elision must diverge");
    assert!(outcome
        .divergences
        .iter()
        .any(|d| d.subject == "CapChecker+elide"));
    assert!(outcome
        .divergences
        .iter()
        .any(|d| d.subject == "CachedCapChecker+elide"));
    // The same stream without the map is clean: the bug is in the map,
    // not the checkers.
    assert!(run_ops(&ops).is_clean());
}

#[test]
fn divergences_emit_obs_events() {
    let ops = generate(1, 1500);
    let outcome = run_stream(&ops, buggy_subjects(ops.len()));
    let complete = outcome
        .events
        .iter()
        .filter(|e| matches!(e.kind, obs::EventKind::ConformanceComplete { .. }))
        .count();
    assert_eq!(complete, 1);
    if !outcome.divergences.is_empty() {
        assert!(outcome
            .events
            .iter()
            .any(|e| matches!(e.kind, obs::EventKind::ConformanceDivergence { .. })));
    }
}

#[test]
fn report_json_is_valid_and_schema_tagged() {
    let report = conformance::run_conformance(5, 800);
    let json = report.to_json();
    obs::json::validate(&json).unwrap();
    assert!(json.contains("\"schema\":\"capcheri.conformance.v1\""));
    assert!(json.contains("\"corpus\""));
    assert!(json.contains("\"agreement\""));
}
