//! Online adaptive policy control: the epoch-driven feedback loop that
//! makes the paper's *adaptivity* a runtime property instead of a static
//! per-run configuration.
//!
//! The driver consults an [`AdaptController`] at task-group boundaries
//! ("epochs"). Each epoch it feeds the controller a deterministic signal
//! sample ([`EpochSignals`]) — check and stall counter deltas, denial and
//! cache-corruption counts, the currently quarantined functional units —
//! and the controller answers with zero or more [`AdaptDecision`]s:
//!
//! * **Mode hysteresis** — switch [`CheckerMode::Fine`] ⇄
//!   [`CheckerMode::Coarse`] when the check-stall share crosses distinct
//!   up/down thresholds, with a minimum dwell time between switches. With
//!   `stall_up_pct > stall_down_pct` the controller makes at most one
//!   flip on any constant input stream (property-tested).
//! * **Cache probation** — degrade the cache-backed checker to the fixed
//!   table under corruption signals, then *re-promote after a clean
//!   probation window*, reversing PR 2's one-way degradation. A
//!   fail-count latch converges a flapping cache to permanently
//!   degraded.
//! * **FU parole** — release quarantined functional units after a clean
//!   probation window, with a bounded re-quarantine budget; an FU that
//!   exhausts its budget is latched out for good.
//!
//! Every decision carries its epoch, rule, raw inputs, and hysteresis
//! state, so the serialized trace (schema `capcheri.adapt.v1`) explains
//! every switch. All state is integer arithmetic over `BTreeMap`s: the
//! same signals produce the same decisions, byte-for-byte, at any thread
//! count.
//!
//! [`run_adaptive_campaign`] closes the loop end-to-end: the PR 2 fault
//! campaign re-run with the controller in charge of degradation,
//! re-promotion, and quarantine release.

use crate::cached::CachedCheckerConfig;
use crate::config::CheckerMode;
use crate::recovery::{
    audit_task_tags, synthetic_kernel, CampaignConfig, CampaignReport, RecoveryOutcome, Resolution,
    TaskRecord, WatchdogEngine,
};
use crate::system::{DriverError, HeteroSystem, ProtectionChoice, SystemConfig, TaskRequest};
use hetsim::fault::{is_engine_level, persists_across_retries, FaultPlan, FaultyEngine};
use obs::json::JsonWriter;
use obs::{AdaptRule, EventKind, FaultKind, Registry, SharedTracer};
use std::collections::{BTreeMap, BTreeSet};

/// The controller's tuning knobs. All thresholds are integers so every
/// comparison is exact and deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptConfig {
    /// Tasks per epoch in campaign mode (the driver consults the
    /// controller every `epoch_tasks` task teardowns).
    pub epoch_tasks: u32,
    /// Switch Fine → Coarse when the stall share (percent of check+stall
    /// cycles spent stalled) reaches this. Must be strictly greater than
    /// `stall_down_pct` — the hysteresis gap is what prevents
    /// oscillation.
    pub stall_up_pct: u64,
    /// Switch Coarse → Fine when the stall share falls to this or below.
    pub stall_down_pct: u64,
    /// Epochs the mode must dwell before the next switch is allowed.
    pub min_dwell_epochs: u32,
    /// Cache-corruption detections in one epoch that trigger proactive
    /// degradation.
    pub corruption_degrade: u64,
    /// Clean epochs a degraded cache (or quarantined FU) must survive
    /// before re-promotion (or release).
    pub probation_epochs: u32,
    /// Degradations after which the cache is latched permanently
    /// degraded instead of re-promoted (the anti-flap latch).
    pub cache_fail_latch: u32,
    /// Probationary releases each functional unit is granted before a
    /// re-quarantine latches it out for good.
    pub fu_release_budget: u32,
}

impl Default for AdaptConfig {
    fn default() -> AdaptConfig {
        AdaptConfig {
            epoch_tasks: 4,
            stall_up_pct: 30,
            stall_down_pct: 10,
            min_dwell_epochs: 2,
            corruption_degrade: 1,
            probation_epochs: 2,
            cache_fail_latch: 2,
            fu_release_budget: 1,
        }
    }
}

impl AdaptConfig {
    /// Writes the config's fields into an already-open JSON object, so
    /// other reports can embed it without duplicating the key order.
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.key("epoch_tasks");
        w.u64(u64::from(self.epoch_tasks));
        w.key("stall_up_pct");
        w.u64(self.stall_up_pct);
        w.key("stall_down_pct");
        w.u64(self.stall_down_pct);
        w.key("min_dwell_epochs");
        w.u64(u64::from(self.min_dwell_epochs));
        w.key("corruption_degrade");
        w.u64(self.corruption_degrade);
        w.key("probation_epochs");
        w.u64(u64::from(self.probation_epochs));
        w.key("cache_fail_latch");
        w.u64(u64::from(self.cache_fail_latch));
        w.key("fu_release_budget");
        w.u64(u64::from(self.fu_release_budget));
    }
}

/// One epoch's deterministic signal sample, as counter *deltas* since the
/// previous epoch (the sampler re-baselines after structural decisions,
/// because swapping the checker resets its statistics).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochSignals {
    /// Checks performed this epoch (granted + denied + elided).
    pub checks: u64,
    /// Cycles lost to check-path stalls this epoch (cache miss penalty
    /// cycles on the cached checker; 0 on the fixed table).
    pub stall_cycles: u64,
    /// Accesses denied this epoch.
    pub denied: u64,
    /// Cache-corruption detections this epoch.
    pub corruption: u64,
    /// Functional units quarantined *right now* (driver state, not a
    /// delta). Order and duplicates are irrelevant; the controller
    /// normalizes into a set.
    pub quarantined_fus: Vec<u32>,
}

impl EpochSignals {
    /// Integer stall share in percent: `100 * stall / (checks + stall)`,
    /// 0 when idle. Widened to 128 bits internally, so the division is
    /// exact (and deterministic) for any counter values.
    #[must_use]
    pub fn stall_share_pct(&self) -> u64 {
        let total = u128::from(self.checks) + u128::from(self.stall_cycles);
        (u128::from(self.stall_cycles) * 100)
            .checked_div(total)
            .unwrap_or(0) as u64
    }
}

/// What a decision does, with its parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptAction {
    /// Switch the checker's provenance mode.
    SwitchMode {
        /// Mode before the switch.
        from: CheckerMode,
        /// Mode after the switch.
        to: CheckerMode,
    },
    /// Degrade the cache-backed checker to the fixed table and start its
    /// probation window.
    DegradeCache,
    /// Probation passed: re-promote the fixed table to the cache-backed
    /// checker.
    RepromoteCache,
    /// The cache flapped past its fail budget: latch it permanently
    /// degraded.
    LatchCache {
        /// Degradations accumulated when the latch closed.
        degrades: u32,
    },
    /// Probation passed: release a quarantined functional unit.
    ReleaseFu {
        /// The released FU.
        fu: u32,
    },
    /// A released FU was quarantined again; restart its probation.
    RequarantineFu {
        /// The re-quarantined FU.
        fu: u32,
        /// Releases already spent on it.
        releases: u32,
    },
    /// A released FU was quarantined again with no release budget left:
    /// latch it out for good.
    LatchFu {
        /// The latched FU.
        fu: u32,
        /// Releases spent before the latch closed.
        releases: u32,
    },
}

impl AdaptAction {
    /// The rule that produced this action.
    #[must_use]
    pub fn rule(&self) -> AdaptRule {
        match self {
            AdaptAction::SwitchMode { to, .. } => match to {
                CheckerMode::Coarse => AdaptRule::StallUp,
                CheckerMode::Fine => AdaptRule::StallDown,
            },
            AdaptAction::DegradeCache => AdaptRule::CacheDegrade,
            AdaptAction::RepromoteCache => AdaptRule::CacheRepromote,
            AdaptAction::LatchCache { .. } => AdaptRule::CacheLatch,
            AdaptAction::ReleaseFu { .. } => AdaptRule::FuRelease,
            AdaptAction::RequarantineFu { .. } => AdaptRule::FuRequarantine,
            AdaptAction::LatchFu { .. } => AdaptRule::FuLatch,
        }
    }
}

/// One controller decision with everything needed to audit it: the epoch,
/// the rule, the action, the raw inputs, and the hysteresis state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdaptDecision {
    /// Epoch the decision was made in (0-based).
    pub epoch: u32,
    /// The rule that fired.
    pub rule: AdaptRule,
    /// What the driver should do.
    pub action: AdaptAction,
    /// Stall share input, percent.
    pub stall_share_pct: u64,
    /// Checks input.
    pub checks: u64,
    /// Stall-cycles input.
    pub stall_cycles: u64,
    /// Denials input.
    pub denied: u64,
    /// Corruption input.
    pub corruption: u64,
    /// Mode-dwell epochs at decision time (hysteresis state).
    pub dwell: u32,
}

impl AdaptDecision {
    /// Writes the decision as one JSON object, so other reports can embed
    /// the trace with byte-identical formatting.
    pub fn write(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("epoch");
        w.u64(u64::from(self.epoch));
        w.key("rule");
        w.string(self.rule.label());
        match self.action {
            AdaptAction::SwitchMode { from, to } => {
                w.key("from");
                w.string(from.label());
                w.key("to");
                w.string(to.label());
            }
            AdaptAction::DegradeCache | AdaptAction::RepromoteCache => {}
            AdaptAction::LatchCache { degrades } => {
                w.key("degrades");
                w.u64(u64::from(degrades));
            }
            AdaptAction::ReleaseFu { fu } => {
                w.key("fu");
                w.u64(u64::from(fu));
            }
            AdaptAction::RequarantineFu { fu, releases }
            | AdaptAction::LatchFu { fu, releases } => {
                w.key("fu");
                w.u64(u64::from(fu));
                w.key("releases");
                w.u64(u64::from(releases));
            }
        }
        w.key("stall_share_pct");
        w.u64(self.stall_share_pct);
        w.key("checks");
        w.u64(self.checks);
        w.key("stall_cycles");
        w.u64(self.stall_cycles);
        w.key("denied");
        w.u64(self.denied);
        w.key("corruption");
        w.u64(self.corruption);
        w.key("dwell");
        w.u64(u64::from(self.dwell));
        w.end_object();
    }
}

/// Where the checker cache stands in the controller's recovery lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheHealth {
    /// No cache-backed checker in this system; the lattice is inert.
    Absent,
    /// Cache in service. `degrades` counts past degradations.
    Cached {
        /// Degradations so far.
        degrades: u32,
    },
    /// Degraded to the fixed table, on probation toward re-promotion.
    Probation {
        /// Consecutive clean epochs observed.
        clean_epochs: u32,
        /// Degradations so far (this one included).
        degrades: u32,
    },
    /// Flapped past the fail budget: permanently degraded.
    LatchedDegraded,
}

impl CacheHealth {
    /// Stable label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CacheHealth::Absent => "absent",
            CacheHealth::Cached { .. } => "cached",
            CacheHealth::Probation { .. } => "probation",
            CacheHealth::LatchedDegraded => "latched-degraded",
        }
    }
}

/// Per-functional-unit health in the controller's lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FuHealth {
    /// Quarantined, serving its probation window.
    Quarantined { clean_epochs: u32, releases: u32 },
    /// Released on parole; a re-quarantine spends budget.
    Released { releases: u32 },
    /// Budget exhausted: out for good.
    Latched,
}

/// The epoch-driven feedback controller. One instance per tenant / task
/// group; state is all integers over ordered maps, so identical signal
/// streams produce identical decision traces.
#[derive(Clone, Debug)]
pub struct AdaptController {
    config: AdaptConfig,
    mode: CheckerMode,
    /// Epochs since the last mode switch (saturating). Starts at
    /// `min_dwell_epochs`, so a fresh controller may act on its first
    /// sample.
    dwell: u32,
    cache: CacheHealth,
    fus: BTreeMap<u32, FuHealth>,
    epoch: u32,
    trace: Vec<AdaptDecision>,
}

impl AdaptController {
    /// Builds a controller for a system starting in `initial_mode`, with
    /// (`cached = true`) or without a cache-backed checker.
    ///
    /// # Panics
    ///
    /// Panics when `stall_up_pct <= stall_down_pct` (no hysteresis gap —
    /// the no-oscillation guarantee would not hold) or `epoch_tasks == 0`.
    #[must_use]
    pub fn new(config: AdaptConfig, initial_mode: CheckerMode, cached: bool) -> AdaptController {
        assert!(
            config.stall_up_pct > config.stall_down_pct,
            "hysteresis needs stall_up_pct > stall_down_pct"
        );
        assert!(config.epoch_tasks > 0, "epochs must contain tasks");
        AdaptController {
            mode: initial_mode,
            dwell: config.min_dwell_epochs,
            cache: if cached {
                CacheHealth::Cached { degrades: 0 }
            } else {
                CacheHealth::Absent
            },
            fus: BTreeMap::new(),
            epoch: 0,
            trace: Vec::new(),
            config,
        }
    }

    /// The controller's configuration.
    #[must_use]
    pub fn config(&self) -> &AdaptConfig {
        &self.config
    }

    /// The mode the controller currently wants the checker in.
    #[must_use]
    pub fn mode(&self) -> CheckerMode {
        self.mode
    }

    /// Where the cache stands in the recovery lattice.
    #[must_use]
    pub fn cache_health(&self) -> CacheHealth {
        self.cache
    }

    /// Epochs observed so far.
    #[must_use]
    pub fn epochs(&self) -> u32 {
        self.epoch
    }

    /// The full decision trace, in decision order.
    #[must_use]
    pub fn trace(&self) -> &[AdaptDecision] {
        &self.trace
    }

    /// Whether a probationary release remains possible for `fu` — i.e.
    /// whether a quarantine now would be "probation pending" rather than
    /// permanent. Unknown FUs have their full budget.
    #[must_use]
    pub fn fu_can_probate(&self, fu: u32) -> bool {
        match self.fus.get(&fu) {
            None => self.config.fu_release_budget > 0,
            Some(FuHealth::Quarantined { releases, .. } | FuHealth::Released { releases }) => {
                *releases < self.config.fu_release_budget
            }
            Some(FuHealth::Latched) => false,
        }
    }

    /// Functional units released on probation so far.
    #[must_use]
    pub fn released_fus(&self) -> u64 {
        self.trace
            .iter()
            .filter(|d| d.rule == AdaptRule::FuRelease)
            .count() as u64
    }

    /// Functional units latched out for good.
    #[must_use]
    pub fn latched_fus(&self) -> u64 {
        self.fus
            .values()
            .filter(|h| matches!(h, FuHealth::Latched))
            .count() as u64
    }

    /// Consumes one epoch's signals and returns the decisions for the
    /// driver to apply, in deterministic order: cache lattice, then mode
    /// hysteresis, then functional units in index order. The decisions
    /// are also appended to [`AdaptController::trace`].
    pub fn observe(&mut self, signals: &EpochSignals) -> Vec<AdaptDecision> {
        let epoch = self.epoch;
        self.epoch += 1;
        let mut out = Vec::new();
        let decide = |action: AdaptAction, dwell: u32| AdaptDecision {
            epoch,
            rule: action.rule(),
            action,
            stall_share_pct: signals.stall_share_pct(),
            checks: signals.checks,
            stall_cycles: signals.stall_cycles,
            denied: signals.denied,
            corruption: signals.corruption,
            dwell,
        };

        // --- Cache lattice -------------------------------------------
        match self.cache {
            CacheHealth::Absent | CacheHealth::LatchedDegraded => {}
            CacheHealth::Cached { degrades } => {
                if signals.corruption >= self.config.corruption_degrade {
                    out.push(decide(AdaptAction::DegradeCache, self.dwell));
                    self.cache = CacheHealth::Probation {
                        clean_epochs: 0,
                        degrades: degrades + 1,
                    };
                }
            }
            CacheHealth::Probation {
                clean_epochs,
                degrades,
            } => {
                let clean_epochs = if signals.corruption == 0 {
                    clean_epochs + 1
                } else {
                    0
                };
                if clean_epochs >= self.config.probation_epochs {
                    if degrades >= self.config.cache_fail_latch {
                        out.push(decide(AdaptAction::LatchCache { degrades }, self.dwell));
                        self.cache = CacheHealth::LatchedDegraded;
                    } else {
                        out.push(decide(AdaptAction::RepromoteCache, self.dwell));
                        self.cache = CacheHealth::Cached { degrades };
                    }
                } else {
                    self.cache = CacheHealth::Probation {
                        clean_epochs,
                        degrades,
                    };
                }
            }
        }

        // --- Mode hysteresis -----------------------------------------
        let share = signals.stall_share_pct();
        let switch_to = match self.mode {
            CheckerMode::Fine if share >= self.config.stall_up_pct => Some(CheckerMode::Coarse),
            CheckerMode::Coarse if share <= self.config.stall_down_pct => Some(CheckerMode::Fine),
            _ => None,
        };
        match switch_to {
            Some(to) if self.dwell >= self.config.min_dwell_epochs => {
                out.push(decide(
                    AdaptAction::SwitchMode {
                        from: self.mode,
                        to,
                    },
                    self.dwell,
                ));
                self.mode = to;
                self.dwell = 0;
            }
            _ => self.dwell = self.dwell.saturating_add(1),
        }

        // --- Functional units ----------------------------------------
        let now_quarantined: BTreeSet<u32> = signals.quarantined_fus.iter().copied().collect();
        // New quarantines and re-quarantines first.
        let mut requarantined = BTreeSet::new();
        for &fu in &now_quarantined {
            match self.fus.get(&fu) {
                None => {
                    self.fus.insert(
                        fu,
                        FuHealth::Quarantined {
                            clean_epochs: 0,
                            releases: 0,
                        },
                    );
                    requarantined.insert(fu);
                }
                Some(FuHealth::Released { releases }) => {
                    let releases = *releases;
                    if releases >= self.config.fu_release_budget {
                        out.push(decide(AdaptAction::LatchFu { fu, releases }, self.dwell));
                        self.fus.insert(fu, FuHealth::Latched);
                    } else {
                        out.push(decide(
                            AdaptAction::RequarantineFu { fu, releases },
                            self.dwell,
                        ));
                        self.fus.insert(
                            fu,
                            FuHealth::Quarantined {
                                clean_epochs: 0,
                                releases,
                            },
                        );
                    }
                    requarantined.insert(fu);
                }
                Some(FuHealth::Quarantined { .. } | FuHealth::Latched) => {}
            }
        }
        // Then serve probation for every quarantined FU (skipping those
        // whose window restarted this very epoch).
        let fus: Vec<u32> = self.fus.keys().copied().collect();
        for fu in fus {
            if requarantined.contains(&fu) {
                continue;
            }
            if let Some(FuHealth::Quarantined {
                clean_epochs,
                releases,
            }) = self.fus.get(&fu).copied()
            {
                let clean_epochs = clean_epochs + 1;
                if clean_epochs >= self.config.probation_epochs
                    && releases < self.config.fu_release_budget
                {
                    out.push(decide(AdaptAction::ReleaseFu { fu }, self.dwell));
                    self.fus.insert(
                        fu,
                        FuHealth::Released {
                            releases: releases + 1,
                        },
                    );
                } else {
                    self.fus.insert(
                        fu,
                        FuHealth::Quarantined {
                            clean_epochs,
                            releases,
                        },
                    );
                }
            }
        }

        self.trace.extend(out.iter().cloned());
        out
    }
}

/// The adaptive campaign's deterministic result: the underlying fault
/// campaign plus the controller's decision trace and final state.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveCampaignReport {
    /// The controller configuration in force.
    pub config: AdaptConfig,
    /// The underlying campaign result (records carry
    /// [`Resolution::QuarantinedProbation`] where parole was possible).
    pub campaign: CampaignReport,
    /// Epochs observed.
    pub epochs: u32,
    /// Every decision the controller made, in order.
    pub decisions: Vec<AdaptDecision>,
    /// Checker mode at campaign end.
    pub final_mode: CheckerMode,
    /// Cache lattice state at campaign end.
    pub cache_health: CacheHealth,
    /// Functional units released on probation.
    pub released_fus: u64,
    /// Functional units latched out for good.
    pub latched_fus: u64,
}

impl AdaptiveCampaignReport {
    /// Tasks that ended in a clean completion (first try or retried).
    #[must_use]
    pub fn completed_tasks(&self) -> u64 {
        self.campaign
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r.resolution,
                    Resolution::Completed | Resolution::RetriedCompleted
                )
            })
            .count() as u64
    }

    /// Serializes the report as deterministic JSON, schema
    /// `capcheri.adapt.v1`. The embedded `campaign` object reuses the
    /// `capcheri.fault_campaign.v1` body writer, so the two cannot drift.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.string("capcheri.adapt.v1");
        w.key("config");
        w.begin_object();
        self.config.write_fields(&mut w);
        w.end_object();
        w.key("campaign");
        w.begin_object();
        self.campaign.write_fields(&mut w);
        w.end_object();
        w.key("epochs");
        w.u64(u64::from(self.epochs));
        w.key("decisions");
        w.begin_array();
        for d in &self.decisions {
            d.write(&mut w);
        }
        w.end_array();
        w.key("final");
        w.begin_object();
        w.key("mode");
        w.string(self.final_mode.label());
        w.key("cache");
        w.string(self.cache_health.label());
        w.key("released_fus");
        w.u64(self.released_fus);
        w.key("latched_fus");
        w.u64(self.latched_fus);
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Counter totals sampled from the live system; epoch signals are the
/// deltas between consecutive samples.
#[derive(Clone, Copy, Debug, Default)]
struct Totals {
    checks: u64,
    stall: u64,
    denied: u64,
    corruption: u64,
}

fn sample_totals(sys: &HeteroSystem) -> Totals {
    if let Some(c) = sys.cached_checker() {
        let s = c.cache_stats();
        Totals {
            checks: s.hits + s.misses + s.elided,
            stall: s.miss_cycles,
            denied: s.denied,
            corruption: c.corruption_detected(),
        }
    } else if let Some(c) = sys.checker() {
        let s = c.stats();
        Totals {
            checks: s.granted + s.denied + s.elided,
            stall: 0,
            denied: s.denied,
            corruption: 0,
        }
    } else {
        Totals::default()
    }
}

/// Runs the PR 2 fault campaign with the adaptive controller closing the
/// loop: inline reactive degradation is *off* (a cache checksum failure
/// drops the corrupt line and the retry walks the backing table), and
/// instead the controller decides at epoch boundaries whether to degrade,
/// re-promote, switch modes, or release quarantined engines.
///
/// Same config + same seed ⇒ byte-identical
/// [`AdaptiveCampaignReport::to_json`].
///
/// # Errors
///
/// Propagates driver platform errors, exactly like
/// [`crate::recovery::run_campaign`].
///
/// # Panics
///
/// Panics only on simulator invariant violations, or on an invalid
/// [`AdaptConfig`] (see [`AdaptController::new`]).
#[allow(clippy::too_many_lines)]
pub fn run_adaptive_campaign(
    config: &CampaignConfig,
    adapt: &AdaptConfig,
) -> Result<AdaptiveCampaignReport, DriverError> {
    let policy = config.policy;
    let mut sys = HeteroSystem::new(SystemConfig {
        protection: config.protection,
        ..SystemConfig::default()
    });
    sys.add_fus("accel", config.fus);
    let tracer = SharedTracer::with_capacity(64 * 1024);
    sys.set_tracer(tracer.clone());

    let cached_cfg = match config.protection {
        ProtectionChoice::CachedCapChecker(c) => c,
        _ => CachedCheckerConfig::default(),
    };
    let initial_mode = sys.checker_mode().unwrap_or(CheckerMode::Fine);
    let mut controller = AdaptController::new(*adapt, initial_mode, sys.cached_checker().is_some());

    let mut plan = FaultPlan::new(config.spec.clone(), config.seed);
    let mut records: Vec<TaskRecord> = Vec::with_capacity(config.tasks as usize);
    let mut fu_faults: BTreeMap<usize, u32> = BTreeMap::new();
    let mut quarantined: BTreeSet<usize> = BTreeSet::new();
    let mut degraded = false;
    let mut degrade_detections = 0u64;
    let mut baseline = sample_totals(&sys);

    for index in 0..config.tasks {
        let mut injected = plan.sample();
        let req = TaskRequest::accel(format!("t{index}"), "accel")
            .rw_buffers([config.buffer_bytes, config.buffer_bytes]);
        let task = match sys.allocate_task(&req) {
            Ok(t) => t,
            Err(DriverError::NoFreeFu { .. }) => {
                records.push(TaskRecord {
                    index,
                    injected: injected.map(|f| f.kind),
                    attempts: 0,
                    resolution: Resolution::Starved,
                    denial: None,
                    degraded: false,
                    tags_cleared: 0,
                });
                epoch_boundary_if_due(
                    index,
                    adapt,
                    &mut sys,
                    &mut controller,
                    &mut baseline,
                    &mut fu_faults,
                    &mut quarantined,
                    &mut degraded,
                    &mut degrade_detections,
                    cached_cfg,
                );
                continue;
            }
            Err(e) => return Err(e),
        };
        let fu = sys.task_fu(task)?.expect("campaign tasks are accel tasks");

        if let Some(f) = injected {
            match f.kind {
                FaultKind::TagFlip => {
                    let base = sys.cpu_layout(task)?.buffers[0].base;
                    let granules = (config.buffer_bytes / 16).max(1);
                    let addr = base + (f.at_op % granules) * 16;
                    sys.memory_mut()
                        .set_tag_raw(addr, true)
                        .expect("task buffers are in range");
                }
                FaultKind::CacheCorrupt => match sys.cached_checker_mut() {
                    Some(c) => c.corrupt_next_insert(1 << 70),
                    None => injected = None,
                },
                _ => {}
            }
        }
        if let Some(f) = injected {
            sys.record(EventKind::FaultInjected {
                task: task.0,
                fault: f.kind,
            });
        }

        let mut attempts = 0u32;
        let mut resolution = None;
        let mut denial_desc: Option<String> = None;

        while attempts < policy.max_attempts && resolution.is_none() {
            attempts += 1;
            let engine_fault = injected.filter(|f| {
                is_engine_level(f.kind) && (attempts == 1 || persists_across_retries(f.kind))
            });
            let run = sys.run_accel_task(task, |eng| {
                let mut wd = WatchdogEngine::new(eng, policy.watchdog_budget);
                let mut fe = FaultyEngine::new(&mut wd, engine_fault);
                synthetic_kernel(&mut fe)
            });
            let outcome = match run {
                Ok(out) => match out.denial {
                    None => RecoveryOutcome::Completed,
                    Some(d) => RecoveryOutcome::Denied(d),
                },
                Err(DriverError::WatchdogTimeout { ops, .. }) => RecoveryOutcome::TimedOut { ops },
                Err(DriverError::TransientFault(k)) => RecoveryOutcome::Transient(k),
                Err(e) => return Err(e),
            };

            let mut schedule_retry = false;
            match outcome {
                RecoveryOutcome::Completed => {
                    denial_desc = None;
                    resolution = Some(if attempts > 1 {
                        Resolution::RetriedCompleted
                    } else {
                        Resolution::Completed
                    });
                }
                RecoveryOutcome::Denied(d) => {
                    denial_desc = Some(format!("{:?}", d.reason));
                    // Unlike the static campaign, an InvalidTag denial
                    // does NOT degrade inline: the cached checker already
                    // dropped the corrupt line, so the retry is safe, and
                    // the degradation decision belongs to the controller
                    // at the epoch boundary.
                    if attempts < policy.max_attempts {
                        schedule_retry = true;
                    } else {
                        resolution = Some(Resolution::Denied);
                    }
                }
                RecoveryOutcome::TimedOut { ops } => {
                    sys.record(EventKind::WatchdogAbort { task: task.0, ops });
                    let count = fu_faults.entry(fu).or_insert(0);
                    *count += 1;
                    if *count >= policy.quarantine_threshold {
                        let faults = *count;
                        sys.quarantine_fu(fu, faults);
                        quarantined.insert(fu);
                        denial_desc = Some(format!("engine hung after {ops} ops"));
                        if controller.fu_can_probate(fu as u32) {
                            sys.record(EventKind::ProbationStarted {
                                epoch: controller.epochs(),
                                window: adapt.probation_epochs,
                            });
                            resolution = Some(Resolution::QuarantinedProbation);
                        } else {
                            resolution = Some(Resolution::Quarantined);
                        }
                    } else if attempts < policy.max_attempts {
                        schedule_retry = true;
                    } else {
                        denial_desc = Some(format!("engine hung after {ops} ops"));
                        resolution = Some(Resolution::Denied);
                    }
                }
                RecoveryOutcome::Transient(kind) => {
                    if attempts < policy.max_attempts {
                        schedule_retry = true;
                    } else {
                        denial_desc = Some(format!("transient fault: {kind}"));
                        resolution = Some(Resolution::Denied);
                    }
                }
            }
            if schedule_retry {
                sys.clear_protection_exception();
                sys.clear_task_fault(task)?;
                let backoff = policy.backoff_after(attempts);
                sys.advance_clock(backoff);
                sys.record(EventKind::TaskRetry {
                    task: task.0,
                    attempt: attempts + 1,
                    backoff,
                });
            }
        }
        let mut resolution = resolution.unwrap_or(Resolution::Denied);

        let tags_cleared = audit_task_tags(&mut sys, task)?;
        if tags_cleared > 0 {
            sys.record(EventKind::TagAudit {
                task: task.0,
                cleared: tags_cleared,
            });
            if matches!(
                resolution,
                Resolution::Completed | Resolution::RetriedCompleted
            ) {
                resolution = Resolution::Denied;
                denial_desc = Some(format!("forged tag audit cleared {tags_cleared}"));
            }
        }

        sys.deallocate_task(task)?;
        records.push(TaskRecord {
            index,
            injected: injected.map(|f| f.kind),
            attempts,
            resolution,
            denial: denial_desc,
            degraded: false,
            tags_cleared,
        });

        epoch_boundary_if_due(
            index,
            adapt,
            &mut sys,
            &mut controller,
            &mut baseline,
            &mut fu_faults,
            &mut quarantined,
            &mut degraded,
            &mut degrade_detections,
            cached_cfg,
        );
    }
    // A trailing partial epoch still gets its boundary, so every task's
    // signals reach the controller.
    if !config.tasks.is_multiple_of(adapt.epoch_tasks) || config.tasks == 0 {
        run_epoch(
            adapt,
            &mut sys,
            &mut controller,
            &mut baseline,
            &mut fu_faults,
            &mut quarantined,
            &mut degraded,
            &mut degrade_detections,
            cached_cfg,
        );
    }

    let mut registry = Registry::new();
    sys.export_metrics(&mut registry);
    let snapshot = registry.snapshot();
    let denied_checks = snapshot.counter("checker.denied").unwrap_or(0)
        + snapshot.counter("cache.denied").unwrap_or(0);
    let corruption_detected =
        degrade_detections + sys.cached_checker().map_or(0, |c| c.corruption_detected());

    let campaign = CampaignReport {
        seed: config.seed,
        spec: config.spec.to_string(),
        tasks: config.tasks,
        policy,
        records,
        degraded,
        quarantined_fus: sys.quarantined_fus() as u64,
        driver_cycles: sys.driver_clock(),
        denied_checks,
        corruption_detected,
        events: tracer.recorded(),
    };
    Ok(AdaptiveCampaignReport {
        config: *adapt,
        epochs: controller.epochs(),
        decisions: controller.trace().to_vec(),
        final_mode: sys.checker_mode().unwrap_or(controller.mode()),
        cache_health: controller.cache_health(),
        released_fus: controller.released_fus(),
        latched_fus: controller.latched_fus(),
        campaign,
    })
}

#[allow(clippy::too_many_arguments)]
fn epoch_boundary_if_due(
    index: u32,
    adapt: &AdaptConfig,
    sys: &mut HeteroSystem,
    controller: &mut AdaptController,
    baseline: &mut Totals,
    fu_faults: &mut BTreeMap<usize, u32>,
    quarantined: &mut BTreeSet<usize>,
    degraded: &mut bool,
    degrade_detections: &mut u64,
    cached_cfg: CachedCheckerConfig,
) {
    if (index + 1).is_multiple_of(adapt.epoch_tasks) {
        run_epoch(
            adapt,
            sys,
            controller,
            baseline,
            fu_faults,
            quarantined,
            degraded,
            degrade_detections,
            cached_cfg,
        );
    }
}

/// Samples signal deltas, consults the controller, applies its decisions
/// to the live system, and re-baselines the sampler (structural
/// decisions reset checker statistics).
#[allow(clippy::too_many_arguments)]
fn run_epoch(
    adapt: &AdaptConfig,
    sys: &mut HeteroSystem,
    controller: &mut AdaptController,
    baseline: &mut Totals,
    fu_faults: &mut BTreeMap<usize, u32>,
    quarantined: &mut BTreeSet<usize>,
    degraded: &mut bool,
    degrade_detections: &mut u64,
    cached_cfg: CachedCheckerConfig,
) {
    let now = sample_totals(sys);
    let signals = EpochSignals {
        checks: now.checks.saturating_sub(baseline.checks),
        stall_cycles: now.stall.saturating_sub(baseline.stall),
        denied: now.denied.saturating_sub(baseline.denied),
        corruption: now.corruption.saturating_sub(baseline.corruption),
        quarantined_fus: quarantined.iter().map(|&f| f as u32).collect(),
    };
    let decisions = controller.observe(&signals);
    for d in &decisions {
        sys.record(EventKind::AdaptDecision {
            epoch: d.epoch,
            rule: d.rule,
        });
        match d.action {
            AdaptAction::DegradeCache => {
                if let Some((detections, _)) = sys.degrade_to_uncached() {
                    *degrade_detections += detections;
                    *degraded = true;
                }
                sys.record(EventKind::ProbationStarted {
                    epoch: d.epoch,
                    window: adapt.probation_epochs,
                });
            }
            AdaptAction::RepromoteCache => {
                sys.repromote_to_cached(cached_cfg);
                // The rebuild dropped the installed verdict map; restore
                // the retained segment proof so elision survives the
                // probation round-trip.
                sys.reinstall_segment_verdicts();
                sys.record(EventKind::ProbationPassed { epoch: d.epoch });
            }
            AdaptAction::LatchCache { degrades } => {
                sys.record(EventKind::ProbationFailed {
                    epoch: d.epoch,
                    failures: degrades,
                });
            }
            AdaptAction::SwitchMode { to, .. } => {
                sys.set_checker_mode(to);
                // Same coherence dance as re-promotion: map and bitmap
                // dropped together by the rebuild, re-installed together
                // from the epoch-scoped ledger. Degradation deliberately
                // gets no re-install — trust was withdrawn.
                sys.reinstall_segment_verdicts();
            }
            AdaptAction::ReleaseFu { fu } => {
                sys.release_fu(fu as usize);
                quarantined.remove(&(fu as usize));
                // Parole wipes the abort history: a re-quarantine needs a
                // fresh run of watchdog aborts.
                fu_faults.remove(&(fu as usize));
                sys.record(EventKind::ProbationPassed { epoch: d.epoch });
            }
            AdaptAction::RequarantineFu { releases, .. }
            | AdaptAction::LatchFu { releases, .. } => {
                sys.record(EventKind::ProbationFailed {
                    epoch: d.epoch,
                    failures: releases,
                });
            }
        }
    }
    *baseline = sample_totals(sys);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::fault::FaultSpec;
    use std::str::FromStr;

    fn signals(checks: u64, stall: u64) -> EpochSignals {
        EpochSignals {
            checks,
            stall_cycles: stall,
            ..EpochSignals::default()
        }
    }

    fn controller() -> AdaptController {
        AdaptController::new(AdaptConfig::default(), CheckerMode::Fine, true)
    }

    #[test]
    fn stall_share_is_integer_and_total() {
        assert_eq!(signals(0, 0).stall_share_pct(), 0);
        assert_eq!(signals(70, 30).stall_share_pct(), 30);
        assert_eq!(signals(1, 0).stall_share_pct(), 0);
        assert_eq!(signals(0, 1).stall_share_pct(), 100);
        assert_eq!(signals(u64::MAX, u64::MAX).stall_share_pct(), 50);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_are_rejected() {
        let _ = AdaptController::new(
            AdaptConfig {
                stall_up_pct: 10,
                stall_down_pct: 10,
                ..AdaptConfig::default()
            },
            CheckerMode::Fine,
            true,
        );
    }

    #[test]
    fn constant_input_flips_at_most_once() {
        for share in [0u64, 5, 10, 15, 29, 30, 50, 100] {
            let mut c = controller();
            let sig = signals(100 - share.min(100), share.min(100));
            let mut flips = 0;
            for _ in 0..64 {
                flips += c
                    .observe(&sig)
                    .iter()
                    .filter(|d| matches!(d.action, AdaptAction::SwitchMode { .. }))
                    .count();
            }
            assert!(flips <= 1, "share {share}: {flips} flips on constant input");
        }
    }

    #[test]
    fn mode_switch_respects_dwell_and_hysteresis() {
        let mut c = AdaptController::new(
            AdaptConfig {
                min_dwell_epochs: 2,
                ..AdaptConfig::default()
            },
            CheckerMode::Fine,
            true,
        );
        // Hot epoch: fresh controller starts past its dwell, switches up.
        let d = c.observe(&signals(50, 50));
        assert_eq!(d.len(), 1);
        assert!(matches!(
            d[0].action,
            AdaptAction::SwitchMode {
                from: CheckerMode::Fine,
                to: CheckerMode::Coarse
            }
        ));
        assert_eq!(d[0].rule, AdaptRule::StallUp);
        assert_eq!(c.mode(), CheckerMode::Coarse);
        // Cool epochs inside the dwell window: no switch back yet.
        assert!(c.observe(&signals(100, 0)).is_empty());
        assert!(c.observe(&signals(100, 0)).is_empty());
        // Dwell served: now it switches back down.
        let d = c.observe(&signals(100, 0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, AdaptRule::StallDown);
        assert_eq!(c.mode(), CheckerMode::Fine);
        // Mid-band share (between down and up) never switches.
        for _ in 0..16 {
            assert!(c.observe(&signals(80, 20)).is_empty());
        }
    }

    #[test]
    fn cache_lattice_degrade_probation_repromote_then_latch() {
        let cfg = AdaptConfig {
            probation_epochs: 2,
            cache_fail_latch: 2,
            ..AdaptConfig::default()
        };
        let mut c = AdaptController::new(cfg, CheckerMode::Fine, true);
        // Corruption: degrade, enter probation.
        let corrupt = EpochSignals {
            checks: 100,
            corruption: 1,
            ..EpochSignals::default()
        };
        let clean = signals(100, 0);
        let d = c.observe(&corrupt);
        assert_eq!(d[0].rule, AdaptRule::CacheDegrade);
        assert_eq!(c.cache_health().label(), "probation");
        // Two clean epochs: probation passes, re-promote (degrades=1 <
        // latch=2).
        assert!(c.observe(&clean).is_empty());
        let d = c.observe(&clean);
        assert_eq!(d[0].rule, AdaptRule::CacheRepromote);
        assert!(matches!(
            c.cache_health(),
            CacheHealth::Cached { degrades: 1 }
        ));
        // Second corruption: degrade again (degrades=2)...
        let d = c.observe(&corrupt);
        assert_eq!(d[0].rule, AdaptRule::CacheDegrade);
        // ...and after probation the fail latch closes instead.
        assert!(c.observe(&clean).is_empty());
        let d = c.observe(&clean);
        assert_eq!(d[0].rule, AdaptRule::CacheLatch);
        assert_eq!(c.cache_health(), CacheHealth::LatchedDegraded);
        // Terminal: further corruption elicits nothing.
        assert!(c.observe(&corrupt).is_empty());
    }

    #[test]
    fn probation_clean_window_restarts_on_corruption() {
        let cfg = AdaptConfig {
            probation_epochs: 2,
            ..AdaptConfig::default()
        };
        let mut c = AdaptController::new(cfg, CheckerMode::Fine, true);
        let corrupt = EpochSignals {
            checks: 100,
            corruption: 1,
            ..EpochSignals::default()
        };
        let clean = signals(100, 0);
        c.observe(&corrupt);
        assert!(c.observe(&clean).is_empty());
        // Corruption during probation resets the clean window.
        assert!(c.observe(&corrupt).is_empty());
        assert!(c.observe(&clean).is_empty());
        let d = c.observe(&clean);
        assert_eq!(d[0].rule, AdaptRule::CacheRepromote);
    }

    #[test]
    fn fu_lattice_release_requarantine_latch() {
        let cfg = AdaptConfig {
            probation_epochs: 1,
            fu_release_budget: 1,
            ..AdaptConfig::default()
        };
        let mut c = AdaptController::new(cfg, CheckerMode::Fine, true);
        let with_q = EpochSignals {
            checks: 100,
            quarantined_fus: vec![3],
            ..EpochSignals::default()
        };
        let without = signals(100, 0);
        assert!(c.fu_can_probate(3), "fresh FU has its full budget");
        // First sighting: tracked, no decision yet.
        assert!(c.observe(&with_q).is_empty());
        // Window served while quarantined: released on parole.
        let d = c.observe(&with_q);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, AdaptRule::FuRelease);
        assert!(matches!(d[0].action, AdaptAction::ReleaseFu { fu: 3 }));
        assert_eq!(c.released_fus(), 1);
        assert!(!c.fu_can_probate(3), "budget of 1 is spent");
        // Healthy epochs: nothing.
        assert!(c.observe(&without).is_empty());
        // Re-quarantined with no budget left: latched.
        let d = c.observe(&with_q);
        assert_eq!(d[0].rule, AdaptRule::FuLatch);
        assert!(matches!(
            d[0].action,
            AdaptAction::LatchFu { fu: 3, releases: 1 }
        ));
        assert_eq!(c.latched_fus(), 1);
        // Terminal.
        assert!(c.observe(&with_q).is_empty());
        assert!(!c.fu_can_probate(3));
    }

    #[test]
    fn fu_requarantine_with_budget_restarts_probation() {
        let cfg = AdaptConfig {
            probation_epochs: 1,
            fu_release_budget: 2,
            ..AdaptConfig::default()
        };
        let mut c = AdaptController::new(cfg, CheckerMode::Fine, true);
        let with_q = EpochSignals {
            checks: 100,
            quarantined_fus: vec![0],
            ..EpochSignals::default()
        };
        assert!(c.observe(&with_q).is_empty()); // tracked
        let d = c.observe(&with_q);
        assert_eq!(d[0].rule, AdaptRule::FuRelease); // first release
        let d = c.observe(&with_q);
        assert_eq!(d[0].rule, AdaptRule::FuRequarantine); // budget left
        assert!(c.fu_can_probate(0));
        let d = c.observe(&with_q);
        assert_eq!(d[0].rule, AdaptRule::FuRelease); // second release
        assert!(!c.fu_can_probate(0));
        let d = c.observe(&with_q);
        assert_eq!(d[0].rule, AdaptRule::FuLatch);
    }

    fn adaptive(spec: &str, tasks: u32, seed: u64, adapt: &AdaptConfig) -> AdaptiveCampaignReport {
        run_adaptive_campaign(
            &CampaignConfig {
                tasks,
                seed,
                spec: FaultSpec::from_str(spec).unwrap(),
                ..CampaignConfig::default()
            },
            adapt,
        )
        .unwrap()
    }

    #[test]
    fn adaptive_campaign_same_seed_same_bytes() {
        let cfg = AdaptConfig::default();
        let a = adaptive("all:0.9", 24, 42, &cfg);
        let b = adaptive("all:0.9", 24, 42, &cfg);
        assert_eq!(a.to_json(), b.to_json());
        let c = adaptive("all:0.9", 24, 43, &cfg);
        assert_ne!(a.to_json(), c.to_json());
        obs::json::validate(&a.to_json()).unwrap();
        assert!(a.to_json().starts_with("{\"schema\":\"capcheri.adapt.v1\""));
    }

    #[test]
    fn adaptive_cache_corruption_survives_and_latches() {
        // Every task corrupts the cache. Inline degradation is off, so the
        // corrupt line is dropped, the retry completes, and the controller
        // degrades at the epoch boundary; after each clean probation the
        // cache returns, gets corrupted again, and the fail latch finally
        // closes.
        let cfg = AdaptConfig {
            epoch_tasks: 2,
            probation_epochs: 1,
            cache_fail_latch: 2,
            // A cold per-task cache has a genuinely high stall share;
            // park the up-threshold out of reach so this test sees only
            // the cache lattice.
            stall_up_pct: 1000,
            ..AdaptConfig::default()
        };
        let r = adaptive("cache-corrupt:1", 16, 7, &cfg);
        assert_eq!(r.completed_tasks(), 16, "every task survived");
        assert!(r.campaign.degraded);
        assert_eq!(r.cache_health, CacheHealth::LatchedDegraded);
        let rules: Vec<AdaptRule> = r.decisions.iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            vec![
                AdaptRule::CacheDegrade,
                AdaptRule::CacheRepromote,
                AdaptRule::CacheDegrade,
                AdaptRule::CacheLatch,
            ],
            "degrade → repromote → flap → latch"
        );
        // The trace explains each decision with its inputs.
        assert!(r.decisions[0].corruption >= 1);
        assert_eq!(r.decisions[1].corruption, 0);
    }

    #[test]
    fn adaptive_quarantine_releases_on_probation() {
        // Engine hangs on every task: FUs quarantine, serve probation,
        // are released (budget 1), hang again, and latch.
        let cfg = AdaptConfig {
            epoch_tasks: 2,
            probation_epochs: 1,
            fu_release_budget: 1,
            ..AdaptConfig::default()
        };
        let r = adaptive("engine-hang:1", 12, 7, &cfg);
        assert!(r.released_fus >= 1, "at least one FU paroled");
        assert!(r
            .campaign
            .records
            .iter()
            .any(|t| t.resolution == Resolution::QuarantinedProbation));
        assert!(r.to_json().contains("quarantined-probation"));
        // Releases show up as decisions with their epoch and rule.
        assert!(r.decisions.iter().any(|d| d.rule == AdaptRule::FuRelease));
    }

    #[test]
    fn clean_campaign_decisions_are_mode_only() {
        // Every campaign task cold-misses its two cache lines, so the
        // stall share is genuinely above the default up-threshold: the
        // controller's only move on a fault-free campaign is a single
        // Fine → Coarse switch — the constant-input guarantee, in vivo.
        let r = adaptive("none", 8, 1, &AdaptConfig::default());
        assert_eq!(r.completed_tasks(), 8);
        assert_eq!(r.cache_health.label(), "cached");
        assert_eq!(r.epochs, 2, "8 tasks / epoch_tasks=4");
        let rules: Vec<AdaptRule> = r.decisions.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec![AdaptRule::StallUp], "one switch, then dwell");
        assert_eq!(r.final_mode, CheckerMode::Coarse);
    }
}
