//! The driver's buffer allocator.
//!
//! The prototype shares main memory between the CPU and accelerators, so
//! accelerator buffers come from an ordinary heap (`malloc()` in the
//! paper's driver). This is a first-fit free-list allocator over the
//! simulated DRAM with coalescing on free.

use std::error::Error;
use std::fmt;

/// A rejected [`HeapAllocator::free`]: the driver tried to return a block
/// it does not own, or one that is already (partly) free. The whole
/// temporal-safety story rests on the driver (§6.2 group c), so these are
/// typed errors a caller must handle rather than silent corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// `[block, block + size)` is not contained in the managed range.
    ForeignFree {
        /// Base of the offending block.
        block: u64,
        /// Size of the offending block.
        size: u64,
    },
    /// `[block, block + size)` overlaps a block that is already free.
    DoubleFree {
        /// Base of the offending block.
        block: u64,
        /// Size of the offending block.
        size: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::ForeignFree { block, size } => {
                write!(f, "freeing [{block:#x}, +{size:#x}) outside the heap")
            }
            AllocError::DoubleFree { block, size } => {
                write!(
                    f,
                    "double free: [{block:#x}, +{size:#x}) overlaps a free block"
                )
            }
        }
    }
}

impl Error for AllocError {}

/// A first-fit heap over a contiguous physical range.
#[derive(Clone)]
pub struct HeapAllocator {
    base: u64,
    size: u64,
    /// Free blocks `(base, size)`, sorted by base, non-adjacent.
    free: Vec<(u64, u64)>,
}

impl HeapAllocator {
    /// Manages `[base, base + size)`.
    #[must_use]
    pub fn new(base: u64, size: u64) -> HeapAllocator {
        HeapAllocator {
            base,
            size,
            free: vec![(base, size)],
        }
    }

    /// Total bytes currently free.
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|(_, s)| s).sum()
    }

    /// Largest single allocation currently possible (unaligned).
    #[must_use]
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|(_, s)| *s).max().unwrap_or(0)
    }

    /// Allocates `size` bytes at `align` alignment, first fit.
    ///
    /// Returns the block base, or `None` when no block fits.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> Option<u64> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let size = size.max(1);
        for i in 0..self.free.len() {
            let (fbase, fsize) = self.free[i];
            let aligned = fbase.next_multiple_of(align);
            let pad = aligned - fbase;
            if fsize < pad + size {
                continue;
            }
            // Carve [aligned, aligned+size) out of the block.
            self.free.remove(i);
            let mut insert_at = i;
            if pad > 0 {
                self.free.insert(insert_at, (fbase, pad));
                insert_at += 1;
            }
            let tail = fsize - pad - size;
            if tail > 0 {
                self.free.insert(insert_at, (aligned + size, tail));
            }
            return Some(aligned);
        }
        None
    }

    /// Returns `[block, block + size)` to the heap, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// [`AllocError::ForeignFree`] if the block lies outside the managed
    /// range; [`AllocError::DoubleFree`] if it overlaps a free block. The
    /// heap is unchanged on error.
    pub fn free(&mut self, block: u64, size: u64) -> Result<(), AllocError> {
        let size = size.max(1);
        if block < self.base || block + size > self.base + self.size {
            return Err(AllocError::ForeignFree { block, size });
        }
        let pos = self.free.partition_point(|(b, _)| *b < block);
        if let Some(&(nb, _)) = self.free.get(pos) {
            if block + size > nb {
                return Err(AllocError::DoubleFree { block, size });
            }
        }
        if pos > 0 {
            let (pb, ps) = self.free[pos - 1];
            if pb + ps > block {
                return Err(AllocError::DoubleFree { block, size });
            }
        }
        self.free.insert(pos, (block, size));
        // Coalesce with next, then previous.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
        Ok(())
    }
}

impl fmt::Debug for HeapAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HeapAllocator[{:#x}+{:#x}] {} free in {} blocks",
            self.base,
            self.size,
            self.free_bytes(),
            self.free.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_and_alignment() {
        let mut h = HeapAllocator::new(0x1000, 0x1000);
        let a = h.alloc(100, 16).unwrap();
        assert_eq!(a % 16, 0);
        let b = h.alloc(100, 64).unwrap();
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut h = HeapAllocator::new(0, 256);
        assert!(h.alloc(300, 1).is_none());
        let a = h.alloc(256, 1).unwrap();
        assert!(h.alloc(1, 1).is_none());
        h.free(a, 256).unwrap();
        assert!(h.alloc(1, 1).is_some());
    }

    #[test]
    fn free_coalesces() {
        let mut h = HeapAllocator::new(0, 0x400);
        let a = h.alloc(0x100, 1).unwrap();
        let b = h.alloc(0x100, 1).unwrap();
        let c = h.alloc(0x100, 1).unwrap();
        h.free(a, 0x100).unwrap();
        h.free(c, 0x100).unwrap();
        h.free(b, 0x100).unwrap();
        assert_eq!(h.largest_free(), 0x400);
        assert_eq!(h.free_bytes(), 0x400);
    }

    #[test]
    fn double_free_is_a_typed_error() {
        let mut h = HeapAllocator::new(0, 0x400);
        let a = h.alloc(0x100, 1).unwrap();
        h.free(a, 0x100).unwrap();
        let before = h.free_bytes();
        assert!(matches!(
            h.free(a, 0x100),
            Err(AllocError::DoubleFree { block, size: 0x100 }) if block == a
        ));
        // Partial overlap with a free neighbour is a double free too.
        let b = h.alloc(0x100, 1).unwrap();
        assert!(matches!(
            h.free(b + 0x80, 0x100),
            Err(AllocError::DoubleFree { .. })
        ));
        assert_eq!(h.free_bytes(), before - 0x100, "heap unchanged on error");
    }

    #[test]
    fn foreign_free_is_a_typed_error() {
        let mut h = HeapAllocator::new(0x1000, 0x400);
        assert!(matches!(
            h.free(0, 0x10),
            Err(AllocError::ForeignFree {
                block: 0,
                size: 0x10
            })
        ));
        // Straddling the end of the range is foreign as well.
        assert!(matches!(
            h.free(0x13f0, 0x20),
            Err(AllocError::ForeignFree { .. })
        ));
        assert_eq!(h.free_bytes(), 0x400);
    }

    #[test]
    fn many_allocations_fit_tightly() {
        let mut h = HeapAllocator::new(0, 1 << 20);
        let mut blocks = Vec::new();
        for i in 0..1000u64 {
            blocks.push((h.alloc(512 + i % 64, 16).unwrap(), 512 + i % 64));
        }
        for (b, s) in blocks {
            h.free(b, s).unwrap();
        }
        assert_eq!(h.free_bytes(), 1 << 20);
    }
}
