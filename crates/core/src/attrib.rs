//! Hot-path check attribution: who is paying for capability checks.
//!
//! The checker's [`CheckerStats`](crate::CheckerStats) counters answer
//! *how many* checks happened; this module answers *where* — per bus
//! master (functional unit) and per `(task, object)` capability pair.
//! The maps are `BTreeMap`s, so iteration order — and therefore every
//! byte a profile report serializes from them — is deterministic.
//!
//! Attribution is opt-in: the checkers carry an `Option` of this state
//! and the fast path pays one `None` test when profiling is off, keeping
//! the instrumented and uninstrumented data paths one code path (the
//! same discipline as [`obs::NullTracer`] / [`obs::NullProfiler`]).

use hetsim::{MasterId, ObjectId, TaskId};
use std::collections::BTreeMap;

/// Per-key check counters.
///
/// `hits`/`misses`/`stall_cycles` only move on the cached checker
/// ([`crate::CachedCapChecker`]), whose capability cache can miss; the
/// table-resident [`crate::CapChecker`] always leaves them zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Requests granted.
    pub granted: u64,
    /// Requests denied.
    pub denied: u64,
    /// Requests skipped under a static-analysis verdict.
    pub elided: u64,
    /// Capability-cache hits.
    pub hits: u64,
    /// Capability-cache misses.
    pub misses: u64,
    /// Cycles stalled refilling the capability cache.
    pub stall_cycles: u64,
}

impl CheckCounters {
    /// Every request that reached the checker, however it was resolved.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.granted + self.denied + self.elided
    }

    fn absorb(&mut self, other: &CheckCounters) {
        self.granted += other.granted;
        self.denied += other.denied;
        self.elided += other.elided;
        self.hits += other.hits;
        self.misses += other.misses;
        self.stall_cycles += other.stall_cycles;
    }
}

/// The attribution state: one counter set per bus master and one per
/// `(task, object)` pair, keyed by the raw IDs so the maps order (and
/// serialize) identically on every run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckAttribution {
    /// Counters per `(task, object)` capability pair.
    pub pairs: BTreeMap<(u32, u16), CheckCounters>,
    /// Counters per issuing bus master (functional unit).
    pub masters: BTreeMap<u16, CheckCounters>,
}

impl CheckAttribution {
    /// Empty attribution.
    #[must_use]
    pub fn new() -> CheckAttribution {
        CheckAttribution::default()
    }

    fn bump(
        &mut self,
        master: MasterId,
        pair: Option<(TaskId, ObjectId)>,
        apply: impl Fn(&mut CheckCounters),
    ) {
        apply(self.masters.entry(master.0).or_default());
        if let Some((task, object)) = pair {
            apply(self.pairs.entry((task.0, object.0)).or_default());
        }
    }

    /// Records one granted request.
    pub fn granted(&mut self, master: MasterId, task: TaskId, object: ObjectId) {
        self.bump(master, Some((task, object)), |c| c.granted += 1);
    }

    /// Records one denied request (the pair is unknown when provenance
    /// never resolved).
    pub fn denied(&mut self, master: MasterId, pair: Option<(TaskId, ObjectId)>) {
        self.bump(master, pair, |c| c.denied += 1);
    }

    /// Records one check elided under a static verdict.
    pub fn elided(&mut self, master: MasterId, task: TaskId, object: ObjectId) {
        self.bump(master, Some((task, object)), |c| c.elided += 1);
    }

    /// Records one capability-cache lookup: hit or miss, plus the stall
    /// cycles a miss cost.
    pub fn lookup(
        &mut self,
        master: MasterId,
        task: TaskId,
        object: ObjectId,
        hit: bool,
        stall_cycles: u64,
    ) {
        self.bump(master, Some((task, object)), |c| {
            if hit {
                c.hits += 1;
            } else {
                c.misses += 1;
                c.stall_cycles += stall_cycles;
            }
        });
    }

    /// The grand total over all masters (pairs are a reclassification of
    /// the same requests, so masters are the authoritative sum).
    #[must_use]
    pub fn total(&self) -> CheckCounters {
        let mut out = CheckCounters::default();
        for c in self.masters.values() {
            out.absorb(c);
        }
        out
    }

    /// The `n` busiest `(task, object)` pairs by check count, busiest
    /// first; ties break on the key, so the ranking is deterministic.
    #[must_use]
    pub fn hot_pairs(&self, n: usize) -> Vec<((u32, u16), CheckCounters)> {
        let mut all: Vec<_> = self.pairs.iter().map(|(k, v)| (*k, *v)).collect();
        all.sort_by(|a, b| b.1.checks().cmp(&a.1.checks()).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: u16) -> MasterId {
        MasterId(id)
    }

    #[test]
    fn counters_split_by_master_and_pair() {
        let mut a = CheckAttribution::new();
        a.granted(m(1), TaskId(7), ObjectId(0));
        a.granted(m(1), TaskId(7), ObjectId(0));
        a.granted(m(2), TaskId(7), ObjectId(1));
        a.denied(m(2), None);
        a.elided(m(1), TaskId(7), ObjectId(0));
        assert_eq!(a.masters[&1].granted, 2);
        assert_eq!(a.masters[&1].elided, 1);
        assert_eq!(a.masters[&2].denied, 1);
        assert_eq!(a.pairs[&(7, 0)].checks(), 3);
        // The provenance-free denial lands on the master only.
        assert_eq!(a.pairs.get(&(7, 1)).unwrap().denied, 0);
        let t = a.total();
        assert_eq!((t.granted, t.denied, t.elided), (3, 1, 1));
    }

    #[test]
    fn lookups_track_misses_and_stalls() {
        let mut a = CheckAttribution::new();
        a.lookup(m(0), TaskId(1), ObjectId(2), true, 0);
        a.lookup(m(0), TaskId(1), ObjectId(2), false, 9);
        let c = a.pairs[&(1, 2)];
        assert_eq!((c.hits, c.misses, c.stall_cycles), (1, 1, 9));
    }

    #[test]
    fn hot_pairs_rank_deterministically() {
        let mut a = CheckAttribution::new();
        for _ in 0..3 {
            a.granted(m(0), TaskId(2), ObjectId(0));
        }
        for _ in 0..3 {
            a.granted(m(0), TaskId(1), ObjectId(5));
        }
        a.granted(m(0), TaskId(9), ObjectId(9));
        let hot = a.hot_pairs(2);
        // Equal counts fall back to key order: (1,5) before (2,0).
        assert_eq!(hot[0].0, (1, 5));
        assert_eq!(hot[1].0, (2, 0));
        assert_eq!(a.hot_pairs(10).len(), 3);
    }
}
