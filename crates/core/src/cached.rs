//! A cache-backed CapChecker — the microarchitectural option of §5.2.3.
//!
//! "Alternatively, a CapChecker could be built as a cache backing a larger
//! in-memory table, similar to page table caching in IOMMUs/IOTLBs, but
//! with each entry holding a capability." The paper leaves this design
//! out of scope; this module builds it, because it changes the
//! area/latency trade-off the ablation benches explore:
//!
//! * the hardware holds only a small, fully-associative, LRU cache of
//!   decoded capabilities (tens of entries → far below 30 k LUTs);
//! * the full set lives in a memory-resident table that only the trusted
//!   driver can address; a cache miss costs a table walk (one memory
//!   round trip) but never an allocation stall — the capacity pressure
//!   that forces the fixed-table design to evict/stall disappears.
//!
//! The protection model is unchanged (same checks, same tag discipline,
//! same exception reporting), which is exactly why the paper could defer
//! it: this is performance engineering, not security.

use crate::config::{CheckerConfig, CheckerMode};
use cheri::Capability;
use hetsim::{Access, AccessKind, Cycles, Denial, DenyReason, ObjectId, TaskId};
use ioprotect::{GrantError, Granularity, IoProtection, MechanismProperties};
use std::collections::HashMap;
use std::fmt;

/// Configuration of the cached variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachedCheckerConfig {
    /// Hardware cache entries (fully associative, LRU).
    pub cache_entries: usize,
    /// Cycles a miss adds (fetch + decode of the in-memory entry).
    pub miss_penalty: Cycles,
    /// Provenance/addressing parameters shared with the fixed design.
    pub base: CheckerConfig,
}

impl Default for CachedCheckerConfig {
    fn default() -> CachedCheckerConfig {
        CachedCheckerConfig {
            cache_entries: 16,
            miss_penalty: 35,
            base: CheckerConfig::fine(),
        }
    }
}

pub use obs::stats::CacheStats;

/// The cache-backed CapChecker.
///
/// # Examples
///
/// ```
/// use capchecker::cached::{CachedCapChecker, CachedCheckerConfig};
/// use cheri::{Capability, Perms};
/// use hetsim::{Access, MasterId, ObjectId, TaskId};
/// use ioprotect::IoProtection;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut checker = CachedCapChecker::new(CachedCheckerConfig::default());
/// let cap = Capability::root().set_bounds(0x1000, 64)?.and_perms(Perms::RW)?;
/// checker.grant(TaskId(1), ObjectId(0), &cap)?;
///
/// let a = Access::read(MasterId(1), TaskId(1), 0x1000, 8).with_object(ObjectId(0));
/// checker.check(&a)?; // cold: table walk
/// checker.check(&a)?; // warm: cache hit
/// assert_eq!(checker.cache_stats().misses, 1);
/// assert_eq!(checker.cache_stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CachedCapChecker {
    config: CachedCheckerConfig,
    /// The memory-resident table (driver-owned; unbounded by hardware).
    backing: HashMap<(TaskId, ObjectId), Capability>,
    /// LRU cache: most recently used at the back.
    cache: Vec<(TaskId, ObjectId)>,
    stats: CacheStats,
    exception_flag: bool,
    exceptions: Vec<(TaskId, ObjectId)>,
}

impl CachedCapChecker {
    /// Builds the cached checker.
    #[must_use]
    pub fn new(config: CachedCheckerConfig) -> CachedCapChecker {
        CachedCapChecker {
            config,
            backing: HashMap::new(),
            cache: Vec::new(),
            stats: CacheStats::default(),
            exception_flag: false,
            exceptions: Vec::new(),
        }
    }

    /// Cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// The global exception flag.
    #[must_use]
    pub fn exception_flag(&self) -> bool {
        self.exception_flag
    }

    /// `(task, object)` pairs that have faulted.
    #[must_use]
    pub fn exceptions(&self) -> &[(TaskId, ObjectId)] {
        &self.exceptions
    }

    /// Capabilities resident in the backing table.
    #[must_use]
    pub fn backing_entries(&self) -> usize {
        self.backing.len()
    }

    /// Average added check latency given the observed miss ratio — what
    /// the ablation trades against the fixed table's area.
    #[must_use]
    pub fn effective_latency(&self) -> f64 {
        self.config.base.pipeline_latency as f64
            + self.stats.miss_ratio() * self.config.miss_penalty as f64
    }

    fn touch(&mut self, key: (TaskId, ObjectId)) -> bool {
        if let Some(pos) = self.cache.iter().position(|k| *k == key) {
            self.cache.remove(pos);
            self.cache.push(key);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            self.stats.miss_cycles += self.config.miss_penalty;
            if self.cache.len() >= self.config.cache_entries.max(1) {
                self.cache.remove(0);
            }
            self.cache.push(key);
            false
        }
    }

    fn deny(&mut self, access: &Access, object: Option<ObjectId>, reason: DenyReason) -> Denial {
        self.exception_flag = true;
        if let Some(obj) = object {
            self.exceptions.push((access.task, obj));
        }
        Denial {
            access: *access,
            reason,
        }
    }
}

impl IoProtection for CachedCapChecker {
    fn name(&self) -> &'static str {
        "CapChecker-Cached"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties::cheri()
    }

    fn granularity(&self) -> Granularity {
        match self.config.base.mode {
            CheckerMode::Fine => Granularity::Object,
            CheckerMode::Coarse => Granularity::Task,
        }
    }

    fn grant(
        &mut self,
        task: TaskId,
        object: ObjectId,
        cap: &Capability,
    ) -> Result<(), GrantError> {
        if !cap.is_valid() || cap.is_sealed() {
            return Err(GrantError::InvalidCapability);
        }
        // The backing table is memory-resident: no capacity stall, ever.
        self.backing.insert((task, object), *cap);
        Ok(())
    }

    fn revoke_task(&mut self, task: TaskId) {
        self.backing.retain(|(t, _), _| *t != task);
        // Shoot down cached entries (the IOTLB-invalidate analogue; skip
        // this and you get the Thunderclap-style stale-window bug).
        self.cache.retain(|(t, _)| *t != task);
    }

    fn check(&mut self, access: &Access) -> Result<(), Denial> {
        let (object, phys) = match self.config.base.mode {
            CheckerMode::Fine => match access.object {
                Some(obj) => (obj, access.addr),
                None => return Err(self.deny(access, None, DenyReason::BadProvenance)),
            },
            CheckerMode::Coarse => {
                let (obj, phys) = self.config.base.coarse_split_address(access.addr);
                (ObjectId(obj), phys)
            }
        };
        let Some(cap) = self.backing.get(&(access.task, object)).copied() else {
            return Err(self.deny(access, Some(object), DenyReason::NoEntry));
        };
        self.touch((access.task, object));
        let needed = match access.kind {
            AccessKind::Read => cheri::Perms::LOAD,
            AccessKind::Write => cheri::Perms::STORE,
        };
        match cap.check_access(phys, access.len, needed) {
            Ok(()) => Ok(()),
            Err(fault) => Err(self.deny(access, Some(object), DenyReason::Capability(fault))),
        }
    }

    fn entries_in_use(&self) -> usize {
        self.config.cache_entries.min(self.backing.len())
    }

    fn translate(&self, addr: u64) -> u64 {
        match self.config.base.mode {
            CheckerMode::Fine => addr,
            CheckerMode::Coarse => self.config.base.coarse_split_address(addr).1,
        }
    }
}

impl fmt::Display for CachedCapChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CachedCapChecker[{}] {} backing entries, {:.1}% miss ratio",
            self.config.base.mode.label(),
            self.backing.len(),
            self.stats.miss_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Perms;
    use hetsim::MasterId;

    fn rw(base: u64, len: u64) -> Capability {
        Capability::root()
            .set_bounds(base, len)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap()
    }

    fn read(task: u32, addr: u64, obj: u16) -> Access {
        Access::read(MasterId(1), TaskId(task), addr, 4).with_object(ObjectId(obj))
    }

    #[test]
    fn no_capacity_stall_even_past_256_entries() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        for i in 0..1000u32 {
            c.grant(TaskId(i), ObjectId(0), &rw(u64::from(i) * 64, 64))
                .unwrap();
        }
        assert_eq!(c.backing_entries(), 1000);
        // And every one of them is checkable.
        assert!(c.check(&read(999, 999 * 64, 0)).is_ok());
        assert!(c.check(&read(0, 0, 0)).is_ok());
    }

    #[test]
    fn lru_keeps_the_hot_set() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig {
            cache_entries: 2,
            ..CachedCheckerConfig::default()
        });
        for i in 0..3u32 {
            c.grant(TaskId(i), ObjectId(0), &rw(u64::from(i) * 64, 64))
                .unwrap();
        }
        c.check(&read(0, 0, 0)).unwrap(); // miss
        c.check(&read(0, 4, 0)).unwrap(); // hit
        c.check(&read(1, 64, 0)).unwrap(); // miss
        c.check(&read(2, 128, 0)).unwrap(); // miss (evicts task 0)
        c.check(&read(0, 8, 0)).unwrap(); // miss again
        let s = c.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 4));
        assert!(s.miss_ratio() > 0.5);
    }

    #[test]
    fn security_is_identical_to_the_fixed_table() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        c.grant(TaskId(1), ObjectId(0), &rw(0x1000, 64)).unwrap();
        // Bounds violation.
        let denial = c.check(&read(1, 0x2000, 0)).unwrap_err();
        assert!(matches!(denial.reason, DenyReason::Capability(_)));
        assert!(c.exception_flag());
        assert_eq!(c.exceptions(), &[(TaskId(1), ObjectId(0))]);
        // Wrong task.
        assert_eq!(
            c.check(&read(2, 0x1000, 0)).unwrap_err().reason,
            DenyReason::NoEntry
        );
        // Sealed capabilities rejected at import.
        let sealed = Capability::root().seal(9).unwrap();
        assert_eq!(
            c.grant(TaskId(1), ObjectId(1), &sealed),
            Err(GrantError::InvalidCapability)
        );
    }

    #[test]
    fn revoke_shoots_down_cached_entries() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        c.grant(TaskId(1), ObjectId(0), &rw(0x1000, 64)).unwrap();
        c.check(&read(1, 0x1000, 0)).unwrap(); // cache it
        c.revoke_task(TaskId(1));
        // The cached copy must not outlive the grant.
        assert_eq!(
            c.check(&read(1, 0x1000, 0)).unwrap_err().reason,
            DenyReason::NoEntry
        );
        assert_eq!(c.backing_entries(), 0);
    }

    #[test]
    fn effective_latency_tracks_miss_ratio() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig {
            cache_entries: 1,
            miss_penalty: 40,
            base: CheckerConfig::fine(),
        });
        c.grant(TaskId(1), ObjectId(0), &rw(0, 64)).unwrap();
        c.grant(TaskId(1), ObjectId(1), &rw(64, 64)).unwrap();
        // Alternate: every access misses.
        for _ in 0..8 {
            c.check(&read(1, 0, 0)).unwrap();
            c.check(&read(1, 64, 1)).unwrap();
        }
        assert!(c.effective_latency() > 40.0);
    }

    #[test]
    fn coarse_mode_translation_works_too() {
        let cfg = CachedCheckerConfig {
            base: CheckerConfig::coarse(),
            ..Default::default()
        };
        let mut c = CachedCapChecker::new(cfg);
        c.grant(TaskId(1), ObjectId(3), &rw(0x4000, 64)).unwrap();
        let tagged = cfg.base.coarse_tag_address(3, 0x4010);
        let a = Access::read(MasterId(1), TaskId(1), tagged, 4);
        assert!(c.check(&a).is_ok());
        assert_eq!(c.translate(tagged), 0x4010);
    }
}
