//! A cache-backed CapChecker — the microarchitectural option of §5.2.3.
//!
//! "Alternatively, a CapChecker could be built as a cache backing a larger
//! in-memory table, similar to page table caching in IOMMUs/IOTLBs, but
//! with each entry holding a capability." The paper leaves this design
//! out of scope; this module builds it, because it changes the
//! area/latency trade-off the ablation benches explore:
//!
//! * the hardware holds only a small, fully-associative, LRU cache of
//!   decoded capabilities (tens of entries → far below 30 k LUTs);
//! * the full set lives in a memory-resident table that only the trusted
//!   driver can address; a cache miss costs a table walk (one memory
//!   round trip) but never an allocation stall — the capacity pressure
//!   that forces the fixed-table design to evict/stall disappears.
//!
//! The protection model is unchanged (same checks, same tag discipline,
//! same exception reporting), which is exactly why the paper could defer
//! it: this is performance engineering, not security.

use crate::attrib::CheckAttribution;
use crate::config::{CheckerConfig, CheckerMode};
use crate::elide::{StaticVerdictMap, VerdictBitmap};
use cheri::Capability;
use hetsim::{Access, AccessKind, Cycles, Denial, DenyReason, ObjectId, TaskId};
use ioprotect::{GrantError, Granularity, IoProtection, MechanismProperties};
use std::collections::HashMap;
use std::fmt;

/// Configuration of the cached variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachedCheckerConfig {
    /// Hardware cache entries (fully associative, LRU).
    pub cache_entries: usize,
    /// Cycles a miss adds (fetch + decode of the in-memory entry).
    pub miss_penalty: Cycles,
    /// Provenance/addressing parameters shared with the fixed design.
    pub base: CheckerConfig,
}

impl CachedCheckerConfig {
    /// This configuration with the provenance mode replaced — what the
    /// adaptive controller rebuilds the checker with on a Fine ⇄ Coarse
    /// switch (cache geometry is a hardware property and carries over).
    #[must_use]
    pub fn with_mode(mut self, mode: CheckerMode) -> CachedCheckerConfig {
        self.base.mode = mode;
        self
    }
}

impl Default for CachedCheckerConfig {
    fn default() -> CachedCheckerConfig {
        CachedCheckerConfig {
            cache_entries: 16,
            miss_penalty: 35,
            base: CheckerConfig::fine(),
        }
    }
}

pub use obs::stats::CacheStats;

/// Architectural state of a [`CachedCapChecker`] captured by
/// [`CachedCapChecker::snapshot`]: the backing table (sorted by
/// `(task, object)` so snapshots of equal state are byte-equal), the
/// exception trace, and the latched global flag.
///
/// The cache itself is *not* captured: it is a microarchitectural
/// accelerator whose contents never change a verdict, so a restored
/// checker simply starts cold. Counters, attribution, armed fault
/// injections, and static-verdict maps are likewise excluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedCheckerSnapshot {
    /// Backing-table entries, sorted by `(task, object)`.
    pub entries: Vec<(TaskId, ObjectId, Capability)>,
    /// `(task, object)` pairs that have faulted, in fault order.
    pub exceptions: Vec<(TaskId, ObjectId)>,
    /// The latched global exception flag.
    pub exception_flag: bool,
}

/// One hardware cache line: the compressed capability image plus an
/// integrity checksum over it.
///
/// Holding the image (not just the key) is what makes the line a real
/// microarchitectural asset: a bit flip in the cache SRAM corrupts the
/// capability the checker would enforce. The checksum is the detection
/// story — verified on every hit, and a mismatch is a fail-stop denial
/// ([`DenyReason::InvalidTag`]) that also signals the driver to degrade
/// to the uncached design.
#[derive(Clone, Copy, Debug)]
struct CacheLine {
    key: (TaskId, ObjectId),
    /// Compressed 128-bit capability image, as the SRAM would hold it.
    bits: u128,
    checksum: u64,
}

fn line_checksum(key: (TaskId, ObjectId), bits: u128) -> u64 {
    // FNV-1a over the key and image; any storage bit flip misses this
    // unless the flip is itself crafted, which SRAM noise is not.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in key.0 .0.to_le_bytes() {
        step(b);
    }
    for b in key.1 .0.to_le_bytes() {
        step(b);
    }
    for b in bits.to_le_bytes() {
        step(b);
    }
    h
}

/// The cache-backed CapChecker.
///
/// # Examples
///
/// ```
/// use capchecker::cached::{CachedCapChecker, CachedCheckerConfig};
/// use cheri::{Capability, Perms};
/// use hetsim::{Access, MasterId, ObjectId, TaskId};
/// use ioprotect::IoProtection;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut checker = CachedCapChecker::new(CachedCheckerConfig::default());
/// let cap = Capability::root().set_bounds(0x1000, 64)?.and_perms(Perms::RW)?;
/// checker.grant(TaskId(1), ObjectId(0), &cap)?;
///
/// let a = Access::read(MasterId(1), TaskId(1), 0x1000, 8).with_object(ObjectId(0));
/// checker.check(&a)?; // cold: table walk
/// checker.check(&a)?; // warm: cache hit
/// assert_eq!(checker.cache_stats().misses, 1);
/// assert_eq!(checker.cache_stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CachedCapChecker {
    config: CachedCheckerConfig,
    /// The memory-resident table (driver-owned; unbounded by hardware).
    backing: HashMap<(TaskId, ObjectId), Capability>,
    /// LRU cache: most recently used at the back.
    cache: Vec<CacheLine>,
    stats: CacheStats,
    exception_flag: bool,
    exceptions: Vec<(TaskId, ObjectId)>,
    /// Fault-injection: bits to flip in the next inserted line's image.
    poison_next: Option<u128>,
    static_verdicts: Option<StaticVerdictMap>,
    /// Invariant: always equals `VerdictBitmap::build` of `static_verdicts`
    /// (empty when no map is installed) — the branch-free image the beat
    /// path consults instead of walking the map.
    verdict_bits: VerdictBitmap,
    attrib: Option<CheckAttribution>,
}

impl CachedCapChecker {
    /// Builds the cached checker.
    #[must_use]
    pub fn new(config: CachedCheckerConfig) -> CachedCapChecker {
        CachedCapChecker {
            config,
            backing: HashMap::new(),
            cache: Vec::new(),
            stats: CacheStats::default(),
            exception_flag: false,
            exceptions: Vec::new(),
            poison_next: None,
            static_verdicts: None,
            verdict_bits: VerdictBitmap::new(),
            attrib: None,
        }
    }

    /// Starts per-master / per-`(task, object)` check attribution,
    /// including hit/miss/stall accounting per capability pair.
    /// Off by default: the data path then pays one `None` test per check.
    pub fn enable_attribution(&mut self) {
        self.attrib = Some(CheckAttribution::new());
    }

    /// The attribution collected so far, if enabled.
    #[must_use]
    pub fn attribution(&self) -> Option<&CheckAttribution> {
        self.attrib.as_ref()
    }

    /// Installs a static verdict map: accesses on statically-safe
    /// `(task, object)` pairs bypass the cache and the table walk
    /// entirely, counted in [`CacheStats::elided`]. Elided accesses
    /// leave the LRU state untouched — the cache is reserved for the
    /// traffic that still needs judging.
    pub fn set_static_verdicts(&mut self, map: StaticVerdictMap) {
        self.verdict_bits = VerdictBitmap::build(&map);
        self.static_verdicts = Some(map);
    }

    /// Removes the verdict map; every beat is checked again. This is the
    /// invalidation hook the recovery/degradation paths call — the bitmap
    /// is dropped together with the map, atomically from the data path's
    /// point of view.
    pub fn clear_static_verdicts(&mut self) {
        self.static_verdicts = None;
        self.verdict_bits = VerdictBitmap::new();
    }

    /// The installed verdict map, if any.
    #[must_use]
    pub fn static_verdicts(&self) -> Option<&StaticVerdictMap> {
        self.static_verdicts.as_ref()
    }

    /// Captures the checker's architectural state for later
    /// [`restore`](CachedCapChecker::restore) — see
    /// [`CachedCheckerSnapshot`] for what is (and is not) captured.
    #[must_use]
    pub fn snapshot(&self) -> CachedCheckerSnapshot {
        let mut entries: Vec<(TaskId, ObjectId, Capability)> = self
            .backing
            .iter()
            .map(|(&(t, o), &cap)| (t, o, cap))
            .collect();
        entries.sort_by_key(|&(t, o, _)| (t.0, o.0));
        CachedCheckerSnapshot {
            entries,
            exceptions: self.exceptions.clone(),
            exception_flag: self.exception_flag,
        }
    }

    /// Restores architectural state captured by
    /// [`snapshot`](CachedCapChecker::snapshot). The cache comes back
    /// cold and counters restart from zero — timing changes, verdicts do
    /// not: every check after a restore returns exactly what the
    /// snapshotted checker would have returned.
    pub fn restore(&mut self, snap: &CachedCheckerSnapshot) {
        self.backing = snap
            .entries
            .iter()
            .map(|&(t, o, cap)| ((t, o), cap))
            .collect();
        self.cache.clear();
        self.exceptions = snap.exceptions.clone();
        self.exception_flag = snap.exception_flag;
        self.stats = CacheStats::default();
        self.poison_next = None;
    }

    /// `true` when the compiled [`VerdictBitmap`] equals
    /// `VerdictBitmap::build` of the installed map (or is empty when no
    /// map is installed) — the coherence invariant the model checker
    /// asserts at every explored state.
    #[must_use]
    pub fn verdicts_coherent(&self) -> bool {
        match &self.static_verdicts {
            Some(map) => self.verdict_bits == VerdictBitmap::build(map),
            None => self.verdict_bits.is_empty(),
        }
    }

    /// The configuration this checker was built with.
    #[must_use]
    pub fn config(&self) -> &CachedCheckerConfig {
        &self.config
    }

    /// Cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// The global exception flag.
    #[must_use]
    pub fn exception_flag(&self) -> bool {
        self.exception_flag
    }

    /// `(task, object)` pairs that have faulted.
    #[must_use]
    pub fn exceptions(&self) -> &[(TaskId, ObjectId)] {
        &self.exceptions
    }

    /// Capabilities resident in the backing table.
    #[must_use]
    pub fn backing_entries(&self) -> usize {
        self.backing.len()
    }

    /// Average added check latency given the observed miss ratio — what
    /// the ablation trades against the fixed table's area.
    #[must_use]
    pub fn effective_latency(&self) -> f64 {
        self.config.base.pipeline_latency as f64
            + self.stats.miss_ratio() * self.config.miss_penalty as f64
    }

    /// Clears the global exception flag (the driver's post-report reset,
    /// mirroring the fixed design's MMIO register write).
    pub fn clear_exception_flag(&mut self) {
        self.exception_flag = false;
    }

    /// Corruption detections so far (checksum failures on cache hits).
    #[must_use]
    pub fn corruption_detected(&self) -> u64 {
        self.stats.corruption_detected
    }

    /// Fault-injection hook: flips `flip` bits in the image of the cache
    /// line at `slot` (LRU order, 0 = coldest) without updating its
    /// checksum. Returns `false` when no such line exists.
    pub fn corrupt_cache_slot(&mut self, slot: usize, flip: u128) -> bool {
        match self.cache.get_mut(slot) {
            Some(line) if flip != 0 => {
                line.bits ^= flip;
                true
            }
            _ => false,
        }
    }

    /// Fault-injection hook: arms a bit flip that lands on the next line
    /// inserted into the cache (useful when the cache is still cold).
    pub fn corrupt_next_insert(&mut self, flip: u128) {
        if flip != 0 {
            self.poison_next = Some(flip);
        }
    }

    /// Looks `key` up in the cache, maintaining LRU order and hit/miss
    /// accounting. Returns the capability to enforce, or `Err(())` on an
    /// integrity failure (the line is dropped; the caller fail-stops).
    #[allow(clippy::result_unit_err)]
    fn lookup(&mut self, key: (TaskId, ObjectId)) -> Result<Option<Capability>, ()> {
        if let Some(pos) = self.cache.iter().position(|l| l.key == key) {
            let line = self.cache.remove(pos);
            if line.checksum != line_checksum(line.key, line.bits) {
                // Integrity failure: fail stop. The corrupted line is
                // dropped so it cannot be consulted again.
                self.stats.corruption_detected += 1;
                return Err(());
            }
            self.stats.hits += 1;
            self.cache.push(line);
            // Enforce the cached image, not the backing entry — that is
            // what hardware would do.
            return Ok(Some(line.bits_capability()));
        }
        let Some(cap) = self.backing.get(&key).copied() else {
            return Ok(None);
        };
        self.stats.misses += 1;
        self.stats.miss_cycles += self.config.miss_penalty;
        if self.cache.len() >= self.config.cache_entries.max(1) {
            self.cache.remove(0);
        }
        let mut bits = cap.compress().bits();
        if let Some(flip) = self.poison_next.take() {
            bits ^= flip;
        }
        self.cache.push(CacheLine {
            key,
            bits,
            // Checksum over the *uncorrupted* image: a poisoned insert
            // models the SRAM flipping after the line was written.
            checksum: line_checksum(key, cap.compress().bits()),
        });
        Ok(Some(cap))
    }

    /// The full check pipeline, returning the granted physical address.
    /// Shared by [`IoProtection::check`] and [`IoProtection::vet`]; in
    /// both provenance modes the returned address equals
    /// `self.translate(access.addr)`.
    #[inline]
    fn vet_inner(&mut self, access: &Access) -> Result<u64, Denial> {
        let (object, phys) = match self.config.base.mode {
            CheckerMode::Fine => match access.object {
                Some(obj) => (obj, access.addr),
                None => {
                    if let Some(a) = &mut self.attrib {
                        a.denied(access.master, None);
                    }
                    return Err(self.deny(access, None, DenyReason::BadProvenance));
                }
            },
            CheckerMode::Coarse => {
                let (obj, phys) = self.config.base.coarse_split_address(access.addr);
                (ObjectId(obj), phys)
            }
        };
        if self.verdict_bits.is_safe(access.task, object) {
            self.stats.elided += 1;
            if let Some(a) = &mut self.attrib {
                a.elided(access.master, access.task, object);
            }
            return Ok(phys);
        }
        // Attribute hit/miss from the stats deltas around the lookup, so
        // the attribution can never disagree with the counters.
        let (hits_before, stall_before) = (self.stats.hits, self.stats.miss_cycles);
        let looked = self.lookup((access.task, object));
        if let Some(a) = &mut self.attrib {
            if matches!(looked, Ok(Some(_))) {
                a.lookup(
                    access.master,
                    access.task,
                    object,
                    self.stats.hits > hits_before,
                    self.stats.miss_cycles - stall_before,
                );
            }
        }
        let cap = match looked {
            Ok(Some(cap)) => cap,
            Ok(None) => {
                if let Some(a) = &mut self.attrib {
                    a.denied(access.master, Some((access.task, object)));
                }
                return Err(self.deny(access, Some(object), DenyReason::NoEntry));
            }
            Err(()) => {
                if let Some(a) = &mut self.attrib {
                    a.denied(access.master, Some((access.task, object)));
                }
                return Err(self.deny(access, Some(object), DenyReason::InvalidTag));
            }
        };
        let needed = match access.kind {
            AccessKind::Read => cheri::Perms::LOAD,
            AccessKind::Write => cheri::Perms::STORE,
        };
        match cap.check_access(phys, access.len, needed) {
            Ok(()) => {
                if let Some(a) = &mut self.attrib {
                    a.granted(access.master, access.task, object);
                }
                Ok(phys)
            }
            Err(fault) => {
                if let Some(a) = &mut self.attrib {
                    a.denied(access.master, Some((access.task, object)));
                }
                Err(self.deny(access, Some(object), DenyReason::Capability(fault)))
            }
        }
    }

    fn deny(&mut self, access: &Access, object: Option<ObjectId>, reason: DenyReason) -> Denial {
        if let Some(obj) = object {
            self.exceptions.push((access.task, obj));
        }
        crate::exception::latch_denial(
            &mut self.exception_flag,
            &mut self.stats.denied,
            access,
            reason,
        )
    }
}

impl CacheLine {
    fn bits_capability(self) -> Capability {
        cheri::CompressedCapability::from_bits(self.bits).decode(true)
    }
}

impl IoProtection for CachedCapChecker {
    fn name(&self) -> &'static str {
        "CapChecker-Cached"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties::cheri()
    }

    fn granularity(&self) -> Granularity {
        match self.config.base.mode {
            CheckerMode::Fine => Granularity::Object,
            CheckerMode::Coarse => Granularity::Task,
        }
    }

    fn grant(
        &mut self,
        task: TaskId,
        object: ObjectId,
        cap: &Capability,
    ) -> Result<(), GrantError> {
        if !cap.is_valid() || cap.is_sealed() {
            return Err(GrantError::InvalidCapability);
        }
        // The backing table is memory-resident: no capacity stall, ever.
        self.backing.insert((task, object), *cap);
        // A re-grant must not leave a stale image in the cache.
        self.cache.retain(|l| l.key != (task, object));
        Ok(())
    }

    fn revoke_task(&mut self, task: TaskId) {
        self.backing.retain(|(t, _), _| *t != task);
        // Shoot down cached entries (the IOTLB-invalidate analogue; skip
        // this and you get the Thunderclap-style stale-window bug).
        self.cache.retain(|l| l.key.0 != task);
    }

    fn check(&mut self, access: &Access) -> Result<(), Denial> {
        self.vet_inner(access).map(|_| ())
    }

    fn entries_in_use(&self) -> usize {
        self.config.cache_entries.min(self.backing.len())
    }

    fn translate(&self, addr: u64) -> u64 {
        match self.config.base.mode {
            CheckerMode::Fine => addr,
            CheckerMode::Coarse => self.config.base.coarse_split_address(addr).1,
        }
    }

    #[inline]
    fn vet(&mut self, access: &Access) -> Result<u64, Denial> {
        self.vet_inner(access)
    }
}

impl fmt::Display for CachedCapChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CachedCapChecker[{}] {} backing entries, {:.1}% miss ratio",
            self.config.base.mode.label(),
            self.backing.len(),
            self.stats.miss_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Perms;
    use hetsim::MasterId;

    fn rw(base: u64, len: u64) -> Capability {
        Capability::root()
            .set_bounds(base, len)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap()
    }

    fn read(task: u32, addr: u64, obj: u16) -> Access {
        Access::read(MasterId(1), TaskId(task), addr, 4).with_object(ObjectId(obj))
    }

    #[test]
    fn static_verdicts_bypass_cache_and_leave_lru_untouched() {
        use crate::elide::{StaticVerdict, StaticVerdictMap};
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        c.grant(TaskId(1), ObjectId(0), &rw(0x1000, 64)).unwrap();
        c.grant(TaskId(1), ObjectId(1), &rw(0x2000, 64)).unwrap();
        let mut map = StaticVerdictMap::new();
        map.set(TaskId(1), ObjectId(0), StaticVerdict::Safe);
        c.set_static_verdicts(map);

        // Safe pair: no walk, no cache traffic, one elision.
        assert!(c.check(&read(1, 0x1000, 0)).is_ok());
        let s = c.cache_stats();
        assert_eq!((s.elided, s.hits, s.misses), (1, 0, 0));

        // Dynamic pair still walks and caches as before.
        assert!(c.check(&read(1, 0x2000, 1)).is_ok());
        assert!(c.check(&read(1, 0x2000, 1)).is_ok());
        let s = c.cache_stats();
        assert_eq!((s.elided, s.hits, s.misses), (1, 1, 1));
    }

    #[test]
    fn elision_is_immune_to_cache_corruption() {
        use crate::elide::{StaticVerdict, StaticVerdictMap};
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        c.grant(TaskId(1), ObjectId(0), &rw(0x1000, 64)).unwrap();
        // Warm the line, then corrupt it.
        assert!(c.check(&read(1, 0x1000, 0)).is_ok());
        assert!(c.corrupt_cache_slot(0, 1));
        // With a safe verdict the corrupt line is never consulted: the
        // check it would have served was redundant by proof.
        let mut map = StaticVerdictMap::new();
        map.set(TaskId(1), ObjectId(0), StaticVerdict::Safe);
        c.set_static_verdicts(map);
        assert!(c.check(&read(1, 0x1000, 0)).is_ok());
        assert_eq!(c.corruption_detected(), 0);
        // Dropping the map re-exposes the corruption as a fail-stop.
        c.clear_static_verdicts();
        let denial = c.check(&read(1, 0x1000, 0)).unwrap_err();
        assert_eq!(denial.reason, DenyReason::InvalidTag);
        assert_eq!(c.corruption_detected(), 1);
    }

    #[test]
    fn no_capacity_stall_even_past_256_entries() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        for i in 0..1000u32 {
            c.grant(TaskId(i), ObjectId(0), &rw(u64::from(i) * 64, 64))
                .unwrap();
        }
        assert_eq!(c.backing_entries(), 1000);
        // And every one of them is checkable.
        assert!(c.check(&read(999, 999 * 64, 0)).is_ok());
        assert!(c.check(&read(0, 0, 0)).is_ok());
    }

    #[test]
    fn lru_keeps_the_hot_set() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig {
            cache_entries: 2,
            ..CachedCheckerConfig::default()
        });
        for i in 0..3u32 {
            c.grant(TaskId(i), ObjectId(0), &rw(u64::from(i) * 64, 64))
                .unwrap();
        }
        c.check(&read(0, 0, 0)).unwrap(); // miss
        c.check(&read(0, 4, 0)).unwrap(); // hit
        c.check(&read(1, 64, 0)).unwrap(); // miss
        c.check(&read(2, 128, 0)).unwrap(); // miss (evicts task 0)
        c.check(&read(0, 8, 0)).unwrap(); // miss again
        let s = c.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 4));
        assert!(s.miss_ratio() > 0.5);
    }

    #[test]
    fn security_is_identical_to_the_fixed_table() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        c.grant(TaskId(1), ObjectId(0), &rw(0x1000, 64)).unwrap();
        // Bounds violation.
        let denial = c.check(&read(1, 0x2000, 0)).unwrap_err();
        assert!(matches!(denial.reason, DenyReason::Capability(_)));
        assert!(c.exception_flag());
        assert_eq!(c.exceptions(), &[(TaskId(1), ObjectId(0))]);
        // Wrong task.
        assert_eq!(
            c.check(&read(2, 0x1000, 0)).unwrap_err().reason,
            DenyReason::NoEntry
        );
        // Sealed capabilities rejected at import.
        let sealed = Capability::root().seal(9).unwrap();
        assert_eq!(
            c.grant(TaskId(1), ObjectId(1), &sealed),
            Err(GrantError::InvalidCapability)
        );
    }

    #[test]
    fn revoke_shoots_down_cached_entries() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        c.grant(TaskId(1), ObjectId(0), &rw(0x1000, 64)).unwrap();
        c.check(&read(1, 0x1000, 0)).unwrap(); // cache it
        c.revoke_task(TaskId(1));
        // The cached copy must not outlive the grant.
        assert_eq!(
            c.check(&read(1, 0x1000, 0)).unwrap_err().reason,
            DenyReason::NoEntry
        );
        assert_eq!(c.backing_entries(), 0);
    }

    #[test]
    fn effective_latency_tracks_miss_ratio() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig {
            cache_entries: 1,
            miss_penalty: 40,
            base: CheckerConfig::fine(),
        });
        c.grant(TaskId(1), ObjectId(0), &rw(0, 64)).unwrap();
        c.grant(TaskId(1), ObjectId(1), &rw(64, 64)).unwrap();
        // Alternate: every access misses.
        for _ in 0..8 {
            c.check(&read(1, 0, 0)).unwrap();
            c.check(&read(1, 64, 1)).unwrap();
        }
        assert!(c.effective_latency() > 40.0);
    }

    #[test]
    fn corrupted_line_is_a_fail_stop_denial() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        c.grant(TaskId(1), ObjectId(0), &rw(0x1000, 64)).unwrap();
        c.check(&read(1, 0x1000, 0)).unwrap(); // warm the line
        assert!(c.corrupt_cache_slot(0, 1 << 70));
        let denial = c.check(&read(1, 0x1000, 0)).unwrap_err();
        assert_eq!(denial.reason, DenyReason::InvalidTag);
        assert_eq!(c.corruption_detected(), 1);
        assert!(c.exception_flag());
        // The corrupted line was dropped: the next check walks the table
        // and succeeds again — security never depended on the cache.
        assert!(c.check(&read(1, 0x1000, 0)).is_ok());
        assert_eq!(c.cache_stats().denied, 1);
    }

    #[test]
    fn poisoned_insert_is_caught_on_first_hit() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        c.grant(TaskId(1), ObjectId(0), &rw(0x1000, 64)).unwrap();
        c.corrupt_next_insert(0xFF);
        c.check(&read(1, 0x1000, 0)).unwrap(); // miss: inserts poisoned line
        let denial = c.check(&read(1, 0x1000, 0)).unwrap_err();
        assert_eq!(denial.reason, DenyReason::InvalidTag);
        assert_eq!(c.corruption_detected(), 1);
    }

    #[test]
    fn corrupt_hooks_are_noops_without_targets() {
        let mut c = CachedCapChecker::new(CachedCheckerConfig::default());
        assert!(!c.corrupt_cache_slot(0, 1)); // empty cache
        c.grant(TaskId(1), ObjectId(0), &rw(0x1000, 64)).unwrap();
        c.check(&read(1, 0x1000, 0)).unwrap();
        assert!(!c.corrupt_cache_slot(5, 1)); // no such slot
        assert!(!c.corrupt_cache_slot(0, 0)); // zero flip mask
        assert!(c.check(&read(1, 0x1000, 0)).is_ok());
        assert_eq!(c.corruption_detected(), 0);
    }

    #[test]
    fn coarse_mode_translation_works_too() {
        let cfg = CachedCheckerConfig {
            base: CheckerConfig::coarse(),
            ..Default::default()
        };
        let mut c = CachedCapChecker::new(cfg);
        c.grant(TaskId(1), ObjectId(3), &rw(0x4000, 64)).unwrap();
        let tagged = cfg.base.coarse_tag_address(3, 0x4010);
        let a = Access::read(MasterId(1), TaskId(1), tagged, 4);
        assert!(c.check(&a).is_ok());
        assert_eq!(c.translate(tagged), 0x4010);
    }
}
