//! The CapChecker itself — Figure 5's hardware block.
//!
//! The checker sits between the accelerator functional units and the
//! memory controller. It holds imported capabilities in a
//! [`CapabilityTable`], decodes them, and vets every DMA request:
//!
//! 1. recover the object identity (port metadata in *Fine* mode, top
//!    address bits in *Coarse* mode);
//! 2. fetch and decode the `(task, object)` capability;
//! 3. check tag, permissions, and bounds;
//! 4. grant — or raise an exception: set the global flag, set the entry's
//!    exception bit, and refuse the request.
//!
//! Writes that *are* granted still clear memory tags downstream (the
//! system's write path is capability-unaware), which is what makes
//! capability forging by DMA impossible.
//!
//! Capabilities arrive from the CHERI CPU over a dedicated capability
//! interconnect, exposed here as an MMIO register map ([`regs`]).

use crate::attrib::CheckAttribution;
use crate::config::{CheckerConfig, CheckerMode};
use crate::elide::{StaticVerdictMap, VerdictBitmap};
use crate::table::{CapabilityTable, TableEntry};
use cheri::{Capability, CompressedCapability, Perms};
use hetsim::mmio::MmioDevice;
use hetsim::{Access, AccessKind, Denial, DenyReason, ObjectId, TaskId};
use ioprotect::{GrantError, Granularity, IoProtection, MechanismProperties};
use std::fmt;

/// MMIO register offsets of the capability-import interface.
pub mod regs {
    /// Write: low 64 bits of the staged compressed capability.
    pub const CAP_LO: u64 = 0x00;
    /// Write: high 64 bits (the address field).
    pub const CAP_HI: u64 = 0x08;
    /// Write: staged tag (bit 0).
    pub const TAG: u64 = 0x10;
    /// Write: staged task ID.
    pub const TASK: u64 = 0x18;
    /// Write: staged object ID.
    pub const OBJECT: u64 = 0x20;
    /// Write: commit the staged capability; read: last commit status.
    pub const COMMIT: u64 = 0x28;
    /// Read: global exception flag; write: clear it.
    pub const EXCEPTION: u64 = 0x30;
    /// Write: evict every entry of the given task ID.
    pub const EVICT_TASK: u64 = 0x38;
    /// Read: occupied entry count.
    pub const OCCUPANCY: u64 = 0x40;
    /// Read: requests granted since reset (hardware performance counter).
    pub const GRANTED: u64 = 0x48;
    /// Read: requests denied since reset.
    pub const DENIED: u64 = 0x50;
    /// Read: capability installs since reset.
    pub const INSTALLS: u64 = 0x58;

    /// COMMIT status: installed.
    pub const STATUS_OK: u64 = 0;
    /// COMMIT status: table full (allocation must stall or evict).
    pub const STATUS_FULL: u64 = 1;
    /// COMMIT status: staged capability was invalid (tag clear or sealed).
    pub const STATUS_INVALID: u64 = 2;
}

pub use obs::stats::CheckerStats;

/// Architectural state of a [`CapChecker`] captured by
/// [`CapChecker::snapshot`]: the table contents (in slot order, with
/// per-entry exception bits) plus the latched global exception flag.
///
/// Performance counters, MMIO staging, attribution, and any installed
/// static-verdict map are *not* captured — a snapshot records what the
/// checker enforces, not how fast or why. The bounded model checker
/// forks thousands of these per run, so they stay small on purpose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckerSnapshot {
    /// Occupied entries in slot order: task, object, capability, and the
    /// entry's exception bit.
    pub entries: Vec<(TaskId, ObjectId, Capability, bool)>,
    /// The latched global exception flag.
    pub exception_flag: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct Staging {
    lo: u64,
    hi: u64,
    tag: bool,
    task: u32,
    object: u16,
    status: u64,
}

/// The CAPability Checker.
///
/// # Examples
///
/// ```
/// use capchecker::{CapChecker, CheckerConfig};
/// use cheri::{Capability, Perms};
/// use hetsim::{Access, MasterId, ObjectId, TaskId};
/// use ioprotect::IoProtection;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut checker = CapChecker::new(CheckerConfig::fine());
/// let cap = Capability::root().set_bounds(0x1000, 256)?.and_perms(Perms::RW)?;
/// checker.grant(TaskId(1), ObjectId(0), &cap)?;
///
/// let ok = Access::read(MasterId(1), TaskId(1), 0x1000, 16).with_object(ObjectId(0));
/// assert!(checker.check(&ok).is_ok());
///
/// let oob = Access::read(MasterId(1), TaskId(1), 0x1100, 16).with_object(ObjectId(0));
/// assert!(checker.check(&oob).is_err());
/// assert!(checker.exception_flag());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CapChecker {
    config: CheckerConfig,
    table: CapabilityTable,
    staging: Staging,
    exception_flag: bool,
    stats: CheckerStats,
    static_verdicts: Option<StaticVerdictMap>,
    /// `static_verdicts` compiled to per-task bit words — the branch-free
    /// elision test on the beat path. Invariant: always equal to
    /// `VerdictBitmap::build` of the installed map (empty when none), so
    /// elision decisions and counters match the map-walk semantics
    /// byte-for-byte.
    verdict_bits: VerdictBitmap,
    attrib: Option<CheckAttribution>,
}

impl CapChecker {
    /// Builds a checker with the given hardware configuration.
    #[must_use]
    pub fn new(config: CheckerConfig) -> CapChecker {
        CapChecker {
            table: CapabilityTable::new(config.entries),
            config,
            staging: Staging::default(),
            exception_flag: false,
            stats: CheckerStats::default(),
            static_verdicts: None,
            verdict_bits: VerdictBitmap::new(),
            attrib: None,
        }
    }

    /// Starts per-master / per-`(task, object)` check attribution.
    /// Off by default: the data path then pays one `None` test per check.
    pub fn enable_attribution(&mut self) {
        self.attrib = Some(CheckAttribution::new());
    }

    /// The attribution collected so far, if enabled.
    #[must_use]
    pub fn attribution(&self) -> Option<&CheckAttribution> {
        self.attrib.as_ref()
    }

    /// Installs a static verdict map: per-beat checks are skipped for
    /// `(task, object)` pairs the analyzer proved safe, each skip
    /// counted in [`CheckerStats::elided`]. Unsafe and dynamic pairs
    /// are judged exactly as before.
    ///
    /// The map is compiled to a [`VerdictBitmap`] here, once, so the
    /// beat path tests a bit word instead of walking the map.
    pub fn set_static_verdicts(&mut self, map: StaticVerdictMap) {
        self.verdict_bits = VerdictBitmap::build(&map);
        self.static_verdicts = Some(map);
    }

    /// Removes the verdict map (and its compiled bitmap); every beat is
    /// checked again. This is the invalidation hook the recovery and
    /// degradation paths use — dropping the map without dropping the
    /// bitmap would keep eliding from a stale proof.
    pub fn clear_static_verdicts(&mut self) {
        self.static_verdicts = None;
        self.verdict_bits = VerdictBitmap::new();
    }

    /// The installed verdict map, if any.
    #[must_use]
    pub fn static_verdicts(&self) -> Option<&StaticVerdictMap> {
        self.static_verdicts.as_ref()
    }

    /// Captures the checker's architectural state for later
    /// [`restore`](CapChecker::restore) — the fork half of the model
    /// checker's fork-and-explore loop. See [`CheckerSnapshot`] for what
    /// is (and is not) captured.
    #[must_use]
    pub fn snapshot(&self) -> CheckerSnapshot {
        CheckerSnapshot {
            entries: self
                .table
                .iter()
                .map(|e| (e.task, e.object, e.capability, e.exception))
                .collect(),
            exception_flag: self.exception_flag,
        }
    }

    /// Restores architectural state captured by
    /// [`snapshot`](CapChecker::snapshot): the table is rebuilt entry for
    /// entry (exception bits included) and the global flag is reloaded.
    /// Counters restart from zero and the MMIO staging area is cleared;
    /// verdicts from the restored state are bit-for-bit those the
    /// snapshotted checker would have produced.
    pub fn restore(&mut self, snap: &CheckerSnapshot) {
        self.table = CapabilityTable::new(self.config.entries);
        for &(task, object, cap, exception) in &snap.entries {
            self.table.install(task, object, cap);
            if exception {
                self.table.mark_exception(task, object);
            }
        }
        self.exception_flag = snap.exception_flag;
        self.staging = Staging::default();
        self.stats = CheckerStats::default();
    }

    /// `true` when the compiled [`VerdictBitmap`] equals
    /// `VerdictBitmap::build` of the installed map (or is empty when no
    /// map is installed) — the coherence invariant the model checker
    /// asserts at every explored state.
    #[must_use]
    pub fn verdicts_coherent(&self) -> bool {
        match &self.static_verdicts {
            Some(map) => self.verdict_bits == VerdictBitmap::build(map),
            None => self.verdict_bits.is_empty(),
        }
    }

    /// The hardware configuration.
    #[must_use]
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// The provenance mode.
    #[must_use]
    pub fn mode(&self) -> CheckerMode {
        self.config.mode
    }

    /// The global exception flag (the CPU polls this).
    #[must_use]
    pub fn exception_flag(&self) -> bool {
        self.exception_flag
    }

    /// Clears the global exception flag.
    pub fn clear_exception_flag(&mut self) {
        self.exception_flag = false;
    }

    /// Data-path counters.
    #[must_use]
    pub fn stats(&self) -> CheckerStats {
        self.stats
    }

    /// Read access to the capability table (audits, Figure 12 counting).
    #[must_use]
    pub fn table(&self) -> &CapabilityTable {
        &self.table
    }

    /// Entries of `task` whose exception bit is set — the software trace
    /// of which pointer misbehaved.
    pub fn exception_entries(&self, task: TaskId) -> Vec<TableEntry> {
        self.table.exceptions_for(task).copied().collect()
    }

    /// The physical address a granted request should use (strips the
    /// Coarse object bits; identity in Fine mode).
    #[must_use]
    pub fn physical_address(&self, addr: u64) -> u64 {
        match self.config.mode {
            CheckerMode::Fine => addr,
            CheckerMode::Coarse => self.config.coarse_split_address(addr).1,
        }
    }

    fn required_perms(kind: AccessKind) -> Perms {
        match kind {
            AccessKind::Read => Perms::LOAD,
            AccessKind::Write => Perms::STORE,
        }
    }

    fn deny(&mut self, access: &Access, object: Option<ObjectId>, reason: DenyReason) -> Denial {
        if let Some(obj) = object {
            self.table.mark_exception(access.task, obj);
        }
        crate::exception::latch_denial(
            &mut self.exception_flag,
            &mut self.stats.denied,
            access,
            reason,
        )
    }

    fn resolve_object(&self, access: &Access) -> Result<(ObjectId, u64), DenyReason> {
        match self.config.mode {
            CheckerMode::Fine => match access.object {
                Some(obj) => Ok((obj, access.addr)),
                // Fine hardware cannot check a request with no provenance.
                None => Err(DenyReason::BadProvenance),
            },
            CheckerMode::Coarse => {
                let (obj, phys) = self.config.coarse_split_address(access.addr);
                Ok((ObjectId(obj), phys))
            }
        }
    }

    /// The full check pipeline, returning the granted request's physical
    /// address. Both [`IoProtection::check`] and [`IoProtection::vet`]
    /// are thin wrappers over this, so the one-call and two-call paths
    /// cannot diverge in verdicts, counters, or exception latching.
    ///
    /// The returned address equals `translate(access.addr)`: in Fine mode
    /// both are the identity, and in Coarse mode `resolve_object` and
    /// `translate` strip the same object bits.
    #[inline]
    fn vet_inner(&mut self, access: &Access) -> Result<u64, Denial> {
        let (object, phys) = match self.resolve_object(access) {
            Ok(pair) => pair,
            Err(reason) => {
                if let Some(a) = &mut self.attrib {
                    a.denied(access.master, None);
                }
                return Err(self.deny(access, None, reason));
            }
        };
        // Elision gate: provenance is already resolved, so a safe verdict
        // covers exactly the stream the analyzer classified. Unresolved
        // (no-provenance) requests never reach this point and are denied
        // above regardless of any verdict. The verdict itself is a
        // branch-free bitmap test — the bitmap is kept equal to the
        // installed map, and an empty bitmap (no map) marks nothing safe.
        if self.verdict_bits.is_safe(access.task, object) {
            self.stats.elided += 1;
            if let Some(a) = &mut self.attrib {
                a.elided(access.master, access.task, object);
            }
            return Ok(phys);
        }
        let Some(entry) = self.table.lookup(access.task, object) else {
            if let Some(a) = &mut self.attrib {
                a.denied(access.master, Some((access.task, object)));
            }
            return Err(self.deny(access, Some(object), DenyReason::NoEntry));
        };
        let needed = CapChecker::required_perms(access.kind);
        match entry.capability.check_access(phys, access.len, needed) {
            Ok(()) => {
                self.stats.granted += 1;
                if let Some(a) = &mut self.attrib {
                    a.granted(access.master, access.task, object);
                }
                Ok(phys)
            }
            Err(fault) => {
                if let Some(a) = &mut self.attrib {
                    a.denied(access.master, Some((access.task, object)));
                }
                Err(self.deny(access, Some(object), DenyReason::Capability(fault)))
            }
        }
    }
}

impl IoProtection for CapChecker {
    fn name(&self) -> &'static str {
        match self.config.mode {
            CheckerMode::Fine => "CapChecker-Fine",
            CheckerMode::Coarse => "CapChecker-Coarse",
        }
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties::cheri()
    }

    fn granularity(&self) -> Granularity {
        match self.config.mode {
            CheckerMode::Fine => Granularity::Object,
            // Object bits in addresses are attacker-influencable, so the
            // guaranteed separation is per task (Table 3, §5.2.3).
            CheckerMode::Coarse => Granularity::Task,
        }
    }

    fn grant(
        &mut self,
        task: TaskId,
        object: ObjectId,
        cap: &Capability,
    ) -> Result<(), GrantError> {
        if !cap.is_valid() || cap.is_sealed() {
            return Err(GrantError::InvalidCapability);
        }
        self.stats.installs += 1;
        match self.table.install(task, object, *cap) {
            Some(_) => Ok(()),
            None => {
                self.stats.install_stalls += 1;
                Err(GrantError::TableFull)
            }
        }
    }

    fn revoke_task(&mut self, task: TaskId) {
        let before = self.table.occupied();
        self.table.evict_task(task);
        self.stats.evictions += (before - self.table.occupied()) as u64;
    }

    fn check(&mut self, access: &Access) -> Result<(), Denial> {
        self.vet_inner(access).map(|_| ())
    }

    fn entries_in_use(&self) -> usize {
        self.table.occupied()
    }

    fn translate(&self, addr: u64) -> u64 {
        self.physical_address(addr)
    }

    #[inline]
    fn vet(&mut self, access: &Access) -> Result<u64, Denial> {
        self.vet_inner(access)
    }
}

impl MmioDevice for CapChecker {
    fn mmio_read(&mut self, offset: u64) -> u64 {
        match offset {
            regs::COMMIT => self.staging.status,
            regs::EXCEPTION => u64::from(self.exception_flag),
            regs::OCCUPANCY => self.table.occupied() as u64,
            regs::GRANTED => self.stats.granted,
            regs::DENIED => self.stats.denied,
            regs::INSTALLS => self.stats.installs,
            _ => 0,
        }
    }

    fn mmio_write(&mut self, offset: u64, value: u64) {
        match offset {
            regs::CAP_LO => self.staging.lo = value,
            regs::CAP_HI => self.staging.hi = value,
            regs::TAG => self.staging.tag = value & 1 == 1,
            regs::TASK => self.staging.task = value as u32,
            regs::OBJECT => self.staging.object = value as u16,
            regs::COMMIT => {
                let bits = (u128::from(self.staging.hi) << 64) | u128::from(self.staging.lo);
                let cap = CompressedCapability::from_bits(bits).decode(self.staging.tag);
                let task = TaskId(self.staging.task);
                let object = ObjectId(self.staging.object);
                self.staging.status = match self.grant(task, object, &cap) {
                    Ok(()) => regs::STATUS_OK,
                    Err(GrantError::TableFull) => regs::STATUS_FULL,
                    Err(_) => regs::STATUS_INVALID,
                };
            }
            regs::EXCEPTION => self.exception_flag = false,
            regs::EVICT_TASK => self.revoke_task(TaskId(value as u32)),
            _ => {}
        }
    }
}

impl fmt::Display for CapChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CapChecker[{}] {}/{} entries, exc={}",
            self.config.mode.label(),
            self.table.occupied(),
            self.table.capacity(),
            self.exception_flag
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::CapFault;
    use hetsim::MasterId;

    fn rw_cap(base: u64, len: u64) -> Capability {
        Capability::root()
            .set_bounds(base, len)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap()
    }

    fn fine_checker_with_two_buffers() -> CapChecker {
        let mut c = CapChecker::new(CheckerConfig::fine());
        c.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 0x100))
            .unwrap();
        c.grant(TaskId(1), ObjectId(1), &rw_cap(0x3000, 0x100))
            .unwrap();
        c
    }

    #[test]
    fn fine_mode_blocks_cross_object_access() {
        let mut c = fine_checker_with_two_buffers();
        // Reading buffer 1's memory with buffer 0's pointer: the
        // principle of intentional use.
        let cross = Access::read(MasterId(1), TaskId(1), 0x3000, 4).with_object(ObjectId(0));
        let denial = c.check(&cross).unwrap_err();
        assert!(matches!(
            denial.reason,
            DenyReason::Capability(CapFault::BoundsViolation { .. })
        ));
        assert!(c.exception_flag());
        // And the offending pointer is traceable.
        let excs = c.exception_entries(TaskId(1));
        assert_eq!(excs.len(), 1);
        assert_eq!(excs[0].object, ObjectId(0));
    }

    #[test]
    fn fine_mode_requires_provenance() {
        let mut c = fine_checker_with_two_buffers();
        let anon = Access::read(MasterId(1), TaskId(1), 0x1000, 4);
        assert_eq!(
            c.check(&anon).unwrap_err().reason,
            DenyReason::BadProvenance
        );
    }

    #[test]
    fn coarse_mode_recovers_object_from_address() {
        let cfg = CheckerConfig::coarse();
        let mut c = CapChecker::new(cfg);
        c.grant(TaskId(1), ObjectId(2), &rw_cap(0x1000, 0x100))
            .unwrap();
        let tagged = cfg.coarse_tag_address(2, 0x1040);
        let a = Access::read(MasterId(1), TaskId(1), tagged, 4);
        assert!(c.check(&a).is_ok());
        assert_eq!(c.physical_address(tagged), 0x1040);
        // Out of bounds within the right object still faults.
        let oob = Access::read(MasterId(1), TaskId(1), cfg.coarse_tag_address(2, 0x1100), 4);
        assert!(c.check(&oob).is_err());
    }

    #[test]
    fn coarse_mode_still_separates_tasks() {
        let cfg = CheckerConfig::coarse();
        let mut c = CapChecker::new(cfg);
        c.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 0x100))
            .unwrap();
        // Task 2 forging task 1's object bits gets nothing: the task ID
        // comes from the interconnect source, not the address.
        let forged = Access::read(MasterId(2), TaskId(2), cfg.coarse_tag_address(0, 0x1000), 4);
        assert_eq!(c.check(&forged).unwrap_err().reason, DenyReason::NoEntry);
    }

    #[test]
    fn write_needs_store_permission() {
        let mut c = CapChecker::new(CheckerConfig::fine());
        let ro = Capability::root()
            .set_bounds(0x1000, 64)
            .unwrap()
            .and_perms(Perms::LOAD)
            .unwrap();
        c.grant(TaskId(1), ObjectId(0), &ro).unwrap();
        let w = Access::write(MasterId(1), TaskId(1), 0x1000, 4).with_object(ObjectId(0));
        let denial = c.check(&w).unwrap_err();
        assert!(matches!(
            denial.reason,
            DenyReason::Capability(CapFault::PermissionViolation { .. })
        ));
    }

    #[test]
    fn mmio_install_path_works_end_to_end() {
        let mut c = CapChecker::new(CheckerConfig::fine());
        let cap = rw_cap(0x2000, 128);
        let bits = cap.compress().bits();
        c.mmio_write(regs::CAP_LO, bits as u64);
        c.mmio_write(regs::CAP_HI, (bits >> 64) as u64);
        c.mmio_write(regs::TAG, 1);
        c.mmio_write(regs::TASK, 7);
        c.mmio_write(regs::OBJECT, 3);
        c.mmio_write(regs::COMMIT, 1);
        assert_eq!(c.mmio_read(regs::COMMIT), regs::STATUS_OK);
        assert_eq!(c.mmio_read(regs::OCCUPANCY), 1);
        let a = Access::read(MasterId(1), TaskId(7), 0x2000, 8).with_object(ObjectId(3));
        assert!(c.check(&a).is_ok());
    }

    #[test]
    fn mmio_rejects_untagged_capability() {
        // An attacker replaying capability bits without the tag gets
        // STATUS_INVALID: unforgeability survives the import path.
        let mut c = CapChecker::new(CheckerConfig::fine());
        let bits = rw_cap(0x2000, 128).compress().bits();
        c.mmio_write(regs::CAP_LO, bits as u64);
        c.mmio_write(regs::CAP_HI, (bits >> 64) as u64);
        c.mmio_write(regs::TAG, 0);
        c.mmio_write(regs::TASK, 7);
        c.mmio_write(regs::OBJECT, 3);
        c.mmio_write(regs::COMMIT, 1);
        assert_eq!(c.mmio_read(regs::COMMIT), regs::STATUS_INVALID);
        assert_eq!(c.entries_in_use(), 0);
    }

    #[test]
    fn mmio_exception_flag_read_and_clear() {
        let mut c = fine_checker_with_two_buffers();
        let bad = Access::read(MasterId(1), TaskId(1), 0xffff, 4).with_object(ObjectId(0));
        let _ = c.check(&bad);
        assert_eq!(c.mmio_read(regs::EXCEPTION), 1);
        c.mmio_write(regs::EXCEPTION, 0);
        assert_eq!(c.mmio_read(regs::EXCEPTION), 0);
    }

    #[test]
    fn mmio_evict_task_frees_entries() {
        let mut c = fine_checker_with_two_buffers();
        c.mmio_write(regs::EVICT_TASK, 1);
        assert_eq!(c.entries_in_use(), 0);
    }

    #[test]
    fn stats_count_grants_and_denials() {
        let mut c = fine_checker_with_two_buffers();
        let ok = Access::read(MasterId(1), TaskId(1), 0x1000, 4).with_object(ObjectId(0));
        let bad = Access::read(MasterId(1), TaskId(1), 0x3000, 4).with_object(ObjectId(0));
        c.check(&ok).unwrap();
        let _ = c.check(&bad);
        let s = c.stats();
        assert_eq!((s.granted, s.denied), (1, 1));
        // And the CPU can read the same counters over MMIO.
        assert_eq!(c.mmio_read(regs::GRANTED), 1);
        assert_eq!(c.mmio_read(regs::DENIED), 1);
        assert_eq!(c.mmio_read(regs::INSTALLS), 2);
    }

    #[test]
    fn static_verdicts_elide_safe_pairs_only() {
        use crate::elide::{StaticVerdict, StaticVerdictMap};
        let mut c = fine_checker_with_two_buffers();
        let mut map = StaticVerdictMap::new();
        map.set(TaskId(1), ObjectId(0), StaticVerdict::Safe);
        c.set_static_verdicts(map);

        // Safe pair: granted without a table walk, counted as elided.
        let ok = Access::read(MasterId(1), TaskId(1), 0x1000, 4).with_object(ObjectId(0));
        assert!(c.check(&ok).is_ok());
        assert_eq!(c.stats().elided, 1);
        assert_eq!(c.stats().granted, 0);

        // Dynamic pair (absent from the map): the full check runs.
        let other = Access::read(MasterId(1), TaskId(1), 0x3000, 4).with_object(ObjectId(1));
        assert!(c.check(&other).is_ok());
        assert_eq!(c.stats().granted, 1);

        // Elision never rescues a no-provenance request: Fine hardware
        // cannot attribute it, verdict map or not.
        let anon = Access::read(MasterId(1), TaskId(1), 0x1000, 4);
        assert_eq!(
            c.check(&anon).unwrap_err().reason,
            DenyReason::BadProvenance
        );

        // Clearing the map restores full checking.
        c.clear_static_verdicts();
        assert!(c.check(&ok).is_ok());
        assert_eq!(c.stats().elided, 1);
        assert_eq!(c.stats().granted, 2);
    }

    #[test]
    fn table_full_is_a_stall() {
        let mut c = CapChecker::new(CheckerConfig {
            entries: 1,
            ..CheckerConfig::fine()
        });
        c.grant(TaskId(1), ObjectId(0), &rw_cap(0, 64)).unwrap();
        assert_eq!(
            c.grant(TaskId(1), ObjectId(1), &rw_cap(64, 64)),
            Err(GrantError::TableFull)
        );
        assert_eq!(c.stats().install_stalls, 1);
    }
}
