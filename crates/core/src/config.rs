//! CapChecker configuration.

use hetsim::Cycles;

/// How the CapChecker recovers *which object* a request refers to —
/// the two implementations of Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckerMode {
    /// **Fine**: the accelerator's memory interface (or the port mux)
    /// carries an object identifier with every request, so each access is
    /// checked against exactly the capability it was intended to use.
    /// Object-level protection — the paper's headline mode.
    Fine,
    /// **Coarse**: the accelerator exposes one opaque interface, so the
    /// driver retrofits provenance into the top address bits (8 bits here,
    /// leaving a 56-bit address space). Cross-task protection is hardware
    /// (interconnect source); intra-task object separation can be defeated
    /// by address forging — Table 3's worst case.
    Coarse,
}

impl CheckerMode {
    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CheckerMode::Fine => "Fine",
            CheckerMode::Coarse => "Coarse",
        }
    }

    /// The other mode — what the adaptive controller switches to.
    #[must_use]
    pub fn toggled(self) -> CheckerMode {
        match self {
            CheckerMode::Fine => CheckerMode::Coarse,
            CheckerMode::Coarse => CheckerMode::Fine,
        }
    }
}

/// Hardware parameters of a CapChecker instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckerConfig {
    /// Capability-table entries. 256 in the paper's prototype — enough
    /// for every evaluated benchmark (Table 2).
    pub entries: usize,
    /// Provenance mode.
    pub mode: CheckerMode,
    /// Address bits reserved for the object ID in Coarse mode.
    pub coarse_object_bits: u32,
    /// Pipeline stages the checker adds to each request (latency only —
    /// the checker sustains one request per cycle).
    pub pipeline_latency: Cycles,
    /// Latency of one MMIO write on the capability interconnect.
    pub mmio_write_cycles: Cycles,
}

impl CheckerConfig {
    /// MMIO writes needed to install one capability: CAP_LO, CAP_HI, TAG,
    /// TASK+OBJECT, COMMIT.
    pub const WRITES_PER_INSTALL: u64 = 5;

    /// The paper's prototype configuration in Fine mode.
    #[must_use]
    pub fn fine() -> CheckerConfig {
        CheckerConfig {
            entries: 256,
            mode: CheckerMode::Fine,
            coarse_object_bits: 8,
            pipeline_latency: 1,
            mmio_write_cycles: 30,
        }
    }

    /// The paper's prototype configuration in Coarse mode.
    #[must_use]
    pub fn coarse() -> CheckerConfig {
        CheckerConfig {
            mode: CheckerMode::Coarse,
            ..CheckerConfig::fine()
        }
    }

    /// Cycles the driver spends installing one capability over MMIO.
    #[must_use]
    pub fn install_cycles(&self) -> Cycles {
        Self::WRITES_PER_INSTALL * self.mmio_write_cycles
    }

    /// The address mask below the Coarse object-ID bits.
    #[must_use]
    pub fn coarse_addr_mask(&self) -> u64 {
        u64::MAX >> self.coarse_object_bits
    }

    /// Packs an object ID into the top bits of an address (what the
    /// trusted driver does when loading accelerator base pointers).
    #[must_use]
    pub fn coarse_tag_address(&self, object: u16, addr: u64) -> u64 {
        let shift = 64 - self.coarse_object_bits;
        (u64::from(object) << shift) | (addr & self.coarse_addr_mask())
    }

    /// Splits a Coarse address into `(object, physical address)`.
    #[must_use]
    pub fn coarse_split_address(&self, addr: u64) -> (u16, u64) {
        let shift = 64 - self.coarse_object_bits;
        ((addr >> shift) as u16, addr & self.coarse_addr_mask())
    }
}

impl Default for CheckerConfig {
    fn default() -> CheckerConfig {
        CheckerConfig::fine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_defaults_match_the_paper() {
        let c = CheckerConfig::fine();
        assert_eq!(c.entries, 256);
        assert_eq!(c.mode, CheckerMode::Fine);
        assert_eq!(c.coarse_object_bits, 8);
        assert_eq!(CheckerConfig::coarse().mode, CheckerMode::Coarse);
        assert_eq!(CheckerMode::Fine.toggled(), CheckerMode::Coarse);
        assert_eq!(CheckerMode::Coarse.toggled(), CheckerMode::Fine);
    }

    #[test]
    fn coarse_address_round_trip() {
        let c = CheckerConfig::coarse();
        let tagged = c.coarse_tag_address(0xab, 0x1234_5678);
        assert_eq!(c.coarse_split_address(tagged), (0xab, 0x1234_5678));
        // The tag really lives in the top 8 bits.
        assert_eq!(tagged >> 56, 0xab);
    }

    #[test]
    fn coarse_mask_leaves_56_bits() {
        let c = CheckerConfig::coarse();
        assert_eq!(c.coarse_addr_mask(), (1u64 << 56) - 1);
    }

    #[test]
    fn install_cost_is_five_mmio_writes() {
        let c = CheckerConfig::fine();
        assert_eq!(c.install_cycles(), 150);
    }
}
