//! Static check elision: the hardware side of the adaptive loop.
//!
//! The `capcheri-analyze` crate proves, ahead of simulation, which
//! `(task, object)` streams can never fault — every access lands inside a
//! live, correctly-permissioned capability on all paths. Its result is a
//! [`StaticVerdictMap`]. The [`CapChecker`](crate::CapChecker) and
//! [`CachedCapChecker`](crate::CachedCapChecker) accept the map and skip
//! the per-beat table walk for pairs proved safe, counting each skip in
//! their `elided` statistic.
//!
//! Soundness does **not** rest on trusting the analyzer: the conformance
//! harness replays elided checkers against the golden oracle and diffs
//! every verdict, so an unsound map shows up as a divergence, exactly
//! like an implementation bug would.

use hetsim::{ObjectId, TaskId};
use std::collections::BTreeMap;

/// The analyzer's judgment for one `(task, object)` access stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StaticVerdict {
    /// Every access of the stream is provably inside a live,
    /// correctly-permissioned capability on all paths — the per-beat
    /// check is redundant and may be elided.
    Safe,
    /// At least one access is a provable violation (over-privileged or
    /// stale grant, port aliasing, revocation race). Reported as a
    /// finding; the runtime checker still judges every beat.
    Unsafe,
    /// Nothing provable either way — the runtime checker is required.
    /// This is the default for pairs the analyzer never saw.
    #[default]
    Dynamic,
}

impl StaticVerdict {
    /// Stable lowercase label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StaticVerdict::Safe => "safe",
            StaticVerdict::Unsafe => "unsafe",
            StaticVerdict::Dynamic => "dynamic",
        }
    }
}

/// Per-`(task, object)` static verdicts, as installed into a checker.
///
/// Keys are ordered (`BTreeMap`), so iteration — and everything derived
/// from it, reports included — is deterministic. Pairs absent from the
/// map are [`StaticVerdict::Dynamic`]: elision is strictly opt-in.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticVerdictMap {
    verdicts: BTreeMap<(u32, u16), StaticVerdict>,
}

impl StaticVerdictMap {
    /// An empty map: every pair is dynamic, nothing is elided.
    #[must_use]
    pub fn new() -> StaticVerdictMap {
        StaticVerdictMap::default()
    }

    /// Records the verdict for `(task, object)`.
    pub fn set(&mut self, task: TaskId, object: ObjectId, verdict: StaticVerdict) {
        self.verdicts.insert((task.0, object.0), verdict);
    }

    /// The verdict for `(task, object)` ([`StaticVerdict::Dynamic`] when
    /// the analyzer never classified the pair).
    #[must_use]
    pub fn verdict(&self, task: TaskId, object: ObjectId) -> StaticVerdict {
        self.verdicts
            .get(&(task.0, object.0))
            .copied()
            .unwrap_or_default()
    }

    /// `true` when the pair's checks may be skipped.
    #[must_use]
    pub fn is_safe(&self, task: TaskId, object: ObjectId) -> bool {
        self.verdict(task, object) == StaticVerdict::Safe
    }

    /// Number of pairs proved safe.
    #[must_use]
    pub fn safe_pairs(&self) -> u64 {
        self.verdicts
            .values()
            .filter(|v| **v == StaticVerdict::Safe)
            .count() as u64
    }

    /// Classified pairs, in key order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, ObjectId, StaticVerdict)> + '_ {
        self.verdicts
            .iter()
            .map(|(&(t, o), &v)| (TaskId(t), ObjectId(o), v))
    }

    /// `true` when no pair is classified.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }
}

/// Epoch-scoped verdict retention: the driver-side ledger that lets
/// elision survive the adaptive controller.
///
/// The coherence rule (see [`VerdictBitmap`]) makes every checker
/// rebuild — mode switch, degradation, re-promotion — drop the
/// installed map and bitmap *together*. That is correct but, before
/// this ledger existed, also permanent: the proof was lost with the
/// checker, and adaptive runs got zero elision after their first
/// switch. `SegmentVerdicts` keeps the current analysis segment's
/// proven-safe map *outside* the checker, so the controller can
/// re-install it atomically (map and bitmap rebuilt in the same
/// `set_static_verdicts` call) right after a rebuild. Degradation
/// deliberately does **not** re-install: a degraded checker is running
/// because trust was withdrawn, and elision stays off until the
/// controller re-promotes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentVerdicts {
    map: Option<StaticVerdictMap>,
    reinstalls: u64,
}

impl SegmentVerdicts {
    /// An empty ledger: nothing retained, nothing to re-install.
    #[must_use]
    pub fn new() -> SegmentVerdicts {
        SegmentVerdicts::default()
    }

    /// Retains `map` as the current segment's proof. Replaces any
    /// previously retained map — segments supersede each other.
    pub fn retain(&mut self, map: StaticVerdictMap) {
        self.map = Some(map);
    }

    /// Drops the retained proof (the stream crossed a barrier the
    /// retained segment does not cover).
    pub fn clear(&mut self) {
        self.map = None;
    }

    /// The retained map, if any — what a re-install would install.
    #[must_use]
    pub fn retained(&self) -> Option<&StaticVerdictMap> {
        self.map.as_ref()
    }

    /// Records one successful re-installation.
    pub fn record_reinstall(&mut self) {
        self.reinstalls += 1;
    }

    /// How many times the retained map was re-installed after a
    /// checker rebuild.
    #[must_use]
    pub fn reinstalls(&self) -> u64 {
        self.reinstalls
    }
}

/// Objects representable in one bitmap row: the checker's table holds at
/// most 256 entries, so denser object spaces are out of the fast path by
/// construction (they spill, correctly, into a sorted slice).
const BITMAP_OBJECTS: usize = 256;
const BITMAP_WORDS: usize = BITMAP_OBJECTS / 64;

/// One task's precomputed safe-object bits.
#[derive(Clone, Debug, PartialEq, Eq)]
struct BitmapRow {
    task: u32,
    /// Bit `o` set ⇔ `(task, o)` is [`StaticVerdict::Safe`], `o < 256`.
    words: [u64; BITMAP_WORDS],
    /// Safe objects ≥ 256 (exotic; sorted for binary search).
    spill: Vec<u16>,
}

/// A [`StaticVerdictMap`] compiled to per-task bit words, built once when
/// the driver installs verdicts at grant-install time and consulted
/// branch-free on the DMA beat hot path.
///
/// `StaticVerdictMap` answers `is_safe` with an ordered-map walk — pointer
/// chasing and key compares on every beat. The bitmap answers with one
/// shift-and-mask against a preloaded word: the verdict test itself has no
/// data-dependent branch. Rows are one per task with ≥ 1 safe pair; the
/// common single-task stream resolves its row on the first compare.
///
/// Coherence invariant: a checker holding both structures must keep the
/// bitmap equal to `VerdictBitmap::build` of its map at every observable
/// point — (re)built when verdicts are installed, and invalidated together
/// with the map on clear (the controller's degrade path) so elision
/// decisions, counters, and report bytes are identical to the map-walk
/// implementation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerdictBitmap {
    rows: Vec<BitmapRow>,
}

impl VerdictBitmap {
    /// An empty bitmap: nothing is safe, nothing is elided.
    #[must_use]
    pub fn new() -> VerdictBitmap {
        VerdictBitmap::default()
    }

    /// Compiles `map`'s [`StaticVerdict::Safe`] pairs into bit rows.
    #[must_use]
    pub fn build(map: &StaticVerdictMap) -> VerdictBitmap {
        let mut rows: Vec<BitmapRow> = Vec::new();
        // Map iteration is key-ordered, so rows come out sorted by task
        // and spills sorted by object — deterministic by construction.
        for (task, object, verdict) in map.iter() {
            if verdict != StaticVerdict::Safe {
                continue;
            }
            if rows.last().map(|r| r.task) != Some(task.0) {
                rows.push(BitmapRow {
                    task: task.0,
                    words: [0; BITMAP_WORDS],
                    spill: Vec::new(),
                });
            }
            // lint: allow(panic-in-hot-path) — the push above guarantees a row
            let row = rows.last_mut().expect("row just ensured");
            let o = usize::from(object.0);
            if o < BITMAP_OBJECTS {
                row.words[o >> 6] |= 1 << (o & 63);
            } else {
                row.spill.push(object.0);
            }
        }
        VerdictBitmap { rows }
    }

    /// `true` when `(task, object)` was proved safe — equivalent to
    /// [`StaticVerdictMap::is_safe`] on the map this was built from.
    #[inline]
    #[must_use]
    pub fn is_safe(&self, task: TaskId, object: ObjectId) -> bool {
        for row in &self.rows {
            if row.task == task.0 {
                let o = usize::from(object.0);
                return if o < BITMAP_OBJECTS {
                    // Branch-free verdict: shift the preloaded word.
                    (row.words[o >> 6] >> (o & 63)) & 1 != 0
                } else {
                    row.spill.binary_search(&object.0).is_ok()
                };
            }
        }
        false
    }

    /// `true` when no pair is marked safe.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_dynamic_and_elision_is_opt_in() {
        let map = StaticVerdictMap::new();
        assert_eq!(map.verdict(TaskId(1), ObjectId(0)), StaticVerdict::Dynamic);
        assert!(!map.is_safe(TaskId(1), ObjectId(0)));
        assert!(map.is_empty());
    }

    #[test]
    fn set_and_count() {
        let mut map = StaticVerdictMap::new();
        map.set(TaskId(1), ObjectId(0), StaticVerdict::Safe);
        map.set(TaskId(1), ObjectId(1), StaticVerdict::Unsafe);
        map.set(TaskId(2), ObjectId(0), StaticVerdict::Safe);
        assert!(map.is_safe(TaskId(1), ObjectId(0)));
        assert!(!map.is_safe(TaskId(1), ObjectId(1)));
        assert_eq!(map.safe_pairs(), 2);
        let keys: Vec<_> = map.iter().map(|(t, o, _)| (t.0, o.0)).collect();
        assert_eq!(keys, vec![(1, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StaticVerdict::Safe.label(), "safe");
        assert_eq!(StaticVerdict::Unsafe.label(), "unsafe");
        assert_eq!(StaticVerdict::Dynamic.label(), "dynamic");
    }

    #[test]
    fn bitmap_agrees_with_map_on_every_pair() {
        let mut map = StaticVerdictMap::new();
        // Safe, unsafe, dynamic pairs across several tasks, including
        // word boundaries (63/64), the row edge (255), and spills (≥256).
        for (t, o, v) in [
            (1, 0, StaticVerdict::Safe),
            (1, 63, StaticVerdict::Safe),
            (1, 64, StaticVerdict::Safe),
            (1, 65, StaticVerdict::Unsafe),
            (2, 255, StaticVerdict::Safe),
            (2, 256, StaticVerdict::Safe),
            (2, 300, StaticVerdict::Dynamic),
            (7, 1000, StaticVerdict::Safe),
        ] {
            map.set(TaskId(t), ObjectId(o), v);
        }
        let bits = VerdictBitmap::build(&map);
        for t in [0u32, 1, 2, 3, 7] {
            for o in [0u16, 1, 63, 64, 65, 254, 255, 256, 300, 999, 1000] {
                assert_eq!(
                    bits.is_safe(TaskId(t), ObjectId(o)),
                    map.is_safe(TaskId(t), ObjectId(o)),
                    "bitmap diverged from map at ({t}, {o})"
                );
            }
        }
    }

    #[test]
    fn segment_ledger_retains_replaces_and_clears() {
        let mut ledger = SegmentVerdicts::new();
        assert!(ledger.retained().is_none());
        let mut first = StaticVerdictMap::new();
        first.set(TaskId(0), ObjectId(0), StaticVerdict::Safe);
        ledger.retain(first.clone());
        assert_eq!(ledger.retained(), Some(&first));
        let mut second = StaticVerdictMap::new();
        second.set(TaskId(1), ObjectId(2), StaticVerdict::Safe);
        ledger.retain(second.clone());
        assert_eq!(ledger.retained(), Some(&second), "segments supersede");
        ledger.record_reinstall();
        ledger.record_reinstall();
        assert_eq!(ledger.reinstalls(), 2);
        ledger.clear();
        assert!(ledger.retained().is_none());
        assert_eq!(ledger.reinstalls(), 2, "history survives a clear");
    }

    #[test]
    fn empty_bitmap_is_never_safe() {
        let bits = VerdictBitmap::new();
        assert!(bits.is_empty());
        assert!(!bits.is_safe(TaskId(0), ObjectId(0)));
        assert_eq!(bits, VerdictBitmap::build(&StaticVerdictMap::new()));
    }
}
