//! Static check elision: the hardware side of the adaptive loop.
//!
//! The `capcheri-analyze` crate proves, ahead of simulation, which
//! `(task, object)` streams can never fault — every access lands inside a
//! live, correctly-permissioned capability on all paths. Its result is a
//! [`StaticVerdictMap`]. The [`CapChecker`](crate::CapChecker) and
//! [`CachedCapChecker`](crate::CachedCapChecker) accept the map and skip
//! the per-beat table walk for pairs proved safe, counting each skip in
//! their `elided` statistic.
//!
//! Soundness does **not** rest on trusting the analyzer: the conformance
//! harness replays elided checkers against the golden oracle and diffs
//! every verdict, so an unsound map shows up as a divergence, exactly
//! like an implementation bug would.

use hetsim::{ObjectId, TaskId};
use std::collections::BTreeMap;

/// The analyzer's judgment for one `(task, object)` access stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StaticVerdict {
    /// Every access of the stream is provably inside a live,
    /// correctly-permissioned capability on all paths — the per-beat
    /// check is redundant and may be elided.
    Safe,
    /// At least one access is a provable violation (over-privileged or
    /// stale grant, port aliasing, revocation race). Reported as a
    /// finding; the runtime checker still judges every beat.
    Unsafe,
    /// Nothing provable either way — the runtime checker is required.
    /// This is the default for pairs the analyzer never saw.
    #[default]
    Dynamic,
}

impl StaticVerdict {
    /// Stable lowercase label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StaticVerdict::Safe => "safe",
            StaticVerdict::Unsafe => "unsafe",
            StaticVerdict::Dynamic => "dynamic",
        }
    }
}

/// Per-`(task, object)` static verdicts, as installed into a checker.
///
/// Keys are ordered (`BTreeMap`), so iteration — and everything derived
/// from it, reports included — is deterministic. Pairs absent from the
/// map are [`StaticVerdict::Dynamic`]: elision is strictly opt-in.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticVerdictMap {
    verdicts: BTreeMap<(u32, u16), StaticVerdict>,
}

impl StaticVerdictMap {
    /// An empty map: every pair is dynamic, nothing is elided.
    #[must_use]
    pub fn new() -> StaticVerdictMap {
        StaticVerdictMap::default()
    }

    /// Records the verdict for `(task, object)`.
    pub fn set(&mut self, task: TaskId, object: ObjectId, verdict: StaticVerdict) {
        self.verdicts.insert((task.0, object.0), verdict);
    }

    /// The verdict for `(task, object)` ([`StaticVerdict::Dynamic`] when
    /// the analyzer never classified the pair).
    #[must_use]
    pub fn verdict(&self, task: TaskId, object: ObjectId) -> StaticVerdict {
        self.verdicts
            .get(&(task.0, object.0))
            .copied()
            .unwrap_or_default()
    }

    /// `true` when the pair's checks may be skipped.
    #[must_use]
    pub fn is_safe(&self, task: TaskId, object: ObjectId) -> bool {
        self.verdict(task, object) == StaticVerdict::Safe
    }

    /// Number of pairs proved safe.
    #[must_use]
    pub fn safe_pairs(&self) -> u64 {
        self.verdicts
            .values()
            .filter(|v| **v == StaticVerdict::Safe)
            .count() as u64
    }

    /// Classified pairs, in key order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, ObjectId, StaticVerdict)> + '_ {
        self.verdicts
            .iter()
            .map(|(&(t, o), &v)| (TaskId(t), ObjectId(o), v))
    }

    /// `true` when no pair is classified.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_dynamic_and_elision_is_opt_in() {
        let map = StaticVerdictMap::new();
        assert_eq!(map.verdict(TaskId(1), ObjectId(0)), StaticVerdict::Dynamic);
        assert!(!map.is_safe(TaskId(1), ObjectId(0)));
        assert!(map.is_empty());
    }

    #[test]
    fn set_and_count() {
        let mut map = StaticVerdictMap::new();
        map.set(TaskId(1), ObjectId(0), StaticVerdict::Safe);
        map.set(TaskId(1), ObjectId(1), StaticVerdict::Unsafe);
        map.set(TaskId(2), ObjectId(0), StaticVerdict::Safe);
        assert!(map.is_safe(TaskId(1), ObjectId(0)));
        assert!(!map.is_safe(TaskId(1), ObjectId(1)));
        assert_eq!(map.safe_pairs(), 2);
        let keys: Vec<_> = map.iter().map(|(t, o, _)| (t.0, o.0)).collect();
        assert_eq!(keys, vec![(1, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StaticVerdict::Safe.label(), "safe");
        assert_eq!(StaticVerdict::Unsafe.label(), "unsafe");
        assert_eq!(StaticVerdict::Dynamic.label(), "dynamic");
    }
}
