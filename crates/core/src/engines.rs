//! Execution engines binding kernels to the protected memory paths.
//!
//! [`ProtectedEngine`] is the accelerator's view: every access crosses the
//! interconnect as an [`Access`] and is vetted by the system's protection
//! mechanism before touching memory (and writes clear capability tags —
//! DMA is capability-unaware by construction).
//!
//! [`CpuEngine`] is the CPU's view: on a CHERI CPU every access is checked
//! against the buffer's own capability in the register file; on a plain
//! CPU nothing is checked.

use cheri::{Capability, Perms};
use hetsim::{
    Access, AccessKind, Denial, DenyReason, Engine, ExecFault, MasterId, ObjectId, TaggedMemory,
    TaskId, TaskLayout, Trace, TraceOp,
};
use ioprotect::IoProtection;
use obs::{EventKind, SharedTracer, Tracer};
use std::fmt;

/// How the accelerator's memory interface exposes object identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Per-object ports (or a mux that preserves an object identifier):
    /// requests carry `ObjectId` metadata. Feeds the checker's Fine mode.
    PerObjectPorts,
    /// One opaque interface: requests carry no metadata. Any object
    /// identity must be smuggled in the address bits (Coarse mode).
    Opaque,
}

/// The accelerator-side engine: kernel accesses become bus requests that
/// the protection mechanism vets.
///
/// Generic over the protection type so the driver can monomorphize the
/// per-beat vet pipeline for each concrete checker (one virtual call per
/// kernel op instead of two, with the verdict-bitmap probe inlined); the
/// `dyn IoProtection` default keeps heterogeneous call sites working.
pub struct ProtectedEngine<'a, P: IoProtection + ?Sized = dyn IoProtection> {
    mem: &'a mut TaggedMemory,
    protection: &'a mut P,
    layout: TaskLayout,
    master: MasterId,
    task: TaskId,
    provenance: Provenance,
    trace: Trace,
    first_denial: Option<Denial>,
    /// Optional event sink; check events are stamped with the request
    /// index (the functional path has no cycle clock of its own).
    tracer: Option<SharedTracer>,
    requests: u64,
}

impl<'a, P: IoProtection + ?Sized> ProtectedEngine<'a, P> {
    /// Binds a task's accelerator execution to the protected memory path.
    ///
    /// `layout` holds the *accelerator-visible* base addresses — physical
    /// for Fine-mode and baseline systems, object-tagged for Coarse.
    pub fn new(
        mem: &'a mut TaggedMemory,
        protection: &'a mut P,
        layout: TaskLayout,
        master: MasterId,
        task: TaskId,
        provenance: Provenance,
    ) -> ProtectedEngine<'a, P> {
        ProtectedEngine {
            mem,
            protection,
            layout,
            master,
            task,
            provenance,
            trace: Trace::new(),
            first_denial: None,
            tracer: None,
            requests: 0,
        }
    }

    /// Attaches an event sink; every vetted request is recorded as a
    /// checker-check event (plus an exception event when refused).
    #[must_use]
    pub fn with_tracer(mut self, tracer: SharedTracer) -> ProtectedEngine<'a, P> {
        self.tracer = Some(tracer);
        self
    }

    /// The recorded trace so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the engine, returning the trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The first refused access, if any (the latched exception).
    #[must_use]
    pub fn first_denial(&self) -> Option<Denial> {
        self.first_denial
    }

    #[inline]
    fn request(
        &mut self,
        obj: usize,
        offset: u64,
        len: u64,
        kind: AccessKind,
    ) -> Result<u64, ExecFault> {
        let addr = self.layout.address(obj, offset);
        let object = match self.provenance {
            Provenance::PerObjectPorts => Some(ObjectId(obj as u16)),
            Provenance::Opaque => None,
        };
        let access = Access {
            master: self.master,
            task: self.task,
            addr,
            len,
            kind,
            object,
        };
        // One fused check+translate call per beat (`vet`): the verdict,
        // counters, and exception latching are exactly those of
        // `check` followed by `translate`.
        let verdict = self.protection.vet(&access);
        if let Some(tracer) = self.tracer.as_mut() {
            let at = self.requests;
            tracer.record(
                at,
                EventKind::CheckerCheck {
                    task: self.task.0,
                    object: obj as u16,
                    granted: verdict.is_ok(),
                },
            );
            if verdict.is_err() {
                tracer.record(
                    at,
                    EventKind::CheckerException {
                        task: self.task.0,
                        object: obj as u16,
                    },
                );
            }
        }
        self.requests += 1;
        match verdict {
            Ok(phys) => Ok(phys),
            Err(denial) => {
                self.first_denial.get_or_insert(denial);
                Err(ExecFault::Denied(denial))
            }
        }
    }
}

impl<P: IoProtection + ?Sized> Engine for ProtectedEngine<'_, P> {
    hetsim::impl_typed_engine_helpers!();

    #[inline]
    fn load(&mut self, obj: usize, offset: u64, size: u8) -> Result<u64, ExecFault> {
        let phys = self.request(obj, offset, u64::from(size), AccessKind::Read)?;
        let v = self.mem.read_uint(phys, size)?;
        self.trace.push(TraceOp::Mem {
            addr: phys,
            bytes: u16::from(size),
            write: false,
            object: obj as u16,
        });
        Ok(v)
    }

    #[inline]
    fn store(&mut self, obj: usize, offset: u64, size: u8, value: u64) -> Result<(), ExecFault> {
        let phys = self.request(obj, offset, u64::from(size), AccessKind::Write)?;
        // write_uint is tag-clearing: granted DMA writes can never leave a
        // valid capability behind.
        self.mem.write_uint(phys, size, value)?;
        self.trace.push(TraceOp::Mem {
            addr: phys,
            bytes: u16::from(size),
            write: true,
            object: obj as u16,
        });
        Ok(())
    }

    fn compute(&mut self, units: u64) {
        if units > 0 {
            self.trace.push(TraceOp::Compute(units));
        }
    }

    fn copy(
        &mut self,
        dst_obj: usize,
        dst_off: u64,
        src_obj: usize,
        src_off: u64,
        len: u64,
    ) -> Result<(), ExecFault> {
        let src = self.request(src_obj, src_off, len, AccessKind::Read)?;
        let dst = self.request(dst_obj, dst_off, len, AccessKind::Write)?;
        let mut buf = vec![0u8; len as usize];
        self.mem.read_bytes(src, &mut buf)?;
        self.mem.write_bytes(dst, &buf)?;
        self.trace.push(TraceOp::Copy {
            src,
            dst,
            bytes: len,
        });
        Ok(())
    }
}

impl<P: IoProtection + ?Sized> fmt::Debug for ProtectedEngine<'_, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtectedEngine")
            .field("task", &self.task)
            .field("provenance", &self.provenance)
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

/// The CPU-side engine: the task's own capabilities check every access
/// when the core is CHERI-extended.
pub struct CpuEngine<'a> {
    mem: &'a mut TaggedMemory,
    layout: TaskLayout,
    /// Per-object capabilities; `None` models a CHERI-unaware CPU.
    caps: Option<Vec<Capability>>,
    task: TaskId,
    trace: Trace,
}

impl<'a> CpuEngine<'a> {
    /// Binds a CPU task; pass `caps` to model the CHERI CPU.
    pub fn new(
        mem: &'a mut TaggedMemory,
        layout: TaskLayout,
        caps: Option<Vec<Capability>>,
        task: TaskId,
    ) -> CpuEngine<'a> {
        CpuEngine {
            mem,
            layout,
            caps,
            task,
            trace: Trace::new(),
        }
    }

    /// Consumes the engine, returning the trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    #[inline]
    fn check(&self, obj: usize, addr: u64, len: u64, kind: AccessKind) -> Result<(), ExecFault> {
        let Some(caps) = &self.caps else {
            return Ok(());
        };
        let needed = match kind {
            AccessKind::Read => Perms::LOAD,
            AccessKind::Write => Perms::STORE,
        };
        caps[obj].check_access(addr, len, needed).map_err(|fault| {
            ExecFault::Denied(Denial {
                access: Access {
                    master: MasterId(0),
                    task: self.task,
                    addr,
                    len,
                    kind,
                    object: Some(ObjectId(obj as u16)),
                },
                reason: DenyReason::Capability(fault),
            })
        })
    }
}

impl Engine for CpuEngine<'_> {
    hetsim::impl_typed_engine_helpers!();

    #[inline]
    fn load(&mut self, obj: usize, offset: u64, size: u8) -> Result<u64, ExecFault> {
        let addr = self.layout.address(obj, offset);
        self.check(obj, addr, u64::from(size), AccessKind::Read)?;
        let v = self.mem.read_uint(addr, size)?;
        self.trace.push(TraceOp::Mem {
            addr,
            bytes: u16::from(size),
            write: false,
            object: obj as u16,
        });
        Ok(v)
    }

    #[inline]
    fn store(&mut self, obj: usize, offset: u64, size: u8, value: u64) -> Result<(), ExecFault> {
        let addr = self.layout.address(obj, offset);
        self.check(obj, addr, u64::from(size), AccessKind::Write)?;
        self.mem.write_uint(addr, size, value)?;
        self.trace.push(TraceOp::Mem {
            addr,
            bytes: u16::from(size),
            write: true,
            object: obj as u16,
        });
        Ok(())
    }

    fn compute(&mut self, units: u64) {
        if units > 0 {
            self.trace.push(TraceOp::Compute(units));
        }
    }

    fn copy(
        &mut self,
        dst_obj: usize,
        dst_off: u64,
        src_obj: usize,
        src_off: u64,
        len: u64,
    ) -> Result<(), ExecFault> {
        let src = self.layout.address(src_obj, src_off);
        let dst = self.layout.address(dst_obj, dst_off);
        self.check(src_obj, src, len, AccessKind::Read)?;
        self.check(dst_obj, dst, len, AccessKind::Write)?;
        let mut buf = vec![0u8; len as usize];
        self.mem.read_bytes(src, &mut buf)?;
        self.mem.write_bytes(dst, &buf)?;
        self.trace.push(TraceOp::Copy {
            src,
            dst,
            bytes: len,
        });
        Ok(())
    }
}

impl fmt::Debug for CpuEngine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuEngine")
            .field("task", &self.task)
            .field("cheri", &self.caps.is_some())
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CapChecker;
    use crate::config::CheckerConfig;
    use hetsim::Engine;

    fn rw_cap(base: u64, len: u64) -> Capability {
        Capability::root()
            .set_bounds(base, len)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap()
    }

    #[test]
    fn protected_engine_grants_in_bounds_and_blocks_overflow() {
        let mut mem = TaggedMemory::new(1 << 16);
        let mut checker = CapChecker::new(CheckerConfig::fine());
        checker
            .grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 64))
            .unwrap();
        let mut eng = ProtectedEngine::new(
            &mut mem,
            &mut checker,
            TaskLayout::new([(0x1000, 64)]),
            MasterId(1),
            TaskId(1),
            Provenance::PerObjectPorts,
        );
        eng.store_u32(0, 0, 0x55).unwrap();
        assert_eq!(eng.load_u32(0, 0).unwrap(), 0x55);
        let err = eng.load_u32(0, 16); // offset 64: one past the end
        assert!(matches!(err, Err(ExecFault::Denied(_))));
        assert!(eng.first_denial().is_some());
    }

    #[test]
    fn coarse_layout_reaches_memory_through_translation() {
        let cfg = CheckerConfig::coarse();
        let mut mem = TaggedMemory::new(1 << 16);
        let mut checker = CapChecker::new(cfg);
        checker
            .grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 64))
            .unwrap();
        // The driver loads object-tagged base pointers.
        let tagged_base = cfg.coarse_tag_address(0, 0x1000);
        let mut eng = ProtectedEngine::new(
            &mut mem,
            &mut checker,
            TaskLayout::new([(tagged_base, 64)]),
            MasterId(1),
            TaskId(1),
            Provenance::Opaque,
        );
        eng.store_u32(0, 3, 0xabcd).unwrap();
        assert_eq!(eng.load_u32(0, 3).unwrap(), 0xabcd);
        drop(eng);
        // The data really landed at the physical address.
        assert_eq!(mem.read_uint(0x1000 + 12, 4).unwrap(), 0xabcd);
    }

    #[test]
    fn granted_dma_write_still_clears_tags() {
        let mut mem = TaggedMemory::new(1 << 16);
        mem.write_capability(0x1000, Capability::root().compress(), true)
            .unwrap();
        let mut checker = CapChecker::new(CheckerConfig::fine());
        checker
            .grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 64))
            .unwrap();
        let mut eng = ProtectedEngine::new(
            &mut mem,
            &mut checker,
            TaskLayout::new([(0x1000, 64)]),
            MasterId(1),
            TaskId(1),
            Provenance::PerObjectPorts,
        );
        eng.store_u8(0, 0, 0xff).unwrap();
        drop(eng);
        assert!(
            !mem.tag(0x1000),
            "accelerator writes must strip capability tags"
        );
    }

    #[test]
    fn cpu_engine_checks_only_when_cheri() {
        let mut mem = TaggedMemory::new(1 << 16);
        let layout = TaskLayout::new([(0x1000, 64)]);
        // Plain CPU: out-of-bounds "works" (and corrupts).
        let mut plain = CpuEngine::new(&mut mem, layout.clone(), None, TaskId(1));
        plain.store_u8(0, 999, 1).unwrap();
        drop(plain);
        // CHERI CPU: same access faults.
        let caps = vec![rw_cap(0x1000, 64)];
        let mut cheri = CpuEngine::new(&mut mem, layout, Some(caps), TaskId(1));
        assert!(matches!(
            cheri.store_u8(0, 999, 1),
            Err(ExecFault::Denied(_))
        ));
        cheri.store_u8(0, 63, 1).unwrap();
    }

    #[test]
    fn traces_accumulate_across_ops() {
        let mut mem = TaggedMemory::new(1 << 16);
        let mut eng = CpuEngine::new(
            &mut mem,
            TaskLayout::new([(0x100, 256), (0x200, 256)]),
            None,
            TaskId(1),
        );
        eng.compute(4);
        eng.store_u64(0, 0, 1).unwrap();
        eng.copy(1, 0, 0, 0, 64).unwrap();
        let t = eng.into_trace();
        assert_eq!(t.compute_units(), 4);
        assert_eq!(t.mem_bytes(), 8 + 128);
    }
}
