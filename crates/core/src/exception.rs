//! The one place a checker denial is latched and counted.
//!
//! Both checker variants ([`crate::CapChecker`] and
//! [`crate::CachedCapChecker`]) used to carry their own copy of this
//! logic; sharing it guarantees the exception flag and the `denied`
//! counter can never drift between the two designs, which is what lets
//! the benches compare their denial accounting head-to-head.

use hetsim::{Access, Denial, DenyReason};

/// Latches the checker-global exception flag, bumps the shared `denied`
/// counter, and builds the [`Denial`] handed back over the bus.
///
/// Per-design bookkeeping (the fixed table's per-entry exception bits,
/// the cached design's exception list) stays with the caller — only the
/// accounting every design must agree on lives here.
pub(crate) fn latch_denial(
    exception_flag: &mut bool,
    denied: &mut u64,
    access: &Access,
    reason: DenyReason,
) -> Denial {
    *exception_flag = true;
    *denied += 1;
    Denial {
        access: *access,
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{MasterId, TaskId};

    #[test]
    fn latch_sets_flag_and_counts() {
        let mut flag = false;
        let mut denied = 0;
        let access = Access::read(MasterId(1), TaskId(7), 0x1000, 8);
        let d = latch_denial(&mut flag, &mut denied, &access, DenyReason::NoEntry);
        assert!(flag);
        assert_eq!(denied, 1);
        assert_eq!(d.reason, DenyReason::NoEntry);
        assert_eq!(d.access.task, TaskId(7));
        latch_denial(&mut flag, &mut denied, &access, DenyReason::InvalidTag);
        assert_eq!(denied, 2);
    }
}
