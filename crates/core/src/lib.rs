//! # capchecker — adaptive CHERI compartmentalization for accelerators
//!
//! The paper's primary contribution: the **CAPability Checker**
//! ([`CapChecker`]), a hardware block that imports CHERI capabilities from
//! the CPU and guards every memory access a CHERI-unaware accelerator
//! makes, as if the accelerator used capabilities natively — plus the
//! trusted software driver and the assembled heterogeneous system
//! ([`HeteroSystem`]).
//!
//! ## Architecture (Figure 5)
//!
//! * a 256-entry associative [capability table](CapabilityTable) keyed by
//!   `(task, object)`, filled over an MMIO capability interconnect
//!   ([`checker::regs`]) that only accepts *valid* capabilities;
//! * a capability decoder (the 128-bit compressed format from the `cheri`
//!   crate);
//! * two provenance modes ([`CheckerMode`]): **Fine** — the accelerator's
//!   memory interface identifies the object per request, giving
//!   pointer-level protection; **Coarse** — object IDs ride in the top 8
//!   address bits, giving task-level protection in the worst case;
//! * exception reporting: a global flag for the CPU plus per-entry
//!   exception bits so software can trace the offending pointer.
//!
//! ## Quick start
//!
//! ```
//! use capchecker::{HeteroSystem, SystemConfig, TaskRequest};
//! use hetsim::Engine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A CHERI CPU with a Fine-mode CapChecker (the paper's system).
//! let mut sys = HeteroSystem::new(SystemConfig::default());
//! sys.add_fus("mmul", 8);
//!
//! let task = sys.allocate_task(&TaskRequest::accel("mmul0", "mmul").rw_buffers([64, 64]))?;
//! let outcome = sys.run_accel_task(task, |eng| {
//!     let x = eng.load_u32(0, 0)?;
//!     eng.store_u32(1, 0, x.wrapping_mul(3))
//! })?;
//! assert!(outcome.completed());
//!
//! // An out-of-bounds access is blocked and latched as an exception:
//! let evil = sys.allocate_task(&TaskRequest::accel("evil", "mmul").rw_buffers([64]))?;
//! let outcome = sys.run_accel_task(evil, |eng| eng.load_u32(0, 1_000).map(|_| ()))?;
//! assert!(!outcome.completed());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapt;
mod alloc;
pub mod attrib;
pub mod cached;
pub mod checker;
mod config;
pub mod elide;
mod engines;
mod exception;
pub mod recovery;
pub mod revoke;
mod system;
mod table;

pub use adapt::{
    run_adaptive_campaign, AdaptAction, AdaptConfig, AdaptController, AdaptDecision,
    AdaptiveCampaignReport, CacheHealth, EpochSignals,
};
pub use alloc::{AllocError, HeapAllocator};
pub use attrib::{CheckAttribution, CheckCounters};
pub use cached::{CacheStats, CachedCapChecker, CachedCheckerConfig, CachedCheckerSnapshot};
pub use checker::{CapChecker, CheckerSnapshot, CheckerStats};
pub use config::{CheckerConfig, CheckerMode};
pub use elide::{SegmentVerdicts, StaticVerdict, StaticVerdictMap, VerdictBitmap};
pub use engines::{CpuEngine, ProtectedEngine, Provenance};
pub use recovery::{
    run_campaign, run_campaign_grid, CampaignConfig, CampaignReport, RecoveryOutcome,
    RecoveryPolicy, Resolution, TaskRecord, WatchdogEngine,
};
pub use revoke::{sweep_revoked, sweep_revoked_many, sweep_revoked_naive, SweepReport};
pub use system::{
    BufferSpec, DriverError, HeteroSystem, ProtectionChoice, SystemConfig, SystemVariant,
    TaskOutcome, TaskReport, TaskRequest,
};
pub use table::{CapabilityTable, TableEntry};
