//! Driver-level fault recovery: watchdogs, retry with backoff, engine
//! quarantine, and checker graceful degradation.
//!
//! The platform half of the fault harness lives in `hetsim::fault`
//! (deterministic injection); this module is the *driver's* half — what
//! the trusted software does when the hardware misbehaves:
//!
//! * [`WatchdogEngine`] — a per-task cycle-budget watchdog layered on the
//!   protected data path. A hung or spinning engine burns through its
//!   budget and is aborted with [`ExecFault::Hung`]; without it, a hang
//!   is simply undetected.
//! * [`RecoveryPolicy`] — bounded retry with exponential backoff, an
//!   engine-quarantine threshold, and the watchdog budget.
//! * [`run_campaign`] — a seeded fault campaign: every task draws an
//!   injection decision from a [`FaultPlan`], runs under the full
//!   recovery stack, and ends in exactly one [`Resolution`]. The same
//!   seed produces a byte-identical [`CampaignReport`].
//!
//! The recovery state machine per task:
//!
//! ```text
//! inject ──► run ──► completed ──────────────────────► Completed
//!              │
//!              ├─► denied ──► clear + backoff ──► retry (≤ max_attempts)
//!              │      │            └─ exhausted ─────► Denied (latched)
//!              │      └─ InvalidTag on cached checker ► degrade → retry
//!              ├─► watchdog abort ──► count per engine
//!              │      ├─ below threshold ─ backoff ──► retry
//!              │      └─ at threshold ───────────────► Quarantined
//!              ├─► transient ──── backoff ───────────► retry
//!              └─► forged tag found by post-run audit ► Denied (cleared)
//! ```

use crate::cached::CachedCheckerConfig;
use crate::system::{DriverError, HeteroSystem, ProtectionChoice, SystemConfig, TaskRequest};
use hetsim::fault::{is_engine_level, persists_across_retries, FaultPlan, FaultSpec, FaultyEngine};
use hetsim::{Cycles, Denial, DenyReason, Engine, ExecFault, TaskId};
use obs::json::JsonWriter;
use obs::{EventKind, FaultKind, Registry, SharedTracer};
use std::collections::BTreeMap;
use std::fmt;

/// A per-task operation-budget watchdog on the engine data path.
///
/// Every memory operation costs 1, a bulk copy costs `1 + len/8`, and
/// `compute(units)` costs `units`. Once the accumulated cost exceeds the
/// budget, the watchdog cuts the engine off: in-flight compute is clamped
/// to the remaining budget and the next memory operation aborts with
/// [`ExecFault::Hung`]. Layer it *below* the fault injector and *above*
/// the protected engine (`kernel → FaultyEngine → WatchdogEngine →
/// ProtectedEngine`) so injected hang spins trip it while rogue traffic
/// still reaches the protection path.
pub struct WatchdogEngine<'e> {
    inner: &'e mut dyn Engine,
    budget: u64,
    spent: u64,
    tripped: bool,
}

impl fmt::Debug for WatchdogEngine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WatchdogEngine")
            .field("budget", &self.budget)
            .field("spent", &self.spent)
            .field("tripped", &self.tripped)
            .finish_non_exhaustive()
    }
}

impl<'e> WatchdogEngine<'e> {
    /// Wraps `inner` with an operation budget.
    pub fn new(inner: &'e mut dyn Engine, budget: u64) -> WatchdogEngine<'e> {
        WatchdogEngine {
            inner,
            budget,
            spent: 0,
            tripped: false,
        }
    }

    /// Whether the watchdog has expired.
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Budget consumed so far.
    #[must_use]
    pub fn spent(&self) -> u64 {
        self.spent
    }

    fn charge(&mut self, cost: u64) -> Result<(), ExecFault> {
        self.spent = self.spent.saturating_add(cost);
        if self.spent > self.budget {
            self.tripped = true;
            return Err(ExecFault::Hung { ops: self.spent });
        }
        Ok(())
    }
}

impl Engine for WatchdogEngine<'_> {
    fn load(&mut self, obj: usize, offset: u64, size: u8) -> Result<u64, ExecFault> {
        self.charge(1)?;
        self.inner.load(obj, offset, size)
    }

    fn store(&mut self, obj: usize, offset: u64, size: u8, value: u64) -> Result<(), ExecFault> {
        self.charge(1)?;
        self.inner.store(obj, offset, size, value)
    }

    fn compute(&mut self, units: u64) {
        // The watchdog cuts power at budget expiry: only the remaining
        // budget's worth of data-path work actually happens.
        let grant = units.min(self.budget.saturating_sub(self.spent));
        if grant > 0 {
            self.inner.compute(grant);
        }
        self.spent = self.spent.saturating_add(units);
        if self.spent > self.budget {
            self.tripped = true;
        }
    }

    fn copy(
        &mut self,
        dst_obj: usize,
        dst_off: u64,
        src_obj: usize,
        src_off: u64,
        len: u64,
    ) -> Result<(), ExecFault> {
        self.charge(1 + len / 8)?;
        self.inner.copy(dst_obj, dst_off, src_obj, src_off, len)
    }
}

/// The driver's recovery parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Kernel attempts per task (first run included).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base << (n - 2)` driver
    /// cycles.
    pub backoff_base: Cycles,
    /// Watchdog operation budget per attempt.
    pub watchdog_budget: u64,
    /// Watchdog aborts a functional unit survives before the driver
    /// quarantines it for good.
    pub quarantine_threshold: u32,
}

impl RecoveryPolicy {
    /// Backoff after failed attempt `attempt` (1-based):
    /// `backoff_base << (attempt - 1)`, saturating at [`Cycles::MAX`]
    /// instead of overflowing the shift. A policy with `max_attempts ≥ 64`
    /// (or a large base) therefore waits "forever-ish" rather than
    /// panicking in debug builds or silently wrapping in release.
    #[must_use]
    pub fn backoff_after(&self, attempt: u32) -> Cycles {
        if self.backoff_base == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1);
        self.backoff_base
            .checked_shl(shift)
            .filter(|b| b >> shift == self.backoff_base)
            .unwrap_or(Cycles::MAX)
    }
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_attempts: 3,
            backoff_base: 64,
            watchdog_budget: 4096,
            quarantine_threshold: 2,
        }
    }
}

/// What one kernel attempt produced, as the retry loop classifies it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Ran to completion with no exception.
    Completed,
    /// The protection path denied an access; the denial is latched.
    Denied(Denial),
    /// The watchdog aborted a hung engine after `ops` budget.
    TimedOut {
        /// Budget consumed at abort time.
        ops: u64,
    },
    /// A transient interconnect fault aborted the transfer cleanly.
    Transient(FaultKind),
}

/// How a task's story ended. Exactly one per task — the trichotomy the
/// property tests enforce (plus the starvation edge) is that no task is
/// ever silently lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resolution {
    /// First attempt ran clean.
    Completed,
    /// At least one retry was needed, then the kernel ran clean.
    RetriedCompleted,
    /// The fault's effect was blocked and stays on record: an access
    /// denial latched against the task, or a forged tag swept away by the
    /// post-run audit.
    Denied,
    /// The engine kept hanging; the driver gave up on it and quarantined
    /// the functional unit for good (no adaptive controller to parole it).
    Quarantined,
    /// The engine was quarantined, but an adaptive controller is running
    /// and probationary release remains possible. Only the adaptive
    /// campaign ([`crate::adapt`]) produces this; with the controller off,
    /// quarantine is permanent and reports keep the plain `Quarantined`
    /// label, so `capcheri.fault_campaign.v1` bytes are unchanged.
    QuarantinedProbation,
    /// No healthy functional unit remained to run the task at all.
    Starved,
}

impl Resolution {
    /// Stable label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Resolution::Completed => "completed",
            Resolution::RetriedCompleted => "retried-completed",
            Resolution::Denied => "denied",
            Resolution::Quarantined => "quarantined",
            Resolution::QuarantinedProbation => "quarantined-probation",
            Resolution::Starved => "starved",
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One task's row in the campaign report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskRecord {
    /// Campaign task index (0-based, in submission order).
    pub index: u32,
    /// The fault injected into this task, if the plan drew one.
    pub injected: Option<FaultKind>,
    /// Kernel attempts made (0 when starved).
    pub attempts: u32,
    /// How the task ended.
    pub resolution: Resolution,
    /// Human-readable cause when the resolution is a denial.
    pub denial: Option<String>,
    /// Whether this task's fault drove the checker degradation.
    pub degraded: bool,
    /// Forged capability tags the post-run audit cleared from the task's
    /// buffers.
    pub tags_cleared: u64,
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Tasks to run.
    pub tasks: u32,
    /// Seed for the fault plan — same seed, same report bytes.
    pub seed: u64,
    /// Which faults are armed, at what per-task rate.
    pub spec: FaultSpec,
    /// The driver's recovery parameters.
    pub policy: RecoveryPolicy,
    /// Functional units in the pool.
    pub fus: usize,
    /// Size of each of a task's two buffers.
    pub buffer_bytes: u64,
    /// Protection on the accelerator path. Defaults to the cache-backed
    /// CapChecker (so the degradation path is reachable); the adaptive
    /// A/B comparison runs static alternatives through the same harness.
    pub protection: ProtectionChoice,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            tasks: 32,
            seed: 0xC0DE,
            spec: FaultSpec::none(),
            policy: RecoveryPolicy::default(),
            fus: 4,
            buffer_bytes: 256,
            protection: ProtectionChoice::CachedCapChecker(CachedCheckerConfig::default()),
        }
    }
}

/// The deterministic result of a fault campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// The seed the plan ran with.
    pub seed: u64,
    /// Normalized fault-spec string.
    pub spec: String,
    /// Tasks submitted.
    pub tasks: u32,
    /// The recovery policy in force.
    pub policy: RecoveryPolicy,
    /// One record per task, in submission order.
    pub records: Vec<TaskRecord>,
    /// Whether the cached checker was degraded to the fixed-table design.
    pub degraded: bool,
    /// Functional units quarantined by campaign end.
    pub quarantined_fus: u64,
    /// Driver setup-clock cycles burned (installs, MMIO, backoff).
    pub driver_cycles: Cycles,
    /// Denials counted by the protection mechanism live at campaign end.
    pub denied_checks: u64,
    /// Checker-cache checksum failures detected.
    pub corruption_detected: u64,
    /// Observability events recorded across the campaign.
    pub events: u64,
}

impl CampaignReport {
    /// Injected-fault counts by kind label, in stable order.
    #[must_use]
    pub fn injected_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut m = BTreeMap::new();
        for r in &self.records {
            if let Some(k) = r.injected {
                *m.entry(k.label()).or_insert(0) += 1;
            }
        }
        m
    }

    /// Resolution counts by label, in stable order.
    #[must_use]
    pub fn resolution_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut m = BTreeMap::new();
        for r in &self.records {
            *m.entry(r.resolution.label()).or_insert(0) += 1;
        }
        m
    }

    /// Serializes the report as deterministic JSON (schema
    /// `capcheri.fault_campaign.v1`): same campaign, same bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.string("capcheri.fault_campaign.v1");
        self.write_fields(&mut w);
        w.end_object();
        w.finish()
    }

    /// Writes the report's body keys (everything but `schema`) into an
    /// open JSON object — shared between `capcheri.fault_campaign.v1`
    /// and the embedded `campaign` object of `capcheri.adapt.v1`, so the
    /// two serializations cannot drift.
    pub(crate) fn write_fields(&self, w: &mut JsonWriter) {
        w.key("seed");
        w.u64(self.seed);
        w.key("spec");
        w.string(&self.spec);
        w.key("tasks");
        w.u64(u64::from(self.tasks));
        w.key("policy");
        w.begin_object();
        w.key("max_attempts");
        w.u64(u64::from(self.policy.max_attempts));
        w.key("backoff_base");
        w.u64(self.policy.backoff_base);
        w.key("watchdog_budget");
        w.u64(self.policy.watchdog_budget);
        w.key("quarantine_threshold");
        w.u64(u64::from(self.policy.quarantine_threshold));
        w.end_object();
        w.key("records");
        w.begin_array();
        for r in &self.records {
            w.begin_object();
            w.key("task");
            w.u64(u64::from(r.index));
            w.key("injected");
            w.string(r.injected.map_or("none", FaultKind::label));
            w.key("attempts");
            w.u64(u64::from(r.attempts));
            w.key("resolution");
            w.string(r.resolution.label());
            if let Some(d) = &r.denial {
                w.key("denial");
                w.string(d);
            }
            w.key("degraded");
            w.bool(r.degraded);
            w.key("tags_cleared");
            w.u64(r.tags_cleared);
            w.end_object();
        }
        w.end_array();
        w.key("injected_counts");
        w.begin_object();
        for (label, count) in self.injected_counts() {
            w.key(label);
            w.u64(count);
        }
        w.end_object();
        w.key("resolution_counts");
        w.begin_object();
        for (label, count) in self.resolution_counts() {
            w.key(label);
            w.u64(count);
        }
        w.end_object();
        w.key("degraded");
        w.bool(self.degraded);
        w.key("quarantined_fus");
        w.u64(self.quarantined_fus);
        w.key("driver_cycles");
        w.u64(self.driver_cycles);
        w.key("denied_checks");
        w.u64(self.denied_checks);
        w.key("corruption_detected");
        w.u64(self.corruption_detected);
        w.key("events");
        w.u64(self.events);
    }
}

/// The campaign workload: a small streaming kernel over the task's two
/// buffers — enough memory operations that every injection window index
/// lands on real traffic.
pub(crate) fn synthetic_kernel(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    for i in 0..16 {
        let x = eng.load_u32(0, i)?;
        eng.store_u32(1, i, x.wrapping_add(1))?;
        eng.compute(2);
    }
    Ok(())
}

/// The driver's post-run tag audit: scans the task's buffers for set
/// capability tags and clears them. An accelerator cannot legitimately
/// mint capabilities into its buffers, so any tag found there is forged
/// (or a fault) and must not survive into the next tenant.
pub(crate) fn audit_task_tags(sys: &mut HeteroSystem, task: TaskId) -> Result<u64, DriverError> {
    let layout = sys.cpu_layout(task)?;
    let mut cleared = 0u64;
    for buf in &layout.buffers {
        let mut addr = buf.base;
        while addr < buf.end() {
            if sys.memory().tag(addr) {
                sys.memory_mut()
                    .set_tag_raw(addr, false)
                    .map_err(DriverError::Platform)?;
                cleared += 1;
            }
            addr += 16;
        }
    }
    Ok(cleared)
}

/// Runs a seeded fault campaign and returns its deterministic report.
///
/// The system under test is a CHERI CPU with `config.protection` on the
/// accelerator path (default: the cache-backed CapChecker, so the
/// degradation path is reachable) and `config.fus` engines. Every
/// task draws one injection decision, runs the synthetic kernel under
/// `kernel → FaultyEngine → WatchdogEngine → ProtectedEngine`, and is
/// driven to exactly one [`Resolution`] by the retry loop.
///
/// # Errors
///
/// Propagates driver platform errors ([`DriverError`]); protection
/// denials, hangs, and transients are campaign *outcomes*, not errors.
///
/// # Panics
///
/// Panics only on simulator invariant violations (e.g. a task buffer
/// outside physical memory), which would be bugs, not fault outcomes.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignReport, DriverError> {
    let policy = config.policy;
    // The revocation sweep walks the live-capability index, so campaigns
    // run at the default physical memory size — sweep cost no longer
    // scales with it.
    let mut sys = HeteroSystem::new(SystemConfig {
        protection: config.protection,
        ..SystemConfig::default()
    });
    sys.add_fus("accel", config.fus);
    // Long campaigns generate events proportional to task count; the
    // bounded buffer keeps memory flat while `recorded()` (below) keeps
    // the report's event count independent of the cap.
    let tracer = SharedTracer::with_capacity(64 * 1024);
    sys.set_tracer(tracer.clone());

    let mut plan = FaultPlan::new(config.spec.clone(), config.seed);
    let mut records = Vec::with_capacity(config.tasks as usize);
    let mut fu_faults: BTreeMap<usize, u32> = BTreeMap::new();
    let mut degraded = false;
    let mut degrade_detections = 0u64;

    for index in 0..config.tasks {
        let mut injected = plan.sample();
        let req = TaskRequest::accel(format!("t{index}"), "accel")
            .rw_buffers([config.buffer_bytes, config.buffer_bytes]);
        let task = match sys.allocate_task(&req) {
            Ok(t) => t,
            Err(DriverError::NoFreeFu { .. }) => {
                records.push(TaskRecord {
                    index,
                    injected: injected.map(|f| f.kind),
                    attempts: 0,
                    resolution: Resolution::Starved,
                    denial: None,
                    degraded: false,
                    tags_cleared: 0,
                });
                continue;
            }
            Err(e) => return Err(e),
        };
        let fu = sys.task_fu(task)?.expect("campaign tasks are accel tasks");

        // Out-of-band injections happen before the run; a cache-corrupt
        // draw after degradation has no target left and is dropped.
        if let Some(f) = injected {
            match f.kind {
                FaultKind::TagFlip => {
                    let base = sys.cpu_layout(task)?.buffers[0].base;
                    let granules = (config.buffer_bytes / 16).max(1);
                    let addr = base + (f.at_op % granules) * 16;
                    sys.memory_mut()
                        .set_tag_raw(addr, true)
                        .expect("task buffers are in range");
                }
                FaultKind::CacheCorrupt => match sys.cached_checker_mut() {
                    Some(c) => c.corrupt_next_insert(1 << 70),
                    None => injected = None,
                },
                _ => {}
            }
        }
        if let Some(f) = injected {
            sys.record(EventKind::FaultInjected {
                task: task.0,
                fault: f.kind,
            });
        }

        let mut attempts = 0u32;
        let mut resolution = None;
        let mut denial_desc: Option<String> = None;
        let mut task_degraded = false;

        while attempts < policy.max_attempts && resolution.is_none() {
            attempts += 1;
            let engine_fault = injected.filter(|f| {
                is_engine_level(f.kind) && (attempts == 1 || persists_across_retries(f.kind))
            });
            let run = sys.run_accel_task(task, |eng| {
                let mut wd = WatchdogEngine::new(eng, policy.watchdog_budget);
                let mut fe = FaultyEngine::new(&mut wd, engine_fault);
                synthetic_kernel(&mut fe)
            });
            let outcome = match run {
                Ok(out) => match out.denial {
                    None => RecoveryOutcome::Completed,
                    Some(d) => RecoveryOutcome::Denied(d),
                },
                Err(DriverError::WatchdogTimeout { ops, .. }) => RecoveryOutcome::TimedOut { ops },
                Err(DriverError::TransientFault(k)) => RecoveryOutcome::Transient(k),
                Err(e) => return Err(e),
            };

            let mut schedule_retry = false;
            match outcome {
                RecoveryOutcome::Completed => {
                    denial_desc = None;
                    resolution = Some(if attempts > 1 {
                        Resolution::RetriedCompleted
                    } else {
                        Resolution::Completed
                    });
                }
                RecoveryOutcome::Denied(d) => {
                    denial_desc = Some(format!("{:?}", d.reason));
                    // An integrity failure inside the checker cache is the
                    // degradation trigger: swap to the uncached design and
                    // retry under it.
                    if d.reason == DenyReason::InvalidTag && sys.cached_checker().is_some() {
                        if let Some((detections, _)) = sys.degrade_to_uncached() {
                            degrade_detections += detections;
                            task_degraded = true;
                            degraded = true;
                        }
                    }
                    if attempts < policy.max_attempts {
                        schedule_retry = true;
                    } else {
                        resolution = Some(Resolution::Denied);
                    }
                }
                RecoveryOutcome::TimedOut { ops } => {
                    sys.record(EventKind::WatchdogAbort { task: task.0, ops });
                    let count = fu_faults.entry(fu).or_insert(0);
                    *count += 1;
                    if *count >= policy.quarantine_threshold {
                        let faults = *count;
                        sys.quarantine_fu(fu, faults);
                        denial_desc = Some(format!("engine hung after {ops} ops"));
                        resolution = Some(Resolution::Quarantined);
                    } else if attempts < policy.max_attempts {
                        schedule_retry = true;
                    } else {
                        denial_desc = Some(format!("engine hung after {ops} ops"));
                        resolution = Some(Resolution::Denied);
                    }
                }
                RecoveryOutcome::Transient(kind) => {
                    if attempts < policy.max_attempts {
                        schedule_retry = true;
                    } else {
                        denial_desc = Some(format!("transient fault: {kind}"));
                        resolution = Some(Resolution::Denied);
                    }
                }
            }
            if schedule_retry {
                sys.clear_protection_exception();
                sys.clear_task_fault(task)?;
                let backoff = policy.backoff_after(attempts);
                sys.advance_clock(backoff);
                sys.record(EventKind::TaskRetry {
                    task: task.0,
                    attempt: attempts + 1,
                    backoff,
                });
            }
        }
        let mut resolution = resolution.unwrap_or(Resolution::Denied);

        // The driver's tag audit runs on every task teardown: a forged
        // tag in a buffer must never survive to the next tenant.
        let tags_cleared = audit_task_tags(&mut sys, task)?;
        if tags_cleared > 0 {
            sys.record(EventKind::TagAudit {
                task: task.0,
                cleared: tags_cleared,
            });
            if matches!(
                resolution,
                Resolution::Completed | Resolution::RetriedCompleted
            ) {
                resolution = Resolution::Denied;
                denial_desc = Some(format!("forged tag audit cleared {tags_cleared}"));
            }
        }

        sys.deallocate_task(task)?;
        records.push(TaskRecord {
            index,
            injected: injected.map(|f| f.kind),
            attempts,
            resolution,
            denial: denial_desc,
            degraded: task_degraded,
            tags_cleared,
        });
    }

    let mut registry = Registry::new();
    sys.export_metrics(&mut registry);
    let snapshot = registry.snapshot();
    let denied_checks = snapshot.counter("checker.denied").unwrap_or(0)
        + snapshot.counter("cache.denied").unwrap_or(0);
    let corruption_detected =
        degrade_detections + sys.cached_checker().map_or(0, |c| c.corruption_detected());

    Ok(CampaignReport {
        seed: config.seed,
        spec: config.spec.to_string(),
        tasks: config.tasks,
        policy,
        records,
        degraded,
        quarantined_fus: sys.quarantined_fus() as u64,
        driver_cycles: sys.driver_clock(),
        denied_checks,
        corruption_detected,
        events: tracer.recorded(),
    })
}

/// Runs a grid of fault campaigns on a scoped worker pool and returns the
/// reports in `configs` order.
///
/// Each campaign owns its whole world — system, shared tracer, fault
/// plan, metrics registry — so campaigns are the natural fan-out unit;
/// *within* a campaign the tasks share FU-quarantine and degradation
/// state and must stay sequential. For any `threads ≥ 1` the returned
/// reports (and their [`CampaignReport::to_json`] bytes) are identical to
/// calling [`run_campaign`] in a loop.
///
/// # Errors
///
/// The first [`DriverError`] in `configs` order, if any campaign fails.
///
/// # Panics
///
/// A panicking worker is resumed on the calling thread after every worker
/// has been joined (no poisoned-lock cascade; see [`perf::WorkerPanic`]).
pub fn run_campaign_grid(
    configs: &[CampaignConfig],
    threads: usize,
) -> Result<Vec<CampaignReport>, DriverError> {
    perf::parallel_map(threads, configs.len(), |i| run_campaign(&configs[i]))
        .unwrap_or_else(|p| p.resume())
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    /// An engine that accepts everything and remembers nothing.
    struct SinkEngine;

    impl Engine for SinkEngine {
        fn load(&mut self, _: usize, _: u64, _: u8) -> Result<u64, ExecFault> {
            Ok(0)
        }
        fn store(&mut self, _: usize, _: u64, _: u8, _: u64) -> Result<(), ExecFault> {
            Ok(())
        }
        fn compute(&mut self, _: u64) {}
    }

    fn campaign(spec: &str, tasks: u32, seed: u64) -> CampaignReport {
        run_campaign(&CampaignConfig {
            tasks,
            seed,
            spec: FaultSpec::from_str(spec).unwrap(),
            ..CampaignConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn watchdog_aborts_over_budget() {
        let mut sink = SinkEngine;
        let mut wd = WatchdogEngine::new(&mut sink, 4);
        assert!(wd.load(0, 0, 4).is_ok());
        wd.compute(2);
        assert!(wd.store(0, 0, 4, 1).is_ok()); // spent = 4 = budget
        assert!(!wd.tripped());
        assert!(matches!(wd.load(0, 0, 4), Err(ExecFault::Hung { ops: 5 })));
        assert!(wd.tripped());
    }

    #[test]
    fn watchdog_clamps_runaway_compute() {
        let mut sink = SinkEngine;
        let mut wd = WatchdogEngine::new(&mut sink, 100);
        wd.compute(u64::MAX); // the hang spin
        assert!(wd.tripped());
        assert!(matches!(wd.load(0, 0, 1), Err(ExecFault::Hung { .. })));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let policy = RecoveryPolicy::default();
        // The documented schedule for the default policy is unchanged.
        assert_eq!(policy.backoff_after(1), 64);
        assert_eq!(policy.backoff_after(2), 128);
        assert_eq!(policy.backoff_after(3), 256);
        // Shifts that would overflow saturate to Cycles::MAX...
        assert_eq!(policy.backoff_after(64), Cycles::MAX);
        assert_eq!(policy.backoff_after(65), Cycles::MAX);
        assert_eq!(policy.backoff_after(u32::MAX), Cycles::MAX);
        // ...including lost-top-bit overflow below the shift-width limit.
        let wide = RecoveryPolicy {
            backoff_base: 1 << 62,
            ..RecoveryPolicy::default()
        };
        assert_eq!(wide.backoff_after(2), 1 << 63);
        assert_eq!(wide.backoff_after(3), Cycles::MAX);
        // A zero base never waits, no matter the attempt count.
        let zero = RecoveryPolicy {
            backoff_base: 0,
            ..RecoveryPolicy::default()
        };
        assert_eq!(zero.backoff_after(100), 0);
    }

    #[test]
    fn huge_max_attempts_campaign_does_not_panic() {
        // Regression: with max_attempts ≥ 64 the old `base << (n-1)`
        // overflowed the shift on persistently-failing tasks. The
        // garbled-dma fault persists across retries, so every attempt
        // fails and the backoff schedule is walked all the way out.
        let r = run_campaign(&CampaignConfig {
            tasks: 2,
            seed: 7,
            spec: FaultSpec::from_str("garbled-dma:1").unwrap(),
            policy: RecoveryPolicy {
                max_attempts: 70,
                ..RecoveryPolicy::default()
            },
            ..CampaignConfig::default()
        })
        .unwrap();
        for t in &r.records {
            assert_eq!(t.resolution, Resolution::Denied);
            assert_eq!(t.attempts, 70);
        }
        // The driver clock saturated rather than wrapping.
        assert_eq!(r.driver_cycles, Cycles::MAX);
    }

    #[test]
    fn probation_label_is_distinct_and_absent_without_controller() {
        assert_eq!(
            Resolution::QuarantinedProbation.label(),
            "quarantined-probation"
        );
        assert_ne!(
            Resolution::QuarantinedProbation.label(),
            Resolution::Quarantined.label()
        );
        // The plain campaign (controller off) never produces it, keeping
        // capcheri.fault_campaign.v1 bytes unchanged.
        let r = campaign("engine-hang:1", 6, 7);
        assert!(r
            .records
            .iter()
            .all(|t| t.resolution != Resolution::QuarantinedProbation));
        assert!(!r.to_json().contains("quarantined-probation"));
    }

    #[test]
    fn clean_campaign_all_complete() {
        let r = campaign("none", 8, 1);
        assert_eq!(r.records.len(), 8);
        assert!(r
            .records
            .iter()
            .all(|t| t.resolution == Resolution::Completed && t.attempts == 1));
        assert!(!r.degraded);
        assert_eq!(r.denied_checks, 0);
    }

    #[test]
    fn same_seed_same_bytes() {
        let a = campaign("all:0.9", 24, 42);
        let b = campaign("all:0.9", 24, 42);
        assert_eq!(a.to_json(), b.to_json());
        let c = campaign("all:0.9", 24, 43);
        assert_ne!(a.to_json(), c.to_json(), "a different seed must differ");
        obs::json::validate(&a.to_json()).unwrap();
    }

    #[test]
    fn rogue_dma_is_denied_then_retried() {
        let r = campaign("rogue-dma:1", 4, 7);
        for t in &r.records {
            assert_eq!(t.injected, Some(FaultKind::RogueDma));
            assert_eq!(t.resolution, Resolution::RetriedCompleted);
            assert_eq!(t.attempts, 2);
        }
        assert!(r.denied_checks >= 4);
    }

    #[test]
    fn garbled_dma_exhausts_retries_with_latched_denial() {
        let r = campaign("garbled-dma:1", 4, 7);
        for t in &r.records {
            assert_eq!(t.resolution, Resolution::Denied);
            assert_eq!(t.attempts, r.policy.max_attempts);
            assert!(t.denial.is_some(), "the denial cause is on record");
        }
    }

    #[test]
    fn engine_hangs_quarantine_then_starve() {
        let r = campaign("engine-hang:1", 6, 7);
        let counts = r.resolution_counts();
        assert_eq!(counts.get("quarantined"), Some(&4), "one per engine");
        assert_eq!(counts.get("starved"), Some(&2), "no healthy engine left");
        assert_eq!(r.quarantined_fus, 4);
    }

    #[test]
    fn dropped_beats_retry_cleanly() {
        let r = campaign("dropped-beat:1", 4, 7);
        for t in &r.records {
            assert_eq!(t.resolution, Resolution::RetriedCompleted);
            assert_eq!(t.attempts, 2);
        }
    }

    #[test]
    fn forged_tags_are_audited_away() {
        let r = campaign("tag-flip:1", 4, 7);
        for t in &r.records {
            assert_eq!(t.resolution, Resolution::Denied);
            assert_eq!(t.tags_cleared, 1);
        }
    }

    #[test]
    fn cache_corruption_degrades_once_then_runs_uncached() {
        let r = campaign("cache-corrupt:1", 6, 7);
        assert!(r.degraded);
        assert_eq!(r.corruption_detected, 1, "one checksum failure, caught");
        let first = &r.records[0];
        assert_eq!(first.resolution, Resolution::RetriedCompleted);
        assert!(first.degraded);
        // After degradation the cache no longer exists to corrupt: later
        // draws are dropped and the tasks run clean on the fixed table.
        for t in &r.records[1..] {
            assert_eq!(t.injected, None);
            assert_eq!(t.resolution, Resolution::Completed);
        }
    }

    #[test]
    fn no_task_is_silently_lost() {
        for seed in 0..8 {
            let r = campaign("all:0.8", 16, seed);
            assert_eq!(r.records.len(), 16, "one record per task");
            let injected: u64 = r.injected_counts().values().sum();
            // Every injected fault ended in an explicit non-clean
            // resolution; clean completion only happens uninjected.
            for t in &r.records {
                if t.injected.is_some() {
                    assert_ne!(t.resolution, Resolution::Completed);
                }
            }
            // Injections are visible in the event stream too.
            assert!(r.events >= injected, "events cover at least the injections");
        }
    }
}
