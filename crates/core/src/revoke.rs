//! Capability revocation sweeping.
//!
//! The CapChecker handles the *accelerator* side of temporal safety:
//! deallocation evicts the task's table entries, so stale DMA dies at the
//! checker. But a CHERI **CPU** may still hold — or have spilled to
//! memory — capabilities into the freed region, and "capabilities …
//! are revoked asynchronously by software" (§7.2). This module is that
//! software: a sweep over the shadow tag map that invalidates every
//! in-memory capability whose authority intersects a freed region.
//!
//! The sweep only ever *clears* tags — it is monotonic by construction
//! and cannot mint authority — so running it is always safe.

use cheri::{Capability, CAP_SIZE_BYTES};
use hetsim::TaggedMemory;

/// Result of one revocation sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Capability-aligned granules inspected.
    pub granules_scanned: u64,
    /// Valid capabilities found.
    pub capabilities_found: u64,
    /// Capabilities whose tags were cleared because their bounds
    /// intersected the revoked region.
    pub revoked: u64,
}

/// Returns `true` if authority `[cap_base, cap_top)` intersects the
/// revoked region `[base, base + len)`.
fn bounds_intersect(cap_base: u64, cap_top: u128, base: u64, len: u64) -> bool {
    let lo = u128::from(base);
    let hi = lo + u128::from(len);
    u128::from(cap_base) < hi && cap_top > lo
}

/// Returns `true` if `cap`'s authority intersects `[base, base + len)`.
fn intersects(cap: &Capability, base: u64, len: u64) -> bool {
    bounds_intersect(cap.base(), cap.top(), base, len)
}

/// Sweeps `mem`, clearing the tag of every valid in-memory capability
/// that could still authorize access to the revoked region.
///
/// Cost is proportional to the number of live in-memory capabilities
/// (via [`TaggedMemory::tagged_capabilities`]'s interval index), not to
/// physical memory — production systems make the same move with amortized
/// structures (CHERIoT's load filter, Cornucopia's epochs); the sweep's
/// *effect* is identical, and [`sweep_revoked_naive`] plus a property
/// test pin that equivalence.
#[must_use]
pub fn sweep_revoked(mem: &mut TaggedMemory, base: u64, len: u64) -> SweepReport {
    sweep_revoked_many(mem, &[(base, len)])
}

/// One pass over the live-capability index revoking capabilities into
/// *any* of `regions` (a task's scattered buffers die in a single sweep).
#[must_use]
pub fn sweep_revoked_many(mem: &mut TaggedMemory, regions: &[(u64, u64)]) -> SweepReport {
    let mut report = SweepReport::default();
    let doomed: Vec<u64> = mem
        .tagged_capabilities()
        .filter(|(_, cap_base, cap_top)| {
            report.granules_scanned += 1;
            report.capabilities_found += 1;
            regions
                .iter()
                .any(|(base, len)| bounds_intersect(*cap_base, *cap_top, *base, *len))
        })
        .map(|(addr, _, _)| addr)
        .collect();
    report.revoked = doomed.len() as u64;
    for addr in doomed {
        mem.clear_tags(addr, CAP_SIZE_BYTES);
    }
    report
}

/// The original stop-the-world sweep: every granule of physical memory is
/// inspected, tagged granules are decoded, intersecting capabilities die.
///
/// O(memory) — kept as the reference the indexed [`sweep_revoked_many`]
/// is property-tested against, and as documentation of what hardware
/// without a tag-map index would actually do.
#[must_use]
pub fn sweep_revoked_naive(mem: &mut TaggedMemory, regions: &[(u64, u64)]) -> SweepReport {
    let mut report = SweepReport::default();
    let mut addr = 0u64;
    while addr + CAP_SIZE_BYTES <= mem.size() {
        report.granules_scanned += 1;
        if mem.tag(addr) {
            let (bits, tag) = mem.read_capability(addr).expect("aligned in-range read");
            debug_assert!(tag);
            report.capabilities_found += 1;
            let cap = bits.decode(true);
            if regions
                .iter()
                .any(|(base, len)| intersects(&cap, *base, *len))
            {
                mem.clear_tags(addr, CAP_SIZE_BYTES);
                report.revoked += 1;
            }
        }
        addr += CAP_SIZE_BYTES;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Perms;

    fn spill(mem: &mut TaggedMemory, at: u64, base: u64, len: u64) {
        let cap = Capability::root()
            .set_bounds(base, len)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap();
        mem.write_capability(at, cap.compress(), true).unwrap();
    }

    #[test]
    fn sweep_kills_exactly_the_intersecting_capabilities() {
        let mut mem = TaggedMemory::new(64 * 1024);
        spill(&mut mem, 0x100, 0x4000, 0x100); // inside the freed region
        spill(&mut mem, 0x110, 0x3ff0, 0x20); // straddles its start
        spill(&mut mem, 0x120, 0x8000, 0x100); // unrelated
        spill(&mut mem, 0x130, 0x40f0, 0x20); // straddles its end

        let report = sweep_revoked(&mut mem, 0x4000, 0x100);
        assert_eq!(report.capabilities_found, 4);
        assert_eq!(report.revoked, 3);
        assert!(!mem.tag(0x100));
        assert!(!mem.tag(0x110));
        assert!(mem.tag(0x120), "the unrelated capability must survive");
        assert!(!mem.tag(0x130));
    }

    #[test]
    fn sweep_is_idempotent_and_monotonic() {
        let mut mem = TaggedMemory::new(16 * 1024);
        spill(&mut mem, 0x40, 0x1000, 0x100);
        let first = sweep_revoked(&mut mem, 0x1000, 0x100);
        assert_eq!(first.revoked, 1);
        let second = sweep_revoked(&mut mem, 0x1000, 0x100);
        assert_eq!(second.revoked, 0, "nothing left to revoke");
        assert_eq!(mem.tag_count(), 0);
    }

    #[test]
    fn adjacent_regions_do_not_intersect() {
        let mut mem = TaggedMemory::new(16 * 1024);
        spill(&mut mem, 0x40, 0x1000, 0x100); // [0x1000, 0x1100)
                                              // Revoking the region that *ends* at its base and the one that
                                              // *starts* at its top leaves it alone.
        assert_eq!(sweep_revoked(&mut mem, 0xf00, 0x100).revoked, 0);
        assert_eq!(sweep_revoked(&mut mem, 0x1100, 0x100).revoked, 0);
        assert!(mem.tag(0x40));
    }
}
