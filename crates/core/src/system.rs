//! The heterogeneous system and its trusted software driver.
//!
//! [`HeteroSystem`] assembles the prototype of Figure 2: tagged main
//! memory, a CPU (plain or CHERI), accelerator functional units with MMIO
//! control registers, and a protection mechanism on the accelerator DMA
//! path — the CapChecker, one of the baselines, or nothing.
//!
//! The driver half implements Figure 6 faithfully:
//!
//! * **allocation** ① — find a free functional unit of the right class
//!   (or fail, where the paper's driver stalls), allocate buffers on the
//!   shared heap, derive their capabilities in the provenance tree, import
//!   them into the CapChecker over MMIO, and load the accelerator's base
//!   pointers (object-tagged in Coarse mode);
//! * **execution** — run the task's kernel through the protected path;
//! * **deallocation** ② — evict the task's capabilities, clear the control
//!   registers so the next task inherits nothing, scrub buffer data if an
//!   exception was raised, release the FU, and report the exception.

use crate::alloc::{AllocError, HeapAllocator};
use crate::cached::{CachedCapChecker, CachedCheckerConfig};
use crate::checker::CapChecker;
use crate::config::{CheckerConfig, CheckerMode};
use crate::elide::{SegmentVerdicts, StaticVerdictMap};
use crate::engines::{CpuEngine, ProtectedEngine, Provenance};
use cheri::{compressed, Capability, CapabilityTree, NodeId, ObjectKind, Perms};
use hetsim::mmio::RegisterFile;
use hetsim::{
    Cycles, Denial, Engine, ExecFault, MasterId, ObjectId, TaggedMemory, TaskId, TaskLayout, Trace,
};
use ioprotect::{
    GrantError, Granularity, IoProtection, Iommu, IommuConfig, Iopmp, IopmpConfig, NoProtection,
    Snpu,
};
use obs::{EventKind, FaultKind, Phase, Registry, SharedTracer, Tracer};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Which mechanism guards the accelerator DMA path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtectionChoice {
    /// Nothing: the traditional embedded system.
    None,
    /// A RISC-V IOPMP.
    Iopmp(IopmpConfig),
    /// A page-granular IOMMU.
    Iommu(IommuConfig),
    /// An sNPU-style task-window checker.
    Snpu,
    /// The CapChecker (Fine or Coarse per its config).
    CapChecker(CheckerConfig),
    /// The cache-backed CapChecker variant (§5.2.3's microarchitectural
    /// option): a small LRU cache over a memory-resident table.
    CachedCapChecker(crate::cached::CachedCheckerConfig),
}

/// System-level configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    /// Physical memory size in bytes.
    pub mem_size: u64,
    /// First heap byte available to the driver's allocator.
    pub heap_base: u64,
    /// Whether the CPU is CHERI-extended (checks its own accesses).
    pub cheri_cpu: bool,
    /// Protection on the accelerator path.
    pub protection: ProtectionChoice,
    /// Latency of one control-register MMIO write.
    pub mmio_write_cycles: Cycles,
    /// Run a capability-revocation sweep over memory when a task's
    /// buffers are freed, invalidating any CPU-spilled capabilities into
    /// the region (temporal safety beyond the checker's eviction).
    pub revocation_sweep: bool,
    /// Unmapped guard bytes the allocator leaves after every buffer — the
    /// §5.2.3 safeguard that turns an *accidental* contiguous overflow in
    /// Coarse mode into a fault instead of a silent hit on the next
    /// buffer. (It cannot stop deliberate address forging; Table 3 still
    /// scores Coarse "TA".)
    pub guard_bytes: u64,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig {
            mem_size: 64 << 20,
            heap_base: 1 << 20,
            cheri_cpu: true,
            protection: ProtectionChoice::CapChecker(CheckerConfig::fine()),
            mmio_write_cycles: 30,
            revocation_sweep: true,
            guard_bytes: 0,
        }
    }
}

/// The five system configurations compared in §6.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemVariant {
    /// Plain CPU only.
    Cpu,
    /// CHERI CPU only.
    CheriCpu,
    /// Plain CPU + unprotected accelerators.
    CpuAccel,
    /// CHERI CPU + unprotected accelerators.
    CheriCpuAccel,
    /// CHERI CPU + CapChecker-guarded accelerators (this paper).
    CheriCpuCheriAccel,
}

impl SystemVariant {
    /// All five, in the paper's order.
    pub const ALL: [SystemVariant; 5] = [
        SystemVariant::Cpu,
        SystemVariant::CheriCpu,
        SystemVariant::CpuAccel,
        SystemVariant::CheriCpuAccel,
        SystemVariant::CheriCpuCheriAccel,
    ];

    /// The paper's label for this configuration.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemVariant::Cpu => "cpu",
            SystemVariant::CheriCpu => "ccpu",
            SystemVariant::CpuAccel => "cpu+accel",
            SystemVariant::CheriCpuAccel => "ccpu+accel",
            SystemVariant::CheriCpuCheriAccel => "ccpu+caccel",
        }
    }

    /// Whether this variant executes the kernel on the accelerator.
    #[must_use]
    pub fn uses_accelerator(self) -> bool {
        !matches!(self, SystemVariant::Cpu | SystemVariant::CheriCpu)
    }

    /// Whether the CPU is CHERI-extended.
    #[must_use]
    pub fn cheri_cpu(self) -> bool {
        !matches!(self, SystemVariant::Cpu | SystemVariant::CpuAccel)
    }

    /// The corresponding [`SystemConfig`].
    #[must_use]
    pub fn config(self) -> SystemConfig {
        SystemConfig {
            cheri_cpu: self.cheri_cpu(),
            protection: if self == SystemVariant::CheriCpuCheriAccel {
                ProtectionChoice::CapChecker(CheckerConfig::fine())
            } else {
                ProtectionChoice::None
            },
            ..SystemConfig::default()
        }
    }
}

impl fmt::Display for SystemVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Driver-level failures.
#[derive(Debug)]
pub enum DriverError {
    /// No free functional unit of the requested class (the paper's driver
    /// stalls here; the simulator surfaces it).
    NoFreeFu {
        /// The FU class that was requested.
        class: String,
    },
    /// The heap cannot satisfy a buffer allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// The protection mechanism is out of entries.
    ProtectionTableFull(GrantError),
    /// A capability derivation failed.
    Capability(cheri::CapFault),
    /// The task ID is unknown (already deallocated?).
    UnknownTask(TaskId),
    /// The operation needs an accelerator task but this one has no FU.
    NotAnAcceleratorTask(TaskId),
    /// A host access fell outside the target buffer.
    HostAccessOutOfBounds,
    /// A kernel access left simulated physical memory (platform bug, not a
    /// protection outcome).
    Platform(hetsim::MemError),
    /// The heap rejected a free — the driver's own bookkeeping is corrupt
    /// (double free or foreign block), which must surface, not be ignored.
    Alloc(AllocError),
    /// The per-task watchdog expired: the engine hung (or spun past its
    /// cycle budget) and the driver aborted the kernel.
    WatchdogTimeout {
        /// The aborted task.
        task: TaskId,
        /// Watchdog operation budget consumed at abort time.
        ops: u64,
    },
    /// The engine reported a transient transfer fault (e.g. a dropped bus
    /// beat). The driver may retry the task.
    TransientFault(FaultKind),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::NoFreeFu { class } => {
                write!(f, "no free functional unit of class {class:?}")
            }
            DriverError::OutOfMemory { requested } => {
                write!(f, "heap cannot allocate {requested} bytes")
            }
            DriverError::ProtectionTableFull(e) => write!(f, "protection grant failed: {e}"),
            DriverError::Capability(e) => write!(f, "capability derivation failed: {e}"),
            DriverError::UnknownTask(t) => write!(f, "unknown task {t}"),
            DriverError::NotAnAcceleratorTask(t) => write!(f, "{t} has no functional unit"),
            DriverError::HostAccessOutOfBounds => write!(f, "host access outside the buffer"),
            DriverError::Platform(e) => write!(f, "platform fault: {e}"),
            DriverError::Alloc(e) => write!(f, "allocator rejected a free: {e}"),
            DriverError::WatchdogTimeout { task, ops } => {
                write!(f, "watchdog aborted {task} after {ops} engine ops")
            }
            DriverError::TransientFault(k) => write!(f, "transient engine fault: {k}"),
        }
    }
}

impl Error for DriverError {}

impl From<cheri::CapFault> for DriverError {
    fn from(e: cheri::CapFault) -> DriverError {
        DriverError::Capability(e)
    }
}

impl From<AllocError> for DriverError {
    fn from(e: AllocError) -> DriverError {
        DriverError::Alloc(e)
    }
}

/// One buffer in a task request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferSpec {
    /// Size in bytes.
    pub size: u64,
    /// Permissions delegated to the task for this buffer.
    pub perms: Perms,
    /// Least-privilege permissions installed into the *device-side*
    /// protection mechanism, when tighter than `perms`. The host-side
    /// capability (used by `write_buffer`/`read_buffer` to stage inputs
    /// and read results) keeps `perms`; only the accelerator's checker
    /// entry is narrowed. `None` installs `perms` unchanged.
    pub device_perms: Option<Perms>,
}

impl BufferSpec {
    /// A read-write buffer (the common case).
    #[must_use]
    pub fn rw(size: u64) -> BufferSpec {
        BufferSpec {
            size,
            perms: Perms::RW,
            device_perms: None,
        }
    }

    /// A read-only buffer.
    #[must_use]
    pub fn ro(size: u64) -> BufferSpec {
        BufferSpec {
            size,
            perms: Perms::LOAD,
            device_perms: None,
        }
    }

    /// Narrows the device-side grant to `perms` (least privilege for the
    /// accelerator) while the host keeps the original permissions.
    #[must_use]
    pub fn device(mut self, perms: Perms) -> BufferSpec {
        self.device_perms = Some(perms);
        self
    }
}

/// What an application asks the driver for (§5.3: "a set of objects, a
/// pointer to the accelerator task, … and buffer sizes").
#[derive(Clone, Debug)]
pub struct TaskRequest {
    /// Human-readable task name.
    pub name: String,
    /// The FU class needed, or `None` for a CPU-only task.
    pub fu_class: Option<String>,
    /// The buffers to allocate.
    pub buffers: Vec<BufferSpec>,
}

impl TaskRequest {
    /// Starts a request for an accelerator task of class `fu_class`.
    #[must_use]
    pub fn accel(name: impl Into<String>, fu_class: impl Into<String>) -> TaskRequest {
        TaskRequest {
            name: name.into(),
            fu_class: Some(fu_class.into()),
            buffers: Vec::new(),
        }
    }

    /// Starts a request for a CPU task.
    #[must_use]
    pub fn cpu(name: impl Into<String>) -> TaskRequest {
        TaskRequest {
            name: name.into(),
            fu_class: None,
            buffers: Vec::new(),
        }
    }

    /// Adds a buffer.
    #[must_use]
    pub fn buffer(mut self, spec: BufferSpec) -> TaskRequest {
        self.buffers.push(spec);
        self
    }

    /// Adds read-write buffers of the given sizes.
    #[must_use]
    pub fn rw_buffers(mut self, sizes: impl IntoIterator<Item = u64>) -> TaskRequest {
        self.buffers.extend(sizes.into_iter().map(BufferSpec::rw));
        self
    }

    /// Narrows the device-side grants of the already-added buffers to the
    /// given per-port permissions, in buffer order (e.g. the analyzer's
    /// least-privilege envelope from the declared port map). Host-side
    /// permissions are untouched, so staging inputs and reading results
    /// keep working. Extra permissions beyond the buffer count are
    /// ignored; buffers past the iterator keep their full grant.
    #[must_use]
    pub fn device_ports(mut self, perms: impl IntoIterator<Item = Perms>) -> TaskRequest {
        for (spec, p) in self.buffers.iter_mut().zip(perms) {
            spec.device_perms = Some(p);
        }
        self
    }
}

/// The result of running a task's kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskOutcome {
    /// `None` if the kernel ran to completion; the latched exception
    /// otherwise.
    pub denial: Option<Denial>,
}

impl TaskOutcome {
    /// `true` when no exception was raised.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.denial.is_none()
    }
}

/// The deallocation report handed back to the application (Figure 6 ②).
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// Task name.
    pub name: String,
    /// The exception that aborted the task, if any.
    pub exception: Option<Denial>,
    /// Objects whose table entries carried the exception bit.
    pub offending_objects: Vec<ObjectId>,
    /// Whether buffer data was scrubbed before the memory was freed.
    pub scrubbed: bool,
    /// CPU-spilled capabilities into the freed region that the
    /// revocation sweep invalidated.
    pub capabilities_revoked: u64,
}

#[derive(Debug)]
struct Fu {
    class: String,
    busy: Option<TaskId>,
    regs: RegisterFile,
    /// Set when the driver has given up on this engine (repeated watchdog
    /// aborts); the allocator never hands it out again.
    quarantined: bool,
}

#[derive(Debug)]
struct TaskState {
    name: String,
    fu: Option<usize>,
    buffers: Vec<(u64, u64)>,
    padded: Vec<(u64, u64)>,
    caps: Vec<Capability>,
    /// What was actually installed into the device-side protection: equal
    /// to `caps` unless a buffer carried narrower `device_perms`.
    device_caps: Vec<Capability>,
    dynamic_nodes: Vec<NodeId>,
    task_node: NodeId,
    setup_cycles: Cycles,
    trace: Option<Trace>,
    fault: Option<Denial>,
}

enum Protection {
    Checker(CapChecker),
    Cached(CachedCapChecker),
    Baseline(Box<dyn IoProtection>),
}

impl Protection {
    fn as_dyn(&mut self) -> &mut dyn IoProtection {
        match self {
            Protection::Checker(c) => c,
            Protection::Cached(c) => c,
            Protection::Baseline(b) => b.as_mut(),
        }
    }

    fn as_dyn_ref(&self) -> &dyn IoProtection {
        match self {
            Protection::Checker(c) => c,
            Protection::Cached(c) => c,
            Protection::Baseline(b) => b.as_ref(),
        }
    }
}

impl fmt::Debug for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Protection({})", self.as_dyn_ref().name())
    }
}

/// Runs one kernel through a [`ProtectedEngine`] monomorphized for the
/// concrete protection type `P`, so the per-beat check+translate path is
/// fully inlined into the engine's load/store bodies.
#[allow(clippy::too_many_arguments)]
fn drive_kernel<P, F>(
    mem: &mut TaggedMemory,
    protection: &mut P,
    layout: TaskLayout,
    master: MasterId,
    task: TaskId,
    provenance: Provenance,
    tracer: Option<SharedTracer>,
    kernel: F,
) -> (Result<(), ExecFault>, Option<Denial>, Trace)
where
    P: IoProtection + ?Sized,
    F: FnOnce(&mut dyn Engine) -> Result<(), ExecFault>,
{
    let mut eng = ProtectedEngine::new(mem, protection, layout, master, task, provenance);
    if let Some(t) = tracer {
        eng = eng.with_tracer(t);
    }
    let result = kernel(&mut eng);
    let denial = eng.first_denial();
    (result, denial, eng.into_trace())
}

/// The assembled heterogeneous system: memory, CPU, FUs, protection, and
/// the trusted driver.
///
/// # Examples
///
/// ```
/// use capchecker::{BufferSpec, HeteroSystem, SystemConfig, TaskRequest};
/// use hetsim::Engine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sys = HeteroSystem::new(SystemConfig::default());
/// sys.add_fus("vadd", 1);
///
/// let task = sys.allocate_task(
///     &TaskRequest::accel("demo", "vadd").rw_buffers([256, 256]),
/// )?;
/// sys.write_buffer(task, 0, 0, &[1; 256])?;
/// let outcome = sys.run_accel_task(task, |eng| {
///     for i in 0..64 {
///         let x = eng.load_u32(0, i)?;
///         eng.store_u32(1, i, x + 1)?;
///         eng.compute(1);
///     }
///     Ok(())
/// })?;
/// assert!(outcome.completed());
/// let report = sys.deallocate_task(task)?;
/// assert!(report.exception.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HeteroSystem {
    config: SystemConfig,
    mem: TaggedMemory,
    protection: Protection,
    tree: CapabilityTree,
    alloc: HeapAllocator,
    fus: Vec<Fu>,
    tasks: BTreeMap<TaskId, TaskState>,
    next_task: u32,
    /// Optional event sink for driver-level events. Driver events are
    /// stamped with [`HeteroSystem::driver_clock`], the accumulated
    /// setup-cycle clock (MMIO writes and capability installs), which is
    /// a separate virtual time domain from the timing models' cycles.
    tracer: Option<SharedTracer>,
    driver_clock: Cycles,
    /// How many elided checks have already been attributed to a
    /// deallocated task ([`EventKind::ChecksElided`]); the checker's
    /// counter is cumulative, so events carry the delta.
    elided_reported: u64,
    /// Epoch-scoped verdict retention: the current analysis segment's
    /// proven-safe map, held outside the checker so the adaptive
    /// controller can re-install it after rebuilds drop it.
    segment_verdicts: SegmentVerdicts,
}

impl HeteroSystem {
    /// Builds the system described by `config`.
    #[must_use]
    pub fn new(config: SystemConfig) -> HeteroSystem {
        let protection = match config.protection {
            ProtectionChoice::None => Protection::Baseline(Box::new(NoProtection::new())),
            ProtectionChoice::Iopmp(c) => Protection::Baseline(Box::new(Iopmp::new(c))),
            ProtectionChoice::Iommu(c) => Protection::Baseline(Box::new(Iommu::new(c))),
            ProtectionChoice::Snpu => Protection::Baseline(Box::new(Snpu::new())),
            ProtectionChoice::CapChecker(c) => Protection::Checker(CapChecker::new(c)),
            ProtectionChoice::CachedCapChecker(c) => Protection::Cached(CachedCapChecker::new(c)),
        };
        HeteroSystem {
            mem: TaggedMemory::new(config.mem_size),
            protection,
            tree: CapabilityTree::new(),
            alloc: HeapAllocator::new(config.heap_base, config.mem_size - config.heap_base),
            fus: Vec::new(),
            tasks: BTreeMap::new(),
            next_task: 1,
            tracer: None,
            driver_clock: 0,
            elided_reported: 0,
            segment_verdicts: SegmentVerdicts::new(),
            config,
        }
    }

    /// Attaches an event sink. Driver lifecycle events (Figure 6 phases,
    /// MMIO capability installs, checker stalls/evictions) are recorded
    /// against the driver's setup-cycle clock; kernel runs started after
    /// this call also record per-request checker-check events.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// The driver's accumulated setup-cycle clock (advances with MMIO
    /// writes and capability installs).
    #[must_use]
    pub fn driver_clock(&self) -> Cycles {
        self.driver_clock
    }

    pub(crate) fn record(&mut self, kind: EventKind) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(self.driver_clock, kind);
        }
    }

    /// Registers `count` functional units of `class` (e.g. one per
    /// accelerator instance — the paper uses eight).
    pub fn add_fus(&mut self, class: &str, count: usize) {
        for _ in 0..count {
            self.fus.push(Fu {
                class: class.to_owned(),
                busy: None,
                regs: RegisterFile::new(32),
                quarantined: false,
            });
        }
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The simulated memory.
    #[must_use]
    pub fn memory(&self) -> &TaggedMemory {
        &self.mem
    }

    /// Mutable memory access (host-side scaffolding in tests/benches).
    pub fn memory_mut(&mut self) -> &mut TaggedMemory {
        &mut self.mem
    }

    /// The CapChecker, if this system has one.
    #[must_use]
    pub fn checker(&self) -> Option<&CapChecker> {
        match &self.protection {
            Protection::Checker(c) => Some(c),
            Protection::Cached(_) | Protection::Baseline(_) => None,
        }
    }

    /// The cache-backed CapChecker, if this system runs one.
    #[must_use]
    pub fn cached_checker(&self) -> Option<&CachedCapChecker> {
        match &self.protection {
            Protection::Cached(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable access to the cache-backed CapChecker (the fault harness's
    /// corruption hooks live on it).
    pub fn cached_checker_mut(&mut self) -> Option<&mut CachedCapChecker> {
        match &mut self.protection {
            Protection::Cached(c) => Some(c),
            _ => None,
        }
    }

    /// Installs the static analyzer's verdict map into the active
    /// CapChecker (plain or cached): pairs proved safe skip the per-beat
    /// check and count as `elided`. Returns `false` — and drops the map —
    /// on baseline systems, which have no elision path.
    ///
    /// The map does not survive [`HeteroSystem::degrade_to_uncached`]:
    /// after a degradation the caller must decide whether its proof still
    /// holds for the replacement checker and re-install explicitly.
    pub fn install_static_verdicts(&mut self, map: StaticVerdictMap) -> bool {
        let safe_pairs = map.safe_pairs();
        let installed = match &mut self.protection {
            Protection::Checker(c) => {
                c.set_static_verdicts(map);
                true
            }
            Protection::Cached(c) => {
                c.set_static_verdicts(map);
                true
            }
            Protection::Baseline(_) => false,
        };
        if installed {
            self.record(EventKind::StaticVerdictsInstalled { safe_pairs });
        }
        installed
    }

    /// Installs `map` into the active checker *and* retains it in the
    /// epoch-scoped ledger, so [`HeteroSystem::reinstall_segment_verdicts`]
    /// can restore it after a rebuild drops the checker's copy. Returns
    /// `false` on baseline systems (nothing installed or retained).
    pub fn retain_segment_verdicts(&mut self, map: StaticVerdictMap) -> bool {
        if !self.install_static_verdicts(map.clone()) {
            return false;
        }
        self.segment_verdicts.retain(map);
        true
    }

    /// Re-installs the retained segment map after a checker rebuild
    /// (mode switch or re-promotion). The rebuild dropped map and bitmap
    /// together per the coherence rule; this restores both atomically in
    /// one `set_static_verdicts` call. Returns the number of safe pairs
    /// restored, or `None` when nothing is retained or the system has no
    /// elision path.
    pub fn reinstall_segment_verdicts(&mut self) -> Option<u64> {
        let map = self.segment_verdicts.retained()?.clone();
        let safe_pairs = map.safe_pairs();
        let installed = match &mut self.protection {
            Protection::Checker(c) => {
                c.set_static_verdicts(map);
                true
            }
            Protection::Cached(c) => {
                c.set_static_verdicts(map);
                true
            }
            Protection::Baseline(_) => false,
        };
        if !installed {
            return None;
        }
        self.segment_verdicts.record_reinstall();
        self.record(EventKind::SegmentVerdictsReinstalled { safe_pairs });
        Some(safe_pairs)
    }

    /// Drops the retained segment map (the workload crossed an analysis
    /// barrier the retained proof does not cover). The checker's
    /// installed copy is untouched; rebuilds clear that side.
    pub fn clear_segment_verdicts(&mut self) {
        self.segment_verdicts.clear();
    }

    /// The epoch-scoped verdict ledger (retained map + re-install count).
    #[must_use]
    pub fn segment_verdicts(&self) -> &SegmentVerdicts {
        &self.segment_verdicts
    }

    /// The static verdict map installed into the active checker, if any.
    #[must_use]
    pub fn static_verdicts(&self) -> Option<&StaticVerdictMap> {
        match &self.protection {
            Protection::Checker(c) => c.static_verdicts(),
            Protection::Cached(c) => c.static_verdicts(),
            Protection::Baseline(_) => None,
        }
    }

    /// Starts per-master / per-`(task, object)` check attribution on the
    /// active checker (plain or cached). Returns `false` on baseline
    /// systems, which have no attribution to collect.
    pub fn enable_check_attribution(&mut self) -> bool {
        match &mut self.protection {
            Protection::Checker(c) => {
                c.enable_attribution();
                true
            }
            Protection::Cached(c) => {
                c.enable_attribution();
                true
            }
            Protection::Baseline(_) => false,
        }
    }

    /// The check attribution collected so far, if enabled.
    #[must_use]
    pub fn check_attribution(&self) -> Option<&crate::attrib::CheckAttribution> {
        match &self.protection {
            Protection::Checker(c) => c.attribution(),
            Protection::Cached(c) => c.attribution(),
            Protection::Baseline(_) => None,
        }
    }

    /// Checks elided so far by the active checker (0 on baselines).
    #[must_use]
    pub fn checks_elided(&self) -> u64 {
        match &self.protection {
            Protection::Checker(c) => c.stats().elided,
            Protection::Cached(c) => c.cache_stats().elided,
            Protection::Baseline(_) => 0,
        }
    }

    /// The protection mechanism on the accelerator path.
    #[must_use]
    pub fn protection(&self) -> &dyn IoProtection {
        self.protection.as_dyn_ref()
    }

    /// The capability provenance tree (Figure 4).
    #[must_use]
    pub fn tree(&self) -> &CapabilityTree {
        &self.tree
    }

    /// Live task IDs, in creation order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks.keys().copied()
    }

    fn state(&self, task: TaskId) -> Result<&TaskState, DriverError> {
        self.tasks.get(&task).ok_or(DriverError::UnknownTask(task))
    }

    /// Allocation ①: FU search, buffer allocation, capability derivation,
    /// CapChecker import, control-register loading.
    ///
    /// # Errors
    ///
    /// [`DriverError::NoFreeFu`] when every FU of the class is busy,
    /// [`DriverError::OutOfMemory`] when the heap is exhausted,
    /// [`DriverError::ProtectionTableFull`] when the mechanism cannot hold
    /// another entry (the hardware would stall; the driver surfaces it).
    pub fn allocate_task(&mut self, req: &TaskRequest) -> Result<TaskId, DriverError> {
        // ① step 1: find a suitable, available functional unit.
        let fu = match &req.fu_class {
            None => None,
            Some(class) => {
                let idx = self
                    .fus
                    .iter()
                    .position(|f| f.busy.is_none() && !f.quarantined && &f.class == class)
                    .ok_or_else(|| DriverError::NoFreeFu {
                        class: class.clone(),
                    })?;
                Some(idx)
            }
        };

        // ① step 2: allocate the buffers (padded so that every capability
        // is exactly representable).
        let mut buffers = Vec::with_capacity(req.buffers.len());
        let mut padded = Vec::with_capacity(req.buffers.len());
        let mut cap_sizes = Vec::with_capacity(req.buffers.len());
        for spec in &req.buffers {
            let (align, padded_size) = representable_block(spec.size);
            let reserve = padded_size + self.config.guard_bytes;
            match self.alloc.alloc(reserve, align) {
                Some(base) => {
                    buffers.push((base, spec.size));
                    padded.push((base, reserve));
                    cap_sizes.push(padded_size);
                }
                None => {
                    for (base, size) in padded {
                        self.alloc
                            .free(base, size)
                            .expect("rollback frees blocks just allocated");
                    }
                    return Err(DriverError::OutOfMemory {
                        requested: spec.size,
                    });
                }
            }
        }

        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.record(EventKind::DriverPhase {
            task: id.0,
            phase: Phase::Allocate,
        });

        // Derive the task and buffer capabilities in the provenance tree.
        let span = buffers
            .iter()
            .zip(&padded)
            .fold((u64::MAX, 0u64), |(lo, hi), (&(b, _), &(_, ps))| {
                (lo.min(b), hi.max(b + ps))
            });
        let kind = if fu.is_some() {
            ObjectKind::AcceleratorTask
        } else {
            ObjectKind::CpuTask
        };
        let task_node = if buffers.is_empty() {
            self.tree
                .derive(self.tree.root(), kind, req.name.clone(), |c| Ok(*c))?
        } else {
            self.tree
                .derive(self.tree.root(), kind, req.name.clone(), |c| {
                    c.set_bounds(span.0, span.1 - span.0)
                })?
        };
        let mut caps = Vec::with_capacity(buffers.len());
        let mut install_caps = Vec::with_capacity(buffers.len());
        for (i, (&(base, _), &psize)) in buffers.iter().zip(&cap_sizes).enumerate() {
            let perms = req.buffers[i].perms;
            let node = self.tree.derive(
                task_node,
                ObjectKind::Buffer,
                format!("{}:obj{}", req.name, i),
                |c| c.set_bounds_exact(base, psize)?.and_perms(perms),
            )?;
            let cap = *self.tree.capability(node);
            // The device-side grant may be narrower than the host-side
            // capability (least privilege for the accelerator); the host
            // keeps `cap` for staging and readback.
            install_caps.push(match req.buffers[i].device_perms {
                Some(device) => cap.and_perms(device)?,
                None => cap,
            });
            caps.push(cap);
        }

        // ① step 3: import the capabilities into the protection mechanism
        // and account for the MMIO installation cost. On CapChecker
        // systems the driver really does stage each capability over the
        // capability interconnect's register map (Figure 6 ③).
        let mut setup_cycles = 0;
        if fu.is_some() {
            let install_cost = match &self.protection {
                Protection::Checker(c) => c.config().install_cycles(),
                Protection::Cached(_) | Protection::Baseline(_) => 0,
            };
            let mut tracer = self.tracer.clone();
            let mut clock = self.driver_clock;
            for (i, cap) in install_caps.iter().enumerate() {
                let result = match &mut self.protection {
                    Protection::Checker(checker) => {
                        install_over_mmio(checker, id, ObjectId(i as u16), cap)
                    }
                    Protection::Cached(c) => c.grant(id, ObjectId(i as u16), cap),
                    Protection::Baseline(b) => b.grant(id, ObjectId(i as u16), cap),
                };
                clock = clock.saturating_add(install_cost + self.config.mmio_write_cycles);
                if let Some(t) = tracer.as_mut() {
                    t.record(
                        clock,
                        EventKind::MmioCapInstall {
                            task: id.0,
                            object: i as u16,
                            ok: result.is_ok(),
                        },
                    );
                    if matches!(result, Err(GrantError::TableFull)) {
                        t.record(clock, EventKind::CheckerStall { task: id.0 });
                    }
                }
                if let Err(e) = result {
                    self.driver_clock = clock;
                    self.protection.as_dyn().revoke_task(id);
                    for (base, size) in padded {
                        self.alloc
                            .free(base, size)
                            .expect("rollback frees blocks just allocated");
                    }
                    self.tree.revoke(task_node);
                    return Err(DriverError::ProtectionTableFull(e));
                }
            }
            if let Protection::Checker(c) = &self.protection {
                setup_cycles += caps.len() as Cycles * c.config().install_cycles();
            }
            // Control registers: one pointer per buffer plus start/config.
            setup_cycles += (caps.len() as Cycles + 2) * self.config.mmio_write_cycles;
        }
        self.driver_clock = self.driver_clock.saturating_add(setup_cycles);

        // Load the accelerator's base pointers into its control registers.
        if let Some(fu_idx) = fu {
            let coarse = self.coarse_config();
            for (i, &(base, _)) in buffers.iter().enumerate() {
                let visible = match coarse {
                    Some(cfg) => cfg.coarse_tag_address(i as u16, base),
                    None => base,
                };
                self.fus[fu_idx].regs.set(i, visible);
            }
            self.fus[fu_idx].busy = Some(id);
        }

        self.tasks.insert(
            id,
            TaskState {
                name: req.name.clone(),
                fu,
                buffers,
                padded,
                caps,
                device_caps: install_caps,
                dynamic_nodes: Vec::new(),
                task_node,
                setup_cycles,
                trace: None,
                fault: None,
            },
        );
        Ok(id)
    }

    fn coarse_config(&self) -> Option<CheckerConfig> {
        match &self.protection {
            Protection::Checker(c) if c.mode() == CheckerMode::Coarse => Some(*c.config()),
            Protection::Cached(c) if c.config().base.mode == CheckerMode::Coarse => {
                Some(c.config().base)
            }
            _ => None,
        }
    }

    /// The accelerator-visible layout of a task's buffers (object-tagged
    /// base addresses in Coarse mode).
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTask`].
    pub fn accel_layout(&self, task: TaskId) -> Result<TaskLayout, DriverError> {
        let st = self.state(task)?;
        let coarse = self.coarse_config();
        Ok(TaskLayout::new(st.buffers.iter().enumerate().map(
            |(i, &(base, size))| match coarse {
                Some(cfg) => (cfg.coarse_tag_address(i as u16, base), size),
                None => (base, size),
            },
        )))
    }

    /// The physical layout of a task's buffers (the CPU's view).
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTask`].
    pub fn cpu_layout(&self, task: TaskId) -> Result<TaskLayout, DriverError> {
        Ok(TaskLayout::new(self.state(task)?.buffers.iter().copied()))
    }

    /// Host-side buffer initialization (the CPU writes input data). On a
    /// CHERI CPU the write is checked against the buffer's capability.
    ///
    /// # Errors
    ///
    /// [`DriverError::HostAccessOutOfBounds`] on overflow,
    /// [`DriverError::UnknownTask`] for a dead handle.
    pub fn write_buffer(
        &mut self,
        task: TaskId,
        obj: usize,
        offset: u64,
        data: &[u8],
    ) -> Result<(), DriverError> {
        let st = self
            .tasks
            .get(&task)
            .ok_or(DriverError::UnknownTask(task))?;
        let &(base, size) = st
            .buffers
            .get(obj)
            .ok_or(DriverError::HostAccessOutOfBounds)?;
        if self.config.cheri_cpu {
            st.caps[obj]
                .check_access(base + offset, data.len() as u64, Perms::STORE)
                .map_err(|_| DriverError::HostAccessOutOfBounds)?;
        } else if offset + data.len() as u64 > size {
            return Err(DriverError::HostAccessOutOfBounds);
        }
        self.mem
            .write_bytes(base + offset, data)
            .map_err(|_| DriverError::HostAccessOutOfBounds)
    }

    /// Host-side buffer read-back.
    ///
    /// # Errors
    ///
    /// As [`HeteroSystem::write_buffer`].
    pub fn read_buffer(
        &self,
        task: TaskId,
        obj: usize,
        offset: u64,
        out: &mut [u8],
    ) -> Result<(), DriverError> {
        let st = self.state(task)?;
        let &(base, size) = st
            .buffers
            .get(obj)
            .ok_or(DriverError::HostAccessOutOfBounds)?;
        if self.config.cheri_cpu {
            st.caps[obj]
                .check_access(base + offset, out.len() as u64, Perms::LOAD)
                .map_err(|_| DriverError::HostAccessOutOfBounds)?;
        } else if offset + out.len() as u64 > size {
            return Err(DriverError::HostAccessOutOfBounds);
        }
        self.mem
            .read_bytes(base + offset, out)
            .map_err(|_| DriverError::HostAccessOutOfBounds)
    }

    /// Runs `kernel` on the task's accelerator FU through the protected
    /// DMA path. A denial latches as the task's exception and aborts the
    /// kernel (if the kernel propagates it, as benign kernels do).
    ///
    /// # Errors
    ///
    /// [`DriverError::NotAnAcceleratorTask`] for CPU tasks,
    /// [`DriverError::UnknownTask`] for dead handles. Protection denials
    /// are *not* errors here: they are recorded in the returned
    /// [`TaskOutcome`].
    pub fn run_accel_task<F>(&mut self, task: TaskId, kernel: F) -> Result<TaskOutcome, DriverError>
    where
        F: FnOnce(&mut dyn Engine) -> Result<(), ExecFault>,
    {
        let st = self
            .tasks
            .get(&task)
            .ok_or(DriverError::UnknownTask(task))?;
        let fu = st.fu.ok_or(DriverError::NotAnAcceleratorTask(task))?;
        let layout = self.accel_layout(task)?;
        let provenance = match &self.protection {
            Protection::Checker(c) if c.mode() == CheckerMode::Coarse => Provenance::Opaque,
            Protection::Cached(c) if c.config().base.mode == CheckerMode::Coarse => {
                Provenance::Opaque
            }
            _ => Provenance::PerObjectPorts,
        };
        let master = MasterId(fu as u16 + 1);
        self.record(EventKind::DriverPhase {
            task: task.0,
            phase: Phase::Execute,
        });
        let tracer = self.tracer.clone();
        // Dispatch once per kernel on the concrete protection type so the
        // per-beat vet pipeline (verdict-bitmap probe included) inlines
        // into the engine's load/store bodies instead of going through a
        // second virtual call on every DMA beat.
        let (result, denial, trace) = drive_kernel(
            &mut self.mem,
            self.protection.as_dyn(),
            layout,
            master,
            task,
            provenance,
            tracer,
            kernel,
        );
        let st = self.tasks.get_mut(&task).expect("state verified above");
        st.trace = Some(trace);
        if let Some(d) = denial {
            st.fault = Some(d);
        }
        match result {
            Ok(()) | Err(ExecFault::Denied(_)) => Ok(TaskOutcome { denial }),
            Err(ExecFault::Mem(e)) => Err(DriverError::Platform(e)),
            Err(ExecFault::Hung { ops }) => Err(DriverError::WatchdogTimeout { task, ops }),
            Err(ExecFault::Transient { kind }) => Err(DriverError::TransientFault(kind)),
        }
    }

    /// Runs `kernel` on the CPU (the `cpu`/`ccpu` configurations).
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTask`] for dead handles.
    pub fn run_cpu_task<F>(&mut self, task: TaskId, kernel: F) -> Result<TaskOutcome, DriverError>
    where
        F: FnOnce(&mut dyn Engine) -> Result<(), ExecFault>,
    {
        let layout = self.cpu_layout(task)?;
        self.record(EventKind::DriverPhase {
            task: task.0,
            phase: Phase::Execute,
        });
        let st = self
            .tasks
            .get(&task)
            .ok_or(DriverError::UnknownTask(task))?;
        let caps = self.config.cheri_cpu.then(|| st.caps.clone());
        let mut eng = CpuEngine::new(&mut self.mem, layout, caps, task);
        let result = kernel(&mut eng);
        let trace = eng.into_trace();
        let st = self.tasks.get_mut(&task).expect("state verified above");
        st.trace = Some(trace);
        match result {
            Ok(()) => Ok(TaskOutcome { denial: None }),
            Err(ExecFault::Denied(d)) => {
                st.fault = Some(d);
                Ok(TaskOutcome { denial: Some(d) })
            }
            Err(ExecFault::Mem(_) | ExecFault::Hung { .. } | ExecFault::Transient { .. }) => {
                Ok(TaskOutcome { denial: None })
            }
        }
    }

    /// The trace recorded by the task's last run.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTask`].
    pub fn trace(&self, task: TaskId) -> Result<Option<&Trace>, DriverError> {
        Ok(self.state(task)?.trace.as_ref())
    }

    /// Takes ownership of the trace recorded by the task's last run,
    /// leaving `None` behind. Equivalent to [`HeteroSystem::trace`] plus a
    /// clone, minus the clone — hot benchmark loops move multi-hundred-
    /// thousand-op traces out instead of copying them.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTask`].
    pub fn take_trace(&mut self, task: TaskId) -> Result<Option<Trace>, DriverError> {
        self.state(task)?;
        Ok(self
            .tasks
            .get_mut(&task)
            .expect("state verified above")
            .trace
            .take())
    }

    /// Driver setup cycles for the task: control-register writes plus (on
    /// CapChecker systems) the MMIO capability imports.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTask`].
    pub fn setup_cycles(&self, task: TaskId) -> Result<Cycles, DriverError> {
        Ok(self.state(task)?.setup_cycles)
    }

    /// Deallocation ②: evict capabilities, clear control registers, scrub
    /// buffers on exception, free memory, release the FU, and report.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTask`].
    pub fn deallocate_task(&mut self, task: TaskId) -> Result<TaskReport, DriverError> {
        let st = self
            .tasks
            .remove(&task)
            .ok_or(DriverError::UnknownTask(task))?;

        self.record(EventKind::DriverPhase {
            task: task.0,
            phase: Phase::Deallocate,
        });

        // Trace the offending pointers before evicting the entries.
        let offending_objects = match &self.protection {
            Protection::Checker(c) => c.exception_entries(task).iter().map(|e| e.object).collect(),
            Protection::Cached(c) => {
                let mut objs: Vec<ObjectId> = c
                    .exceptions()
                    .iter()
                    .filter(|(t, _)| *t == task)
                    .map(|&(_, o)| o)
                    .collect();
                objs.sort_unstable_by_key(|o| o.0);
                objs.dedup();
                objs
            }
            Protection::Baseline(_) => Vec::new(),
        };

        // Evict the task's capabilities so new tasks can be allocated.
        let entries_before = self.protection.as_dyn_ref().entries_in_use();
        self.protection.as_dyn().revoke_task(task);
        let evicted = entries_before.saturating_sub(self.protection.as_dyn_ref().entries_in_use());
        // The EVICT_TASK register write is one MMIO transaction.
        self.driver_clock = self
            .driver_clock
            .saturating_add(self.config.mmio_write_cycles);
        if evicted > 0 {
            self.record(EventKind::CheckerEvict {
                task: task.0,
                entries: evicted as u64,
            });
        }
        // Attribute checks elided since the last deallocation to this
        // task (single-task runs; under multiplexing the split is an
        // approximation, which the cumulative counter does not suffer).
        let elided_total = self.checks_elided();
        let elided_delta = elided_total.saturating_sub(self.elided_reported);
        if elided_delta > 0 {
            self.elided_reported = elided_total;
            self.record(EventKind::ChecksElided {
                task: task.0,
                count: elided_delta,
            });
        }
        if st.fault.is_some() {
            self.clear_protection_exception();
        }

        // Clear the control registers: the next task mapped onto this FU
        // must not inherit stale pointers.
        if let Some(fu) = st.fu {
            self.fus[fu].regs.clear();
            self.fus[fu].busy = None;
        }

        // Buffer data is always cleared before the memory returns to the
        // heap: on an exception this hides the aborted task's secrets
        // (§5.3 ②), and on normal completion it stops the next tenant from
        // inspecting leftovers (CWE-244).
        for &(base, size) in &st.padded {
            self.mem
                .scrub(base, size)
                .expect("task buffers are in range");
            self.alloc.free(base, size)?;
        }
        let scrub = true;
        // Revoke any capability the CPU spilled into memory that still
        // points at the freed buffers (asynchronous software revocation).
        let capabilities_revoked = if self.config.revocation_sweep {
            crate::revoke::sweep_revoked_many(&mut self.mem, &st.padded).revoked
        } else {
            0
        };
        self.tree.revoke(st.task_node);
        for node in st.dynamic_nodes {
            self.tree.revoke(node);
        }

        Ok(TaskReport {
            name: st.name,
            exception: st.fault,
            offending_objects,
            scrubbed: scrub,
            capabilities_revoked,
        })
    }

    /// Grows a *live* task by one buffer — the paper's future-work
    /// direction of lifting threat-model assumption 2 (no dynamic memory
    /// management on accelerators). The accelerator still cannot allocate
    /// by itself: it requests, and the trusted driver allocates on the
    /// shared heap, derives a fresh capability from the heap authority,
    /// imports it into the protection mechanism, and loads a new base
    /// pointer — all while the task keeps running between kernel phases.
    ///
    /// Returns the new object index.
    ///
    /// # Errors
    ///
    /// [`DriverError::OutOfMemory`], [`DriverError::ProtectionTableFull`],
    /// [`DriverError::UnknownTask`].
    pub fn allocate_buffer(
        &mut self,
        task: TaskId,
        spec: BufferSpec,
    ) -> Result<usize, DriverError> {
        if !self.tasks.contains_key(&task) {
            return Err(DriverError::UnknownTask(task));
        }
        let (align, padded_size) = representable_block(spec.size);
        let reserve = padded_size + self.config.guard_bytes;
        let base = self
            .alloc
            .alloc(reserve, align)
            .ok_or(DriverError::OutOfMemory {
                requested: spec.size,
            })?;
        // Dynamic buffers derive from the heap authority (the root), like
        // malloc on a CHERI CPU: the allocator's capability, narrowed.
        let st_name = self.tasks[&task].name.clone();
        let obj = self.tasks[&task].buffers.len();
        let node = match self.tree.derive(
            self.tree.root(),
            ObjectKind::Buffer,
            format!("{st_name}:dyn{obj}"),
            |c| c.set_bounds_exact(base, padded_size)?.and_perms(spec.perms),
        ) {
            Ok(n) => n,
            Err(e) => {
                self.alloc
                    .free(base, reserve)
                    .expect("rollback frees the block just allocated");
                return Err(DriverError::Capability(e));
            }
        };
        let cap = *self.tree.capability(node);
        let device_cap = match spec.device_perms {
            Some(device) => match cap.and_perms(device) {
                Ok(c) => c,
                Err(e) => {
                    self.tree.revoke(node);
                    self.alloc
                        .free(base, reserve)
                        .expect("rollback frees the block just allocated");
                    return Err(DriverError::Capability(e));
                }
            },
            None => cap,
        };
        if self.tasks[&task].fu.is_some() {
            let result = match &mut self.protection {
                Protection::Checker(checker) => {
                    install_over_mmio(checker, task, ObjectId(obj as u16), &device_cap)
                }
                Protection::Cached(c) => c.grant(task, ObjectId(obj as u16), &device_cap),
                Protection::Baseline(b) => b.grant(task, ObjectId(obj as u16), &device_cap),
            };
            let install_cost = match &self.protection {
                Protection::Checker(c) => c.config().install_cycles(),
                Protection::Cached(_) | Protection::Baseline(_) => 0,
            };
            self.driver_clock = self
                .driver_clock
                .saturating_add(install_cost + self.config.mmio_write_cycles);
            self.record(EventKind::MmioCapInstall {
                task: task.0,
                object: obj as u16,
                ok: result.is_ok(),
            });
            if matches!(result, Err(GrantError::TableFull)) {
                self.record(EventKind::CheckerStall { task: task.0 });
            }
            if let Err(e) = result {
                self.tree.revoke(node);
                self.alloc
                    .free(base, reserve)
                    .expect("rollback frees the block just allocated");
                return Err(DriverError::ProtectionTableFull(e));
            }
        }
        let coarse = self.coarse_config();
        let install = match &self.protection {
            Protection::Checker(c) => c.config().install_cycles(),
            Protection::Cached(_) | Protection::Baseline(_) => 0,
        };
        let st = self.tasks.get_mut(&task).expect("existence checked above");
        st.buffers.push((base, spec.size));
        st.padded.push((base, reserve));
        st.caps.push(cap);
        st.device_caps.push(device_cap);
        st.dynamic_nodes.push(node);
        st.setup_cycles += self.config.mmio_write_cycles + install;
        if let Some(fu_idx) = st.fu {
            let visible = match coarse {
                Some(cfg) => cfg.coarse_tag_address(obj as u16, base),
                None => base,
            };
            self.fus[fu_idx].regs.set(obj, visible);
        }
        Ok(obj)
    }

    /// Injects one raw request on the accelerator bus, as a rogue or stale
    /// DMA master would (no task bookkeeping) — the threat harness's probe
    /// for use-after-free and forged-request scenarios.
    ///
    /// # Errors
    ///
    /// The protection mechanism's [`Denial`], if it refuses.
    pub fn check_raw(&mut self, access: &hetsim::Access) -> Result<(), Denial> {
        self.protection.as_dyn().check(access)
    }

    /// Protection entries currently in use (Figure 12).
    #[must_use]
    pub fn protection_entries(&self) -> usize {
        self.protection.as_dyn_ref().entries_in_use()
    }

    /// The protection granularity of this system's accelerator path.
    #[must_use]
    pub fn protection_granularity(&self) -> Granularity {
        self.protection.as_dyn_ref().granularity()
    }

    /// Exports the system's counters into a metrics registry: checker
    /// data-path stats (under `checker.`, when a CapChecker guards the
    /// path), protection-entry occupancy, and the driver clock.
    pub fn export_metrics(&self, registry: &mut Registry) {
        match &self.protection {
            Protection::Checker(c) => registry.absorb(&c.stats(), "checker."),
            Protection::Cached(c) => registry.absorb(&c.cache_stats(), "cache."),
            Protection::Baseline(_) => {}
        }
        registry.gauge_set(
            "protection.entries_in_use",
            self.protection_entries() as f64,
        );
        registry.counter_add("driver.clock_cycles", self.driver_clock);
    }

    // ------------------------------------------------------------------
    // Recovery surface (the fault harness's driver-level actions).
    // ------------------------------------------------------------------

    /// Advances the driver's setup-cycle clock — retry backoff is modelled
    /// as driver time spent waiting, so campaign reports account for it.
    /// Saturating: a policy whose backoff has saturated to [`Cycles::MAX`]
    /// pins the clock there instead of wrapping.
    pub fn advance_clock(&mut self, cycles: Cycles) {
        self.driver_clock = self.driver_clock.saturating_add(cycles);
    }

    /// Clears the protection mechanism's global exception flag (the
    /// driver's pre-retry reset; on real hardware an MMIO register write).
    pub fn clear_protection_exception(&mut self) {
        match &mut self.protection {
            Protection::Checker(c) => c.clear_exception_flag(),
            Protection::Cached(c) => c.clear_exception_flag(),
            Protection::Baseline(_) => {}
        }
    }

    /// Clears a task's latched exception so a retry that completes is
    /// reported clean. The retry policy, not this method, decides whether
    /// the denial stays latched (retries exhausted) or is cleared.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTask`].
    pub fn clear_task_fault(&mut self, task: TaskId) -> Result<(), DriverError> {
        let st = self
            .tasks
            .get_mut(&task)
            .ok_or(DriverError::UnknownTask(task))?;
        st.fault = None;
        Ok(())
    }

    /// The functional-unit index a task runs on (`None` for CPU tasks).
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTask`].
    pub fn task_fu(&self, task: TaskId) -> Result<Option<usize>, DriverError> {
        Ok(self.state(task)?.fu)
    }

    /// Quarantines a functional unit: the driver has decided the engine is
    /// faulty (repeated watchdog aborts) and will never schedule on it
    /// again. `faults` is the abort count that tripped the policy.
    ///
    /// Returns `false` when `fu` is out of range.
    pub fn quarantine_fu(&mut self, fu: usize, faults: u32) -> bool {
        if fu >= self.fus.len() {
            return false;
        }
        if !self.fus[fu].quarantined {
            self.fus[fu].quarantined = true;
            self.record(EventKind::EngineQuarantined {
                fu: fu as u32,
                faults,
            });
        }
        true
    }

    /// How many functional units the driver has quarantined.
    #[must_use]
    pub fn quarantined_fus(&self) -> usize {
        self.fus.iter().filter(|f| f.quarantined).count()
    }

    /// Graceful degradation: swaps a cache-backed CapChecker whose SRAM
    /// has proven unreliable (checksum failures on hits) for the uncached
    /// fixed-table design, re-granting every live task's capabilities over
    /// the MMIO capability interconnect. Security never depended on the
    /// cache — the backing table held ground truth — so this trades the
    /// miss-latency win for predictability, losing no protection.
    ///
    /// Returns `(corruption detections, capabilities re-granted)`, or
    /// `None` when the protection is not the cached variant.
    pub fn degrade_to_uncached(&mut self) -> Option<(u64, u64)> {
        let (detections, base) = match &self.protection {
            Protection::Cached(c) => (c.corruption_detected(), c.config().base),
            _ => return None,
        };
        let mut checker = CapChecker::new(base);
        let mut regranted = 0u64;
        let install = base.install_cycles() + self.config.mmio_write_cycles;
        for (&id, st) in &self.tasks {
            if st.fu.is_none() {
                continue;
            }
            for (i, cap) in st.device_caps.iter().enumerate() {
                self.driver_clock = self.driver_clock.saturating_add(install);
                if install_over_mmio(&mut checker, id, ObjectId(i as u16), cap).is_ok() {
                    regranted += 1;
                }
            }
        }
        self.protection = Protection::Checker(checker);
        self.record(EventKind::CheckerDegraded {
            detections,
            regranted,
        });
        Some((detections, regranted))
    }

    /// Probationary release: returns a quarantined functional unit to the
    /// scheduler. The adaptive controller calls this after a clean
    /// probation window; the FU's fault history restarts from zero, so a
    /// re-quarantine needs a fresh run of aborts.
    ///
    /// Returns `false` when `fu` is out of range or not quarantined.
    pub fn release_fu(&mut self, fu: usize) -> bool {
        if fu >= self.fus.len() || !self.fus[fu].quarantined {
            return false;
        }
        self.fus[fu].quarantined = false;
        self.record(EventKind::EngineReleased { fu: fu as u32 });
        true
    }

    /// The provenance mode of the active CapChecker (plain or cached);
    /// `None` on baseline systems, which have no mode to adapt.
    #[must_use]
    pub fn checker_mode(&self) -> Option<CheckerMode> {
        match &self.protection {
            Protection::Checker(c) => Some(c.mode()),
            Protection::Cached(c) => Some(c.config().base.mode),
            Protection::Baseline(_) => None,
        }
    }

    /// Reverses [`HeteroSystem::degrade_to_uncached`]: swaps the
    /// fixed-table CapChecker back for the cache-backed variant after the
    /// adaptive controller's clean probation window. Every live task's
    /// device capabilities are re-granted into the fresh backing table
    /// (one MMIO write each — cached grants skip the install sequence).
    /// Checker statistics, attribution, and any installed static-verdict
    /// map do not survive the swap; the controller re-baselines its
    /// signal deltas after calling this.
    ///
    /// Returns the number of capabilities re-granted, or `None` when the
    /// active protection is not the fixed-table checker.
    pub fn repromote_to_cached(&mut self, config: CachedCheckerConfig) -> Option<u64> {
        if !matches!(self.protection, Protection::Checker(_)) {
            return None;
        }
        let mut cached = CachedCapChecker::new(config);
        let mut regranted = 0u64;
        for (&id, st) in &self.tasks {
            if st.fu.is_none() {
                continue;
            }
            for (i, cap) in st.device_caps.iter().enumerate() {
                self.driver_clock = self
                    .driver_clock
                    .saturating_add(self.config.mmio_write_cycles);
                if cached.grant(id, ObjectId(i as u16), cap).is_ok() {
                    regranted += 1;
                }
            }
        }
        self.protection = Protection::Cached(cached);
        self.record(EventKind::CheckerRepromoted { regranted });
        Some(regranted)
    }

    /// Switches the active CapChecker (plain or cached) between Fine and
    /// Coarse provenance, rebuilding the checker in the new mode,
    /// re-granting every live task's device capabilities, and reloading
    /// each FU's base-pointer registers (object-tagged in Coarse mode).
    /// As with degradation, statistics, attribution, and static verdicts
    /// are dropped by the rebuild.
    ///
    /// Returns the number of capabilities re-granted; `None` on baseline
    /// systems or when the checker already runs in `mode` (no-op).
    pub fn set_checker_mode(&mut self, mode: CheckerMode) -> Option<u64> {
        let current = self.checker_mode()?;
        if current == mode {
            return None;
        }
        let mut regranted = 0u64;
        match &self.protection {
            Protection::Checker(c) => {
                let mut cfg = *c.config();
                cfg.mode = mode;
                let mut checker = CapChecker::new(cfg);
                let install = cfg.install_cycles() + self.config.mmio_write_cycles;
                for (&id, st) in &self.tasks {
                    if st.fu.is_none() {
                        continue;
                    }
                    for (i, cap) in st.device_caps.iter().enumerate() {
                        self.driver_clock = self.driver_clock.saturating_add(install);
                        if install_over_mmio(&mut checker, id, ObjectId(i as u16), cap).is_ok() {
                            regranted += 1;
                        }
                    }
                }
                self.protection = Protection::Checker(checker);
            }
            Protection::Cached(c) => {
                let cfg = c.config().with_mode(mode);
                let mut cached = CachedCapChecker::new(cfg);
                for (&id, st) in &self.tasks {
                    if st.fu.is_none() {
                        continue;
                    }
                    for (i, cap) in st.device_caps.iter().enumerate() {
                        self.driver_clock = self
                            .driver_clock
                            .saturating_add(self.config.mmio_write_cycles);
                        if cached.grant(id, ObjectId(i as u16), cap).is_ok() {
                            regranted += 1;
                        }
                    }
                }
                self.protection = Protection::Cached(cached);
            }
            Protection::Baseline(_) => unreachable!("checker_mode() returned Some"),
        }
        // Reload every live FU's base pointers for the new address view.
        let coarse = self.coarse_config();
        for st in self.tasks.values() {
            let Some(fu_idx) = st.fu else { continue };
            for (i, &(base, _)) in st.buffers.iter().enumerate() {
                let visible = match coarse {
                    Some(cfg) => cfg.coarse_tag_address(i as u16, base),
                    None => base,
                };
                self.fus[fu_idx].regs.set(i, visible);
                self.driver_clock = self
                    .driver_clock
                    .saturating_add(self.config.mmio_write_cycles);
            }
        }
        self.record(EventKind::CheckerModeSwitched {
            coarse: mode == CheckerMode::Coarse,
            regranted,
        });
        Some(regranted)
    }
}

/// Stages a capability through the CapChecker's MMIO register map — the
/// driver's actual install sequence on the capability interconnect.
fn install_over_mmio(
    checker: &mut CapChecker,
    task: TaskId,
    object: ObjectId,
    cap: &Capability,
) -> Result<(), GrantError> {
    use crate::checker::regs;
    use hetsim::mmio::MmioDevice;
    let bits = cap.compress().bits();
    checker.mmio_write(regs::CAP_LO, bits as u64);
    checker.mmio_write(regs::CAP_HI, (bits >> 64) as u64);
    checker.mmio_write(regs::TAG, u64::from(cap.is_valid()));
    checker.mmio_write(regs::TASK, u64::from(task.0));
    checker.mmio_write(regs::OBJECT, u64::from(object.0));
    checker.mmio_write(regs::COMMIT, 1);
    match checker.mmio_read(regs::COMMIT) {
        regs::STATUS_OK => Ok(()),
        regs::STATUS_FULL => Err(GrantError::TableFull),
        _ => Err(GrantError::InvalidCapability),
    }
}

/// Alignment and padded size that make `[base, base+size)` exactly
/// representable by the compressed encoding.
fn representable_block(size: u64) -> (u64, u64) {
    let size = size.max(1);
    let exp = compressed::encode_bounds(0, size as u128).exponent;
    let granule = 1u64 << exp;
    let align = granule.max(16);
    (align, size.next_multiple_of(align))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fine_system() -> HeteroSystem {
        let mut sys = HeteroSystem::new(SystemConfig::default());
        sys.add_fus("gemm", 2);
        sys
    }

    fn two_buffer_request() -> TaskRequest {
        TaskRequest::accel("t", "gemm").rw_buffers([256, 256])
    }

    #[test]
    fn allocate_run_deallocate_lifecycle() {
        let mut sys = fine_system();
        let t = sys.allocate_task(&two_buffer_request()).unwrap();
        assert_eq!(sys.protection_entries(), 2);
        assert!(sys.setup_cycles(t).unwrap() > 0);
        let out = sys
            .run_accel_task(t, |eng| {
                for i in 0..64 {
                    eng.store_u32(0, i, i as u32)?;
                }
                Ok(())
            })
            .unwrap();
        assert!(out.completed());
        assert!(sys.trace(t).unwrap().is_some());
        let report = sys.deallocate_task(t).unwrap();
        assert!(report.exception.is_none());
        assert!(report.scrubbed, "dealloc always scrubs (CWE-244 hygiene)");
        assert_eq!(sys.protection_entries(), 0);
        assert!(matches!(sys.trace(t), Err(DriverError::UnknownTask(_))));
    }

    #[test]
    fn fu_pool_exhausts_and_recovers() {
        let mut sys = fine_system();
        let a = sys.allocate_task(&two_buffer_request()).unwrap();
        let _b = sys.allocate_task(&two_buffer_request()).unwrap();
        let err = sys.allocate_task(&two_buffer_request()).unwrap_err();
        assert!(matches!(err, DriverError::NoFreeFu { .. }));
        sys.deallocate_task(a).unwrap();
        assert!(sys.allocate_task(&two_buffer_request()).is_ok());
    }

    #[test]
    fn exception_scrubs_buffers_and_reports_offender() {
        let mut sys = fine_system();
        let t = sys.allocate_task(&two_buffer_request()).unwrap();
        sys.write_buffer(t, 1, 0, &[0xaa; 256]).unwrap();
        let base1 = sys.cpu_layout(t).unwrap().buffers[1].base;
        let out = sys
            .run_accel_task(t, |eng| {
                eng.store_u32(0, 0, 1)?;
                // Overflow object 0 into object 1's territory.
                eng.load_u32(0, 4096)?;
                Ok(())
            })
            .unwrap();
        assert!(!out.completed());
        assert!(sys.checker().unwrap().exception_flag());
        let report = sys.deallocate_task(t).unwrap();
        assert!(report.exception.is_some());
        assert_eq!(report.offending_objects, vec![ObjectId(0)]);
        assert!(report.scrubbed);
        // Buffer 1's secrets were cleared before the memory was reused.
        assert_eq!(sys.memory().read_uint(base1, 8).unwrap(), 0);
        // Flag is cleared for the next task.
        assert!(!sys.checker().unwrap().exception_flag());
    }

    #[test]
    fn cheri_cpu_guards_host_accesses() {
        let mut sys = fine_system();
        let t = sys.allocate_task(&two_buffer_request()).unwrap();
        assert!(sys.write_buffer(t, 0, 0, &[1; 256]).is_ok());
        let err = sys.write_buffer(t, 0, 255, &[1, 2]).unwrap_err();
        assert!(matches!(err, DriverError::HostAccessOutOfBounds));
    }

    #[test]
    fn cpu_tasks_need_no_fu() {
        let mut sys = fine_system();
        let t = sys
            .allocate_task(&TaskRequest::cpu("host").rw_buffers([128]))
            .unwrap();
        let out = sys
            .run_cpu_task(t, |eng| {
                eng.store_u32(0, 0, 42)?;
                Ok(())
            })
            .unwrap();
        assert!(out.completed());
        assert!(matches!(
            sys.run_accel_task(t, |_| Ok(())),
            Err(DriverError::NotAnAcceleratorTask(_))
        ));
    }

    #[test]
    fn ccpu_task_kernel_faults_on_overflow() {
        let mut sys = fine_system();
        let t = sys
            .allocate_task(&TaskRequest::cpu("host").rw_buffers([64]))
            .unwrap();
        let out = sys.run_cpu_task(t, |eng| {
            eng.store_u32(0, 1000, 1)?;
            Ok(())
        });
        assert!(out.unwrap().denial.is_some());
    }

    #[test]
    fn coarse_system_runs_and_translates() {
        let mut sys = HeteroSystem::new(SystemConfig {
            protection: ProtectionChoice::CapChecker(CheckerConfig::coarse()),
            ..SystemConfig::default()
        });
        sys.add_fus("fft", 1);
        let t = sys
            .allocate_task(&TaskRequest::accel("fft0", "fft").rw_buffers([512]))
            .unwrap();
        let layout = sys.accel_layout(t).unwrap();
        // Accelerator-visible addresses carry the object tag.
        assert_eq!(layout.buffers[0].base >> 56, 0);
        let out = sys
            .run_accel_task(t, |eng| {
                eng.store_u32(0, 5, 99)?;
                assert_eq!(eng.load_u32(0, 5)?, 99);
                Ok(())
            })
            .unwrap();
        assert!(out.completed());
        // Host sees the data at the physical address.
        let mut buf = [0u8; 4];
        sys.read_buffer(t, 0, 20, &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf), 99);
    }

    #[test]
    fn variants_have_expected_shape() {
        assert_eq!(SystemVariant::ALL.len(), 5);
        assert!(!SystemVariant::Cpu.uses_accelerator());
        assert!(SystemVariant::CheriCpuCheriAccel.uses_accelerator());
        assert!(SystemVariant::CheriCpu.cheri_cpu());
        assert!(!SystemVariant::CpuAccel.cheri_cpu());
        let cfg = SystemVariant::CheriCpuCheriAccel.config();
        assert!(matches!(cfg.protection, ProtectionChoice::CapChecker(_)));
        assert_eq!(SystemVariant::CheriCpuAccel.label(), "ccpu+accel");
    }

    #[test]
    fn representable_blocks_keep_caps_exact() {
        for size in [1u64, 12, 100, 4096, 16384, 65536, 66564, 1 << 20] {
            let (align, padded) = representable_block(size);
            assert!(padded >= size);
            assert!(align.is_power_of_two());
            let base = align * 3;
            let cap = Capability::root().set_bounds_exact(base, padded);
            assert!(
                cap.is_ok(),
                "size {size} (padded {padded}, align {align}) must be exact"
            );
        }
    }

    #[test]
    fn cached_system_runs_and_degrades_losslessly() {
        let mut sys = HeteroSystem::new(SystemConfig {
            protection: ProtectionChoice::CachedCapChecker(Default::default()),
            ..SystemConfig::default()
        });
        sys.add_fus("k", 1);
        let t = sys
            .allocate_task(&TaskRequest::accel("k0", "k").rw_buffers([256, 256]))
            .unwrap();
        let run = |sys: &mut HeteroSystem| {
            sys.run_accel_task(t, |eng| {
                eng.store_u32(0, 0, 7)?;
                eng.load_u32(0, 0).map(|_| ())
            })
            .unwrap()
        };
        assert!(run(&mut sys).completed());
        assert!(sys.cached_checker().is_some());
        assert!(sys.checker().is_none());
        let (detections, regranted) = sys.degrade_to_uncached().unwrap();
        assert_eq!(detections, 0);
        assert_eq!(regranted, 2, "both live capabilities re-granted");
        assert!(sys.checker().is_some(), "now the fixed-table design");
        assert!(sys.degrade_to_uncached().is_none(), "degrade is one-way");
        // The task keeps running under the degraded protection, and an
        // overflow is still caught — no protection was lost.
        assert!(run(&mut sys).completed());
        let out = sys
            .run_accel_task(t, |eng| eng.load_u32(0, 4096).map(|_| ()))
            .unwrap();
        assert!(!out.completed());
    }

    #[test]
    fn repromote_reverses_degradation_and_keeps_protection() {
        let mut sys = HeteroSystem::new(SystemConfig {
            protection: ProtectionChoice::CachedCapChecker(Default::default()),
            ..SystemConfig::default()
        });
        sys.add_fus("k", 1);
        let t = sys
            .allocate_task(&TaskRequest::accel("k0", "k").rw_buffers([256, 256]))
            .unwrap();
        let cfg = *sys.cached_checker().unwrap().config();
        sys.degrade_to_uncached().unwrap();
        assert!(sys.checker().is_some());
        assert!(
            sys.repromote_to_cached(cfg).is_some(),
            "repromotion from the fixed-table checker succeeds"
        );
        assert!(sys.cached_checker().is_some(), "cached variant is back");
        assert!(
            sys.repromote_to_cached(cfg).is_none(),
            "already cached: no-op"
        );
        // The re-granted capabilities still protect the task.
        let out = sys
            .run_accel_task(t, |eng| {
                eng.store_u32(0, 0, 7)?;
                eng.load_u32(0, 0).map(|_| ())
            })
            .unwrap();
        assert!(out.completed());
        let out = sys
            .run_accel_task(t, |eng| eng.load_u32(0, 4096).map(|_| ()))
            .unwrap();
        assert!(!out.completed(), "overflow still caught after repromotion");
    }

    #[test]
    fn released_fu_is_schedulable_again() {
        let mut sys = fine_system();
        let a = sys.allocate_task(&two_buffer_request()).unwrap();
        let fu_a = sys.task_fu(a).unwrap().unwrap();
        sys.deallocate_task(a).unwrap();
        assert!(sys.quarantine_fu(fu_a, 3));
        assert_eq!(sys.quarantined_fus(), 1);
        assert!(!sys.release_fu(99), "out of range is reported");
        assert!(sys.release_fu(fu_a));
        assert!(!sys.release_fu(fu_a), "already released: no-op");
        assert_eq!(sys.quarantined_fus(), 0);
        // Both FUs are available again.
        let _b = sys.allocate_task(&two_buffer_request()).unwrap();
        let _c = sys.allocate_task(&two_buffer_request()).unwrap();
    }

    #[test]
    fn mode_switch_retags_live_tasks() {
        let mut sys = fine_system();
        assert_eq!(sys.checker_mode(), Some(CheckerMode::Fine));
        let t = sys.allocate_task(&two_buffer_request()).unwrap();
        assert!(sys.set_checker_mode(CheckerMode::Fine).is_none(), "no-op");
        let regranted = sys.set_checker_mode(CheckerMode::Coarse).unwrap();
        assert_eq!(regranted, 2);
        assert_eq!(sys.checker_mode(), Some(CheckerMode::Coarse));
        // The accelerator's view now carries object tags, and the kernel
        // still runs (and is still bounds-checked).
        let layout = sys.accel_layout(t).unwrap();
        assert_eq!(layout.buffers[1].base >> 56, 1);
        let out = sys
            .run_accel_task(t, |eng| {
                eng.store_u32(1, 3, 9)?;
                assert_eq!(eng.load_u32(1, 3)?, 9);
                Ok(())
            })
            .unwrap();
        assert!(out.completed());
        // And back to Fine.
        let regranted = sys.set_checker_mode(CheckerMode::Fine).unwrap();
        assert_eq!(regranted, 2);
        let out = sys
            .run_accel_task(t, |eng| eng.load_u32(0, 4096).map(|_| ()))
            .unwrap();
        assert!(!out.completed(), "fine mode still denies overflow");
        // Baselines have no mode.
        let mut base = HeteroSystem::new(SystemConfig {
            protection: ProtectionChoice::None,
            ..SystemConfig::default()
        });
        assert!(base.checker_mode().is_none());
        assert!(base.set_checker_mode(CheckerMode::Coarse).is_none());
    }

    #[test]
    fn quarantined_fus_are_never_rescheduled() {
        let mut sys = fine_system();
        let a = sys.allocate_task(&two_buffer_request()).unwrap();
        let fu_a = sys.task_fu(a).unwrap().unwrap();
        assert!(sys.quarantine_fu(fu_a, 3));
        assert_eq!(sys.quarantined_fus(), 1);
        sys.deallocate_task(a).unwrap();
        // The freed-but-quarantined FU is skipped: the next task lands on
        // the other engine, and a third request finds nothing.
        let b = sys.allocate_task(&two_buffer_request()).unwrap();
        assert_ne!(sys.task_fu(b).unwrap().unwrap(), fu_a);
        assert!(matches!(
            sys.allocate_task(&two_buffer_request()),
            Err(DriverError::NoFreeFu { .. })
        ));
        assert!(!sys.quarantine_fu(99, 1), "out of range is reported");
    }

    #[test]
    fn device_ports_narrow_checker_but_not_host() {
        let mut sys = fine_system();
        // Analyzer-style least privilege: port 0 is read-only for the
        // accelerator, port 1 write-only.
        let req = two_buffer_request().device_ports([Perms::LOAD, Perms::STORE]);
        let t = sys.allocate_task(&req).unwrap();
        // Host staging and readback keep the full RW capability.
        assert!(sys.write_buffer(t, 0, 0, &[7; 16]).is_ok());
        assert!(sys.write_buffer(t, 1, 0, &[0; 16]).is_ok());
        let mut buf = [0u8; 4];
        assert!(sys.read_buffer(t, 1, 0, &mut buf).is_ok());
        // The declared direction completes...
        let out = sys
            .run_accel_task(t, |eng| {
                let x = eng.load_u32(0, 0)?;
                eng.store_u32(1, 0, x)
            })
            .unwrap();
        assert!(out.completed());
        sys.deallocate_task(t).unwrap();
        // ...and a store through the read-only device port is denied.
        let t = sys
            .allocate_task(&two_buffer_request().device_ports([Perms::LOAD, Perms::STORE]))
            .unwrap();
        let out = sys.run_accel_task(t, |eng| eng.store_u32(0, 0, 1)).unwrap();
        assert!(!out.completed(), "device-side grant must be narrowed");
    }

    #[test]
    fn static_verdicts_install_elide_and_trace() {
        use crate::elide::{StaticVerdict, StaticVerdictMap};
        let mut sys = fine_system();
        let tracer = SharedTracer::new();
        sys.set_tracer(tracer.clone());
        let t = sys.allocate_task(&two_buffer_request()).unwrap();
        let mut map = StaticVerdictMap::new();
        map.set(t, ObjectId(0), StaticVerdict::Safe);
        assert!(sys.install_static_verdicts(map));
        assert_eq!(sys.static_verdicts().unwrap().safe_pairs(), 1);
        let out = sys
            .run_accel_task(t, |eng| {
                for i in 0..8 {
                    eng.store_u32(0, i, i as u32)?; // elided
                }
                eng.store_u32(1, 0, 1) // fully checked
            })
            .unwrap();
        assert!(out.completed());
        assert_eq!(sys.checks_elided(), 8);
        sys.deallocate_task(t).unwrap();
        let events = tracer.snapshot();
        let events = events.events();
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::StaticVerdictsInstalled { safe_pairs: 1 }));
        assert!(events.iter().any(|e| e.kind
            == EventKind::ChecksElided {
                task: t.0,
                count: 8
            }));
        // Metrics carry the counter too.
        let mut reg = Registry::new();
        sys.export_metrics(&mut reg);
        assert_eq!(reg.snapshot().counter("checker.elided"), Some(8));
    }

    #[test]
    fn retained_segment_verdicts_survive_mode_switch_and_repromotion() {
        use crate::elide::{StaticVerdict, StaticVerdictMap};
        let mut sys = HeteroSystem::new(SystemConfig {
            protection: ProtectionChoice::CachedCapChecker(Default::default()),
            ..SystemConfig::default()
        });
        let tracer = SharedTracer::new();
        sys.set_tracer(tracer.clone());
        sys.add_fus("gemm", 1);
        let t = sys.allocate_task(&two_buffer_request()).unwrap();
        let mut map = StaticVerdictMap::new();
        map.set(t, ObjectId(0), StaticVerdict::Safe);
        assert!(sys.retain_segment_verdicts(map));
        assert_eq!(sys.static_verdicts().unwrap().safe_pairs(), 1);

        // A mode switch rebuilds the checker and drops the installed map
        // (coherence rule) — elision is gone...
        sys.set_checker_mode(CheckerMode::Coarse).unwrap();
        assert!(sys.static_verdicts().is_none(), "rebuild drops the map");
        // ...until the controller re-installs the retained proof.
        assert_eq!(sys.reinstall_segment_verdicts(), Some(1));
        assert_eq!(sys.static_verdicts().unwrap().safe_pairs(), 1);

        // Degrade → re-promote: the same ledger restores elision after
        // the probation path swaps checkers twice.
        sys.degrade_to_uncached().unwrap();
        assert!(sys.static_verdicts().is_none());
        sys.repromote_to_cached(Default::default()).unwrap();
        assert_eq!(sys.reinstall_segment_verdicts(), Some(1));
        assert_eq!(sys.segment_verdicts().reinstalls(), 2);

        let events = tracer.snapshot();
        let reinstalls = events
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::SegmentVerdictsReinstalled { safe_pairs: 1 })
            .count();
        assert_eq!(reinstalls, 2);

        // A cleared ledger has nothing to re-install.
        sys.clear_segment_verdicts();
        assert_eq!(sys.reinstall_segment_verdicts(), None);
    }

    #[test]
    fn baseline_systems_refuse_verdict_maps() {
        let mut sys = HeteroSystem::new(SystemConfig {
            protection: ProtectionChoice::None,
            ..SystemConfig::default()
        });
        let mut map = StaticVerdictMap::new();
        map.set(TaskId(1), ObjectId(0), crate::elide::StaticVerdict::Safe);
        assert!(!sys.install_static_verdicts(map));
        assert!(sys.static_verdicts().is_none());
        assert_eq!(sys.checks_elided(), 0);
    }

    #[test]
    fn iommu_system_smoke() {
        let mut sys = HeteroSystem::new(SystemConfig {
            protection: ProtectionChoice::Iommu(IommuConfig::default()),
            ..SystemConfig::default()
        });
        sys.add_fus("k", 1);
        let t = sys
            .allocate_task(&TaskRequest::accel("k0", "k").rw_buffers([64]))
            .unwrap();
        let out = sys
            .run_accel_task(t, |eng| {
                eng.store_u32(0, 0, 7)?;
                Ok(())
            })
            .unwrap();
        assert!(out.completed());
        assert!(sys.protection_entries() >= 1);
    }
}
