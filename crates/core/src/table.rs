//! The CapChecker's capability table.
//!
//! A fixed bank of entries, each holding one imported capability keyed by
//! `(task, object)`, with a per-entry exception bit so illegal accesses can
//! be traced in software (§5.2.2). Lookup and allocation are associative,
//! as in the hardware.

use cheri::Capability;
use hetsim::{ObjectId, TaskId};
use std::fmt;

/// One occupied table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableEntry {
    /// The task the capability was delegated to.
    pub task: TaskId,
    /// The object (buffer) it authorizes.
    pub object: ObjectId,
    /// The decoded capability.
    pub capability: Capability,
    /// Set when an access through this entry was refused.
    pub exception: bool,
}

/// The fixed-size associative capability store.
#[derive(Clone)]
pub struct CapabilityTable {
    slots: Vec<Option<TableEntry>>,
}

impl CapabilityTable {
    /// A table with `entries` slots (256 in the prototype).
    #[must_use]
    pub fn new(entries: usize) -> CapabilityTable {
        CapabilityTable {
            slots: vec![None; entries],
        }
    }

    /// Total slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots (Figure 12's CapChecker entry count).
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Installs a capability, searching associatively for a free slot.
    /// Re-installing an existing `(task, object)` key replaces it in place.
    ///
    /// Returns the slot index, or `None` when the table is full — the
    /// hardware stalls the allocation in that case (§5.3 ③).
    pub fn install(&mut self, task: TaskId, object: ObjectId, cap: Capability) -> Option<usize> {
        let entry = TableEntry {
            task,
            object,
            capability: cap,
            exception: false,
        };
        if let Some(i) = self.position(task, object) {
            self.slots[i] = Some(entry);
            return Some(i);
        }
        let free = self.slots.iter().position(Option::is_none)?;
        self.slots[free] = Some(entry);
        Some(free)
    }

    /// Finds the entry for `(task, object)`.
    #[must_use]
    pub fn lookup(&self, task: TaskId, object: ObjectId) -> Option<&TableEntry> {
        self.position(task, object)
            .and_then(|i| self.slots[i].as_ref())
    }

    /// Marks the entry's exception bit (illegal access trace).
    pub fn mark_exception(&mut self, task: TaskId, object: ObjectId) {
        if let Some(i) = self.position(task, object) {
            if let Some(e) = self.slots[i].as_mut() {
                e.exception = true;
            }
        }
    }

    /// Evicts every entry of `task`, returning how many were freed
    /// (deallocation step ② of Figure 6).
    pub fn evict_task(&mut self, task: TaskId) -> usize {
        let mut freed = 0;
        for slot in &mut self.slots {
            if slot.is_some_and(|e| e.task == task) {
                *slot = None;
                freed += 1;
            }
        }
        freed
    }

    /// Iterates over occupied entries.
    pub fn iter(&self) -> impl Iterator<Item = &TableEntry> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Entries of `task` whose exception bit is set.
    pub fn exceptions_for(&self, task: TaskId) -> impl Iterator<Item = &TableEntry> {
        self.iter().filter(move |e| e.task == task && e.exception)
    }

    fn position(&self, task: TaskId, object: ObjectId) -> Option<usize> {
        // Probe by reference: `is_some_and` on a `Copy` option would move
        // the 48-byte entry out per probed slot, which is measurable on
        // the per-beat lookup path.
        self.slots
            .iter()
            .position(|s| matches!(s, Some(e) if e.task == task && e.object == object))
    }
}

impl fmt::Debug for CapabilityTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CapabilityTable({}/{} occupied)",
            self.occupied(),
            self.capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Perms;

    fn cap(base: u64, len: u64) -> Capability {
        Capability::root()
            .set_bounds(base, len)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap()
    }

    #[test]
    fn install_lookup_evict_cycle() {
        let mut t = CapabilityTable::new(4);
        t.install(TaskId(1), ObjectId(0), cap(0x1000, 64)).unwrap();
        t.install(TaskId(1), ObjectId(1), cap(0x2000, 64)).unwrap();
        t.install(TaskId(2), ObjectId(0), cap(0x3000, 64)).unwrap();
        assert_eq!(t.occupied(), 3);
        assert_eq!(
            t.lookup(TaskId(1), ObjectId(1)).unwrap().capability.base(),
            0x2000
        );
        assert!(t.lookup(TaskId(3), ObjectId(0)).is_none());
        assert_eq!(t.evict_task(TaskId(1)), 2);
        assert_eq!(t.occupied(), 1);
        assert!(t.lookup(TaskId(1), ObjectId(0)).is_none());
    }

    #[test]
    fn full_table_refuses() {
        let mut t = CapabilityTable::new(2);
        assert!(t.install(TaskId(1), ObjectId(0), cap(0, 16)).is_some());
        assert!(t.install(TaskId(1), ObjectId(1), cap(16, 16)).is_some());
        assert!(t.install(TaskId(1), ObjectId(2), cap(32, 16)).is_none());
        // Eviction frees a slot and installation resumes — the stall/evict
        // protocol of §5.3.
        t.evict_task(TaskId(1));
        assert!(t.install(TaskId(2), ObjectId(0), cap(0, 16)).is_some());
    }

    #[test]
    fn reinstall_replaces_in_place() {
        let mut t = CapabilityTable::new(2);
        t.install(TaskId(1), ObjectId(0), cap(0x1000, 64)).unwrap();
        t.install(TaskId(1), ObjectId(0), cap(0x5000, 32)).unwrap();
        assert_eq!(t.occupied(), 1);
        assert_eq!(
            t.lookup(TaskId(1), ObjectId(0)).unwrap().capability.base(),
            0x5000
        );
    }

    #[test]
    fn exception_bits_trace_offenders() {
        let mut t = CapabilityTable::new(4);
        t.install(TaskId(1), ObjectId(0), cap(0x1000, 64)).unwrap();
        t.install(TaskId(1), ObjectId(1), cap(0x2000, 64)).unwrap();
        t.mark_exception(TaskId(1), ObjectId(1));
        let excs: Vec<_> = t.exceptions_for(TaskId(1)).collect();
        assert_eq!(excs.len(), 1);
        assert_eq!(excs[0].object, ObjectId(1));
    }
}
