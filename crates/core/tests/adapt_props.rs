//! Property-based tests for the adaptive policy controller.
//!
//! The unit tests in `adapt.rs` pin specific lattice walks; these
//! properties sweep arbitrary configurations and signal streams and
//! assert the invariants that must hold *everywhere*:
//!
//! 1. **No oscillation** — on any constant input stream the mode flips at
//!    most once, whatever the thresholds, dwell, or stream length (the
//!    hysteresis-gap guarantee).
//! 2. **Lattice monotonicity** — the cache only moves along
//!    `Cached → Probation → {Cached, LatchedDegraded}` edges, a latch is
//!    absorbing, and it closes only after `cache_fail_latch` degradations.
//! 3. **Bounded parole** — no functional unit is released more than
//!    `fu_release_budget` times, and a latched FU is never released again.
//! 4. **Determinism** — identical signal streams produce identical
//!    decision traces.

use capchecker::{
    AdaptAction, AdaptConfig, AdaptController, CacheHealth, CheckerMode, EpochSignals,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A valid controller config: the hysteresis gap is strictly positive.
fn config(down: u64, gap: u64, dwell: u32, probation: u32, latch: u32, budget: u32) -> AdaptConfig {
    AdaptConfig {
        stall_down_pct: down,
        stall_up_pct: down + gap.max(1),
        min_dwell_epochs: dwell,
        probation_epochs: probation.max(1),
        cache_fail_latch: latch.max(1),
        fu_release_budget: budget,
        ..AdaptConfig::default()
    }
}

fn mode_flips(controller: &AdaptController) -> usize {
    controller
        .trace()
        .iter()
        .filter(|d| matches!(d.action, AdaptAction::SwitchMode { .. }))
        .count()
}

proptest! {
    /// Any constant signal stream settles after at most one mode flip —
    /// the strict `up > down` gap means the share that justified a switch
    /// can never justify the reverse switch.
    #[test]
    fn constant_input_flips_the_mode_at_most_once(
        down in 0u64..60,
        gap in 1u64..40,
        dwell in 0u32..5,
        checks in 0u64..5_000,
        stall in 0u64..5_000,
        epochs in 1usize..48,
        start_coarse in any::<bool>(),
    ) {
        let initial = if start_coarse {
            CheckerMode::Coarse
        } else {
            CheckerMode::Fine
        };
        let mut c = AdaptController::new(config(down, gap, dwell, 1, 1, 0), initial, false);
        let signals = EpochSignals {
            checks,
            stall_cycles: stall,
            ..EpochSignals::default()
        };
        for _ in 0..epochs {
            c.observe(&signals);
        }
        prop_assert!(
            mode_flips(&c) <= 1,
            "mode oscillated on constant input: {:?}",
            c.trace()
        );
    }

    /// The cache lattice only walks legal edges, the latch is absorbing,
    /// and it closes only after `cache_fail_latch` degradations.
    #[test]
    fn cache_lattice_edges_are_legal(
        corruption in prop::collection::vec(0u64..3, 1..40),
        probation in 1u32..4,
        latch in 1u32..4,
    ) {
        let cfg = config(10, 20, 0, probation, latch, 0);
        let mut c = AdaptController::new(cfg, CheckerMode::Fine, true);
        let mut prev = c.cache_health();
        for &corr in &corruption {
            c.observe(&EpochSignals {
                corruption: corr,
                ..EpochSignals::default()
            });
            let next = c.cache_health();
            let legal = match (prev, next) {
                // Self-loops are always fine (probation counters may move).
                (CacheHealth::Cached { .. }, CacheHealth::Cached { .. })
                | (CacheHealth::Probation { .. }, CacheHealth::Probation { .. })
                | (CacheHealth::LatchedDegraded, CacheHealth::LatchedDegraded)
                // The legal transitions.
                | (CacheHealth::Cached { .. }, CacheHealth::Probation { .. })
                | (CacheHealth::Probation { .. }, CacheHealth::Cached { .. })
                | (CacheHealth::Probation { .. }, CacheHealth::LatchedDegraded) => true,
                _ => false,
            };
            prop_assert!(legal, "illegal cache edge {prev:?} -> {next:?}");
            prev = next;
        }
        let degrades = c
            .trace()
            .iter()
            .filter(|d| matches!(d.action, AdaptAction::DegradeCache))
            .count();
        let repromotes = c
            .trace()
            .iter()
            .filter(|d| matches!(d.action, AdaptAction::RepromoteCache))
            .count();
        prop_assert!(repromotes <= degrades, "re-promoted more than degraded");
        if let Some(at) = c
            .trace()
            .iter()
            .position(|d| matches!(d.action, AdaptAction::LatchCache { .. }))
        {
            prop_assert!(
                degrades >= latch as usize,
                "latched after only {degrades} degradations (budget {latch})"
            );
            prop_assert!(
                !c.trace()[at..]
                    .iter()
                    .any(|d| matches!(d.action, AdaptAction::RepromoteCache)),
                "re-promoted after the latch closed"
            );
        }
    }

    /// No functional unit is ever released past its budget, and a latched
    /// FU never comes back.
    #[test]
    fn fu_parole_respects_its_budget(
        pattern in prop::collection::vec(prop::collection::vec(0u32..4, 0..4), 1..40),
        probation in 1u32..3,
        budget in 0u32..3,
    ) {
        let cfg = config(10, 20, 0, probation, 1, budget);
        let mut c = AdaptController::new(cfg, CheckerMode::Fine, false);
        for quarantined in &pattern {
            c.observe(&EpochSignals {
                quarantined_fus: quarantined.clone(),
                ..EpochSignals::default()
            });
        }
        let mut releases: BTreeMap<u32, u32> = BTreeMap::new();
        let mut latched_at: BTreeMap<u32, usize> = BTreeMap::new();
        for (i, d) in c.trace().iter().enumerate() {
            match d.action {
                AdaptAction::ReleaseFu { fu } => {
                    *releases.entry(fu).or_default() += 1;
                    prop_assert!(
                        !latched_at.contains_key(&fu),
                        "fu {fu} released after it was latched"
                    );
                }
                AdaptAction::LatchFu { fu, .. } => {
                    prop_assert!(
                        latched_at.insert(fu, i).is_none(),
                        "fu {fu} latched twice"
                    );
                }
                _ => {}
            }
        }
        for (fu, n) in &releases {
            prop_assert!(
                *n <= budget,
                "fu {fu} released {n} times with budget {budget}"
            );
        }
        prop_assert_eq!(c.released_fus(), releases.values().map(|n| u64::from(*n)).sum::<u64>());
        prop_assert_eq!(c.latched_fus(), latched_at.len() as u64);
    }

    /// Identical signal streams produce identical traces — the controller
    /// is a pure function of its inputs.
    #[test]
    fn identical_streams_identical_traces(
        stream in prop::collection::vec(
            (0u64..2_000, 0u64..2_000, 0u64..2, prop::collection::vec(0u32..4, 0..3)),
            1..24,
        ),
        down in 0u64..40,
        gap in 1u64..30,
    ) {
        let cfg = config(down, gap, 1, 1, 2, 1);
        let mut a = AdaptController::new(cfg, CheckerMode::Fine, true);
        let mut b = AdaptController::new(cfg, CheckerMode::Fine, true);
        for (checks, stall, corr, fus) in &stream {
            let signals = EpochSignals {
                checks: *checks,
                stall_cycles: *stall,
                corruption: *corr,
                quarantined_fus: fus.clone(),
                ..EpochSignals::default()
            };
            prop_assert_eq!(a.observe(&signals), b.observe(&signals));
        }
        prop_assert_eq!(a.trace(), b.trace());
        prop_assert_eq!(a.mode(), b.mode());
        prop_assert_eq!(a.cache_health(), b.cache_health());
    }
}
