//! Elision-state coherence across checker rebuilds.
//!
//! The static-verdict map and its compiled [`VerdictBitmap`] are one
//! logical artifact: every checker rebuild (mode switch, degradation,
//! repromotion) must drop *both together*, even when a revocation sweep
//! is interleaved mid-way. A rebuild that kept the bitmap while dropping
//! the map — or vice versa — would either keep eliding checks with no
//! installed proof or stall elision silently; `verdicts_coherent()` is
//! the invariant the model checker asserts at every explored state, and
//! this test drives the same invariant through the full `HeteroSystem`
//! driver path.

use capchecker::{
    sweep_revoked, CachedCheckerConfig, CheckerMode, HeteroSystem, ProtectionChoice, StaticVerdict,
    StaticVerdictMap, SystemConfig, TaskRequest,
};
use hetsim::{ObjectId, TaskId};

fn cached_system() -> HeteroSystem {
    let mut sys = HeteroSystem::new(SystemConfig {
        protection: ProtectionChoice::CachedCapChecker(CachedCheckerConfig::default()),
        ..SystemConfig::default()
    });
    sys.add_fus("gemm", 2);
    sys
}

fn request() -> TaskRequest {
    TaskRequest::accel("t", "gemm").rw_buffers([256, 256])
}

/// Asserts the active checker's map/bitmap pair is coherent and reports
/// whether a map is installed.
fn coherent_with_map(sys: &HeteroSystem) -> bool {
    if let Some(c) = sys.cached_checker() {
        assert!(c.verdicts_coherent(), "cached checker map/bitmap diverged");
    }
    if let Some(c) = sys.checker() {
        assert!(c.verdicts_coherent(), "fixed checker map/bitmap diverged");
    }
    sys.static_verdicts().is_some()
}

/// Runs one elidable kernel burst and returns how far `checks_elided`
/// moved.
fn elided_delta(sys: &mut HeteroSystem, task: TaskId) -> u64 {
    let before = sys.checks_elided();
    let out = sys
        .run_accel_task(task, |eng| {
            for i in 0..8 {
                eng.store_u32(0, i, i as u32)?;
            }
            Ok(())
        })
        .expect("kernel runs");
    assert!(out.completed(), "in-bounds kernel must complete");
    sys.checks_elided() - before
}

#[test]
fn mode_switch_and_repromotion_mid_sweep_drop_map_and_bitmap_together() {
    let mut sys = cached_system();
    let heap_base = sys.config().heap_base;
    let mem_size = sys.config().mem_size;
    let t = sys.allocate_task(&request()).expect("task allocates");

    // Install a proof for buffer 0 and confirm elision advances.
    let mut map = StaticVerdictMap::new();
    map.set(t, ObjectId(0), StaticVerdict::Safe);
    assert!(sys.install_static_verdicts(map));
    assert!(coherent_with_map(&sys), "map must be installed");
    assert_eq!(elided_delta(&mut sys, t), 8, "safe pair elides every beat");

    // Mid-sequence revocation sweep over the front half of the heap,
    // then a Fine → Coarse mode switch: the rebuild must drop the map
    // and the compiled bitmap together.
    let _ = sweep_revoked(sys.memory_mut(), heap_base, (mem_size - heap_base) / 2);
    assert!(sys.set_checker_mode(CheckerMode::Coarse).is_some());
    assert!(
        !coherent_with_map(&sys),
        "mode switch must drop the verdict map"
    );
    assert_eq!(
        elided_delta(&mut sys, t),
        0,
        "elision must stop once the proof is gone"
    );

    // Re-prove, then degrade mid-sweep: same contract on the
    // cached → fixed-table swap.
    let mut map = StaticVerdictMap::new();
    map.set(t, ObjectId(0), StaticVerdict::Safe);
    assert!(sys.install_static_verdicts(map));
    assert!(coherent_with_map(&sys));
    assert!(elided_delta(&mut sys, t) > 0, "fresh proof elides again");
    let _ = sweep_revoked(
        sys.memory_mut(),
        heap_base + (mem_size - heap_base) / 2,
        (mem_size - heap_base) / 2,
    );
    assert!(sys.degrade_to_uncached().is_some());
    assert!(
        !coherent_with_map(&sys),
        "degradation must drop the verdict map"
    );
    assert_eq!(elided_delta(&mut sys, t), 0);

    // Re-prove on the fixed checker, then repromote mid-sweep: the
    // fixed → cached swap drops the proof too, and the rebuilt checker
    // still answers (the kernel completes, fully checked).
    let mut map = StaticVerdictMap::new();
    map.set(t, ObjectId(0), StaticVerdict::Safe);
    assert!(sys.install_static_verdicts(map));
    assert!(coherent_with_map(&sys));
    let _ = sweep_revoked(sys.memory_mut(), heap_base, (mem_size - heap_base) / 2);
    assert!(sys
        .repromote_to_cached(CachedCheckerConfig::default())
        .is_some());
    assert!(
        !coherent_with_map(&sys),
        "repromotion must drop the verdict map"
    );
    assert_eq!(
        elided_delta(&mut sys, t),
        0,
        "no elision without an installed proof"
    );
}
