//! Property-based tests for the CapChecker's data structures: the heap
//! allocator and the capability table.

use capchecker::{CapabilityTable, HeapAllocator};
use cheri::{Capability, Perms};
use hetsim::{ObjectId, TaskId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum HeapOp {
    Alloc { size: u64, align_log2: u32 },
    FreeOldest,
}

fn arb_heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (1u64..5000, 0u32..8).prop_map(|(size, align_log2)| HeapOp::Alloc { size, align_log2 }),
            2 => Just(HeapOp::FreeOldest),
        ],
        1..200,
    )
}

proptest! {
    /// Allocations never overlap, always satisfy alignment, and freeing
    /// everything restores the full heap.
    #[test]
    fn allocator_never_overlaps_and_fully_recovers(ops in arb_heap_ops()) {
        let total = 1u64 << 20;
        let mut heap = HeapAllocator::new(0x1000, total);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                HeapOp::Alloc { size, align_log2 } => {
                    let align = 1u64 << align_log2;
                    if let Some(base) = heap.alloc(size, align) {
                        prop_assert_eq!(base % align, 0, "misaligned block");
                        let end = base + size;
                        for (lb, ls) in &live {
                            let l_end = lb + ls;
                            prop_assert!(end <= *lb || base >= l_end,
                                "overlap: [{base:#x},{end:#x}) vs [{lb:#x},{l_end:#x})");
                        }
                        live.push((base, size));
                    }
                }
                HeapOp::FreeOldest => {
                    if !live.is_empty() {
                        let (base, size) = live.remove(0);
                        prop_assert!(heap.free(base, size).is_ok(), "live block must free");
                    }
                }
            }
        }
        for (base, size) in live {
            prop_assert!(heap.free(base, size).is_ok(), "live block must free");
        }
        prop_assert_eq!(heap.free_bytes(), total);
        prop_assert_eq!(heap.largest_free(), total);
    }

    /// The capability table never exceeds its capacity, lookup finds
    /// exactly what was installed, and eviction removes exactly one
    /// task's entries.
    #[test]
    fn table_capacity_and_eviction_invariants(
        installs in prop::collection::vec((0u32..6, 0u16..12), 1..100),
        evict_task in 0u32..6,
    ) {
        let mut table = CapabilityTable::new(32);
        let mut model: Vec<(u32, u16)> = Vec::new();
        for (task, object) in installs {
            let cap = Capability::root()
                .set_bounds(u64::from(task) * 0x10000 + u64::from(object) * 64, 64)
                .unwrap()
                .and_perms(Perms::RW)
                .unwrap();
            let existed = model.contains(&(task, object));
            let had_room = model.len() < 32;
            let inserted = table.install(TaskId(task), ObjectId(object), cap).is_some();
            if inserted && !existed {
                model.push((task, object));
            }
            prop_assert_eq!(inserted, existed || had_room);
            prop_assert!(table.occupied() <= 32);
            prop_assert_eq!(table.occupied(), model.len());
        }
        // Lookup agreement.
        for t in 0..6u32 {
            for o in 0..12u16 {
                prop_assert_eq!(
                    table.lookup(TaskId(t), ObjectId(o)).is_some(),
                    model.contains(&(t, o)),
                    "lookup mismatch at ({},{})", t, o
                );
            }
        }
        // Eviction removes exactly that task's entries.
        let before = table.occupied();
        let expected_freed = model.iter().filter(|(t, _)| *t == evict_task).count();
        let freed = table.evict_task(TaskId(evict_task));
        prop_assert_eq!(freed, expected_freed);
        prop_assert_eq!(table.occupied(), before - freed);
        for (t, o) in &model {
            prop_assert_eq!(
                table.lookup(TaskId(*t), ObjectId(*o)).is_some(),
                *t != evict_task
            );
        }
    }

    /// Installed capabilities come back bit-identical.
    #[test]
    fn table_stores_capabilities_faithfully(base in 0u64..(1 << 30), len in 1u64..16384) {
        let Ok(cap) = Capability::root().set_bounds(base, len) else { return Ok(()) };
        let mut table = CapabilityTable::new(4);
        table.install(TaskId(1), ObjectId(0), cap).unwrap();
        let got = table.lookup(TaskId(1), ObjectId(0)).unwrap().capability;
        prop_assert_eq!(got, cap);
    }
}

/// Hard-coded replay of the shrunk case recorded in
/// `properties.proptest-regressions` (the seed itself is replayed
/// automatically by the harness before every run; this pins the
/// *concrete values* too, so the scenario survives even generator
/// changes): 33 installs filling the 32-entry table exactly to capacity
/// plus one rejected overflow, then evicting task 0.
#[test]
fn regression_eviction_at_exact_capacity() {
    let installs: [(u32, u16); 33] = [
        (2, 0),
        (0, 2),
        (2, 1),
        (2, 2),
        (2, 3),
        (0, 3),
        (2, 4),
        (2, 5),
        (5, 0),
        (2, 9),
        (1, 0),
        (1, 7),
        (1, 1),
        (3, 2),
        (2, 10),
        (4, 0),
        (0, 4),
        (3, 0),
        (0, 5),
        (1, 2),
        (1, 3),
        (1, 6),
        (0, 9),
        (0, 7),
        (0, 6),
        (0, 8),
        (3, 4),
        (1, 4),
        (3, 3),
        (3, 1),
        (1, 5),
        (0, 10),
        (0, 0),
    ];
    let evict_task = 0u32;
    let mut table = CapabilityTable::new(32);
    let mut model: Vec<(u32, u16)> = Vec::new();
    for (task, object) in installs {
        let cap = Capability::root()
            .set_bounds(u64::from(task) * 0x10000 + u64::from(object) * 64, 64)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap();
        let existed = model.contains(&(task, object));
        let had_room = model.len() < 32;
        let inserted = table.install(TaskId(task), ObjectId(object), cap).is_some();
        if inserted && !existed {
            model.push((task, object));
        }
        assert_eq!(inserted, existed || had_room);
        assert_eq!(table.occupied(), model.len());
    }
    // The 33rd install — (0, 0) into a full table — must be rejected.
    assert_eq!(table.occupied(), 32);
    assert!(table.lookup(TaskId(0), ObjectId(0)).is_none());
    let expected_freed = model.iter().filter(|(t, _)| *t == evict_task).count();
    assert_eq!(table.evict_task(TaskId(evict_task)), expected_freed);
    assert_eq!(table.occupied(), 32 - expected_freed);
    for (t, o) in &model {
        assert_eq!(
            table.lookup(TaskId(*t), ObjectId(*o)).is_some(),
            *t != evict_task
        );
    }
}
