//! Property-based tests for the fault-injection campaign and the driver's
//! recovery invariants.
//!
//! The unit tests in `recovery.rs` pin each fault kind to its expected
//! resolution; these properties sweep arbitrary seeds, rates, and pool
//! shapes and assert the guarantees that must hold *everywhere*:
//!
//! 1. Every submitted task ends in exactly one resolution — a task is
//!    never silently lost, whatever the fault mix.
//! 2. An injected fault never resolves as a plain clean completion: the
//!    driver either denied it, retried past it, quarantined the engine,
//!    or the task starved behind quarantined engines.
//! 3. Campaigns are reproducible: the same configuration yields a
//!    byte-identical JSON report.

use capchecker::{run_campaign, CampaignConfig, Resolution};
use hetsim::{FaultKind, FaultSpec};
use proptest::prelude::*;

fn config(tasks: u32, seed: u64, rate: f64, fus: usize) -> CampaignConfig {
    CampaignConfig {
        tasks,
        seed,
        spec: FaultSpec::uniform(rate),
        fus,
        ..CampaignConfig::default()
    }
}

proptest! {
    /// Whatever is injected, every task resolves exactly once and no
    /// faulted task slips through as a clean completion.
    #[test]
    fn no_task_is_lost_and_no_fault_goes_unnoticed(
        seed in 0u64..1 << 32,
        rate in 0.0f64..1.0,
        tasks in 1u32..24,
        fus in 2usize..6,
    ) {
        let report = run_campaign(&config(tasks, seed, rate, fus))
            .expect("campaign never wedges the driver");
        prop_assert_eq!(report.records.len(), tasks as usize,
            "one record per submitted task");
        for r in &report.records {
            if r.injected.is_some() {
                prop_assert!(r.resolution != Resolution::Completed,
                    "task {} absorbed {:?} without the driver noticing",
                    r.index, r.injected);
            }
            if r.resolution == Resolution::Denied {
                prop_assert!(r.denial.is_some(),
                    "a denied task must latch why (task {})", r.index);
            }
        }
        prop_assert!(report.quarantined_fus <= fus as u64,
            "cannot quarantine more engines than exist");
    }

    /// A campaign with no faults armed completes every task cleanly on the
    /// first attempt — the harness itself adds no spurious failures.
    #[test]
    fn fault_free_campaigns_are_clean(seed in 0u64..1 << 32, tasks in 1u32..24) {
        let report = run_campaign(&config(tasks, seed, 0.0, 4)).unwrap();
        for r in &report.records {
            prop_assert_eq!(r.resolution, Resolution::Completed);
            prop_assert_eq!(r.attempts, 1);
            prop_assert!(r.injected.is_none());
        }
        prop_assert!(!report.degraded);
        prop_assert_eq!(report.quarantined_fus, 0);
    }

    /// The same configuration produces a byte-identical report: the whole
    /// campaign — fault draws, recovery decisions, metrics — is a pure
    /// function of (tasks, seed, spec, policy, pool).
    #[test]
    fn same_config_same_report_bytes(
        seed in 0u64..1 << 32,
        rate in 0.0f64..1.0,
        tasks in 1u32..16,
    ) {
        let cfg = config(tasks, seed, rate, 4);
        let a = run_campaign(&cfg).unwrap().to_json();
        let b = run_campaign(&cfg).unwrap().to_json();
        prop_assert_eq!(a, b);
    }

    /// Single-kind storms: arming exactly one fault kind at full rate
    /// still resolves every task, and kinds that persist across retries
    /// never yield a `retried-completed` lie on the first attempt.
    #[test]
    fn single_kind_storms_resolve_every_task(
        seed in 0u64..1 << 32,
        kind_index in 0usize..FaultKind::ALL.len(),
    ) {
        let kind = FaultKind::ALL[kind_index];
        let mut spec = FaultSpec::none();
        spec.set(kind, 1.0);
        let cfg = CampaignConfig {
            tasks: 8,
            seed,
            spec,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        prop_assert_eq!(report.records.len(), 8);
        for r in &report.records {
            if r.resolution == Resolution::RetriedCompleted {
                prop_assert!(r.attempts > 1,
                    "retried-completed implies more than one attempt");
            }
        }
    }
}
