//! Property test pinning the indexed revocation sweep to the naive
//! O(memory) reference: on any mix of spilled capabilities, forged tags,
//! and revoked region sets, both sweeps must kill exactly the same tags
//! and report the same counts.

use capchecker::{sweep_revoked_many, sweep_revoked_naive};
use cheri::{Capability, Perms};
use hetsim::TaggedMemory;
use proptest::prelude::*;

const MEM_SIZE: u64 = 64 * 1024;

/// Where capabilities get spilled / tags get forged, as granule indices.
fn arb_granule() -> impl Strategy<Value = u64> {
    0u64..(MEM_SIZE / 16)
}

fn arb_spills() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    // (granule, authority base, authority len)
    prop::collection::vec((arb_granule(), 0u64..(1 << 20), 1u64..8192), 0..24)
}

fn arb_forged() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(arb_granule(), 0..6)
}

fn arb_regions() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..(1 << 20), 0u64..8192), 0..8)
}

fn tagged_granules(mem: &TaggedMemory) -> Vec<u64> {
    (0..MEM_SIZE)
        .step_by(16)
        .filter(|addr| mem.tag(*addr))
        .collect()
}

proptest! {
    #[test]
    fn indexed_sweep_matches_naive_sweep(
        spills in arb_spills(),
        forged in arb_forged(),
        regions in arb_regions(),
    ) {
        let mut mem = TaggedMemory::new(MEM_SIZE);
        for (granule, base, len) in spills {
            let Ok(cap) = Capability::root().set_bounds(base, len) else {
                continue;
            };
            let cap = cap.and_perms(Perms::RW).unwrap();
            mem.write_capability(granule * 16, cap.compress(), true).unwrap();
        }
        for granule in forged {
            mem.set_tag_raw(granule * 16, true).unwrap();
        }

        let mut indexed = mem.clone();
        let mut naive = mem;
        let fast = sweep_revoked_many(&mut indexed, &regions);
        let slow = sweep_revoked_naive(&mut naive, &regions);

        prop_assert_eq!(fast.revoked, slow.revoked);
        prop_assert_eq!(fast.capabilities_found, slow.capabilities_found);
        prop_assert_eq!(tagged_granules(&indexed), tagged_granules(&naive));
        prop_assert_eq!(indexed.tag_count(), naive.tag_count());
    }
}
