//! A tiny, dependency-free stand-in for the subset of the `criterion`
//! benchmarking API this workspace uses.
//!
//! The build environment cannot reach crates.io. The real statistical
//! machinery is replaced by a fixed-iteration timer that prints one line
//! per benchmark: good enough to spot order-of-magnitude regressions and
//! to keep `cargo bench` / `cargo test --benches` compiling and running.
//!
//! Beyond the drop-in API, the stub also *collects* its measurements:
//! every run is recorded as a [`Sample`] retrievable via
//! [`Criterion::samples`] and exportable as machine-readable JSON with
//! [`samples_to_json`]. The perf-smoke harness builds its
//! `BENCH_simulator.json` baseline from exactly these samples.

#![warn(missing_docs)]

use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// One recorded measurement: a benchmark's label and its mean time.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Group name (empty for ungrouped benchmarks).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean nanoseconds per iteration over the fixed sample.
    pub nanos_per_iter: f64,
}

impl Sample {
    /// `group/id`, or just `id` when ungrouped.
    #[must_use]
    pub fn label(&self) -> String {
        if self.group.is_empty() {
            self.id.clone()
        } else {
            format!("{}/{}", self.group, self.id)
        }
    }
}

/// Serializes samples as a deterministic-schema JSON document
/// (`capcheri.bench_samples.v1`). The *values* are measurements and vary
/// run to run; the shape never does.
#[must_use]
pub fn samples_to_json(samples: &[Sample]) -> String {
    let mut out = String::from("{\n  \"schema\": \"capcheri.bench_samples.v1\",\n  \"samples\": [");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"label\": \"{}\", \"ns_per_iter\": {:.1}}}",
            s.label().replace('"', "'"),
            s.nanos_per_iter
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    samples: Vec<Sample>,
}

impl Criterion {
    /// Applies command-line configuration (accepted, ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample = run_one("", &id.into(), f);
        self.samples.push(sample);
        self
    }

    /// Every measurement recorded so far, in run order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample = run_one(&self.name, &id.into(), f);
        self.criterion.samples.push(sample);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; its [`iter`](Bencher::iter) method
/// times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then a small fixed sample.
        black_box(routine());
        const ITERS: u32 = 10;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) -> Sample {
    let mut b = Bencher::default();
    f(&mut b);
    let sample = Sample {
        group: group.to_owned(),
        id: id.to_owned(),
        nanos_per_iter: b.nanos_per_iter,
    };
    println!(
        "bench {:<48} {:>14.0} ns/iter",
        sample.label(),
        sample.nanos_per_iter
    );
    sample
}

/// Declares a group of benchmark functions as one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }

    #[test]
    fn samples_are_collected_and_exported() {
        let mut c = Criterion::default();
        c.bench_function("alpha", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("beta", |b| b.iter(|| 2 + 2));
        g.finish();
        assert_eq!(c.samples().len(), 2);
        assert_eq!(c.samples()[0].label(), "alpha");
        assert_eq!(c.samples()[1].label(), "grp/beta");
        let json = samples_to_json(c.samples());
        assert!(json.contains("capcheri.bench_samples.v1"));
        assert!(json.contains("grp/beta"));
    }
}
