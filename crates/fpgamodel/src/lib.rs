//! # fpgamodel — analytical FPGA area and power model
//!
//! The paper reports area and power from Vivado post-place-and-route runs
//! on a VCU118 (Virtex UltraScale+). No such toolchain exists here, so
//! this crate substitutes an *analytical* model calibrated to the paper's
//! published anchors:
//!
//! * a 256-entry CapChecker occupies **30 k LUTs** (§6.3);
//! * a CFU-class lite CapChecker costs **fewer than 100 LUTs** while the
//!   whole TinyML system is ~10 k LUTs (§6.3);
//! * the CapChecker's area is constant in the accelerator's size — it
//!   scales with *entries*, not with datapath width;
//! * total area overhead lands "around 15% for all benchmarks but may
//!   vary depending on the total area of the original hardware".
//!
//! Only *relative* area/power (Figure 8's overhead panels) matter to the
//! reproduction; absolute numbers are in model units calibrated to look
//! like LUTs and milliwatts.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::ops::Add;

/// FPGA resource estimate for one component.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AreaEstimate {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub registers: u64,
    /// Block RAM, in kilobits.
    pub bram_kb: u64,
}

impl Add for AreaEstimate {
    type Output = AreaEstimate;
    fn add(self, rhs: AreaEstimate) -> AreaEstimate {
        AreaEstimate {
            luts: self.luts + rhs.luts,
            registers: self.registers + rhs.registers,
            bram_kb: self.bram_kb + rhs.bram_kb,
        }
    }
}

impl fmt::Display for AreaEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, {} kb BRAM",
            self.luts, self.registers, self.bram_kb
        )
    }
}

/// LUT cost of one CapChecker table entry (decoder slice + comparators +
/// associative match). `256 * 115 + base ≈ 30 k` — the paper's anchor.
const CHECKER_LUTS_PER_ENTRY: u64 = 115;
const CHECKER_BASE_LUTS: u64 = 560;

/// The full AXI CapChecker of the prototype.
#[must_use]
pub fn capchecker_area(entries: usize) -> AreaEstimate {
    AreaEstimate {
        luts: CHECKER_BASE_LUTS + entries as u64 * CHECKER_LUTS_PER_ENTRY,
        registers: 300 + entries as u64 * 150,
        bram_kb: (entries as u64 * 129).div_ceil(1024),
    }
}

/// The CFU-class lite CapChecker (§6.3): a handful of entries on a narrow
/// interface, "fewer than 100 LUTs".
#[must_use]
pub fn capchecker_lite_area(entries: usize) -> AreaEstimate {
    AreaEstimate {
        luts: 20 + entries as u64 * 5,
        registers: 16 + entries as u64 * 8,
        bram_kb: (entries as u64 * 129).div_ceil(1024),
    }
}

/// The Flute RISC-V softcore, plain or CHERI-extended (CHERI adds the
/// capability register file, bounds units, and tag plumbing — roughly a
/// quarter more logic).
#[must_use]
pub fn cpu_area(cheri: bool) -> AreaEstimate {
    let base = AreaEstimate {
        luts: 35_000,
        registers: 24_000,
        bram_kb: 512,
    };
    if cheri {
        AreaEstimate {
            luts: 44_000,
            registers: 31_000,
            bram_kb: 544,
        }
    } else {
        base
    }
}

/// One HLS accelerator instance: a control FSM plus a datapath that scales
/// with `lanes × compute_per_cycle`, plus BRAM for local arrays.
#[must_use]
pub fn accelerator_area(lanes: u32, compute_per_cycle: f64) -> AreaEstimate {
    let width = (f64::from(lanes) * compute_per_cycle).max(1.0);
    AreaEstimate {
        luts: 12_000 + (width * 30.0) as u64,
        registers: 8_000 + (width * 25.0) as u64,
        bram_kb: 64 + (width as u64) * 2,
    }
}

/// An IOMMU (page-walker, IOTLB CAM, AXI shims).
#[must_use]
pub fn iommu_area(iotlb_entries: usize) -> AreaEstimate {
    AreaEstimate {
        luts: 18_000 + iotlb_entries as u64 * 220,
        registers: 12_000 + iotlb_entries as u64 * 180,
        bram_kb: 128,
    }
}

/// An IOPMP (parallel region comparators — expensive per region).
#[must_use]
pub fn iopmp_area(regions: usize) -> AreaEstimate {
    AreaEstimate {
        luts: 400 + regions as u64 * 350,
        registers: 200 + regions as u64 * 260,
        bram_kb: 0,
    }
}

/// The shared AXI interconnect and memory controller.
#[must_use]
pub fn interconnect_area(masters: usize) -> AreaEstimate {
    AreaEstimate {
        luts: 6_000 + masters as u64 * 450,
        registers: 5_000 + masters as u64 * 380,
        bram_kb: 36,
    }
}

/// Post-P&R clock estimates in MHz (Virtex UltraScale+ class).
///
/// §5.2.1 notes that a single serializing CapChecker "cannot scale well
/// with a large number of accelerators or a high clock frequency": the
/// associative table lookup is the critical path, and it lengthens with
/// the entry count. These curves model that statement.
pub mod fmax {
    /// The Flute softcore's typical post-P&R clock.
    #[must_use]
    pub fn cpu_mhz(cheri: bool) -> f64 {
        if cheri {
            95.0 // bounds units lengthen the load/store path slightly
        } else {
            100.0
        }
    }

    /// An HLS accelerator's clock, degrading gently with datapath width.
    #[must_use]
    pub fn accelerator_mhz(lanes: u32, compute_per_cycle: f64) -> f64 {
        let width = (f64::from(lanes) * compute_per_cycle).max(1.0);
        (220.0 - 8.0 * width.log2()).max(120.0)
    }

    /// The CapChecker's clock: the fully-associative match against
    /// `entries` keys dominates, shrinking roughly with log2(entries).
    #[must_use]
    pub fn capchecker_mhz(entries: usize) -> f64 {
        let e = (entries.max(1)) as f64;
        (260.0 - 20.0 * e.log2()).max(60.0)
    }

    /// The system clock: everything on the shared interconnect runs at
    /// the slowest component.
    #[must_use]
    pub fn system_mhz(
        cheri_cpu: bool,
        lanes: u32,
        cpc: f64,
        checker_entries: Option<usize>,
    ) -> f64 {
        let mut f = cpu_mhz(cheri_cpu).min(accelerator_mhz(lanes, cpc));
        if let Some(entries) = checker_entries {
            f = f.min(capchecker_mhz(entries));
        }
        f
    }
}

/// Power estimate in milliwatts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerEstimate {
    /// Leakage, proportional to area.
    pub static_mw: f64,
    /// Switching, proportional to area × activity.
    pub dynamic_mw: f64,
}

impl PowerEstimate {
    /// Total power.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }
}

impl Add for PowerEstimate {
    type Output = PowerEstimate;
    fn add(self, rhs: PowerEstimate) -> PowerEstimate {
        PowerEstimate {
            static_mw: self.static_mw + rhs.static_mw,
            dynamic_mw: self.dynamic_mw + rhs.dynamic_mw,
        }
    }
}

/// Leakage per kLUT (mW) on the modelled process.
const STATIC_MW_PER_KLUT: f64 = 1.6;
/// Switching energy per kLUT at 100% activity (mW).
const DYNAMIC_MW_PER_KLUT: f64 = 4.2;

/// Power for a component of the given area at `activity` ∈ [0, 1]
/// (fraction of cycles the component toggles).
#[must_use]
pub fn power(area: AreaEstimate, activity: f64) -> PowerEstimate {
    let kluts = area.luts as f64 / 1000.0;
    PowerEstimate {
        static_mw: kluts * STATIC_MW_PER_KLUT,
        dynamic_mw: kluts * DYNAMIC_MW_PER_KLUT * activity.clamp(0.0, 1.0),
    }
}

/// Area breakdown of a full system configuration (one benchmark's SoC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemArea {
    /// The CPU core.
    pub cpu: AreaEstimate,
    /// All accelerator instances together.
    pub accelerators: AreaEstimate,
    /// Interconnect + memory controller.
    pub interconnect: AreaEstimate,
    /// The CapChecker, when present.
    pub checker: AreaEstimate,
}

impl SystemArea {
    /// Assembles the prototype system: a (CHERI) CPU, `instances`
    /// accelerators of the given datapath shape, the interconnect, and
    /// optionally a CapChecker with `checker_entries` entries.
    #[must_use]
    pub fn assemble(
        cheri_cpu: bool,
        instances: usize,
        lanes: u32,
        compute_per_cycle: f64,
        checker_entries: Option<usize>,
    ) -> SystemArea {
        let accel = accelerator_area(lanes, compute_per_cycle);
        SystemArea {
            cpu: cpu_area(cheri_cpu),
            accelerators: AreaEstimate {
                luts: accel.luts * instances as u64,
                registers: accel.registers * instances as u64,
                bram_kb: accel.bram_kb * instances as u64,
            },
            interconnect: interconnect_area(instances + 1),
            checker: checker_entries.map_or(AreaEstimate::default(), capchecker_area),
        }
    }

    /// Total area.
    #[must_use]
    pub fn total(&self) -> AreaEstimate {
        self.cpu + self.accelerators + self.interconnect + self.checker
    }

    /// The CapChecker's share of total LUTs — Figure 8's area-overhead bar.
    #[must_use]
    pub fn checker_overhead(&self) -> f64 {
        let total = self.total().luts as f64;
        let base = total - self.checker.luts as f64;
        self.checker.luts as f64 / base
    }

    /// System power given per-component activities.
    #[must_use]
    pub fn power(
        &self,
        cpu_activity: f64,
        accel_activity: f64,
        checker_activity: f64,
    ) -> PowerEstimate {
        power(self.cpu, cpu_activity)
            + power(self.accelerators, accel_activity)
            + power(self.interconnect, accel_activity)
            + power(self.checker, checker_activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_256_entries_is_30k_luts() {
        let a = capchecker_area(256);
        assert!((29_000..=31_000).contains(&a.luts), "got {} LUTs", a.luts);
    }

    #[test]
    fn paper_anchor_cfu_variant_under_100_luts() {
        let a = capchecker_lite_area(8);
        assert!(a.luts < 100, "got {} LUTs", a.luts);
    }

    #[test]
    fn checker_area_scales_with_entries_not_accelerator() {
        let small = SystemArea::assemble(true, 8, 1, 1.0, Some(256));
        let big = SystemArea::assemble(true, 8, 32, 16.0, Some(256));
        assert_eq!(small.checker, big.checker);
        assert!(big.accelerators.luts > small.accelerators.luts);
        // The *percentage* overhead therefore varies with the accelerator.
        assert!(small.checker_overhead() > big.checker_overhead());
    }

    #[test]
    fn area_overhead_is_around_fifteen_percent() {
        // Across the realistic datapath range, overhead stays in the
        // 8%–25% band with a midpoint near the paper's 15%.
        let mut sum = 0.0;
        let mut n = 0;
        for (lanes, cpc) in [
            (1u32, 2.0f64),
            (2, 4.0),
            (4, 4.0),
            (8, 4.0),
            (16, 8.0),
            (32, 16.0),
        ] {
            let s = SystemArea::assemble(true, 8, lanes, cpc, Some(256));
            let ovh = s.checker_overhead();
            assert!((0.05..0.30).contains(&ovh), "lanes={lanes}: {ovh}");
            sum += ovh;
            n += 1;
        }
        let mean = sum / f64::from(n);
        assert!((0.10..0.20).contains(&mean), "mean overhead {mean}");
    }

    #[test]
    fn cheri_cpu_costs_more() {
        assert!(cpu_area(true).luts > cpu_area(false).luts);
    }

    #[test]
    fn power_splits_static_and_dynamic() {
        let a = capchecker_area(256);
        let idle = power(a, 0.0);
        let busy = power(a, 1.0);
        assert_eq!(idle.dynamic_mw, 0.0);
        assert!(idle.static_mw > 0.0);
        assert!(busy.total_mw() > idle.total_mw());
        // Activity is clamped.
        assert_eq!(power(a, 2.0), busy);
    }

    #[test]
    fn iopmp_is_expensive_per_region() {
        // Doubling regions nearly doubles area: why IOPMPs stay tiny.
        let r16 = iopmp_area(16).luts;
        let r32 = iopmp_area(32).luts;
        assert!(r32 as f64 / r16 as f64 > 1.8);
    }

    #[test]
    fn fmax_shrinks_with_table_size_but_not_below_the_cpu_until_large() {
        // At the prototype's 256 entries the checker is not the system's
        // critical path (the 100 MHz softcore is)…
        assert!(fmax::capchecker_mhz(256) >= fmax::cpu_mhz(true));
        assert_eq!(
            fmax::system_mhz(true, 4, 4.0, Some(256)),
            fmax::system_mhz(true, 4, 4.0, None),
            "256 entries must not cost clock in the prototype"
        );
        // …but a much larger associative table would be (§5.2.1's scaling
        // caveat).
        assert!(fmax::capchecker_mhz(4096) < fmax::cpu_mhz(true));
        assert!(fmax::capchecker_mhz(16) > fmax::capchecker_mhz(512));
    }

    #[test]
    fn system_total_adds_up() {
        let s = SystemArea::assemble(true, 8, 4, 4.0, Some(256));
        let t = s.total();
        assert_eq!(
            t.luts,
            s.cpu.luts + s.accelerators.luts + s.interconnect.luts + s.checker.luts
        );
        assert!(t.luts > 100_000);
    }
}
