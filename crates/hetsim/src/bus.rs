//! Bus-level access descriptors and protection verdicts.
//!
//! Every memory request that crosses the interconnect is described by an
//! [`Access`]. Protection mechanisms (IOPMP, IOMMU, sNPU-style checkers,
//! and the CapChecker itself) consume these and either grant the request or
//! return a [`Denial`].

use crate::ids::{MasterId, ObjectId, TaskId};
use cheri::CapFault;
use std::error::Error;
use std::fmt;

/// Deterministic interconnect fault model: periodic grant stalls (a flaky
/// arbiter withholding the bus) and dropped beats (transfers that must be
/// retransmitted). Counter-based, not random, so a timing run with faults
/// armed is exactly reproducible — the fault campaign's requirement.
///
/// All-zero (the default) means a healthy bus, and the timing models are
/// bit-for-bit unchanged from the pre-fault code in that case.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusFaultConfig {
    /// Every `stall_every`-th grant is withheld (0 = never).
    pub stall_every: u64,
    /// Extra cycles a withheld grant waits.
    pub stall_cycles: u64,
    /// Every `drop_every`-th transfer loses its beats and retransmits,
    /// doubling its bus occupancy (0 = never).
    pub drop_every: u64,
}

impl BusFaultConfig {
    /// A healthy bus (no stalls, no drops).
    #[must_use]
    pub fn healthy() -> BusFaultConfig {
        BusFaultConfig::default()
    }

    /// `true` when any fault is armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.stall_every > 0 || self.drop_every > 0
    }

    /// Whether grant number `n` (1-based) is stalled, and for how long.
    #[must_use]
    pub fn stall_for(&self, n: u64) -> u64 {
        if self.stall_every > 0 && n.is_multiple_of(self.stall_every) {
            self.stall_cycles
        } else {
            0
        }
    }

    /// Whether transfer number `n` (1-based) drops its beats and must
    /// retransmit.
    #[must_use]
    pub fn drops(&self, n: u64) -> bool {
        self.drop_every > 0 && n.is_multiple_of(self.drop_every)
    }
}

/// Whether a request reads or writes memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A DMA read (memory → accelerator).
    Read,
    /// A DMA write (accelerator → memory).
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// One memory request as seen on the interconnect.
///
/// `object` carries the hardware provenance available on the accelerator's
/// memory interface: `Some` when each object maps to its own port (or the
/// port mux preserves an object identifier) — the CapChecker's **Fine**
/// input — and `None` when the accelerator multiplexes everything through
/// one opaque interface, forcing the checker into **Coarse** mode where the
/// object must be recovered from the top address bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Access {
    /// Which bus master issued the request.
    pub master: MasterId,
    /// The task on whose behalf the request is made (interconnect source).
    pub task: TaskId,
    /// Target address. In Coarse mode the top 8 bits carry the object ID.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Hardware object provenance, if the interface exposes it.
    pub object: Option<ObjectId>,
}

impl Access {
    /// Convenience constructor for a read request.
    #[must_use]
    pub fn read(master: MasterId, task: TaskId, addr: u64, len: u64) -> Access {
        Access {
            master,
            task,
            addr,
            len,
            kind: AccessKind::Read,
            object: None,
        }
    }

    /// Convenience constructor for a write request.
    #[must_use]
    pub fn write(master: MasterId, task: TaskId, addr: u64, len: u64) -> Access {
        Access {
            master,
            task,
            addr,
            len,
            kind: AccessKind::Write,
            object: None,
        }
    }

    /// Attaches hardware object provenance (Fine-mode port metadata).
    #[must_use]
    pub fn with_object(mut self, object: ObjectId) -> Access {
        self.object = Some(object);
        self
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{:#x}, +{}) by {}",
            self.task, self.kind, self.addr, self.len, self.master
        )?;
        if let Some(obj) = self.object {
            write!(f, " ({obj})")?;
        }
        Ok(())
    }
}

/// Why a protection mechanism refused a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DenyReason {
    /// No translation/region entry covers the address (IOMMU/IOPMP miss).
    NoEntry,
    /// The address is outside the bounds of the matched entry.
    OutOfBounds,
    /// The matched entry does not permit this kind of access.
    MissingPermission,
    /// The governing capability's tag was invalid.
    InvalidTag,
    /// The request's object provenance does not match any table entry
    /// for the task (bad port metadata or forged object-ID address bits).
    BadProvenance,
    /// An architectural capability fault (decoded from the table entry).
    Capability(CapFault),
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenyReason::NoEntry => write!(f, "no matching entry"),
            DenyReason::OutOfBounds => write!(f, "address out of bounds"),
            DenyReason::MissingPermission => write!(f, "permission missing"),
            DenyReason::InvalidTag => write!(f, "capability tag invalid"),
            DenyReason::BadProvenance => write!(f, "object provenance mismatch"),
            DenyReason::Capability(fault) => write!(f, "capability fault: {fault}"),
        }
    }
}

/// A refused request: the access plus the reason.
///
/// Raising one of these is the protection mechanism's *exception*: the
/// CapChecker additionally latches it in a global flag and the per-entry
/// exception bits so the driver can trace it (§5.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Denial {
    /// The refused access.
    pub access: Access,
    /// Why it was refused.
    pub reason: DenyReason,
}

impl fmt::Display for Denial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "denied: {} ({})", self.access, self.reason)
    }
}

impl Error for Denial {}

#[cfg(test)]
mod tests {
    use super::*;

    fn access() -> Access {
        Access::read(MasterId(1), TaskId(2), 0x1000, 64)
    }

    #[test]
    fn constructors_fill_fields() {
        let a = access();
        assert_eq!(a.kind, AccessKind::Read);
        assert_eq!(a.object, None);
        let w = Access::write(MasterId(1), TaskId(2), 0x2000, 8).with_object(ObjectId(3));
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(w.object, Some(ObjectId(3)));
    }

    #[test]
    fn display_mentions_the_essentials() {
        let d = Denial {
            access: access(),
            reason: DenyReason::OutOfBounds,
        };
        let s = d.to_string();
        assert!(s.contains("denied"));
        assert!(s.contains("0x1000"));
        assert!(s.contains("out of bounds"));
    }

    #[test]
    fn capability_faults_embed() {
        let d = Denial {
            access: access(),
            reason: DenyReason::Capability(CapFault::TagViolation),
        };
        assert!(d.to_string().contains("tag violation"));
    }
}
