//! The kernel execution abstraction.
//!
//! Benchmarks are written once against [`Engine`] and run unmodified on
//! every target: the CPU model, an unprotected accelerator, or an
//! accelerator behind the CapChecker or a baseline protection mechanism.
//! An engine performs *functional* memory accesses (so protection faults
//! really happen) and records a [`Trace`] for the timing models.

use crate::bus::Denial;
use crate::memory::{MemError, TaggedMemory};
use crate::trace::{Trace, TraceOp};
use std::error::Error;
use std::fmt;

/// A fault encountered while executing a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecFault {
    /// The protection path refused the access.
    Denied(Denial),
    /// The access left simulated physical memory.
    Mem(MemError),
    /// The engine stopped making progress and a watchdog expired. `ops`
    /// is the operation budget the task had burned when it was aborted.
    Hung {
        /// Watchdog operation budget consumed at abort time.
        ops: u64,
    },
    /// A transient interconnect fault (for example a dropped beat): the
    /// transfer aborted cleanly and a retry is expected to succeed.
    Transient {
        /// Which fault aborted the transfer.
        kind: obs::FaultKind,
    },
}

impl fmt::Display for ExecFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecFault::Denied(d) => write!(f, "{d}"),
            ExecFault::Mem(e) => write!(f, "{e}"),
            ExecFault::Hung { ops } => write!(f, "engine hung (watchdog expired after {ops} ops)"),
            ExecFault::Transient { kind } => write!(f, "transient fault: {kind}"),
        }
    }
}

impl Error for ExecFault {}

impl From<Denial> for ExecFault {
    fn from(d: Denial) -> ExecFault {
        ExecFault::Denied(d)
    }
}

impl From<MemError> for ExecFault {
    fn from(e: MemError) -> ExecFault {
        ExecFault::Mem(e)
    }
}

/// Where a kernel runs: loads, stores, computes, and bulk-copies against a
/// task's numbered objects (buffers).
///
/// Offsets are object-relative; the engine owns the object→address binding,
/// the protection path, and the trace.
pub trait Engine {
    /// Loads `size` (≤ 8) bytes at `offset` within object `obj`.
    ///
    /// # Errors
    ///
    /// [`ExecFault::Denied`] when the protection path refuses the access,
    /// [`ExecFault::Mem`] when it leaves physical memory.
    fn load(&mut self, obj: usize, offset: u64, size: u8) -> Result<u64, ExecFault>;

    /// Stores the low `size` (≤ 8) bytes of `value` at `offset` in `obj`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn store(&mut self, obj: usize, offset: u64, size: u8, value: u64) -> Result<(), ExecFault>;

    /// Records `units` of data-path work between memory operations.
    fn compute(&mut self, units: u64);

    /// Bulk-copies `len` bytes from `src_obj@src_off` to `dst_obj@dst_off`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn copy(
        &mut self,
        dst_obj: usize,
        dst_off: u64,
        src_obj: usize,
        src_off: u64,
        len: u64,
    ) -> Result<(), ExecFault> {
        // Default: element-wise via load/store (engines with a faster bulk
        // path override this).
        for i in 0..len {
            let b = self.load(src_obj, src_off + i, 1)?;
            self.store(dst_obj, dst_off + i, 1, b)?;
        }
        Ok(())
    }

    /// Loads a `u32`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn load_u32(&mut self, obj: usize, index: u64) -> Result<u32, ExecFault> {
        Ok(self.load(obj, index * 4, 4)? as u32)
    }

    /// Stores a `u32`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn store_u32(&mut self, obj: usize, index: u64, value: u32) -> Result<(), ExecFault> {
        self.store(obj, index * 4, 4, u64::from(value))
    }

    /// Loads an `i32`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn load_i32(&mut self, obj: usize, index: u64) -> Result<i32, ExecFault> {
        Ok(self.load_u32(obj, index)? as i32)
    }

    /// Stores an `i32`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn store_i32(&mut self, obj: usize, index: u64, value: i32) -> Result<(), ExecFault> {
        self.store_u32(obj, index, value as u32)
    }

    /// Loads an `f32` (stored as its IEEE-754 bit pattern).
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn load_f32(&mut self, obj: usize, index: u64) -> Result<f32, ExecFault> {
        Ok(f32::from_bits(self.load_u32(obj, index)?))
    }

    /// Stores an `f32`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn store_f32(&mut self, obj: usize, index: u64, value: f32) -> Result<(), ExecFault> {
        self.store_u32(obj, index, value.to_bits())
    }

    /// Loads a `u64`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn load_u64(&mut self, obj: usize, index: u64) -> Result<u64, ExecFault> {
        self.load(obj, index * 8, 8)
    }

    /// Stores a `u64`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn store_u64(&mut self, obj: usize, index: u64, value: u64) -> Result<(), ExecFault> {
        self.store(obj, index * 8, 8, value)
    }

    /// Loads a byte.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn load_u8(&mut self, obj: usize, offset: u64) -> Result<u8, ExecFault> {
        Ok(self.load(obj, offset, 1)? as u8)
    }

    /// Stores a byte.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::load`].
    fn store_u8(&mut self, obj: usize, offset: u64, value: u8) -> Result<(), ExecFault> {
        self.store(obj, offset, 1, u64::from(value))
    }
}

/// Overrides the typed [`Engine`] helpers (`load_u32`, `store_f32`, …)
/// inside a concrete `impl Engine for …` block with bodies identical to
/// the trait defaults.
///
/// Kernels drive engines through `&mut dyn Engine`, so a *default* typed
/// helper is a vtable call whose body makes a second vtable call into
/// `load`/`store`. Overridden in the concrete impl, `self.load(..)`
/// resolves statically and the whole chain — address computation,
/// protection check, memory access, trace push — inlines behind a single
/// indirect call per kernel operation. This is purely a dispatch change:
/// the expanded bodies are the trait defaults verbatim, so traces,
/// verdicts, and faults are unchanged.
#[macro_export]
macro_rules! impl_typed_engine_helpers {
    () => {
        #[inline]
        fn load_u32(&mut self, obj: usize, index: u64) -> Result<u32, $crate::ExecFault> {
            Ok(self.load(obj, index * 4, 4)? as u32)
        }

        #[inline]
        fn store_u32(
            &mut self,
            obj: usize,
            index: u64,
            value: u32,
        ) -> Result<(), $crate::ExecFault> {
            self.store(obj, index * 4, 4, u64::from(value))
        }

        #[inline]
        fn load_i32(&mut self, obj: usize, index: u64) -> Result<i32, $crate::ExecFault> {
            Ok(self.load_u32(obj, index)? as i32)
        }

        #[inline]
        fn store_i32(
            &mut self,
            obj: usize,
            index: u64,
            value: i32,
        ) -> Result<(), $crate::ExecFault> {
            self.store_u32(obj, index, value as u32)
        }

        #[inline]
        fn load_f32(&mut self, obj: usize, index: u64) -> Result<f32, $crate::ExecFault> {
            Ok(f32::from_bits(self.load_u32(obj, index)?))
        }

        #[inline]
        fn store_f32(
            &mut self,
            obj: usize,
            index: u64,
            value: f32,
        ) -> Result<(), $crate::ExecFault> {
            self.store_u32(obj, index, value.to_bits())
        }

        #[inline]
        fn load_u64(&mut self, obj: usize, index: u64) -> Result<u64, $crate::ExecFault> {
            self.load(obj, index * 8, 8)
        }

        #[inline]
        fn store_u64(
            &mut self,
            obj: usize,
            index: u64,
            value: u64,
        ) -> Result<(), $crate::ExecFault> {
            self.store(obj, index * 8, 8, value)
        }

        #[inline]
        fn load_u8(&mut self, obj: usize, offset: u64) -> Result<u8, $crate::ExecFault> {
            Ok(self.load(obj, offset, 1)? as u8)
        }

        #[inline]
        fn store_u8(
            &mut self,
            obj: usize,
            offset: u64,
            value: u8,
        ) -> Result<(), $crate::ExecFault> {
            self.store(obj, offset, 1, u64::from(value))
        }
    };
}

/// One buffer's placement in physical memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferRegion {
    /// First byte of the buffer.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl BufferRegion {
    /// One past the last byte.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.base + self.size
    }
}

/// The object→address binding for one task.
#[derive(Clone, Debug, Default)]
pub struct TaskLayout {
    /// Buffer regions, indexed by the kernel's object numbers.
    pub buffers: Vec<BufferRegion>,
}

impl TaskLayout {
    /// Builds a layout from `(base, size)` pairs.
    #[must_use]
    pub fn new(regions: impl IntoIterator<Item = (u64, u64)>) -> TaskLayout {
        TaskLayout {
            buffers: regions
                .into_iter()
                .map(|(base, size)| BufferRegion { base, size })
                .collect(),
        }
    }

    /// Physical address of `offset` within object `obj`.
    ///
    /// Note: deliberately does *not* bounds-check. The address computation
    /// in a real accelerator is arbitrary arithmetic; it is the protection
    /// path's job to reject the result. A buggy or malicious kernel indexes
    /// past a buffer and the resulting address simply lands wherever it
    /// lands.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is not a valid object number for this task.
    #[must_use]
    #[inline]
    pub fn address(&self, obj: usize, offset: u64) -> u64 {
        self.buffers[obj].base.wrapping_add(offset)
    }
}

/// The simplest engine: direct, unprotected access to memory, tracing as it
/// goes. This is the *golden* executor (and what a CHERI-unaware system
/// with no IOMMU does — every address is reachable).
#[derive(Debug)]
pub struct DirectEngine<'m> {
    mem: &'m mut TaggedMemory,
    layout: TaskLayout,
    trace: Trace,
}

impl<'m> DirectEngine<'m> {
    /// Creates an engine over `mem` with the given object binding.
    pub fn new(mem: &'m mut TaggedMemory, layout: TaskLayout) -> DirectEngine<'m> {
        DirectEngine {
            mem,
            layout,
            trace: Trace::new(),
        }
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the engine, returning the trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Engine for DirectEngine<'_> {
    crate::impl_typed_engine_helpers!();

    #[inline]
    fn load(&mut self, obj: usize, offset: u64, size: u8) -> Result<u64, ExecFault> {
        let addr = self.layout.address(obj, offset);
        let v = self.mem.read_uint(addr, size)?;
        self.trace.push(TraceOp::Mem {
            addr,
            bytes: u16::from(size),
            write: false,
            object: obj as u16,
        });
        Ok(v)
    }

    #[inline]
    fn store(&mut self, obj: usize, offset: u64, size: u8, value: u64) -> Result<(), ExecFault> {
        let addr = self.layout.address(obj, offset);
        self.mem.write_uint(addr, size, value)?;
        self.trace.push(TraceOp::Mem {
            addr,
            bytes: u16::from(size),
            write: true,
            object: obj as u16,
        });
        Ok(())
    }

    #[inline]
    fn compute(&mut self, units: u64) {
        if units > 0 {
            self.trace.push(TraceOp::Compute(units));
        }
    }

    fn copy(
        &mut self,
        dst_obj: usize,
        dst_off: u64,
        src_obj: usize,
        src_off: u64,
        len: u64,
    ) -> Result<(), ExecFault> {
        let src = self.layout.address(src_obj, src_off);
        let dst = self.layout.address(dst_obj, dst_off);
        let mut buf = vec![0u8; len as usize];
        self.mem.read_bytes(src, &mut buf)?;
        self.mem.write_bytes(dst, &buf)?;
        self.trace.push(TraceOp::Copy {
            src,
            dst,
            bytes: len,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_engine_reads_what_it_wrote() {
        let mut mem = TaggedMemory::new(4096);
        let layout = TaskLayout::new([(0x100, 64), (0x200, 64)]);
        let mut eng = DirectEngine::new(&mut mem, layout);
        eng.store_u32(0, 3, 0xabcd).unwrap();
        assert_eq!(eng.load_u32(0, 3).unwrap(), 0xabcd);
        eng.store_f32(1, 0, 1.5).unwrap();
        assert_eq!(eng.load_f32(1, 0).unwrap(), 1.5);
    }

    #[test]
    fn trace_records_everything() {
        let mut mem = TaggedMemory::new(4096);
        let mut eng = DirectEngine::new(&mut mem, TaskLayout::new([(0x100, 64)]));
        eng.compute(10);
        eng.store_u64(0, 0, 7).unwrap();
        eng.compute(5);
        eng.load_u64(0, 0).unwrap();
        let t = eng.into_trace();
        assert_eq!(t.len(), 4);
        assert_eq!(t.compute_units(), 15);
        assert_eq!(t.mem_bytes(), 16);
    }

    #[test]
    fn copy_moves_data_and_traces_once() {
        let mut mem = TaggedMemory::new(4096);
        mem.write_bytes(0x100, &[9u8; 32]).unwrap();
        let mut eng = DirectEngine::new(&mut mem, TaskLayout::new([(0x100, 64), (0x300, 64)]));
        eng.copy(1, 0, 0, 0, 32).unwrap();
        assert_eq!(eng.trace().mem_ops(), 1);
        drop(eng);
        let mut buf = [0u8; 32];
        mem.read_bytes(0x300, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 32]);
    }

    #[test]
    fn unprotected_engine_reaches_anything() {
        // The "no method" column of Table 1: an out-of-object offset lands
        // in someone else's memory and succeeds.
        let mut mem = TaggedMemory::new(4096);
        mem.write_bytes(0x200, &[0x5a]).unwrap();
        let mut eng = DirectEngine::new(&mut mem, TaskLayout::new([(0x100, 64)]));
        let stolen = eng.load_u8(0, 0x100).unwrap(); // offset 0x100 past a 64-byte buffer
        assert_eq!(stolen, 0x5a);
    }

    #[test]
    fn faults_surface_mem_errors() {
        let mut mem = TaggedMemory::new(64);
        let mut eng = DirectEngine::new(&mut mem, TaskLayout::new([(0, 64)]));
        let err = eng.load(0, 1 << 20, 4).unwrap_err();
        assert!(matches!(err, ExecFault::Mem(MemError::OutOfRange { .. })));
    }
}
