//! Deterministic fault injection for the simulated platform.
//!
//! The paper's protection claims are about *misbehaving* hardware, so the
//! simulator needs a way to misbehave on demand. This module provides the
//! platform half of the fault harness:
//!
//! * [`FaultSpec`] — a declarative, parseable description of which fault
//!   kinds are armed and at what per-task rate (`"rogue-dma:0.3,engine-hang:0.1"`,
//!   `"all:0.5"`, `"none"`).
//! * [`FaultPlan`] — a seeded sampler over a spec. Same seed ⇒ the same
//!   sequence of [`InjectedFault`] decisions, which is what makes whole
//!   fault campaigns byte-reproducible.
//! * [`FaultyEngine`] — an [`Engine`] wrapper that perturbs the kernel's
//!   own traffic: unsolicited rogue stores, garbled address lines, engine
//!   hangs and bus stalls (modelled as an unbounded compute spin a
//!   watchdog layered *below* this wrapper detects), and dropped beats
//!   (clean transient aborts).
//!
//! Tag flips ([`crate::memory::TaggedMemory::set_tag_raw`]) and checker-cache corruption
//! live outside the engine path and are injected directly by the recovery
//! campaign driver in `core`.

use crate::engine::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

pub use obs::FaultKind;

/// Compute units a hang/stall spin burns — far beyond any sane watchdog
/// budget, so the layer below trips deterministically.
pub const HANG_SPIN_UNITS: u64 = 1 << 32;

/// Object-relative offset a rogue store targets: ~1 TiB past the buffer,
/// far outside any granted object and (in any realistic configuration)
/// outside physical memory too.
pub const ROGUE_OFFSET: u64 = 1 << 40;

/// Address-line garble: OR-ing this into an offset sends the engine's own
/// transfer well past its buffer bounds.
pub const GARBLE_BIT: u64 = 1 << 30;

/// Whether a fault kind models a *persistent* hardware defect: it re-fires
/// on every retry until the driver quarantines the engine (or, for garbled
/// address lines, exhausts its retry budget with a latched denial).
#[must_use]
pub fn persists_across_retries(kind: FaultKind) -> bool {
    matches!(kind, FaultKind::GarbledDma | FaultKind::EngineHang)
}

/// Whether a fault kind is injected through the engine's own data path
/// (via [`FaultyEngine`]) rather than directly into memory or the checker.
#[must_use]
pub fn is_engine_level(kind: FaultKind) -> bool {
    !matches!(kind, FaultKind::TagFlip | FaultKind::CacheCorrupt)
}

/// A declarative fault campaign spec: which kinds are armed, at what
/// per-task probability.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    rates: Vec<(FaultKind, f64)>,
}

impl FaultSpec {
    /// The empty spec: no faults armed.
    #[must_use]
    pub fn none() -> FaultSpec {
        FaultSpec { rates: Vec::new() }
    }

    /// Every kind armed at the same per-task rate (`rate` is split evenly,
    /// so `rate` is the total probability that *some* fault is injected).
    #[must_use]
    pub fn uniform(rate: f64) -> FaultSpec {
        let per = rate / FaultKind::ALL.len() as f64;
        FaultSpec {
            rates: FaultKind::ALL.iter().map(|&k| (k, per)).collect(),
        }
    }

    /// Arms `kind` at `rate`, replacing any previous rate for it.
    pub fn set(&mut self, kind: FaultKind, rate: f64) {
        self.rates.retain(|(k, _)| *k != kind);
        if rate > 0.0 {
            self.rates.push((kind, rate));
        }
        self.rates.sort_by_key(|(k, _)| *k);
    }

    /// The armed rate for `kind` (0 when unarmed).
    #[must_use]
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0.0, |(_, r)| *r)
    }

    /// `true` when no fault kind is armed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The armed `(kind, rate)` pairs in stable ([`FaultKind::ALL`]) order.
    #[must_use]
    pub fn rates(&self) -> &[(FaultKind, f64)] {
        &self.rates
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    /// Parses `"none"`, `"all:<rate>"`, or `"<kind>:<rate>[,<kind>:<rate>...]"`
    /// with kinds from [`FaultKind::label`].
    fn from_str(s: &str) -> Result<FaultSpec, String> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(FaultSpec::none());
        }
        let mut spec = FaultSpec::none();
        for part in s.split(',') {
            let (name, rate) = part
                .split_once(':')
                .ok_or_else(|| format!("fault spec entry {part:?} is not <kind>:<rate>"))?;
            let rate: f64 = rate
                .trim()
                .parse()
                .map_err(|e| format!("fault rate in {part:?}: {e}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate in {part:?} must be within [0, 1]"));
            }
            let name = name.trim();
            if name == "all" {
                for (kind, per) in FaultSpec::uniform(rate).rates {
                    spec.set(kind, per);
                }
            } else {
                let kind = FaultKind::from_label(name).ok_or_else(|| {
                    let known: Vec<&str> = FaultKind::ALL.iter().map(|k| k.label()).collect();
                    format!("unknown fault kind {name:?} (known: {})", known.join(", "))
                })?;
                spec.set(kind, rate);
            }
        }
        Ok(spec)
    }
}

impl fmt::Display for FaultSpec {
    /// The normalized spec string — parseable back via [`FromStr`] and
    /// stable for report embedding.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rates.is_empty() {
            return f.write_str("none");
        }
        for (i, (kind, rate)) in self.rates.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}:{}", kind.label(), rate)?;
        }
        Ok(())
    }
}

/// One decided injection: which fault, and at which memory operation of
/// the kernel it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Zero-based memory-operation index at which it fires.
    pub at_op: u64,
}

/// A seeded sampler over a [`FaultSpec`]: decides, per task, whether and
/// what to inject. Consumes exactly two generator draws per decision so
/// the stream — and therefore the whole campaign — is reproducible.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng: SmallRng,
    window: u64,
}

impl FaultPlan {
    /// Default window of memory-op indices an injection point is drawn from.
    pub const DEFAULT_WINDOW: u64 = 8;

    /// Builds a plan over `spec` seeded with `seed`.
    #[must_use]
    pub fn new(spec: FaultSpec, seed: u64) -> FaultPlan {
        FaultPlan {
            spec,
            rng: SmallRng::seed_from_u64(seed ^ 0x000F_A017_5EED),
            window: FaultPlan::DEFAULT_WINDOW,
        }
    }

    /// The spec this plan samples from.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Draws the injection decision for the next task.
    pub fn sample(&mut self) -> Option<InjectedFault> {
        // Exactly two draws regardless of outcome, to keep the stream
        // position independent of earlier decisions.
        let sel: f64 = self.rng.gen_range(0.0..1.0);
        let at_op = self.rng.gen_range(0..self.window);
        let mut acc = 0.0;
        for &(kind, rate) in self.spec.rates() {
            acc += rate;
            if sel < acc {
                return Some(InjectedFault { kind, at_op });
            }
        }
        None
    }
}

/// An [`Engine`] wrapper that injects engine-level faults into the
/// kernel's own traffic.
///
/// Layering matters: the injected traffic flows *down* through whatever
/// this wrapper wraps. Stack a watchdog below it and above the protected
/// engine (`kernel → FaultyEngine → WatchdogEngine → ProtectedEngine`) so
/// hang/stall spins trip the watchdog and rogue stores hit the protection
/// path. Without a watchdog below, a hang spin records its compute burst
/// and execution simply continues — a hang in a system with no watchdog
/// is, after all, undetected.
pub struct FaultyEngine<'e> {
    inner: &'e mut dyn Engine,
    fault: Option<InjectedFault>,
    ops: u64,
    fired: Option<FaultKind>,
    garble_armed: bool,
}

impl fmt::Debug for FaultyEngine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyEngine")
            .field("fault", &self.fault)
            .field("ops", &self.ops)
            .field("fired", &self.fired)
            .finish_non_exhaustive()
    }
}

impl<'e> FaultyEngine<'e> {
    /// Wraps `inner`, arming at most one fault for this run.
    pub fn new(inner: &'e mut dyn Engine, fault: Option<InjectedFault>) -> FaultyEngine<'e> {
        FaultyEngine {
            inner,
            fault,
            ops: 0,
            fired: None,
            garble_armed: false,
        }
    }

    /// The fault that actually fired during this run, if any.
    #[must_use]
    pub fn fired(&self) -> Option<FaultKind> {
        self.fired
    }

    fn pre_op(&mut self) -> Result<(), ExecFault> {
        let Some(f) = self.fault else {
            return Ok(());
        };
        if self.fired.is_some() || self.ops < f.at_op {
            return Ok(());
        }
        self.fired = Some(f.kind);
        match f.kind {
            FaultKind::RogueDma => {
                // An unsolicited store far outside any granted buffer. On a
                // protected platform this comes back Denied; on an
                // unprotected one it lands wherever it lands.
                self.inner
                    .store(0, ROGUE_OFFSET + (self.ops << 4), 8, 0xDEAD_BEEF_0BAD_F00D)
            }
            FaultKind::GarbledDma => {
                // Corrupt the address lines of the kernel's own next op.
                self.garble_armed = true;
                Ok(())
            }
            FaultKind::EngineHang | FaultKind::BusStall => {
                // The transfer never completes: burn an unbounded spin,
                // then poke the data path so a watchdog below can abort.
                self.inner.compute(HANG_SPIN_UNITS);
                self.inner.load(0, 0, 1).map(|_| ())
            }
            FaultKind::DroppedBeat => Err(ExecFault::Transient { kind: f.kind }),
            // Injected outside the engine path (memory / checker cache).
            FaultKind::TagFlip | FaultKind::CacheCorrupt => Ok(()),
        }
    }

    fn garble(&mut self, offset: u64) -> u64 {
        if self.garble_armed {
            self.garble_armed = false;
            offset | GARBLE_BIT
        } else {
            offset
        }
    }
}

impl Engine for FaultyEngine<'_> {
    fn load(&mut self, obj: usize, offset: u64, size: u8) -> Result<u64, ExecFault> {
        self.pre_op()?;
        let offset = self.garble(offset);
        self.ops += 1;
        self.inner.load(obj, offset, size)
    }

    fn store(&mut self, obj: usize, offset: u64, size: u8, value: u64) -> Result<(), ExecFault> {
        self.pre_op()?;
        let offset = self.garble(offset);
        self.ops += 1;
        self.inner.store(obj, offset, size, value)
    }

    fn compute(&mut self, units: u64) {
        self.inner.compute(units);
    }

    fn copy(
        &mut self,
        dst_obj: usize,
        dst_off: u64,
        src_obj: usize,
        src_off: u64,
        len: u64,
    ) -> Result<(), ExecFault> {
        self.pre_op()?;
        let dst_off = self.garble(dst_off);
        self.ops += 1;
        self.inner.copy(dst_obj, dst_off, src_obj, src_off, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DirectEngine, TaskLayout};
    use crate::memory::TaggedMemory;

    #[test]
    fn spec_parses_and_normalizes() {
        let spec: FaultSpec = "rogue-dma:0.25, engine-hang:0.5".parse().unwrap();
        assert_eq!(spec.rate(FaultKind::RogueDma), 0.25);
        assert_eq!(spec.rate(FaultKind::EngineHang), 0.5);
        assert_eq!(spec.rate(FaultKind::TagFlip), 0.0);
        assert_eq!(spec.to_string(), "rogue-dma:0.25,engine-hang:0.5");
        assert_eq!(spec.to_string().parse::<FaultSpec>().unwrap(), spec);
        assert_eq!("none".parse::<FaultSpec>().unwrap(), FaultSpec::none());
        assert!("bogus:0.5".parse::<FaultSpec>().is_err());
        assert!("rogue-dma:1.5".parse::<FaultSpec>().is_err());
        assert!("rogue-dma".parse::<FaultSpec>().is_err());
    }

    #[test]
    fn all_spec_arms_every_kind() {
        let spec: FaultSpec = "all:0.7".parse().unwrap();
        for kind in FaultKind::ALL {
            assert!(spec.rate(kind) > 0.0, "{kind} unarmed");
        }
        let total: f64 = spec.rates().iter().map(|(_, r)| r).sum();
        assert!((total - 0.7).abs() < 1e-9);
    }

    #[test]
    fn plan_is_seed_deterministic() {
        let spec: FaultSpec = "all:0.8".parse().unwrap();
        let mut a = FaultPlan::new(spec.clone(), 42);
        let mut b = FaultPlan::new(spec.clone(), 42);
        let da: Vec<_> = (0..32).map(|_| a.sample()).collect();
        let db: Vec<_> = (0..32).map(|_| b.sample()).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(Option::is_some), "0.8 rate never fired");

        let mut c = FaultPlan::new(spec, 43);
        let dc: Vec<_> = (0..32).map(|_| c.sample()).collect();
        assert_ne!(da, dc, "different seeds should diverge");
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut plan = FaultPlan::new(FaultSpec::none(), 1);
        assert!((0..64).all(|_| plan.sample().is_none()));
    }

    #[test]
    fn rogue_dma_fires_an_out_of_bounds_store() {
        let mut mem = TaggedMemory::new(4096);
        let mut inner = DirectEngine::new(&mut mem, TaskLayout::new([(0x100, 64)]));
        let fault = InjectedFault {
            kind: FaultKind::RogueDma,
            at_op: 2,
        };
        let mut eng = FaultyEngine::new(&mut inner, Some(fault));
        assert!(eng.load_u32(0, 0).is_ok());
        assert!(eng.load_u32(0, 1).is_ok());
        // Third op: the rogue store goes ~1 TiB out and leaves a 4 KiB
        // memory, so even unprotected it faults.
        let err = eng.load_u32(0, 2).unwrap_err();
        assert!(matches!(err, ExecFault::Mem(_)), "got {err:?}");
        assert_eq!(eng.fired(), Some(FaultKind::RogueDma));
    }

    #[test]
    fn garbled_dma_corrupts_exactly_one_op() {
        let mut mem = TaggedMemory::new(4096);
        mem.write_bytes(0x100, &[7; 64]).unwrap();
        let mut inner = DirectEngine::new(&mut mem, TaskLayout::new([(0x100, 64)]));
        let fault = InjectedFault {
            kind: FaultKind::GarbledDma,
            at_op: 0,
        };
        let mut eng = FaultyEngine::new(&mut inner, Some(fault));
        // First op has its offset OR-ed with GARBLE_BIT → out of memory.
        assert!(matches!(eng.load_u32(0, 0), Err(ExecFault::Mem(_))));
        // Later ops are clean again.
        assert!(eng.load_u32(0, 1).is_ok());
        assert_eq!(eng.fired(), Some(FaultKind::GarbledDma));
    }

    #[test]
    fn dropped_beat_is_a_transient_abort() {
        let mut mem = TaggedMemory::new(4096);
        let mut inner = DirectEngine::new(&mut mem, TaskLayout::new([(0x100, 64)]));
        let fault = InjectedFault {
            kind: FaultKind::DroppedBeat,
            at_op: 0,
        };
        let mut eng = FaultyEngine::new(&mut inner, Some(fault));
        assert_eq!(
            eng.store_u32(0, 0, 1),
            Err(ExecFault::Transient {
                kind: FaultKind::DroppedBeat
            })
        );
    }

    #[test]
    fn hang_without_watchdog_spins_then_continues() {
        let mut mem = TaggedMemory::new(4096);
        let mut inner = DirectEngine::new(&mut mem, TaskLayout::new([(0x100, 64)]));
        let fault = InjectedFault {
            kind: FaultKind::EngineHang,
            at_op: 0,
        };
        let mut eng = FaultyEngine::new(&mut inner, Some(fault));
        assert!(eng.load_u32(0, 0).is_ok(), "no watchdog → hang undetected");
        assert_eq!(eng.fired(), Some(FaultKind::EngineHang));
        assert!(inner.trace().compute_units() >= HANG_SPIN_UNITS);
    }
}
