//! Identifier newtypes shared across the simulated system.

use std::fmt;

/// Identifies a computing task (CPU or accelerator), unique system-wide.
///
/// The pair `(target, number)` matches the paper's formalization where a
/// task is an element of `{P, A} × ℕ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Identifies one software object (buffer) within a task.
///
/// In *Fine* mode this arrives with the request as hardware-port
/// provenance; in *Coarse* mode it is recovered from the top address bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u16);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Identifies an accelerator functional unit (FU) instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuId(pub u32);

impl fmt::Display for FuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fu{}", self.0)
    }
}

/// Identifies a bus master (the CPU, or an accelerator DMA port).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MasterId(pub u16);

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "master{}", self.0)
    }
}

/// Simulated time in clock cycles.
pub type Cycles = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TaskId(3).to_string(), "task3");
        assert_eq!(ObjectId(1).to_string(), "obj1");
        assert_eq!(FuId(0).to_string(), "fu0");
        assert_eq!(MasterId(9).to_string(), "master9");
    }

    #[test]
    fn ids_order_and_hash() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(ObjectId(5), ObjectId(5));
    }
}
