//! # hetsim — heterogeneous-system simulation substrate
//!
//! The hardware the paper prototypes on an FPGA, rebuilt as an
//! architectural simulator: tagged main memory ([`TaggedMemory`]),
//! interconnect-level access descriptors ([`Access`], [`Denial`]), the
//! kernel execution abstraction ([`Engine`], [`Trace`]), MMIO plumbing
//! ([`mmio`]), and the CPU / accelerator timing models ([`timing`]).
//!
//! The crate is protection-agnostic: the CapChecker and the baseline
//! mechanisms (IOMMU, IOPMP, sNPU-style) plug into the access path defined
//! here.
//!
//! # Examples
//!
//! Running a tiny kernel functionally and costing it on two targets:
//!
//! ```
//! use hetsim::{DirectEngine, Engine, TaggedMemory, TaskLayout};
//! use hetsim::timing::{simulate_cpu, simulate_accel_system, AccelTask,
//!                      AccelTimingConfig, BusConfig, CpuTiming};
//!
//! # fn main() -> Result<(), hetsim::ExecFault> {
//! let mut mem = TaggedMemory::new(4096);
//! let mut eng = DirectEngine::new(&mut mem, TaskLayout::new([(0x100, 256)]));
//! for i in 0..32 {
//!     eng.store_u32(0, i, i as u32)?;
//!     eng.compute(4);
//! }
//! let trace = eng.into_trace();
//!
//! let cpu = simulate_cpu(&trace, &CpuTiming::default());
//! let accel = simulate_accel_system(
//!     &[AccelTask { trace: &trace, cfg: AccelTimingConfig::default(), start: 0 }],
//!     &BusConfig::default(),
//! );
//! assert!(cpu.cycles > 0 && accel.makespan > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bus;
mod engine;
pub mod fault;
mod ids;
mod memory;
pub mod mmio;
pub mod timing;
mod trace;
pub mod validate;

pub use bus::{Access, AccessKind, BusFaultConfig, Denial, DenyReason};
pub use engine::{BufferRegion, DirectEngine, Engine, ExecFault, TaskLayout};
pub use fault::{FaultKind, FaultPlan, FaultSpec, FaultyEngine, InjectedFault};
pub use ids::{Cycles, FuId, MasterId, ObjectId, TaskId};
pub use memory::{MemError, TaggedMemory};
pub use trace::{Trace, TraceOp};
