//! Byte-addressed main memory with out-of-band capability tags.
//!
//! The tag bit is "a vital component of the protection model" (§5.2.1): one
//! bit per 16-byte capability granule, stored out of band so that no data
//! write can ever set it. Any capability-unaware write — which is what all
//! accelerator DMA is — clears the tags of every granule it touches, which
//! is exactly how the CapChecker prevents "mutation of valid capabilities
//! into forged ones".

use cheri::{CompressedCapability, CAP_SIZE_BYTES};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// An access fell outside the physical memory, or was misaligned for a
/// capability-width operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// `[addr, addr + len)` is not contained in physical memory.
    OutOfRange {
        /// Start of the offending access.
        addr: u64,
        /// Length of the offending access in bytes.
        len: u64,
    },
    /// A capability-width access must be 16-byte aligned.
    Misaligned {
        /// The misaligned address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len } => {
                write!(f, "physical access [{addr:#x}, +{len}) out of range")
            }
            MemError::Misaligned { addr } => {
                write!(f, "capability access at {addr:#x} is not 16-byte aligned")
            }
        }
    }
}

impl Error for MemError {}

/// Main memory plus shadow tag storage.
///
/// # Examples
///
/// ```
/// use hetsim::TaggedMemory;
/// use cheri::Capability;
///
/// # fn main() -> Result<(), hetsim::MemError> {
/// let mut mem = TaggedMemory::new(4096);
/// let cap = Capability::root().set_bounds(0x100, 64).unwrap();
/// mem.write_capability(0x40, cap.compress(), true)?;
/// assert!(mem.tag(0x40));
///
/// // A plain data write over the capability strips its tag.
/// mem.write_bytes(0x48, &[0xff])?;
/// assert!(!mem.tag(0x40));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct TaggedMemory {
    data: Vec<u8>,
    tags: Vec<bool>,
    /// Capability interval index: granule address → decoded authority
    /// `(base, top)` of the capability stored there, for every *set* tag.
    /// Kept in lockstep with `tags` so revocation sweeps and audits walk
    /// live capabilities instead of all of physical memory. The cached
    /// bounds can never go stale: a granule's bytes are frozen while its
    /// tag is set (every data write clears the tags it touches).
    cap_index: BTreeMap<u64, (u64, u128)>,
    /// Conservative envelope of every granule address that has *ever*
    /// held a set tag: `tag_lo..=tag_hi`, granule-aligned. Data stores
    /// must clear the tags they overwrite, but almost all of them land in
    /// plain data buffers; testing the envelope first keeps the per-store
    /// cost at two integer compares instead of a capability-index probe.
    /// The envelope never shrinks (clears leave it alone), so it can only
    /// over-approximate — never miss — a live tag.
    tag_lo: u64,
    tag_hi: u64,
}

impl TaggedMemory {
    /// Allocates `size` bytes of zeroed memory with all tags clear.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a multiple of the 16-byte tag granule.
    #[must_use]
    pub fn new(size: u64) -> TaggedMemory {
        assert!(
            size.is_multiple_of(CAP_SIZE_BYTES),
            "memory size must be tag-granule aligned"
        );
        TaggedMemory {
            data: vec![0; size as usize],
            tags: vec![false; (size / CAP_SIZE_BYTES) as usize],
            cap_index: BTreeMap::new(),
            tag_lo: u64::MAX,
            tag_hi: 0,
        }
    }

    /// Grows the tagged-granule envelope to cover `granule_addr`.
    #[inline]
    fn note_tagged(&mut self, granule_addr: u64) {
        self.tag_lo = self.tag_lo.min(granule_addr);
        self.tag_hi = self.tag_hi.max(granule_addr);
    }

    /// Decodes the authority bounds of the capability bytes currently in
    /// `addr`'s granule, for indexing. `addr` must be granule-aligned and
    /// in range.
    fn decode_bounds_at(&self, addr: u64) -> (u64, u128) {
        let lo = addr as usize;
        let mut raw = [0u8; CAP_SIZE_BYTES as usize];
        raw.copy_from_slice(&self.data[lo..lo + CAP_SIZE_BYTES as usize]);
        let cap = CompressedCapability::from_bits(u128::from_le_bytes(raw)).decode(true);
        (cap.base(), cap.top())
    }

    /// Physical memory size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.data.len() as u64
    }

    #[inline]
    fn span(&self, addr: u64, len: u64) -> Result<std::ops::Range<usize>, MemError> {
        let end = addr
            .checked_add(len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        if end > self.size() {
            return Err(MemError::OutOfRange { addr, len });
        }
        Ok(addr as usize..end as usize)
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the span leaves physical memory.
    #[inline]
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let span = self.span(addr, buf.len() as u64)?;
        buf.copy_from_slice(&self.data[span]);
        Ok(())
    }

    /// Writes `buf` at `addr` as a *capability-unaware* store: the tags of
    /// every granule the write touches are cleared.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the span leaves physical memory.
    #[inline]
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        let span = self.span(addr, buf.len() as u64)?;
        self.data[span].copy_from_slice(buf);
        self.clear_tags(addr, buf.len() as u64);
        Ok(())
    }

    /// Reads up to 8 bytes as a little-endian integer.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the span leaves physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `len > 8`.
    #[inline]
    pub fn read_uint(&self, addr: u64, len: u8) -> Result<u64, MemError> {
        assert!(len <= 8, "integer reads are at most 8 bytes");
        let mut raw = [0u8; 8];
        self.read_bytes(addr, &mut raw[..len as usize])?;
        Ok(u64::from_le_bytes(raw))
    }

    /// Writes up to 8 bytes as a little-endian integer (tag-clearing).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the span leaves physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `len > 8`.
    #[inline]
    pub fn write_uint(&mut self, addr: u64, len: u8, value: u64) -> Result<(), MemError> {
        assert!(len <= 8, "integer writes are at most 8 bytes");
        let raw = value.to_le_bytes();
        self.write_bytes(addr, &raw[..len as usize])
    }

    /// Reads a 128-bit capability and its shadow tag.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] unless `addr` is 16-byte aligned;
    /// [`MemError::OutOfRange`] if outside memory.
    pub fn read_capability(&self, addr: u64) -> Result<(CompressedCapability, bool), MemError> {
        if !addr.is_multiple_of(CAP_SIZE_BYTES) {
            return Err(MemError::Misaligned { addr });
        }
        let mut raw = [0u8; 16];
        self.read_bytes(addr, &mut raw)?;
        let bits = u128::from_le_bytes(raw);
        Ok((
            CompressedCapability::from_bits(bits),
            self.tags[(addr / CAP_SIZE_BYTES) as usize],
        ))
    }

    /// Writes a 128-bit capability with its tag — the *capability-aware*
    /// store only the CHERI CPU (and the trusted CapChecker import path)
    /// can perform.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] unless `addr` is 16-byte aligned;
    /// [`MemError::OutOfRange`] if outside memory.
    pub fn write_capability(
        &mut self,
        addr: u64,
        cap: CompressedCapability,
        tag: bool,
    ) -> Result<(), MemError> {
        if !addr.is_multiple_of(CAP_SIZE_BYTES) {
            return Err(MemError::Misaligned { addr });
        }
        let span = self.span(addr, CAP_SIZE_BYTES)?;
        self.data[span].copy_from_slice(&cap.bits().to_le_bytes());
        self.tags[(addr / CAP_SIZE_BYTES) as usize] = tag;
        if tag {
            let decoded = cap.decode(true);
            self.cap_index.insert(addr, (decoded.base(), decoded.top()));
            self.note_tagged(addr);
        } else {
            self.cap_index.remove(&addr);
        }
        Ok(())
    }

    /// The shadow tag covering `addr`'s granule (`false` out of range).
    #[must_use]
    pub fn tag(&self, addr: u64) -> bool {
        self.tags
            .get((addr / CAP_SIZE_BYTES) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Fault-injection hook: forces the tag bit covering `addr`'s granule
    /// without going through the capability-aware store path, returning
    /// the previous value. This is how the fault harness models a bit flip
    /// in the shadow tag storage — no architectural operation can do this.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if `addr` is outside physical memory.
    pub fn set_tag_raw(&mut self, addr: u64, value: bool) -> Result<bool, MemError> {
        let granule = (addr / CAP_SIZE_BYTES) as usize;
        let tag = self
            .tags
            .get_mut(granule)
            .ok_or(MemError::OutOfRange { addr, len: 1 })?;
        let previous = std::mem::replace(tag, value);
        let granule_addr = granule as u64 * CAP_SIZE_BYTES;
        if value {
            // A forged tag makes whatever bytes sit there a "capability";
            // index the bounds those bytes decode to, exactly as a sweep
            // reading the granule would see them.
            let bounds = self.decode_bounds_at(granule_addr);
            self.cap_index.insert(granule_addr, bounds);
            self.note_tagged(granule_addr);
        } else {
            self.cap_index.remove(&granule_addr);
        }
        Ok(previous)
    }

    /// Clears every tag whose granule intersects `[addr, addr + len)`.
    ///
    /// Walks the capability index, not the span, so wide DMA writes and
    /// scrubs pay per *set* tag in the range rather than per granule.
    #[inline]
    pub fn clear_tags(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let last = ((addr + len - 1) / CAP_SIZE_BYTES) as usize;
        let lo = (addr / CAP_SIZE_BYTES) * CAP_SIZE_BYTES;
        let hi = last.min(self.tags.len().saturating_sub(1)) as u64 * CAP_SIZE_BYTES;
        if lo > hi {
            return;
        }
        // Envelope fast-out: the span cannot intersect a set tag.
        if hi < self.tag_lo || lo > self.tag_hi {
            return;
        }
        let doomed: Vec<u64> = self.cap_index.range(lo..=hi).map(|(a, _)| *a).collect();
        for granule_addr in doomed {
            self.tags[(granule_addr / CAP_SIZE_BYTES) as usize] = false;
            self.cap_index.remove(&granule_addr);
        }
    }

    /// Number of set tags (used by audits and tests). O(1) via the index.
    #[must_use]
    pub fn tag_count(&self) -> usize {
        self.cap_index.len()
    }

    /// The live tagged granules, in address order, as
    /// `(granule address, authority base, authority top)`.
    ///
    /// This is the revocation sweep's fast path: cost proportional to the
    /// number of valid in-memory capabilities, not to physical memory.
    pub fn tagged_capabilities(&self) -> impl Iterator<Item = (u64, u64, u128)> + '_ {
        self.cap_index
            .iter()
            .map(|(addr, (base, top))| (*addr, *base, *top))
    }

    /// Zeroes `[addr, addr + len)` and clears its tags — the driver's
    /// buffer-scrub on deallocation after an exception.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the span leaves physical memory.
    pub fn scrub(&mut self, addr: u64, len: u64) -> Result<(), MemError> {
        let span = self.span(addr, len)?;
        self.data[span].fill(0);
        self.clear_tags(addr, len);
        Ok(())
    }
}

impl fmt::Debug for TaggedMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaggedMemory")
            .field("size", &self.data.len())
            .field("tags_set", &self.tag_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;

    #[test]
    fn data_round_trip() {
        let mut mem = TaggedMemory::new(1024);
        mem.write_bytes(100, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        mem.read_bytes(100, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn uint_round_trip() {
        let mut mem = TaggedMemory::new(1024);
        mem.write_uint(64, 8, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(mem.read_uint(64, 8).unwrap(), 0xdead_beef_cafe_f00d);
        mem.write_uint(80, 4, 0x1234_5678).unwrap();
        assert_eq!(mem.read_uint(80, 4).unwrap(), 0x1234_5678);
    }

    #[test]
    fn out_of_range_is_reported() {
        let mem = TaggedMemory::new(1024);
        let mut buf = [0u8; 8];
        assert_eq!(
            mem.read_bytes(1020, &mut buf),
            Err(MemError::OutOfRange { addr: 1020, len: 8 })
        );
        assert!(mem.read_bytes(u64::MAX, &mut buf).is_err());
    }

    #[test]
    fn capability_round_trip_keeps_tag() {
        let mut mem = TaggedMemory::new(1024);
        let cap = Capability::root().set_bounds(0x200, 32).unwrap();
        mem.write_capability(0x80, cap.compress(), true).unwrap();
        let (bits, tag) = mem.read_capability(0x80).unwrap();
        assert!(tag);
        assert_eq!(bits.decode(true), cap);
    }

    #[test]
    fn data_write_clears_overlapping_tag() {
        let mut mem = TaggedMemory::new(1024);
        let cap = Capability::root().set_bounds(0, 16).unwrap();
        mem.write_capability(0x80, cap.compress(), true).unwrap();
        mem.write_capability(0x90, cap.compress(), true).unwrap();
        assert_eq!(mem.tag_count(), 2);
        // One byte into the first granule kills only that tag.
        mem.write_bytes(0x8f, &[0]).unwrap();
        assert!(!mem.tag(0x80));
        assert!(mem.tag(0x90));
    }

    #[test]
    fn wide_write_clears_all_touched_tags() {
        let mut mem = TaggedMemory::new(1024);
        let cap = Capability::root().set_bounds(0, 16).unwrap();
        for addr in [0x40, 0x50, 0x60] {
            mem.write_capability(addr, cap.compress(), true).unwrap();
        }
        mem.write_bytes(0x48, &[0u8; 24]).unwrap(); // touches 0x40 and 0x50 and 0x60's granule start?
        assert!(!mem.tag(0x40));
        assert!(!mem.tag(0x50));
        // 0x48 + 24 = 0x60, exclusive: granule 0x60 untouched.
        assert!(mem.tag(0x60));
    }

    #[test]
    fn misaligned_capability_access_rejected() {
        let mut mem = TaggedMemory::new(1024);
        assert_eq!(
            mem.read_capability(8).unwrap_err(),
            MemError::Misaligned { addr: 8 }
        );
        let cap = Capability::root().compress();
        assert_eq!(
            mem.write_capability(8, cap, true).unwrap_err(),
            MemError::Misaligned { addr: 8 }
        );
    }

    #[test]
    fn scrub_zeroes_and_untags() {
        let mut mem = TaggedMemory::new(1024);
        mem.write_bytes(0x100, &[0xaa; 64]).unwrap();
        mem.write_capability(0x100, Capability::root().compress(), true)
            .unwrap();
        mem.scrub(0x100, 64).unwrap();
        let mut buf = [0xffu8; 64];
        mem.read_bytes(0x100, &mut buf).unwrap();
        assert!(buf.iter().all(|b| *b == 0));
        assert_eq!(mem.tag_count(), 0);
    }

    #[test]
    fn raw_tag_flips_bypass_the_store_path() {
        let mut mem = TaggedMemory::new(1024);
        assert!(!mem.tag(0x40));
        assert_eq!(mem.set_tag_raw(0x44, true), Ok(false)); // mid-granule addr
        assert!(mem.tag(0x40), "granule tag forged");
        assert_eq!(mem.tag_count(), 1);
        assert_eq!(mem.set_tag_raw(0x40, false), Ok(true));
        assert_eq!(mem.tag_count(), 0);
        assert!(mem.set_tag_raw(1 << 20, true).is_err());
    }

    #[test]
    fn zero_length_operations_are_noops() {
        let mut mem = TaggedMemory::new(64);
        mem.write_bytes(64, &[]).unwrap(); // empty write at the end is fine
        mem.clear_tags(0, 0);
        assert_eq!(mem.tag_count(), 0);
    }
}
