//! Memory-mapped I/O register plumbing.
//!
//! The CPU configures accelerators and the CapChecker by storing to control
//! registers. Devices implement [`MmioDevice`]; a [`RegisterFile`] is the
//! trivial backing store most devices need.

use std::fmt;

/// A device reachable over the control interconnect.
///
/// Offsets are byte offsets from the device's base address; accesses are
/// 64-bit, matching the prototype's AXI-Lite control path.
pub trait MmioDevice {
    /// Reads the 64-bit register at `offset`.
    fn mmio_read(&mut self, offset: u64) -> u64;
    /// Writes the 64-bit register at `offset`.
    fn mmio_write(&mut self, offset: u64, value: u64);
}

/// A plain bank of 64-bit registers.
///
/// # Examples
///
/// ```
/// use hetsim::mmio::{MmioDevice, RegisterFile};
///
/// let mut regs = RegisterFile::new(4);
/// regs.mmio_write(8, 0xbeef);
/// assert_eq!(regs.mmio_read(8), 0xbeef);
/// ```
#[derive(Clone, Default)]
pub struct RegisterFile {
    regs: Vec<u64>,
}

impl RegisterFile {
    /// A bank of `count` zeroed registers.
    #[must_use]
    pub fn new(count: usize) -> RegisterFile {
        RegisterFile {
            regs: vec![0; count],
        }
    }

    /// Number of registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// `true` if the bank has no registers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Direct indexed access (register number, not byte offset).
    #[must_use]
    pub fn get(&self, index: usize) -> u64 {
        self.regs.get(index).copied().unwrap_or(0)
    }

    /// Direct indexed store (register number, not byte offset).
    pub fn set(&mut self, index: usize, value: u64) {
        if let Some(r) = self.regs.get_mut(index) {
            *r = value;
        }
    }

    /// Zeroes every register — the driver's deallocation scrub that stops a
    /// follow-on task from inheriting pointers (§5.3).
    pub fn clear(&mut self) {
        self.regs.fill(0);
    }
}

impl MmioDevice for RegisterFile {
    fn mmio_read(&mut self, offset: u64) -> u64 {
        self.get((offset / 8) as usize)
    }

    fn mmio_write(&mut self, offset: u64, value: u64) {
        self.set((offset / 8) as usize, value);
    }
}

impl fmt::Debug for RegisterFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegisterFile({} regs)", self.regs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_reads_zero_and_writes_drop() {
        let mut regs = RegisterFile::new(2);
        assert_eq!(regs.mmio_read(64), 0);
        regs.mmio_write(64, 5); // silently dropped, like a real bus
        assert_eq!(regs.len(), 2);
    }

    #[test]
    fn clear_scrubs_all() {
        let mut regs = RegisterFile::new(3);
        regs.set(0, 1);
        regs.set(2, 9);
        regs.clear();
        assert_eq!((regs.get(0), regs.get(2)), (0, 0));
    }
}
