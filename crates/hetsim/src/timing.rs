//! Timing models: cost a recorded [`Trace`] on a CPU or on accelerator
//! functional units behind the shared AXI port.
//!
//! The models are deliberately architectural rather than RTL-exact: they
//! reproduce the *relationships* the paper's evaluation rests on —
//!
//! * the interconnect moves one beat per cycle, shared by everyone, so
//!   memory-bound accelerators saturate and extra parallelism stops paying
//!   (Figures 7, 11);
//! * accelerators have no cache, so latency-bound kernels lose to the CPU
//!   (Figure 10 c, i);
//! * the CapChecker is a pipelined unit: it adds latency per request but no
//!   throughput loss, plus a fixed MMIO capability-installation cost at
//!   task start (Figure 8's md_knn outlier);
//! * the CHERI CPU pays a small per-access cost but moves 16 bytes per
//!   copy instruction (gemm_blocked runs *faster* on `ccpu`, Figure 10 g).

use crate::ids::Cycles;
use crate::trace::{Trace, TraceOp};
use obs::{EventKind, NullProfiler, NullTracer, Profiler, Tracer};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// A set-associative data cache (LRU within a set; 1 way = direct-mapped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            size: 16 * 1024,
            line: 64,
            ways: 1,
        }
    }
}

impl CacheConfig {
    /// A direct-mapped cache of the given size.
    #[must_use]
    pub fn direct_mapped(size: u64, line: u64) -> CacheConfig {
        CacheConfig {
            size,
            line,
            ways: 1,
        }
    }
}

/// Extra costs of the CHERI-extended CPU (`ccpu`) relative to `cpu`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheriCpuCost {
    /// Average extra cycles per memory operation (capability register
    /// management and wider spills; bounds checks themselves are parallel
    /// and free).
    pub per_mem_op_extra: f64,
    /// Multiplier on compute cycles: capability-manipulation instructions
    /// interleaved with the data path cost a small percentage of dynamic
    /// instructions (the 1–5% `cpu`→`ccpu` gap of Figure 10).
    pub compute_factor: f64,
    /// Bytes moved per copy instruction: 16 with the capability-copy
    /// instruction versus 8 on plain RV64.
    pub copy_width: u64,
    /// One-time cost of installing the compartment's capability registers.
    pub setup_cycles: Cycles,
}

impl Default for CheriCpuCost {
    fn default() -> CheriCpuCost {
        CheriCpuCost {
            per_mem_op_extra: 0.04,
            compute_factor: 1.02,
            copy_width: 16,
            setup_cycles: 50,
        }
    }
}

/// Timing parameters for the scalar CPU model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuTiming {
    /// Cycles per data-path work unit (scalar CPI for the kernel's ops).
    pub cycles_per_unit: f64,
    /// Cycles to issue a memory access that hits in the L1.
    pub issue_cycles: f64,
    /// Extra cycles on an L1 miss (memory + interconnect round trip).
    pub miss_latency: Cycles,
    /// The L1 data cache; `None` models an uncached core.
    pub cache: Option<CacheConfig>,
    /// `Some` for the CHERI-extended CPU.
    pub cheri: Option<CheriCpuCost>,
}

impl Default for CpuTiming {
    fn default() -> CpuTiming {
        CpuTiming {
            cycles_per_unit: 1.0,
            issue_cycles: 1.0,
            miss_latency: 30,
            cache: Some(CacheConfig::default()),
            cheri: None,
        }
    }
}

impl CpuTiming {
    /// The same core with the CHERI extensions enabled.
    #[must_use]
    pub fn with_cheri(mut self) -> CpuTiming {
        self.cheri = Some(CheriCpuCost::default());
        self
    }
}

/// Result of costing a trace on the CPU model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuReport {
    /// Total execution time.
    pub cycles: Cycles,
    /// Memory operations issued (copies expanded).
    pub mem_ops: u64,
    /// L1 hits.
    pub hits: u64,
    /// L1 misses.
    pub misses: u64,
}

#[derive(Debug)]
struct Cache {
    cfg: CacheConfig,
    sets: usize,
    /// `sets × ways` tags; within a set, index 0 is least recently used.
    tags: Vec<u64>,
    /// The line of the previous access — streaming kernels touch the same
    /// line for many consecutive operations, and a repeat access is a hit
    /// that leaves the LRU state untouched (the line is already in the
    /// most-recently-used position, so the rotate is the identity). This
    /// memo skips the set lookup entirely on that path.
    last_line: Option<u64>,
}

impl Cache {
    fn new(cfg: CacheConfig) -> Cache {
        let ways = cfg.ways.max(1) as usize;
        let lines = (cfg.size / cfg.line).max(1) as usize;
        let sets = (lines / ways).max(1);
        Cache {
            cfg,
            sets,
            tags: vec![u64::MAX; sets * ways],
            last_line: None,
        }
    }

    /// Returns `true` on hit; fills the line (LRU eviction) otherwise.
    fn access(&mut self, addr: u64) -> bool {
        let ways = self.cfg.ways.max(1) as usize;
        let line_no = addr / self.cfg.line;
        if self.last_line == Some(line_no) {
            return true;
        }
        self.last_line = Some(line_no);
        let set = (line_no % self.sets as u64) as usize;
        let slice = &mut self.tags[set * ways..(set + 1) * ways];
        if let Some(pos) = slice.iter().position(|t| *t == line_no) {
            // Move to most-recently-used position.
            slice[pos..].rotate_left(1);
            true
        } else {
            slice.rotate_left(1);
            slice[ways - 1] = line_no;
            false
        }
    }
}

/// Costs `trace` on the sequential CPU model.
#[must_use]
pub fn simulate_cpu(trace: &Trace, cfg: &CpuTiming) -> CpuReport {
    simulate_cpu_traced(trace, cfg, &mut NullTracer)
}

/// [`simulate_cpu`] with every L1 lookup recorded as a cycle-stamped
/// event. The untraced entry point calls this with a [`NullTracer`], so
/// the two paths are one code path and cycle counts cannot diverge.
#[must_use]
pub fn simulate_cpu_traced(trace: &Trace, cfg: &CpuTiming, tracer: &mut dyn Tracer) -> CpuReport {
    simulate_cpu_prof(trace, cfg, tracer, &mut NullProfiler)
}

/// [`simulate_cpu_traced`] with the run's cycles attributed to profiler
/// spans: `cpu/{setup,compute,issue,miss_stall}` partitions the total
/// (child sums are truncated, so attribution never exceeds the report),
/// and each access's cost lands in the `cpu.access_cycles` histogram.
/// Every cost attributed here derives from simulated quantities only, so
/// the profile is deterministic. The traced entry point calls this with a
/// [`NullProfiler`] — one code path, cycle counts cannot diverge.
#[must_use]
pub fn simulate_cpu_prof(
    trace: &Trace,
    cfg: &CpuTiming,
    tracer: &mut dyn Tracer,
    prof: &mut dyn Profiler,
) -> CpuReport {
    let profiling = prof.enabled();
    let mut cache = cfg.cache.map(Cache::new);
    let mut cycles = 0.0f64;
    let mut report = CpuReport::default();
    let per_op_extra = cfg.cheri.map_or(0.0, |c| c.per_mem_op_extra);
    let compute_factor = cfg.cheri.map_or(1.0, |c| c.compute_factor);
    if let Some(ch) = &cfg.cheri {
        cycles += ch.setup_cycles as f64;
    }

    let mut access = |addr: u64,
                      report: &mut CpuReport,
                      at: f64,
                      tracer: &mut dyn Tracer,
                      prof: &mut dyn Profiler|
     -> f64 {
        report.mem_ops += 1;
        let mut cost = cfg.issue_cycles + per_op_extra;
        match cache.as_mut() {
            Some(c) => {
                let hit = c.access(addr);
                if hit {
                    report.hits += 1;
                } else {
                    report.misses += 1;
                    cost += cfg.miss_latency as f64;
                }
                tracer.record(at as u64, EventKind::L1Access { hit });
            }
            None => cost += cfg.miss_latency as f64,
        }
        if profiling {
            prof.observe("cpu.access_cycles", cost as u64);
        }
        cost
    };

    for op in trace.ops() {
        match *op {
            TraceOp::Compute(units) => {
                cycles += units as f64 * cfg.cycles_per_unit * compute_factor
            }
            TraceOp::Mem { addr, .. } => cycles += access(addr, &mut report, cycles, tracer, prof),
            TraceOp::Copy { src, dst, bytes } => {
                // memcpy moves line-sized bursts: read a line's worth of
                // chunks, then write them (avoids pathological src/dst
                // alternation in the direct-mapped cache).
                let width = cfg.cheri.map_or(8, |c| c.copy_width).max(1);
                let burst = cfg.cache.map_or(64, |c| c.line).max(width);
                let mut at = 0u64;
                while at < bytes {
                    let span = burst.min(bytes - at);
                    for i in (0..span).step_by(width as usize) {
                        cycles += access(src + at + i, &mut report, cycles, tracer, prof);
                    }
                    for i in (0..span).step_by(width as usize) {
                        cycles += access(dst + at + i, &mut report, cycles, tracer, prof);
                    }
                    at += span;
                }
            }
        }
    }
    report.cycles = cycles.ceil() as Cycles;

    if profiling {
        // Reconstruct the exact partition from the run's own counts: the
        // total is setup + compute + per-access issue + miss stalls, so
        // compute falls out as the remainder. Truncating each share keeps
        // the attributed sum at or below the reported total.
        let setup = cfg.cheri.map_or(0.0, |c| c.setup_cycles as f64);
        let issue = report.mem_ops as f64 * (cfg.issue_cycles + per_op_extra);
        let stalled = if cfg.cache.is_some() {
            report.misses
        } else {
            report.mem_ops
        };
        let miss_stall = stalled as f64 * cfg.miss_latency as f64;
        let compute = (cycles - setup - issue - miss_stall).max(0.0);
        prof.enter("cpu");
        for (name, share) in [
            ("setup", setup),
            ("compute", compute),
            ("issue", issue),
            ("miss_stall", miss_stall),
        ] {
            prof.enter(name);
            prof.add_cycles(share as u64);
            prof.exit();
        }
        prof.exit();
    }
    report
}

/// Timing parameters for one accelerator task's functional unit.
///
/// These are the knobs HLS fixes when it builds the accelerator: how many
/// parallel lanes the datapath has, how many operations each lane retires
/// per cycle once its pipeline fills, and how many memory requests a lane
/// keeps in flight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccelTimingConfig {
    /// Parallel datapath lanes (loop unroll × FU duplication).
    pub lanes: u32,
    /// Work units retired per lane per cycle (pipelining depth).
    pub compute_per_cycle: f64,
    /// Outstanding memory requests per lane (no cache: this is all the
    /// latency tolerance the accelerator has).
    pub outstanding: u32,
}

impl Default for AccelTimingConfig {
    fn default() -> AccelTimingConfig {
        AccelTimingConfig {
            lanes: 4,
            compute_per_cycle: 4.0,
            outstanding: 4,
        }
    }
}

/// Shared memory-path parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusConfig {
    /// Bytes moved per interconnect beat (AXI data width).
    pub beat_bytes: u64,
    /// Memory access latency in cycles (request to data).
    pub mem_latency: Cycles,
    /// Extra pipelined latency added by a checker on the path (0 = none).
    pub checker_latency: Cycles,
    /// Deterministic interconnect faults (default: healthy).
    pub faults: crate::bus::BusFaultConfig,
}

impl Default for BusConfig {
    fn default() -> BusConfig {
        BusConfig {
            beat_bytes: 8,
            mem_latency: 30,
            checker_latency: 0,
            faults: crate::bus::BusFaultConfig::healthy(),
        }
    }
}

impl BusConfig {
    /// The same bus with a CapChecker of the given pipeline depth inserted.
    #[must_use]
    pub fn with_checker(mut self, latency: Cycles) -> BusConfig {
        self.checker_latency = latency;
        self
    }

    /// The same bus with an interconnect fault model armed.
    #[must_use]
    pub fn with_faults(mut self, faults: crate::bus::BusFaultConfig) -> BusConfig {
        self.faults = faults;
        self
    }

    fn beats(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.beat_bytes).max(1)
    }
}

/// One accelerator task to run: its trace, its FU configuration, and the
/// cycle at which it may start issuing (driver setup cost).
#[derive(Clone, Debug)]
pub struct AccelTask<'a> {
    /// The work to perform.
    pub trace: &'a Trace,
    /// The FU's timing configuration.
    pub cfg: AccelTimingConfig,
    /// Start time: capability-installation and control-register setup.
    pub start: Cycles,
}

/// Result of simulating a set of accelerator tasks on the shared bus.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccelReport {
    /// Completion cycle of each task (same order as the input).
    pub per_task: Vec<Cycles>,
    /// Cycle at which the last task finished.
    pub makespan: Cycles,
    /// Total interconnect beats consumed.
    pub bus_beats: u64,
    /// Fraction of the makespan the bus was busy (contention indicator).
    pub bus_utilization: f64,
}

#[derive(Debug)]
struct Lane {
    task: usize,
    ops: Vec<TraceOp>,
    next: usize,
    time: f64,
    inflight: VecDeque<f64>,
    cfg: AccelTimingConfig,
}

/// A totally ordered f64 for the event heap (times are never NaN).
#[derive(Clone, Copy, PartialEq, PartialOrd)]
struct Time(f64);
impl Eq for Time {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    fn cmp(&self, other: &Time) -> std::cmp::Ordering {
        self.partial_cmp(other)
            // lint: allow(panic-in-hot-path) — Time is built from finite sums
            .expect("simulation times are never NaN")
    }
}

/// Splits a task's trace across `n` datapath lanes: compute work divides
/// evenly (unrolled loop bodies), memory operations round-robin. Shared
/// by the event-driven model and the cycle-accurate validator.
pub(crate) fn distribute_over_lanes(trace: &Trace, n: usize) -> Vec<Vec<TraceOp>> {
    let mut per_lane: Vec<Vec<TraceOp>> = vec![Vec::new(); n.max(1)];
    let n = per_lane.len();
    let push_compute = |lane: &mut Vec<TraceOp>, units: u64| {
        if units == 0 {
            return;
        }
        if let Some(TraceOp::Compute(prev)) = lane.last_mut() {
            *prev += units;
        } else {
            lane.push(TraceOp::Compute(units));
        }
    };
    let mut mem_rr = 0usize;
    for op in trace.ops() {
        match *op {
            TraceOp::Compute(units) => {
                let share = units / n as u64;
                let rem = (units % n as u64) as usize;
                for (j, lane) in per_lane.iter_mut().enumerate() {
                    push_compute(lane, share + u64::from(j < rem));
                }
            }
            mem_op => {
                per_lane[mem_rr % n].push(mem_op);
                mem_rr += 1;
            }
        }
    }
    per_lane
}

/// Simulates `tasks` running concurrently on the shared memory path.
///
/// Each task's operations are distributed round-robin over its lanes; each
/// lane issues in order, limited by its outstanding-request window; all
/// lanes of all tasks contend for the single one-beat-per-cycle port in
/// ready-time order (FCFS — the AXI arbiter of the prototype).
#[must_use]
pub fn simulate_accel_system(tasks: &[AccelTask<'_>], bus: &BusConfig) -> AccelReport {
    simulate_accel_system_traced(tasks, bus, &mut NullTracer)
}

/// [`simulate_accel_system`] with task start/end and every bus grant
/// recorded as cycle-stamped events. The untraced entry point calls this
/// with a [`NullTracer`], so timing results cannot diverge between the
/// traced and untraced paths.
#[must_use]
pub fn simulate_accel_system_traced(
    tasks: &[AccelTask<'_>],
    bus: &BusConfig,
    tracer: &mut dyn Tracer,
) -> AccelReport {
    simulate_accel_system_prof(tasks, bus, tracer, &mut NullProfiler)
}

/// [`simulate_accel_system_traced`] with the makespan attributed to
/// profiler spans. The partition is exact:
/// `accel/setup` is the earliest task start,
/// `accel/execute/bus_busy` is the beats the one-beat-per-cycle port
/// moved (each beat occupies a distinct port cycle after setup), and
/// `accel/execute/bus_idle` is the remainder — the three sum to the
/// makespan (`bus_idle` is exactly the idle the event wheel jumps over
/// without stepping). Per-request arbitration waits and burst lengths
/// land in the `accel.req_wait` / `accel.req_beats` histograms, and each
/// task's start-to-done duration in `accel.task_cycles`. All attributed
/// quantities are simulated, so the profile is deterministic. The traced
/// entry point calls this with a [`NullProfiler`] — one code path,
/// timing cannot diverge.
///
/// This is the event-wheel core: lanes are compact cursors over
/// pre-folded `(compute, beats)` entries, the next lane to run is the
/// argmin of the per-lane next-event times, and a granted lane keeps
/// running inline while no other lane is scheduled earlier. It performs
/// the same floating-point operations in the same order as
/// [`simulate_accel_system_naive`], so results are cycle-for-cycle (in
/// fact bit-for-bit) identical — the test suite and the CI perf-smoke
/// job pin that equivalence.
#[must_use]
pub fn simulate_accel_system_prof(
    tasks: &[AccelTask<'_>],
    bus: &BusConfig,
    tracer: &mut dyn Tracer,
    prof: &mut dyn Profiler,
) -> AccelReport {
    // Monomorphize the wheel over its observers: the common benchmark
    // path (no tracer, no profiler) compiles to a loop with no virtual
    // calls at all.
    match (tracer.enabled(), prof.enabled()) {
        (false, false) => run_wheel::<false, false>(tasks, bus, tracer, prof),
        (true, false) => run_wheel::<true, false>(tasks, bus, tracer, prof),
        (false, true) => run_wheel::<false, true>(tasks, bus, tracer, prof),
        (true, true) => run_wheel::<true, true>(tasks, bus, tracer, prof),
    }
}

/// One lane memory operation in the form the event wheel walks: the
/// compute *cycles* the lane retires since its previous own memory op,
/// and the healthy-bus beats of the transfer. The cycles are the single
/// `units as f64 / compute_per_cycle` division [`distribute_over_lanes`]'
/// coalescing implies — performed once at build time with the identical
/// operands, so hoisting it out of the wheel loop cannot change a bit
/// (zero units fold to `+0.0`, and `t + 0.0 == t` for the non-negative
/// times the wheel advances).
#[derive(Clone, Copy, Debug, Default)]
struct LaneEntry {
    pre_cycles: f64,
    base_beats: u64,
}

/// Per-lane cursor state of the event wheel. The whole struct is plain
/// scalars: entries live in one shared arena (sequential reads), and the
/// outstanding-request window is a fixed ring in a second arena instead
/// of a `VecDeque` per lane.
#[derive(Clone, Copy, Debug)]
struct WheelLane {
    task: u32,
    cursor: usize,
    end: usize,
    tail_units: u64,
    cpc: f64,
    window: u32,
    ring_start: usize,
    ring_head: u32,
    ring_len: u32,
}

struct Wheel {
    entries: Vec<LaneEntry>,
    lanes: Vec<WheelLane>,
    /// Next-event time per lane; `f64::INFINITY` once the lane finished.
    when: Vec<f64>,
    ring: Vec<f64>,
}

// Retired entry arenas, reused by [`build_wheel`]. A long trace folds to
// megabytes of [`LaneEntry`]s; faulting that arena in fresh on every
// simulation call costs more than filling it, so the buffer is parked
// per thread between runs (contents are fully rewritten each build).
thread_local! {
    static ENTRY_POOL: std::cell::RefCell<Vec<LaneEntry>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Drop for Wheel {
    fn drop(&mut self) {
        if self.entries.capacity() < 4096 {
            return;
        }
        let mut entries = std::mem::take(&mut self.entries);
        ENTRY_POOL.with(|pool| {
            let mut parked = pool.borrow_mut();
            if entries.capacity() > parked.capacity() {
                entries.clear();
                *parked = entries;
            }
        });
    }
}

/// Folds every task's trace into the wheel's compact per-lane arrays —
/// the lazy-cursor equivalent of [`distribute_over_lanes`] (same lane
/// numbering, same round-robin, same compute coalescing), minus the
/// per-lane `Vec<TraceOp>` materialization.
fn build_wheel(tasks: &[AccelTask<'_>], bus: &BusConfig) -> Wheel {
    let mut lanes: Vec<WheelLane> = Vec::new();
    let mut when: Vec<f64> = Vec::new();
    let mut total_entries = 0usize;
    let mut total_ring = 0usize;
    for (t_idx, task) in tasks.iter().enumerate() {
        let n = task.cfg.lanes.max(1) as usize;
        let mem_ops = task.trace.mem_ops() as usize;
        let window = task.cfg.outstanding.max(1) as usize;
        for j in 0..n {
            // Round-robin: lane j owns mem ops j, j+n, j+2n, …
            let count = mem_ops / n + usize::from(j < mem_ops % n);
            lanes.push(WheelLane {
                task: t_idx as u32,
                cursor: total_entries,
                end: total_entries + count,
                tail_units: 0,
                cpc: task.cfg.compute_per_cycle.max(1e-9),
                window: window as u32,
                ring_start: total_ring,
                ring_head: 0,
                ring_len: 0,
            });
            when.push(task.start as f64);
            total_entries += count;
            total_ring += window;
        }
    }
    let mut entries = ENTRY_POOL.with(|pool| std::mem::take(&mut *pool.borrow_mut()));
    entries.clear();
    entries.resize(total_entries, LaneEntry::default());
    let mut lane_base = 0usize;
    for task in tasks {
        let n = task.cfg.lanes.max(1) as usize;
        let cpc = task.cfg.compute_per_cycle.max(1e-9);
        let mut pending: Vec<u64> = vec![0; n];
        let mut cursors: Vec<usize> = (0..n).map(|j| lanes[lane_base + j].cursor).collect();
        let mut mem_rr = 0usize;
        for op in task.trace.ops() {
            let beats = match *op {
                TraceOp::Compute(units) => {
                    // Compute divides evenly, remainder to the low lanes —
                    // accumulated, matching `push_compute`'s coalescing.
                    let share = units / n as u64;
                    let rem = (units % n as u64) as usize;
                    for (j, p) in pending.iter_mut().enumerate() {
                        *p += share + u64::from(j < rem);
                    }
                    continue;
                }
                TraceOp::Mem { bytes, .. } => bus.beats(u64::from(bytes)),
                TraceOp::Copy { bytes, .. } => 2 * bus.beats(bytes),
            };
            let j = mem_rr % n;
            entries[cursors[j]] = LaneEntry {
                pre_cycles: if pending[j] != 0 {
                    pending[j] as f64 / cpc
                } else {
                    0.0
                },
                base_beats: beats,
            };
            cursors[j] += 1;
            pending[j] = 0;
            mem_rr += 1;
        }
        for (j, p) in pending.into_iter().enumerate() {
            lanes[lane_base + j].tail_units = p;
        }
        lane_base += n;
    }
    Wheel {
        entries,
        lanes,
        when,
        ring: vec![0.0; total_ring],
    }
}

/// The event-wheel loop. `TRACING`/`PROFILING` mirror
/// `tracer.enabled()` / `prof.enabled()`; monomorphizing on them keeps
/// the benchmark path free of per-op virtual calls while the observed
/// paths stay the same code, so observers can never perturb timing.
fn run_wheel<const TRACING: bool, const PROFILING: bool>(
    tasks: &[AccelTask<'_>],
    bus: &BusConfig,
    tracer: &mut dyn Tracer,
    prof: &mut dyn Profiler,
) -> AccelReport {
    let mut wheel = build_wheel(tasks, bus);
    let latency = (bus.mem_latency + bus.checker_latency) as f64;
    let mut bus_free = 0.0f64;
    let mut bus_beats = 0u64;
    let mut grants = 0u64;
    let mut per_task: Vec<Cycles> = tasks.iter().map(|t| t.start).collect();

    if TRACING {
        for (t_idx, task) in tasks.iter().enumerate() {
            tracer.record(task.start, EventKind::TaskStart { task: t_idx as u32 });
        }
    }

    let mut remaining = wheel.lanes.len();
    while remaining > 0 {
        // Next event: the earliest (time, lane) pair, plus the runner-up
        // that bounds how long the winner may keep running inline. The
        // strict `<` keeps the lowest index on ties — the same order the
        // reference heap's `(Time, usize)` keys produce.
        let mut li = 0usize;
        let mut best = f64::INFINITY;
        let mut other = (f64::INFINITY, usize::MAX);
        for (i, &t) in wheel.when.iter().enumerate() {
            if t < best {
                other = (best, li);
                best = t;
                li = i;
            } else if t < other.0 {
                other = (t, i);
            }
        }
        let mut lane = wheel.lanes[li];
        let task_idx = lane.task as usize;
        let window = lane.window as usize;
        let mut t = wheel.when[li];
        loop {
            if lane.cursor == lane.end {
                // Lane finished issuing: retire its tail compute, then
                // wait for its in-flight requests.
                if lane.tail_units != 0 {
                    t += lane.tail_units as f64 / lane.cpc;
                }
                let drain = if lane.ring_len > 0 {
                    let back = (lane.ring_head + lane.ring_len - 1) as usize % window;
                    wheel.ring[lane.ring_start + back]
                } else {
                    t
                };
                let done = t.max(drain).ceil() as Cycles;
                per_task[task_idx] = per_task[task_idx].max(done);
                wheel.when[li] = f64::INFINITY;
                remaining -= 1;
                break;
            }
            let e = wheel.entries[lane.cursor];
            lane.cursor += 1;
            t += e.pre_cycles;
            let mut beats = e.base_beats;
            grants += 1;
            // Interconnect faults: a dropped transfer retransmits (double
            // occupancy); a stalled grant waits out the arbiter. Both are
            // counter-periodic, so reproducible.
            if bus.faults.drops(grants) {
                beats *= 2;
            }
            let stall = bus.faults.stall_for(grants) as f64;
            let mut ready = t;
            if lane.ring_len as usize >= window {
                ready = ready.max(wheel.ring[lane.ring_start + lane.ring_head as usize]);
                lane.ring_head = ((lane.ring_head as usize + 1) % window) as u32;
                lane.ring_len -= 1;
            }
            let grant = ready.max(bus_free) + stall;
            if TRACING {
                tracer.record(
                    grant as u64,
                    EventKind::BusGrant {
                        lane: li as u32,
                        task: lane.task,
                        beats,
                        waited: (grant - ready) as u64,
                    },
                );
            }
            if PROFILING {
                prof.observe("accel.req_wait", (grant - ready) as u64);
                prof.observe("accel.req_beats", beats);
            }
            bus_free = grant + beats as f64;
            bus_beats += beats;
            let slot = (lane.ring_head as usize + lane.ring_len as usize) % window;
            wheel.ring[lane.ring_start + slot] = grant + beats as f64 + latency;
            lane.ring_len += 1;
            t = grant + beats as f64;
            // The wheel's monotonic jump: time advances straight to this
            // lane's next grant as long as no other lane has an earlier
            // event — idle port cycles are skipped, never stepped.
            if other.0 < t || (other.0 == t && other.1 < li) {
                wheel.when[li] = t;
                break;
            }
        }
        wheel.lanes[li] = lane;
    }

    if TRACING {
        for (t_idx, done) in per_task.iter().enumerate() {
            tracer.record(*done, EventKind::TaskEnd { task: t_idx as u32 });
        }
    }

    let makespan = per_task.iter().copied().max().unwrap_or(0);

    if PROFILING {
        for (t_idx, done) in per_task.iter().enumerate() {
            prof.observe("accel.task_cycles", done.saturating_sub(tasks[t_idx].start));
        }
        let setup = tasks.iter().map(|t| t.start).min().unwrap_or(0);
        let execute = makespan.saturating_sub(setup);
        // Every beat occupies a distinct cycle on the single port, and no
        // grant precedes the earliest start, so busy ≤ execute holds; the
        // min is belt-and-braces against a saturated fault model.
        let busy = bus_beats.min(execute);
        prof.enter("accel");
        prof.enter("setup");
        prof.add_cycles(setup);
        prof.exit();
        prof.enter("execute");
        prof.enter("bus_busy");
        prof.add_cycles(busy);
        prof.exit();
        prof.enter("bus_idle");
        prof.add_cycles(execute - busy);
        prof.exit();
        prof.exit();
        prof.exit();
    }

    AccelReport {
        per_task,
        makespan,
        bus_beats,
        bus_utilization: if makespan == 0 {
            0.0
        } else {
            bus_beats as f64 / makespan as f64
        },
    }
}

/// The retained stepping reference: the per-lane `Vec<TraceOp>`
/// materialization and binary-heap scheduler the event wheel replaced.
/// Kept callable (not test-only) because the CI perf-smoke job and the
/// conformance tests pin [`simulate_accel_system`] against it
/// cycle-for-cycle — the wheel performs the same floating-point
/// operations in the same order, so any divergence is a bug in the wheel.
#[must_use]
pub fn simulate_accel_system_naive(tasks: &[AccelTask<'_>], bus: &BusConfig) -> AccelReport {
    simulate_accel_system_naive_prof(tasks, bus, &mut NullTracer, &mut NullProfiler)
}

/// [`simulate_accel_system_naive`] with the same tracer/profiler hooks as
/// the wheel — the full pre-wheel implementation, verbatim, so the
/// observed paths can be pinned too.
#[must_use]
pub fn simulate_accel_system_naive_prof(
    tasks: &[AccelTask<'_>],
    bus: &BusConfig,
    tracer: &mut dyn Tracer,
    prof: &mut dyn Profiler,
) -> AccelReport {
    let profiling = prof.enabled();
    let mut lanes: Vec<Lane> = Vec::new();
    for (t_idx, task) in tasks.iter().enumerate() {
        let n = task.cfg.lanes.max(1) as usize;
        for ops in distribute_over_lanes(task.trace, n) {
            lanes.push(Lane {
                task: t_idx,
                ops,
                next: 0,
                time: task.start as f64,
                inflight: VecDeque::new(),
                cfg: task.cfg,
            });
        }
    }

    let latency = (bus.mem_latency + bus.checker_latency) as f64;
    let mut bus_free = 0.0f64;
    let mut bus_beats = 0u64;
    let mut grants = 0u64;
    let mut per_task: Vec<Cycles> = tasks.iter().map(|t| t.start).collect();

    if tracer.enabled() {
        for (t_idx, task) in tasks.iter().enumerate() {
            tracer.record(task.start, EventKind::TaskStart { task: t_idx as u32 });
        }
    }

    let mut heap: BinaryHeap<Reverse<(Time, usize)>> = lanes
        .iter()
        .enumerate()
        .map(|(i, l)| Reverse((Time(l.time), i)))
        .collect();

    while let Some(Reverse((_, li))) = heap.pop() {
        // Once popped, a lane keeps running inline for as long as no other
        // lane is scheduled earlier (heap-bypass fast path below).
        loop {
            let lane = &mut lanes[li];
            // Retire any compute leading up to the next memory operation.
            while let Some(TraceOp::Compute(units)) = lane.ops.get(lane.next) {
                lane.time += *units as f64 / lane.cfg.compute_per_cycle.max(1e-9);
                lane.next += 1;
            }
            match lane.ops.get(lane.next) {
                None => {
                    // Lane finished issuing: wait for its in-flight requests.
                    let drain = lane.inflight.back().copied().unwrap_or(lane.time);
                    let done = lane.time.max(drain).ceil() as Cycles;
                    per_task[lane.task] = per_task[lane.task].max(done);
                    break;
                }
                Some(&op) => {
                    let mut beats = match op {
                        TraceOp::Mem { bytes, .. } => bus.beats(u64::from(bytes)),
                        TraceOp::Copy { bytes, .. } => 2 * bus.beats(bytes),
                        TraceOp::Compute(_) => unreachable!("compute handled above"),
                    };
                    lane.next += 1;
                    grants += 1;
                    // Interconnect faults: a dropped transfer retransmits
                    // (double occupancy); a stalled grant waits out the
                    // arbiter. Both are counter-periodic, so reproducible.
                    if bus.faults.drops(grants) {
                        beats *= 2;
                    }
                    let stall = bus.faults.stall_for(grants) as f64;
                    let window = lane.cfg.outstanding.max(1) as usize;
                    let mut ready = lane.time;
                    if lane.inflight.len() >= window {
                        // lint: allow(panic-in-hot-path) — len >= window >= 1
                        ready = ready.max(lane.inflight.pop_front().expect("nonempty window"));
                    }
                    let grant = ready.max(bus_free) + stall;
                    if tracer.enabled() {
                        tracer.record(
                            grant as u64,
                            EventKind::BusGrant {
                                lane: li as u32,
                                task: lane.task as u32,
                                beats,
                                waited: (grant - ready) as u64,
                            },
                        );
                    }
                    if profiling {
                        prof.observe("accel.req_wait", (grant - ready) as u64);
                        prof.observe("accel.req_beats", beats);
                    }
                    bus_free = grant + beats as f64;
                    bus_beats += beats;
                    lane.inflight.push_back(grant + beats as f64 + latency);
                    lane.time = grant + beats as f64;
                    // Heap-bypass fast path: keys are unique ((time, lane)
                    // with each lane in the heap at most once), so when
                    // this lane's new key is smaller than the heap minimum
                    // — or the heap is empty — a push followed by a pop
                    // would hand the very same lane straight back.
                    // Continue it inline instead of paying two heap
                    // operations per contention-free memory op.
                    let key = (Time(lane.time), li);
                    match heap.peek() {
                        Some(Reverse(min)) if *min < key => {
                            heap.push(Reverse(key));
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    if tracer.enabled() {
        for (t_idx, done) in per_task.iter().enumerate() {
            tracer.record(*done, EventKind::TaskEnd { task: t_idx as u32 });
        }
    }

    let makespan = per_task.iter().copied().max().unwrap_or(0);

    if profiling {
        for (t_idx, done) in per_task.iter().enumerate() {
            prof.observe("accel.task_cycles", done.saturating_sub(tasks[t_idx].start));
        }
        let setup = tasks.iter().map(|t| t.start).min().unwrap_or(0);
        let execute = makespan.saturating_sub(setup);
        // Every beat occupies a distinct cycle on the single port, and no
        // grant precedes the earliest start, so busy ≤ execute holds; the
        // min is belt-and-braces against a saturated fault model.
        let busy = bus_beats.min(execute);
        prof.enter("accel");
        prof.enter("setup");
        prof.add_cycles(setup);
        prof.exit();
        prof.enter("execute");
        prof.enter("bus_busy");
        prof.add_cycles(busy);
        prof.exit();
        prof.enter("bus_idle");
        prof.add_cycles(execute - busy);
        prof.exit();
        prof.exit();
        prof.exit();
    }

    AccelReport {
        per_task,
        makespan,
        bus_beats,
        bus_utilization: if makespan == 0 {
            0.0
        } else {
            bus_beats as f64 / makespan as f64
        },
    }
}

/// One fixed-width window of an accelerator-system run, as sampled for
/// the adaptive controller's epoch loop: which beats the shared port
/// moved in `[epoch * width, (epoch + 1) * width)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochMark {
    /// Window index (0-based).
    pub epoch: u32,
    /// First cycle past the window (`(epoch + 1) * width`, except the
    /// last mark, which ends at the makespan).
    pub end_cycle: Cycles,
    /// Interconnect beats granted inside the window.
    pub bus_beats: u64,
}

/// Buckets every bus grant's beats by `cycle / width` — the epoch-boundary
/// hook the adaptive controller samples between task groups.
struct EpochTracer {
    width: Cycles,
    beats: Vec<u64>,
}

impl Tracer for EpochTracer {
    fn record(&mut self, cycle: u64, kind: EventKind) {
        if let EventKind::BusGrant { beats, .. } = kind {
            let idx = (cycle / self.width) as usize;
            if self.beats.len() <= idx {
                self.beats.resize(idx + 1, 0);
            }
            self.beats[idx] += beats;
        }
    }
}

/// [`simulate_accel_system`] with the run cut into fixed-width epochs of
/// `epoch_cycles`: returns the usual report plus one [`EpochMark`] per
/// window up to the makespan. The marks partition the run — their
/// `bus_beats` sum to the report's total — so a feedback controller can
/// sample interconnect pressure at epoch boundaries without a second
/// simulation. Timing is identical to the untraced entry point (same
/// code path, the epoch tracer only observes).
///
/// # Panics
///
/// Panics when `epoch_cycles` is 0 — a zero-width epoch is meaningless.
#[must_use]
pub fn simulate_accel_system_epochs(
    tasks: &[AccelTask<'_>],
    bus: &BusConfig,
    epoch_cycles: Cycles,
) -> (AccelReport, Vec<EpochMark>) {
    assert!(epoch_cycles > 0, "epochs must have a width");
    let mut tracer = EpochTracer {
        width: epoch_cycles,
        beats: Vec::new(),
    };
    let report = simulate_accel_system_traced(tasks, bus, &mut tracer);
    // Cover the whole makespan, even when the tail windows moved nothing.
    let windows = (report.makespan.div_ceil(epoch_cycles) as usize).max(tracer.beats.len());
    let marks = (0..windows)
        .map(|i| EpochMark {
            epoch: i as u32,
            end_cycle: if i + 1 == windows {
                report.makespan
            } else {
                (i as Cycles + 1) * epoch_cycles
            },
            bus_beats: tracer.beats.get(i).copied().unwrap_or(0),
        })
        .collect();
    (report, marks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(addr: u64) -> TraceOp {
        TraceOp::Mem {
            addr,
            bytes: 4,
            write: false,
            object: 0,
        }
    }

    fn compute_heavy_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceOp::Compute(100_000));
        t.push(mem(0));
        t
    }

    fn mem_heavy_trace() -> Trace {
        (0..10_000u64).map(|i| mem(i * 4096)).collect() // every access misses
    }

    #[test]
    fn cpu_compute_time_scales_with_cpi() {
        let t = compute_heavy_trace();
        let base = simulate_cpu(&t, &CpuTiming::default());
        let slow = simulate_cpu(
            &t,
            &CpuTiming {
                cycles_per_unit: 2.0,
                ..CpuTiming::default()
            },
        );
        assert!(slow.cycles > base.cycles * 3 / 2);
    }

    #[test]
    fn cpu_cache_captures_reuse() {
        let t: Trace = (0..1000u64).map(|i| mem((i % 8) * 4)).collect();
        let r = simulate_cpu(&t, &CpuTiming::default());
        assert!(r.hits > 990, "repeated addresses should hit: {r:?}");
        let uncached = simulate_cpu(
            &t,
            &CpuTiming {
                cache: None,
                ..CpuTiming::default()
            },
        );
        assert!(uncached.cycles > r.cycles * 5);
    }

    #[test]
    fn cheri_cpu_pays_per_op_but_wins_on_copies() {
        let mut loads: Trace = (0..10_000u64).map(|i| mem(i % 512 * 4)).collect();
        loads.push(TraceOp::Compute(100));
        let cpu = CpuTiming::default();
        let ccpu = CpuTiming::default().with_cheri();
        assert!(simulate_cpu(&loads, &ccpu).cycles > simulate_cpu(&loads, &cpu).cycles);

        let mut copies = Trace::new();
        copies.push(TraceOp::Copy {
            src: 0,
            dst: 1 << 20,
            bytes: 64 * 1024,
        });
        assert!(
            simulate_cpu(&copies, &ccpu).cycles < simulate_cpu(&copies, &cpu).cycles,
            "capability copy moves twice the bytes per instruction"
        );
    }

    #[test]
    fn bus_faults_slow_the_bus_deterministically() {
        let t = mem_heavy_trace();
        let task = |trace| AccelTask {
            trace,
            cfg: AccelTimingConfig::default(),
            start: 0,
        };
        let healthy = simulate_accel_system(&[task(&t)], &BusConfig::default());
        let faulty_bus = BusConfig::default().with_faults(crate::bus::BusFaultConfig {
            stall_every: 10,
            stall_cycles: 50,
            drop_every: 7,
        });
        let faulty = simulate_accel_system(&[task(&t)], &faulty_bus);
        assert!(
            faulty.makespan > healthy.makespan,
            "stalls and retransmissions must cost cycles"
        );
        assert!(
            faulty.bus_beats > healthy.bus_beats,
            "dropped beats are retransmitted"
        );
        // Same fault config, same result — counter-based, not random.
        let again = simulate_accel_system(&[task(&t)], &faulty_bus);
        assert_eq!(faulty, again);
    }

    #[test]
    fn accel_parallelism_speeds_up_compute() {
        let t = compute_heavy_trace();
        let bus = BusConfig::default();
        let narrow = AccelTask {
            trace: &t,
            cfg: AccelTimingConfig {
                lanes: 1,
                compute_per_cycle: 1.0,
                outstanding: 4,
            },
            start: 0,
        };
        let wide = AccelTask {
            trace: &t,
            cfg: AccelTimingConfig {
                lanes: 8,
                compute_per_cycle: 4.0,
                outstanding: 4,
            },
            start: 0,
        };
        let slow = simulate_accel_system(&[narrow], &bus);
        let fast = simulate_accel_system(&[wide], &bus);
        assert!(slow.makespan > fast.makespan * 4);
    }

    #[test]
    fn shared_bus_serializes_memory_bound_tasks() {
        let t = mem_heavy_trace();
        let bus = BusConfig::default();
        let mk = |_| AccelTask {
            trace: &t,
            cfg: AccelTimingConfig::default(),
            start: 0,
        };
        let one = simulate_accel_system(&[mk(0)], &bus);
        let four: Vec<_> = (0..4).map(mk).collect();
        let four = simulate_accel_system(&four, &bus);
        // Four copies of the same memory-bound work cannot finish in much
        // less than four times the bus beats.
        assert!(four.makespan as f64 > one.makespan as f64 * 1.5);
        assert!(four.bus_utilization > one.bus_utilization);
    }

    #[test]
    fn checker_latency_is_small_for_pipelined_streams() {
        let t = mem_heavy_trace();
        let plain = simulate_accel_system(
            &[AccelTask {
                trace: &t,
                cfg: AccelTimingConfig::default(),
                start: 0,
            }],
            &BusConfig::default(),
        );
        let checked = simulate_accel_system(
            &[AccelTask {
                trace: &t,
                cfg: AccelTimingConfig::default(),
                start: 0,
            }],
            &BusConfig::default().with_checker(2),
        );
        assert!(checked.makespan >= plain.makespan);
        let overhead = (checked.makespan - plain.makespan) as f64 / plain.makespan as f64;
        assert!(
            overhead < 0.10,
            "pipelined checker must stay cheap, got {overhead}"
        );
    }

    #[test]
    fn start_offset_delays_completion() {
        let t = compute_heavy_trace();
        let bus = BusConfig::default();
        let a = simulate_accel_system(
            &[AccelTask {
                trace: &t,
                cfg: AccelTimingConfig::default(),
                start: 0,
            }],
            &bus,
        );
        let b = simulate_accel_system(
            &[AccelTask {
                trace: &t,
                cfg: AccelTimingConfig::default(),
                start: 1000,
            }],
            &bus,
        );
        assert_eq!(b.makespan, a.makespan + 1000);
    }

    #[test]
    fn empty_task_finishes_at_start() {
        let t = Trace::new();
        let r = simulate_accel_system(
            &[AccelTask {
                trace: &t,
                cfg: AccelTimingConfig::default(),
                start: 7,
            }],
            &BusConfig::default(),
        );
        assert_eq!(r.per_task, vec![7]);
    }

    /// The pre-memo LRU cache, kept verbatim as the reference the
    /// memoized [`Cache`] must match access-for-access.
    struct RefCache {
        cfg: CacheConfig,
        sets: usize,
        tags: Vec<u64>,
    }

    impl RefCache {
        fn new(cfg: CacheConfig) -> RefCache {
            let ways = cfg.ways.max(1) as usize;
            let lines = (cfg.size / cfg.line).max(1) as usize;
            let sets = (lines / ways).max(1);
            RefCache {
                cfg,
                sets,
                tags: vec![u64::MAX; sets * ways],
            }
        }

        fn access(&mut self, addr: u64) -> bool {
            let ways = self.cfg.ways.max(1) as usize;
            let line_no = addr / self.cfg.line;
            let set = (line_no % self.sets as u64) as usize;
            let slice = &mut self.tags[set * ways..(set + 1) * ways];
            if let Some(pos) = slice.iter().position(|t| *t == line_no) {
                slice[pos..].rotate_left(1);
                true
            } else {
                slice.rotate_left(1);
                slice[ways - 1] = line_no;
                false
            }
        }
    }

    #[test]
    fn l1_memo_matches_reference_lru_access_for_access() {
        for ways in [1u32, 2, 4] {
            let cfg = CacheConfig {
                size: 2048,
                line: 64,
                ways,
            };
            let mut memoized = Cache::new(cfg);
            let mut reference = RefCache::new(cfg);
            // Deterministic xorshift stream with repeat runs (the memo's
            // fast path) interleaved with conflicting strides.
            let mut x = 0x2545_f491_4f6c_dd1du64;
            for _ in 0..5_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = x % 16_384;
                for _ in 0..=(x % 4) {
                    assert_eq!(
                        memoized.access(addr),
                        reference.access(addr),
                        "divergence at addr {addr:#x}, ways {ways}"
                    );
                }
            }
        }
    }

    /// The pre-bypass event loop, kept verbatim: every memory op pays a
    /// heap push + pop. The shipping loop's heap bypass must be
    /// cycle-for-cycle identical to this.
    fn simulate_accel_naive(tasks: &[AccelTask<'_>], bus: &BusConfig) -> AccelReport {
        let mut lanes: Vec<Lane> = Vec::new();
        for (t_idx, task) in tasks.iter().enumerate() {
            let n = task.cfg.lanes.max(1) as usize;
            for ops in distribute_over_lanes(task.trace, n) {
                lanes.push(Lane {
                    task: t_idx,
                    ops,
                    next: 0,
                    time: task.start as f64,
                    inflight: VecDeque::new(),
                    cfg: task.cfg,
                });
            }
        }
        let latency = (bus.mem_latency + bus.checker_latency) as f64;
        let mut bus_free = 0.0f64;
        let mut bus_beats = 0u64;
        let mut grants = 0u64;
        let mut per_task: Vec<Cycles> = tasks.iter().map(|t| t.start).collect();
        let mut heap: BinaryHeap<Reverse<(Time, usize)>> = lanes
            .iter()
            .enumerate()
            .map(|(i, l)| Reverse((Time(l.time), i)))
            .collect();
        while let Some(Reverse((_, li))) = heap.pop() {
            let lane = &mut lanes[li];
            while let Some(TraceOp::Compute(units)) = lane.ops.get(lane.next) {
                lane.time += *units as f64 / lane.cfg.compute_per_cycle.max(1e-9);
                lane.next += 1;
            }
            match lane.ops.get(lane.next) {
                None => {
                    let drain = lane.inflight.back().copied().unwrap_or(lane.time);
                    let done = lane.time.max(drain).ceil() as Cycles;
                    per_task[lane.task] = per_task[lane.task].max(done);
                }
                Some(&op) => {
                    let mut beats = match op {
                        TraceOp::Mem { bytes, .. } => bus.beats(u64::from(bytes)),
                        TraceOp::Copy { bytes, .. } => 2 * bus.beats(bytes),
                        TraceOp::Compute(_) => unreachable!("compute handled above"),
                    };
                    lane.next += 1;
                    grants += 1;
                    if bus.faults.drops(grants) {
                        beats *= 2;
                    }
                    let stall = bus.faults.stall_for(grants) as f64;
                    let window = lane.cfg.outstanding.max(1) as usize;
                    let mut ready = lane.time;
                    if lane.inflight.len() >= window {
                        ready = ready.max(lane.inflight.pop_front().expect("nonempty window"));
                    }
                    let grant = ready.max(bus_free) + stall;
                    bus_free = grant + beats as f64;
                    bus_beats += beats;
                    lane.inflight.push_back(grant + beats as f64 + latency);
                    lane.time = grant + beats as f64;
                    heap.push(Reverse((Time(lane.time), li)));
                }
            }
        }
        let makespan = per_task.iter().copied().max().unwrap_or(0);
        AccelReport {
            per_task,
            makespan,
            bus_beats,
            bus_utilization: if makespan == 0 {
                0.0
            } else {
                bus_beats as f64 / makespan as f64
            },
        }
    }

    #[test]
    fn heap_bypass_is_cycle_for_cycle_identical_to_naive_loop() {
        let single = mem_heavy_trace();
        let mixed: Trace = (0..2_000u64)
            .flat_map(|i| {
                [
                    TraceOp::Compute(7),
                    TraceOp::Mem {
                        addr: i * 64,
                        bytes: 4,
                        write: i % 3 == 0,
                        object: 0,
                    },
                ]
            })
            .collect();
        let faulty = BusConfig::default().with_faults(crate::bus::BusFaultConfig {
            stall_every: 10,
            stall_cycles: 50,
            drop_every: 7,
        });
        let systems: Vec<(Vec<AccelTask<'_>>, BusConfig)> = vec![
            (
                vec![AccelTask {
                    trace: &single,
                    cfg: AccelTimingConfig::default(),
                    start: 0,
                }],
                BusConfig::default(),
            ),
            (
                (0..4)
                    .map(|i| AccelTask {
                        trace: if i % 2 == 0 { &single } else { &mixed },
                        cfg: AccelTimingConfig {
                            lanes: 1 + i,
                            compute_per_cycle: 2.0,
                            outstanding: 1 + i,
                        },
                        start: u64::from(i) * 100,
                    })
                    .collect(),
                BusConfig::default().with_checker(2),
            ),
            (
                vec![AccelTask {
                    trace: &mixed,
                    cfg: AccelTimingConfig::default(),
                    start: 0,
                }],
                faulty,
            ),
        ];
        for (tasks, bus) in systems {
            assert_eq!(
                simulate_accel_system(&tasks, &bus),
                simulate_accel_naive(&tasks, &bus),
                "bypass diverged on a {}-task system",
                tasks.len()
            );
        }
    }

    #[test]
    fn cpu_profiled_run_is_cycle_identical_and_well_attributed() {
        use obs::SpanProfiler;
        for cfg in [
            CpuTiming::default(),
            CpuTiming::default().with_cheri(),
            CpuTiming {
                cache: None,
                ..CpuTiming::default()
            },
        ] {
            let t: Trace = (0..5_000u64)
                .flat_map(|i| [TraceOp::Compute(3), mem(i * 128)])
                .collect();
            let plain = simulate_cpu(&t, &cfg);
            let mut prof = SpanProfiler::new();
            let profiled = simulate_cpu_prof(&t, &cfg, &mut NullTracer, &mut prof);
            assert_eq!(plain, profiled, "profiling must not change the report");
            let snap = prof.snapshot();
            let attributed = snap.attributed_cycles();
            assert!(attributed <= plain.cycles, "never over-attribute");
            assert!(
                attributed * 100 >= plain.cycles * 95,
                "span partition covers the run: {attributed} of {}",
                plain.cycles
            );
            assert_eq!(
                snap.metrics.histograms["cpu.access_cycles"].count,
                plain.mem_ops
            );
        }
    }

    #[test]
    fn accel_profiled_run_is_cycle_identical_and_attribution_is_exact() {
        use obs::SpanProfiler;
        let t = mem_heavy_trace();
        let tasks: Vec<AccelTask<'_>> = (0..3u64)
            .map(|i| AccelTask {
                trace: &t,
                cfg: AccelTimingConfig::default(),
                start: i * 200,
            })
            .collect();
        let bus = BusConfig::default().with_checker(2);
        let plain = simulate_accel_system(&tasks, &bus);
        let mut prof = SpanProfiler::new();
        let profiled = simulate_accel_system_prof(&tasks, &bus, &mut NullTracer, &mut prof);
        assert_eq!(plain, profiled, "profiling must not change the report");
        let snap = prof.snapshot();
        // setup + bus_busy + bus_idle is an exact partition of the makespan.
        assert_eq!(snap.attributed_cycles(), plain.makespan);
        let hists = &snap.metrics.histograms;
        assert_eq!(hists["accel.task_cycles"].count, tasks.len() as u64);
        assert!(hists["accel.req_wait"].count > 0);
        assert_eq!(hists["accel.req_beats"].sum, plain.bus_beats);
    }

    #[test]
    fn epoch_marks_partition_the_run() {
        let t = mem_heavy_trace();
        let tasks: Vec<AccelTask<'_>> = (0..3u64)
            .map(|i| AccelTask {
                trace: &t,
                cfg: AccelTimingConfig::default(),
                start: i * 500,
            })
            .collect();
        let bus = BusConfig::default().with_checker(2);
        let plain = simulate_accel_system(&tasks, &bus);
        let (report, marks) = simulate_accel_system_epochs(&tasks, &bus, 1_000);
        assert_eq!(report, plain, "the epoch tracer only observes");
        assert!(!marks.is_empty());
        let total: u64 = marks.iter().map(|m| m.bus_beats).sum();
        assert_eq!(total, report.bus_beats, "marks partition the beats");
        // Windows are contiguous, indexed, and end at the makespan.
        for (i, m) in marks.iter().enumerate() {
            assert_eq!(m.epoch as usize, i);
        }
        assert_eq!(marks.last().unwrap().end_cycle, report.makespan);
        for w in marks.windows(2) {
            assert!(w[0].end_cycle <= w[1].end_cycle);
        }
        // A memory-bound system keeps the port busy early on.
        assert!(marks[0].bus_beats > 0);
    }

    #[test]
    fn outstanding_window_throttles_latency_bound_lanes() {
        let t = mem_heavy_trace();
        let bus = BusConfig::default();
        let tight = AccelTask {
            trace: &t,
            cfg: AccelTimingConfig {
                lanes: 1,
                compute_per_cycle: 1.0,
                outstanding: 1,
            },
            start: 0,
        };
        let deep = AccelTask {
            trace: &t,
            cfg: AccelTimingConfig {
                lanes: 1,
                compute_per_cycle: 1.0,
                outstanding: 16,
            },
            start: 0,
        };
        let slow = simulate_accel_system(&[tight], &bus);
        let fast = simulate_accel_system(&[deep], &bus);
        assert!(
            slow.makespan > fast.makespan * 4,
            "{} vs {}",
            slow.makespan,
            fast.makespan
        );
    }
}

#[cfg(test)]
mod assoc_tests {
    use super::*;

    fn thrash_trace() -> Trace {
        // Two addresses that collide in a direct-mapped 16 KiB cache.
        (0..2000u64)
            .map(|i| TraceOp::Mem {
                addr: (i % 2) * 16 * 1024,
                bytes: 8,
                write: false,
                object: 0,
            })
            .collect()
    }

    #[test]
    fn two_way_associativity_absorbs_conflicts() {
        let t = thrash_trace();
        let dm = CpuTiming {
            cache: Some(CacheConfig::direct_mapped(16 * 1024, 64)),
            ..CpuTiming::default()
        };
        let assoc = CpuTiming {
            cache: Some(CacheConfig {
                size: 16 * 1024,
                line: 64,
                ways: 2,
            }),
            ..CpuTiming::default()
        };
        let r_dm = simulate_cpu(&t, &dm);
        let r_assoc = simulate_cpu(&t, &assoc);
        assert!(
            r_dm.misses > 1900,
            "ping-pong should thrash direct-mapped: {r_dm:?}"
        );
        assert!(r_assoc.misses <= 2, "two ways hold both lines: {r_assoc:?}");
        assert!(r_assoc.cycles < r_dm.cycles / 5);
    }

    #[test]
    fn lru_evicts_the_coldest_way() {
        // Three lines into a 2-way set: the least recently used goes.
        let s = 16 * 1024u64;
        let t: Trace = [0, s, 0, 2 * s, 0, s]
            .into_iter()
            .map(|addr| TraceOp::Mem {
                addr,
                bytes: 8,
                write: false,
                object: 0,
            })
            .collect();
        let assoc = CpuTiming {
            cache: Some(CacheConfig {
                size: 16 * 1024,
                line: 64,
                ways: 2,
            }),
            ..CpuTiming::default()
        };
        let r = simulate_cpu(&t, &assoc);
        // Misses: 0, s, 2s (evicts s), then s again. Hits: 0 twice.
        assert_eq!(r.misses, 4, "{r:?}");
        assert_eq!(r.hits, 2, "{r:?}");
    }
}
